//! Device-side dynamic data structures on the global allocator.
//!
//! The paper motivates slice allocations with "many dynamic data
//! structures such as linked lists, skip lists, queues, trees, and hash
//! tables" (§4.3). This example builds two of them entirely in device
//! memory through the Appendix-A.2 global allocator interface:
//!
//! * a **lock-free Treiber stack** whose nodes are 16-byte slices, pushed
//!   and popped concurrently by thousands of simulated threads;
//! * a **per-thread linked list** workload where every thread grows its
//!   own list node by node, then walks and frees it — the classic
//!   pointer-chasing pattern static GPU memory cannot express.
//!
//! Run with: `cargo run --release --example device_structures`

use gallatin::global::{global_allocator, global_free, global_malloc, init_global_allocator};
use gallatin_repro::prelude::*;
use gpu_sim::launch;
use std::sync::atomic::{AtomicU64, Ordering};

/// Offset-based Treiber stack: `head` packs a 16-bit ABA tag with a
/// 48-bit node offset; each node is `[next u64][value u64]` in device
/// memory, allocated from the global allocator.
struct DeviceStack {
    head: AtomicU64,
}

const NIL: u64 = (1 << 48) - 1;
const OFF_MASK: u64 = (1 << 48) - 1;

impl DeviceStack {
    fn new() -> Self {
        DeviceStack { head: AtomicU64::new(NIL) }
    }

    fn push(&self, ctx: &LaneCtx, value: u64) -> bool {
        let node = global_malloc(ctx, 16);
        if node.is_null() {
            return false;
        }
        let mem = global_allocator().memory();
        mem.write_stamp(node.offset(8), value);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            mem.write_stamp(node, head & OFF_MASK);
            let new = ((head >> 48).wrapping_add(1) << 48) | node.0;
            match self.head.compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return true,
                Err(h) => head = h,
            }
        }
    }

    fn pop(&self, ctx: &LaneCtx) -> Option<u64> {
        let mem = global_allocator().memory();
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let off = head & OFF_MASK;
            if off == NIL {
                return None;
            }
            let next = mem.read_stamp(DevicePtr(off));
            let new = ((head >> 48).wrapping_add(1) << 48) | (next & OFF_MASK);
            match self.head.compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    let value = mem.read_stamp(DevicePtr(off + 8));
                    global_free(ctx, DevicePtr(off));
                    return Some(value);
                }
                Err(h) => head = h,
            }
        }
    }
}

fn treiber_stack_demo(device: DeviceConfig) {
    let stack = DeviceStack::new();
    let threads = 20_000u64;

    // Phase 1: everyone pushes their tid.
    let pushed = AtomicU64::new(0);
    let t0 = std::time::Instant::now();
    launch(device, threads, |ctx| {
        if stack.push(ctx, ctx.global_tid()) {
            pushed.fetch_add(1, Ordering::Relaxed);
        }
    });
    // Phase 2: everyone pops one value.
    let sum = AtomicU64::new(0);
    let popped = AtomicU64::new(0);
    launch(device, threads, |ctx| {
        if let Some(v) = stack.pop(ctx) {
            sum.fetch_add(v, Ordering::Relaxed);
            popped.fetch_add(1, Ordering::Relaxed);
        }
    });
    println!(
        "treiber stack: pushed {} popped {} in {:.2?}; value sum matches: {}",
        pushed.load(Ordering::Relaxed),
        popped.load(Ordering::Relaxed),
        t0.elapsed(),
        sum.load(Ordering::Relaxed) == threads * (threads - 1) / 2
    );
    assert_eq!(pushed.load(Ordering::Relaxed), threads);
    assert_eq!(popped.load(Ordering::Relaxed), threads);
    assert_eq!(sum.load(Ordering::Relaxed), threads * (threads - 1) / 2);
}

fn linked_list_demo(device: DeviceConfig) {
    // Every thread builds a private list of `len` nodes, walks it to
    // verify, then frees node by node.
    let threads = 2_000u64;
    let len = 50u64;
    let verified = AtomicU64::new(0);
    let t0 = std::time::Instant::now();
    launch(device, threads, |ctx| {
        let mem = global_allocator().memory();
        let mut head = DevicePtr::NULL;
        for i in 0..len {
            let node = global_malloc(ctx, 16);
            assert!(!node.is_null(), "list node allocation failed");
            mem.write_stamp(node, if head.is_null() { NIL } else { head.0 });
            mem.write_stamp(node.offset(8), ctx.global_tid() * 1000 + i);
            head = node;
        }
        // Walk: values must come back newest-first, untouched by the
        // thousands of other threads doing the same thing.
        let mut cur = head;
        let mut expect = len;
        while !cur.is_null() {
            expect -= 1;
            assert_eq!(mem.read_stamp(cur.offset(8)), ctx.global_tid() * 1000 + expect);
            let next = mem.read_stamp(cur);
            global_free(ctx, cur);
            cur = if next == NIL { DevicePtr::NULL } else { DevicePtr(next) };
        }
        assert_eq!(expect, 0);
        verified.fetch_add(1, Ordering::Relaxed);
    });
    println!(
        "linked lists: {} threads × {} nodes built, walked, freed in {:.2?}",
        verified.load(Ordering::Relaxed),
        len,
        t0.elapsed()
    );
    assert_eq!(verified.load(Ordering::Relaxed), threads);
}

fn main() {
    init_global_allocator(256 << 20).expect("first init in this process");
    let device = DeviceConfig::default();

    treiber_stack_demo(device);
    linked_list_demo(device);

    let stats = global_allocator().stats();
    println!(
        "global allocator after both demos: {} bytes reserved of {}",
        stats.reserved_bytes, stats.heap_bytes
    );
    assert_eq!(stats.reserved_bytes, 0, "all nodes returned");
}
