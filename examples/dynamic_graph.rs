//! Dynamic graph: the workload the paper's introduction motivates.
//!
//! A streaming, heavily skewed ("Twitter-like") graph is built edge by
//! edge on two allocators: Gallatin and Ouroboros-P-VA (the strongest
//! chunk-limited competitor). Hub vertices keep doubling their edge
//! lists; once a list outgrows 8192 bytes, Ouroboros must serve it from
//! its capped CUDA-heap reserve — and fails when the hubs' total exceeds
//! the reserve, while Gallatin keeps going until actual heap exhaustion.
//!
//! Run with: `cargo run --release --example dynamic_graph`

use allocators::{Ouroboros, OuroborosKind, QueueKind};
use gallatin_repro::prelude::*;
use gpu_sim::launch;
use graph::{zipf_edges, DynamicGraph};

fn stream_graph(name: &str, alloc: &dyn DeviceAllocator) {
    let num_vertices = 4_096u32;
    let rounds = 6;
    let edges_per_round = 100_000;
    let device = DeviceConfig::default();
    let g = DynamicGraph::new(num_vertices as usize, alloc);

    println!("\n--- {name} ({} MiB heap) ---", alloc.heap_bytes() >> 20);
    for round in 0..rounds {
        let batch = zipf_edges(num_vertices, edges_per_round, 1.0, 42 + round as u64);
        let before_failures = g.failed_updates();
        let t0 = std::time::Instant::now();
        launch(device, batch.len() as u64, |l| {
            let (src, dst) = batch[l.global_tid() as usize];
            g.insert_edge(l, src, dst);
        });
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let new_failures = g.failed_updates() - before_failures;
        let max_deg = (0..num_vertices).map(|v| g.degree(v)).max().unwrap();
        println!(
            "round {round}: {:>6.1} ms, edges={:>8}, max degree={:>7} ({} KiB list){}",
            ms,
            g.num_edges(),
            max_deg,
            (max_deg as u64 * 8) >> 10,
            if new_failures > 0 {
                format!("  <-- {new_failures} FAILED updates")
            } else {
                String::new()
            }
        );
    }
    launch(device, 1, |l| g.destroy(l));
}

fn main() {
    let heap = 256u64 << 20;
    let gallatin = Gallatin::new(GallatinConfig { heap_bytes: heap, ..Default::default() });
    stream_graph("Gallatin", &gallatin);

    // Ouroboros with the (scaled) CUDA-heap reserve the paper describes:
    // hub edge lists above 8192 B land in the reserve and exhaust it.
    let ouroboros =
        Ouroboros::with_reserve(heap, OuroborosKind::Page, QueueKind::VirtArray, 2 << 20);
    stream_graph("Ouroboros-P-VA (2 MiB CUDA reserve)", &ouroboros);

    println!(
        "\nGallatin keeps hub lists in ordinary segments; the chunk-limited \
         allocator strands them on its fixed reserve — the paper's §1 motivation."
    );
}
