//! K-mer counting with a dynamically resizable device hash table.
//!
//! The paper's introduction names k-mer analysis as a workload that
//! *needs* dynamic memory: the multiset size is unknown in advance, so
//! static GPU hash tables must be grossly over-provisioned. With a
//! general-purpose device allocator, the table can start small and grow
//! by reallocating — each growth step is a *large* (multi-megabyte, even
//! multi-segment) allocation served by the same allocator that serves
//! 16-byte slices.
//!
//! This example builds exactly that: an open-addressing table of
//! (kmer, count) slots living in Gallatin-managed device memory, doubled
//! whenever occupancy passes 70%, fed by kernels that extract 2-bit-packed
//! k-mers from a synthetic DNA string.
//!
//! Run with: `cargo run --release --example kmer_counting`

use gallatin_repro::prelude::*;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicU64, Ordering};

const K: usize = 21;
const EMPTY: u64 = u64::MAX;

/// An open-addressing (linear probing) hash table in device memory:
/// `capacity` pairs of 8-byte slots `[key][count]`.
struct DeviceHashTable<'a> {
    alloc: &'a Gallatin,
    ptr: DevicePtr,
    capacity: u64,
    live: AtomicU64,
}

impl<'a> DeviceHashTable<'a> {
    fn new(alloc: &'a Gallatin, capacity: u64, ctx: &LaneCtx) -> Self {
        let capacity = capacity.next_power_of_two();
        let ptr = alloc.malloc(ctx, capacity * 16);
        assert!(!ptr.is_null(), "table allocation failed");
        // Initialize keys to EMPTY.
        for i in 0..capacity {
            alloc.memory().write_stamp(ptr.offset(i * 16), EMPTY);
            alloc.memory().write_stamp(ptr.offset(i * 16 + 8), 0);
        }
        DeviceHashTable { alloc, ptr, capacity, live: AtomicU64::new(0) }
    }

    #[inline]
    fn hash(kmer: u64) -> u64 {
        let mut x = kmer.wrapping_add(0x9e37_79b9_7f4a_7c15);
        x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        x ^ (x >> 31)
    }

    /// Insert-or-increment. Returns false when the table is too full to
    /// place the key (caller resizes).
    fn upsert(&self, kmer: u64) -> bool {
        let mem = self.alloc.memory();
        let mask = self.capacity - 1;
        let mut slot = Self::hash(kmer) & mask;
        for _ in 0..self.capacity.min(256) {
            let key_off = self.ptr.0 + slot * 16;
            let key_word = mem.atomic_u64(key_off);
            let cur = key_word.load(Ordering::Acquire);
            if cur == kmer {
                mem.atomic_u64(key_off + 8).fetch_add(1, Ordering::Relaxed);
                return true;
            }
            if cur == EMPTY {
                match key_word.compare_exchange(EMPTY, kmer, Ordering::AcqRel, Ordering::Acquire) {
                    Ok(_) => {
                        self.live.fetch_add(1, Ordering::Relaxed);
                        mem.atomic_u64(key_off + 8).fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(now) if now == kmer => {
                        mem.atomic_u64(key_off + 8).fetch_add(1, Ordering::Relaxed);
                        return true;
                    }
                    Err(_) => {} // someone claimed a different key; probe on
                }
            }
            slot = (slot + 1) & mask;
        }
        false
    }

    fn occupancy(&self) -> f64 {
        self.live.load(Ordering::Relaxed) as f64 / self.capacity as f64
    }

    /// Double the capacity: allocate the new table (possibly a
    /// multi-segment large allocation), rehash, free the old.
    fn grow(&mut self, ctx: &LaneCtx) {
        let old_ptr = self.ptr;
        let old_cap = self.capacity;
        let new = DeviceHashTable::new(self.alloc, old_cap * 2, ctx);
        let mem = self.alloc.memory();
        for i in 0..old_cap {
            let key = mem.read_stamp(old_ptr.offset(i * 16));
            if key != EMPTY {
                let count = mem.read_stamp(old_ptr.offset(i * 16 + 8));
                assert!(new.upsert_with_count(key, count));
            }
        }
        self.alloc.free(ctx, old_ptr);
        self.ptr = new.ptr;
        self.capacity = new.capacity;
        self.live.store(new.live.load(Ordering::Relaxed), Ordering::Relaxed);
        // `new` has no Drop; its ptr ownership moved into self above.
    }

    fn upsert_with_count(&self, kmer: u64, count: u64) -> bool {
        if !self.upsert(kmer) {
            return false;
        }
        let mem = self.alloc.memory();
        let mask = self.capacity - 1;
        let mut slot = Self::hash(kmer) & mask;
        loop {
            let key_off = self.ptr.0 + slot * 16;
            if mem.atomic_u64(key_off).load(Ordering::Acquire) == kmer {
                mem.atomic_u64(key_off + 8).fetch_add(count - 1, Ordering::Relaxed);
                return true;
            }
            slot = (slot + 1) & mask;
        }
    }

    fn distinct(&self) -> u64 {
        self.live.load(Ordering::Relaxed)
    }
}

/// Synthetic DNA: uniform ACGT with a few repeated motifs so counts > 1
/// appear.
fn synthesize_dna(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = StdRng::seed_from_u64(seed);
    let motif: Vec<u8> = (0..64).map(|_| rng.gen_range(0..4u8)).collect();
    let mut dna = Vec::with_capacity(len);
    while dna.len() < len {
        if rng.gen_bool(0.1) {
            dna.extend_from_slice(&motif);
        } else {
            dna.push(rng.gen_range(0..4u8));
        }
    }
    dna.truncate(len);
    dna
}

fn main() {
    let alloc = Gallatin::new(GallatinConfig { heap_bytes: 512 << 20, ..Default::default() });
    let device = DeviceConfig::default();
    let dna = synthesize_dna(2_000_000, 7);
    let num_kmers = dna.len() - K + 1;

    // 2-bit-pack every k-mer up front (host-side prep, as a real pipeline
    // would do on device).
    let kmers: Vec<u64> = (0..num_kmers)
        .map(|i| dna[i..i + K].iter().fold(0u64, |acc, &b| (acc << 2) | b as u64))
        .collect();

    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let host_lane = warp.lane(0);
    // Deliberately undersized start: 4096 slots for ~2M k-mers.
    let mut table = DeviceHashTable::new(&alloc, 4096, &host_lane);
    println!("counting {} {K}-mers, table starts at {} slots", kmers.len(), table.capacity);

    let t0 = std::time::Instant::now();
    let mut next = 0usize;
    while next < kmers.len() {
        // Insert in chunks small enough that the table cannot fill past
        // the probe limit before the next occupancy check; grow when
        // occupancy crosses 70%.
        let headroom = (table.capacity as f64 * 0.85) as u64 - table.distinct();
        let chunk_len = (headroom as usize).clamp(512, 200_000);
        let chunk_end = (next + chunk_len).min(kmers.len());
        let chunk = &kmers[next..chunk_end];
        let failures = AtomicU64::new(0);
        launch(device, chunk.len() as u64, |l| {
            if !table.upsert(chunk[l.global_tid() as usize]) {
                failures.fetch_add(1, Ordering::Relaxed);
            }
        });
        assert_eq!(failures.load(Ordering::Relaxed), 0, "probe limit hit before resize");
        next = chunk_end;
        while table.occupancy() > 0.70 {
            let old = table.capacity;
            table.grow(&host_lane);
            println!(
                "  grew table {old} -> {} slots ({} MiB allocation)",
                table.capacity,
                (table.capacity * 16) >> 20
            );
        }
    }
    let elapsed = t0.elapsed();

    println!(
        "done in {elapsed:.2?}: {} distinct {K}-mers, final table {} slots ({} MiB)",
        table.distinct(),
        table.capacity,
        (table.capacity * 16) >> 20
    );
    println!(
        "allocator: {} bytes reserved of {} ({} segments free)",
        alloc.stats().reserved_bytes,
        alloc.heap_bytes(),
        alloc.free_segments()
    );
    alloc.free(&host_lane, table.ptr);
    assert_eq!(alloc.stats().reserved_bytes, 0);
    println!("table freed; heap fully recovered");
}
