//! Large allocations: the capability that makes Gallatin *general
//! purpose*.
//!
//! The paper's §4.1 design gives small allocations segments from the
//! front of memory (successor search) and large allocations contiguous
//! segment runs from the back (predecessor search), so both coexist in
//! one heap without a separate CUDA-heap reserve. This example exercises
//! that: a kernel of threads doing 16 B–4 KB slice allocations runs while
//! the host side repeatedly grabs and releases 24–96 MiB buffers — then a
//! single allocation spanning most of the remaining heap succeeds.
//!
//! Run with: `cargo run --release --example large_allocations`

use gallatin_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    let heap = 512u64 << 20;
    let alloc = Gallatin::new(GallatinConfig { heap_bytes: heap, ..Default::default() });
    let device = DeviceConfig::default();
    let seg = 16u64 << 20;

    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let host = warp.lane(0);

    // Phase 1: small allocations land at the front of the heap.
    let small_ptrs = std::sync::Mutex::new(Vec::new());
    launch(device, 50_000, |l| {
        let size = 16u64 << (l.global_tid() % 9); // 16 B .. 4 KB
        let p = alloc.malloc(l, size);
        assert!(!p.is_null());
        small_ptrs.lock().unwrap().push(p);
    });
    let max_small = small_ptrs.lock().unwrap().iter().map(|p| p.0).max().unwrap();
    println!(
        "50k small allocations occupy the first {} segments (max offset {} MiB)",
        max_small / seg + 1,
        max_small >> 20
    );

    // Phase 2: large allocations come from the back.
    let mut big = Vec::new();
    for mb in [24u64, 48, 96] {
        let p = alloc.malloc(&host, mb << 20);
        assert!(!p.is_null(), "{} MiB allocation failed", mb);
        println!(
            "{mb:>3} MiB allocation at offset {} MiB (segment {} of {})",
            p.0 >> 20,
            p.0 / seg,
            heap / seg
        );
        // Touch both ends to prove the span is real.
        alloc.memory().write_stamp(p, 0x1111);
        alloc.memory().write_stamp(p.offset((mb << 20) - 8), 0x2222);
        assert_eq!(alloc.memory().read_stamp(p), 0x1111);
        big.push(p);
    }

    // Phase 3: release the large buffers and take one allocation spanning
    // most of the heap's free space — impossible for any allocator with a
    // fixed large-allocation reserve.
    for p in big {
        alloc.free(&host, p);
    }
    let free_segments = alloc.free_segments();
    let giant_bytes = (free_segments - 1) * seg;
    let giant = alloc.malloc(&host, giant_bytes);
    assert!(!giant.is_null(), "giant allocation failed");
    println!(
        "giant allocation: {} MiB in one contiguous span at offset {} MiB",
        giant_bytes >> 20,
        giant.0 >> 20
    );

    // Phase 4: slice allocations still work alongside the giant one.
    let ok = AtomicU64::new(0);
    launch(device, 10_000, |l| {
        let p = alloc.malloc(l, 64);
        if !p.is_null() {
            alloc.memory().write_stamp(p, l.global_tid());
            assert_eq!(alloc.memory().read_stamp(p), l.global_tid());
            alloc.free(l, p);
            ok.fetch_add(1, Ordering::Relaxed);
        }
    });
    println!(
        "{} small allocations served while {} MiB of the heap is one object",
        ok.load(Ordering::Relaxed),
        giant_bytes >> 20
    );

    alloc.free(&host, giant);
    for p in small_ptrs.lock().unwrap().iter() {
        alloc.free(&host, *p);
    }
    assert_eq!(alloc.stats().reserved_bytes, 0);
    println!("all memory returned; reserved = 0");
}
