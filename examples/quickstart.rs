//! Quickstart: initialize Gallatin, allocate from device code, free.
//!
//! Mirrors the paper's appendix usage sketch (`init_global_allocator`,
//! then `global_malloc`/`global_free` from any device function), adapted
//! to the simulated SIMT substrate: a kernel of 100 K threads each
//! allocates a 64-byte object, writes to it, verifies the write, and
//! frees it.
//!
//! Run with: `cargo run --release --example quickstart`

use gallatin_repro::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};

fn main() {
    // One 256 MiB heap, managed entirely by Gallatin.
    let alloc =
        Gallatin::new(GallatinConfig { heap_bytes: 256 << 20, ..GallatinConfig::default() });
    let device = DeviceConfig::default();
    let threads: u64 = 100_000;

    let served = AtomicU64::new(0);
    let t0 = std::time::Instant::now();
    launch_warps(device, threads, |warp| {
        let n = warp.active as usize;
        // Every lane asks for 64 bytes; same-size requests in a warp are
        // coalesced into a single atomic by the allocator.
        let sizes = vec![Some(64u64); n];
        let mut ptrs = vec![DevicePtr::NULL; n];
        alloc.warp_malloc(warp, &sizes, &mut ptrs);

        for (lane, p) in ptrs.iter().enumerate() {
            assert!(!p.is_null(), "allocation failed");
            let tid = warp.base_tid + lane as u64;
            alloc.memory().write_stamp(*p, tid);
        }
        for (lane, p) in ptrs.iter().enumerate() {
            let tid = warp.base_tid + lane as u64;
            assert_eq!(alloc.memory().read_stamp(*p), tid, "payload mismatch");
        }
        served.fetch_add(n as u64, Ordering::Relaxed);

        alloc.warp_free(warp, &ptrs);
    });
    let elapsed = t0.elapsed();

    let m = alloc.metrics().unwrap().snapshot();
    println!(
        "allocated+verified+freed {} objects in {:.2?}",
        served.load(Ordering::Relaxed),
        elapsed
    );
    println!(
        "atomics per malloc: {:.3} (requests coalesced: {})",
        m.rmw_per_malloc(),
        m.coalesced_requests
    );
    println!(
        "heap after kernel: {} of {} bytes reserved",
        alloc.stats().reserved_bytes,
        alloc.heap_bytes()
    );
    assert_eq!(alloc.stats().reserved_bytes, 0, "all memory returned");
}
