//! Scratch drive for the fault-injection + reclaim-telemetry surfaces:
//! park a warp inside the ring-pop window while the rest of the device
//! churns segments through reclaim/reformat, then read back the
//! protocol counters and verify the heap.

use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, FaultPlan, PreemptPoint};

fn main() {
    let mut attempts = 0u64;
    let mut bounces = 0u64;
    for seed in 0..4u64 {
        let g = Gallatin::new(GallatinConfig {
            heap_bytes: 4 * (16 << 20),
            num_sms: 4,
            ..GallatinConfig::default()
        });
        let seg_bytes = g.geometry().segment_bytes;
        let cfg = DeviceConfig::with_sms(4).seeded(seed).with_fault(FaultPlan::park(
            PreemptPoint::RingPop,
            3,
            48,
        ));
        launch_warps(cfg, 4 * 32, |warp| {
            let l = warp.lane(0);
            for round in 0..6u64 {
                let size = (seg_bytes / 16) << ((warp.warp_id + round) & 1);
                let p = g.malloc(&l, size);
                if !p.is_null() {
                    g.free(&l, p);
                }
            }
        });
        g.check_invariants().expect("invariants after faulted churn");
        assert_eq!(g.stats().reserved_bytes, 0, "leak after faulted churn");
        let m = g.metrics().expect("gallatin keeps metrics").snapshot();
        attempts += m.reclaim_attempts;
        bounces += m.straggler_bounces;
        println!(
            "seed {seed}: attempts={} aborts={} bounces={} drain_spins={}",
            m.reclaim_attempts, m.reclaim_aborts, m.straggler_bounces, m.drain_spins
        );
    }
    assert!(attempts > 0, "churn never reclaimed a segment");
    println!("aggregate: attempts={attempts} bounces={bounces}");
    println!("invariants + reserved accounting: ok under injected ring-pop stalls");
}
