//! Demonstration of the deterministic scheduler surface: seed replay,
//! schedule sweeps, and zero-size allocation semantics, all through the
//! public crate APIs.

use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{explore_schedules, launch_warps, DeviceAllocator, DeviceConfig, WarpCtx};

fn churn(seed: u64) -> (gpu_sim::metrics::MetricsSnapshot, u64) {
    let g = Gallatin::new(GallatinConfig::small_test(256 << 10));
    launch_warps(DeviceConfig::with_sms(4).seeded(seed), 96, |warp| {
        let l = warp.lane(0);
        for round in 0..8u64 {
            let p = g.malloc(&l, 16 << ((warp.warp_id + round) % 5));
            if !p.is_null() {
                g.free(&l, p);
            }
        }
    });
    g.check_invariants().expect("invariants");
    (g.metrics().unwrap().snapshot(), g.stats().reserved_bytes)
}

fn main() {
    // 1. Same seed → identical counters; different seed → (usually) not.
    let a = churn(7);
    let b = churn(7);
    let c = churn(8);
    println!("seed 7 run 1: cas={} cas_failed={}", a.0.cas_attempts, a.0.cas_failures);
    println!("seed 7 run 2: cas={} cas_failed={}", b.0.cas_attempts, b.0.cas_failures);
    println!("seed 8 run 1: cas={} cas_failed={}", c.0.cas_attempts, c.0.cas_failures);
    println!("same-seed replay identical: {}", a == b);

    // 2. Schedule sweep: report the first failing seed of a buggy
    // scenario. The panic trace on stderr is expected — it is the
    // injected bug being caught and attributed to its seed.
    println!("sweeping a scenario with an injected bug...");
    let result = explore_schedules(0..16, |seed| {
        churn(seed);
        assert!(seed % 5 != 3, "injected failure at seed {seed}");
    });
    match result {
        Ok(n) => println!("sweep: all {n} schedules passed"),
        Err(f) => println!("sweep: {f}"),
    }

    // 3. Zero-size malloc returns unique, freeable pointers.
    let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let l = warp.lane(0);
    let p = g.malloc(&l, 0);
    let q = g.malloc(&l, 0);
    println!("malloc(0) twice: {:?} {:?} (unique: {})", p, q, p.0 != q.0);
    g.free(&l, p);
    g.free(&l, q);
    println!("reserved after frees: {}", g.stats().reserved_bytes);
    g.check_invariants().expect("invariants");
    println!("invariant check: ok");
}
