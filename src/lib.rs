//! # gallatin-repro
//!
//! Meta-package of the Gallatin (PPoPP 2024) reproduction workspace: it
//! hosts the runnable examples (`examples/`) and the cross-crate
//! integration tests (`tests/`), and re-exports the workspace crates for
//! convenience.
//!
//! The interesting code lives in the member crates:
//!
//! * [`gpu_sim`] — the SIMT execution substrate (warps, device memory,
//!   cooperative groups, the `DeviceAllocator` trait);
//! * [`veb`] — the concurrent van Emde Boas tree;
//! * [`gallatin`] — the Gallatin allocator itself;
//! * [`allocators`] — the survey baselines (CUDA heap, Ouroboros, RegEff,
//!   ScatterAlloc, XMalloc);
//! * [`graph`] — the dynamic edge-list graph workload.
//!
//! See README.md for a tour and DESIGN.md for the reproduction plan.

pub use allocators;
pub use gallatin;
pub use gpu_sim;
pub use graph;
pub use veb;

/// Convenience prelude for examples and tests.
pub mod prelude {
    pub use gallatin::{Gallatin, GallatinConfig};
    pub use gpu_sim::{
        launch, launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, LaneCtx, WarpCtx,
    };
}
