//! Cross-crate integration: every allocator in the benchmark roster must
//! satisfy the core correctness contract the survey harness assumes —
//! live allocations never overlap, payloads survive until freed, resets
//! restore capacity, exhaustion fails cleanly.

use allocators::all_baselines;
use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

const HEAP: u64 = 64 << 20;

fn roster() -> Vec<Arc<dyn DeviceAllocator>> {
    let mut v: Vec<Arc<dyn DeviceAllocator>> =
        vec![Arc::new(Gallatin::new(GallatinConfig { heap_bytes: HEAP, ..Default::default() }))];
    v.extend(all_baselines(HEAP));
    v
}

/// Allocate / stamp / verify / free across many warps; stamp corruption
/// would prove overlapping live allocations.
fn storm(a: &dyn DeviceAllocator, threads: u64, size_for: impl Fn(u64) -> u64 + Sync) {
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(16), threads, |warp| {
        let n = warp.active as usize;
        let sizes: Vec<Option<u64>> = (0..n)
            .map(|l| {
                let s = size_for(warp.base_tid + l as u64);
                a.supports_size(s).then_some(s)
            })
            .collect();
        let mut ptrs = vec![DevicePtr::NULL; n];
        a.warp_malloc(warp, &sizes, &mut ptrs);
        for (l, p) in ptrs.iter().enumerate() {
            if !p.is_null() {
                a.memory().write_stamp(*p, warp.base_tid + l as u64);
            }
        }
        for (l, p) in ptrs.iter().enumerate() {
            if !p.is_null() && a.memory().read_stamp(*p) != warp.base_tid + l as u64 {
                corrupt.fetch_add(1, Ordering::Relaxed);
            }
        }
        a.warp_free(warp, &ptrs);
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0, "{}: overlapping allocations", a.name());
    if let Err(e) = a.check_invariants() {
        panic!("{}: invariant violation after storm:\n{e}", a.name());
    }
}

#[test]
fn no_overlap_uniform_16b() {
    for a in roster() {
        if !a.is_managing() {
            continue; // RegEff-AW double-allocates by design
        }
        storm(a.as_ref(), 4096, |_| 16);
    }
}

#[test]
fn no_overlap_mixed_sizes() {
    for a in roster() {
        if !a.is_managing() {
            continue;
        }
        storm(a.as_ref(), 4096, |tid| 16 << (tid % 9));
    }
}

#[test]
fn repeated_rounds_with_reset() {
    for a in roster() {
        if !a.is_managing() {
            continue;
        }
        for _ in 0..3 {
            storm(a.as_ref(), 2048, |tid| 16 << (tid % 5));
            a.reset();
        }
    }
}

#[test]
fn exhaustion_returns_null_cleanly() {
    // A deliberately tiny heap; over-subscription must produce NULLs,
    // never panics or overlaps.
    let small: Vec<Arc<dyn DeviceAllocator>> = {
        let mut v: Vec<Arc<dyn DeviceAllocator>> = vec![Arc::new(Gallatin::new(GallatinConfig {
            heap_bytes: 32 << 20,
            ..Default::default()
        }))];
        v.extend(all_baselines(32 << 20));
        v
    };
    for a in small {
        if !a.is_managing() {
            continue;
        }
        let failed = AtomicU64::new(0);
        let got = AtomicU64::new(0);
        launch_warps(DeviceConfig::with_sms(16), 16 * 1024, |warp| {
            let n = warp.active as usize;
            let sizes = vec![Some(4096u64); n];
            let mut ptrs = vec![DevicePtr::NULL; n];
            if !a.supports_size(4096) {
                return;
            }
            a.warp_malloc(warp, &sizes, &mut ptrs);
            for p in &ptrs {
                if p.is_null() {
                    failed.fetch_add(1, Ordering::Relaxed);
                } else {
                    got.fetch_add(1, Ordering::Relaxed);
                }
            }
            // Keep the memory: drive toward exhaustion.
        });
        // 16K × 4 KB = 64 MB demand against ≤32 MB heap: failures must
        // occur for every managing allocator.
        if a.supports_size(4096) {
            assert!(
                failed.load(Ordering::Relaxed) > 0,
                "{}: expected exhaustion failures",
                a.name()
            );
            assert!(got.load(Ordering::Relaxed) > 0, "{}: nothing allocated", a.name());
        }
        a.reset();
        if let Err(e) = a.check_invariants() {
            panic!("{}: invariant violation after exhaustion + reset:\n{e}", a.name());
        }
    }
}

#[test]
fn free_makes_memory_reusable() {
    for a in roster() {
        if !a.is_managing() {
            continue;
        }
        // Two full rounds WITHOUT reset: the second round can only
        // succeed if frees actually recycle (the paper's full-reuse
        // criterion; P-series Ouroboros satisfies it for same-size).
        for round in 0..2 {
            let failed = AtomicU64::new(0);
            launch_warps(DeviceConfig::with_sms(16), 2048, |warp| {
                let n = warp.active as usize;
                let sizes = vec![Some(256u64); n];
                let mut ptrs = vec![DevicePtr::NULL; n];
                a.warp_malloc(warp, &sizes, &mut ptrs);
                for p in &ptrs {
                    if p.is_null() {
                        failed.fetch_add(1, Ordering::Relaxed);
                    }
                }
                a.warp_free(warp, &ptrs);
            });
            assert_eq!(
                failed.load(Ordering::Relaxed),
                0,
                "{}: failures in round {round}",
                a.name()
            );
        }
        if let Err(e) = a.check_invariants() {
            panic!("{}: invariant violation after reuse rounds:\n{e}", a.name());
        }
        a.reset();
    }
}

#[test]
fn stats_reserved_returns_to_zero() {
    for a in roster() {
        if !a.is_managing() {
            continue;
        }
        storm(a.as_ref(), 1024, |tid| 16 << (tid % 4));
        assert_eq!(
            a.stats().reserved_bytes,
            0,
            "{}: reserved bytes leaked after full free",
            a.name()
        );
    }
}
