//! Property-based model test: an arbitrary sequence of malloc/free
//! operations against Gallatin must maintain the allocator contract —
//! every live allocation occupies a range disjoint from all other live
//! allocations and inside the heap, and frees return capacity.

use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{DeviceAllocator, DevicePtr, WarpCtx};
use proptest::prelude::*;
use std::collections::BTreeMap;

#[derive(Clone, Debug)]
enum Op {
    /// Allocate `size` bytes (index into a size menu).
    Malloc(u8),
    /// Free the i-th oldest live allocation (modulo live count).
    Free(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u8..13).prop_map(Op::Malloc), (0u16..1024).prop_map(Op::Free),]
}

/// The size menu spans all three pipelines of the small-test geometry
/// (64 KB segments, 16–256 B slices, 1–16 KB blocks, multi-segment),
/// plus the zero-size edge case (a valid minimum-slice request per the
/// `DeviceAllocator::malloc` contract).
fn menu(idx: u8) -> u64 {
    match idx {
        0 => 0,
        1 => 1,
        2 => 16,
        3 => 17,
        4 => 100,
        5 => 256,      // largest slice
        6 => 257,      // smallest block class
        7 => 1024,     // one block
        8 => 5000,     // mid block
        9 => 16 << 10, // largest block / rounding edge
        10 => (16 << 10) + 1,
        11 => 64 << 10,  // exactly one segment
        12 => 100 << 10, // two segments
        _ => unreachable!(),
    }
}

/// Internal footprint upper bound for overlap checking: what the
/// allocator may reserve for a request (its size-class rounding).
fn rounded(size: u64, geo: &gallatin::Geometry) -> u64 {
    let size = size.max(1); // zero-size requests take a minimum slice
    if let Some(c) = geo.slice_class(size) {
        geo.slice_size(c)
    } else if let Some(c) = geo.block_class(size) {
        geo.block_size(c)
    } else {
        geo.segments_for(size) * geo.segment_bytes
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn live_allocations_stay_disjoint(ops in prop::collection::vec(op_strategy(), 1..300)) {
        let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
        let geo = *g.geometry();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        let lane = warp.lane(0);

        // Live set: start offset -> (rounded length, requested size).
        let mut live: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
        let mut order: Vec<u64> = Vec::new();

        for op in ops {
            match op {
                Op::Malloc(i) => {
                    let size = menu(i);
                    let p = g.malloc(&lane, size);
                    if p.is_null() {
                        continue; // exhaustion is legal
                    }
                    let len = rounded(size, &geo);
                    prop_assert!(p.0 + size <= g.heap_bytes(), "out of heap");
                    // Disjoint from every live range (by internal
                    // footprint, which is what the allocator reserves).
                    if let Some((&prev_start, &(prev_len, _))) = live.range(..=p.0).next_back() {
                        prop_assert!(prev_start + prev_len <= p.0,
                            "overlaps predecessor: new [{}, +{len}) vs [{prev_start}, +{prev_len})", p.0);
                    }
                    if let Some((&next_start, _)) = live.range(p.0 + 1..).next() {
                        prop_assert!(p.0 + len <= next_start,
                            "overlaps successor: new [{}, +{len}) vs {next_start}", p.0);
                    }
                    live.insert(p.0, (len, size));
                    order.push(p.0);
                }
                Op::Free(i) => {
                    if order.is_empty() {
                        continue;
                    }
                    let idx = (i as usize) % order.len();
                    let off = order.swap_remove(idx);
                    live.remove(&off);
                    g.free(&lane, DevicePtr(off));
                }
            }
        }

        // Drain and verify the allocator recovers everything except the
        // "wavefront": blocks cached in the per-SM buffers pin at most
        // one segment per slice class even when every payload is freed —
        // the utilization cost the paper attributes to the block buffer
        // (§6.11). All pinned segments sit at the front of the heap.
        for off in order {
            g.free(&lane, DevicePtr(off));
        }
        prop_assert_eq!(g.stats().reserved_bytes, 0);
        g.check_invariants().map_err(TestCaseError::fail)?;
        let wavefront = geo.num_classes as u64 * geo.segment_bytes;
        let p = g.malloc(&lane, g.heap_bytes() - wavefront);
        prop_assert!(!p.is_null(), "heap minus wavefront must be allocatable after drain");
        g.free(&lane, p);
        // After a reset even the wavefront is released.
        g.reset();
        let p = g.malloc(&lane, g.heap_bytes());
        prop_assert!(!p.is_null(), "whole heap must be allocatable after reset");
        g.free(&lane, p);
        g.check_invariants().map_err(TestCaseError::fail)?;
    }

    #[test]
    fn payloads_never_alias(ops in prop::collection::vec((0u8..13, any::<bool>()), 1..200)) {
        // Write a unique stamp into every live allocation after each
        // operation batch; a clobbered stamp means aliasing.
        let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        let lane = warp.lane(0);
        let mut live: Vec<(DevicePtr, u64)> = Vec::new();
        let mut stamp = 0u64;

        for (i, do_free) in ops {
            if do_free && !live.is_empty() {
                let (p, _) = live.swap_remove((i as usize) % live.len());
                g.free(&lane, p);
            } else {
                let p = g.malloc(&lane, menu(i).max(8));
                if !p.is_null() {
                    stamp += 1;
                    g.memory().write_stamp(p, stamp);
                    live.push((p, stamp));
                }
            }
            for &(p, s) in &live {
                prop_assert_eq!(g.memory().read_stamp(p), s, "stamp clobbered");
            }
        }
        for (p, _) in live {
            g.free(&lane, p);
        }
        g.check_invariants().map_err(TestCaseError::fail)?;
    }
}

/// The recorded proptest regression (`ops = [Malloc(0)]`) promoted to an
/// explicit case, as the vendored proptest shim does not replay
/// `*.proptest-regressions` files: a zero-size allocation returns a
/// valid, unique, freeable pointer and leaves the heap consistent.
#[test]
fn regression_single_zero_size_malloc() {
    let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let lane = warp.lane(0);
    let p = g.malloc(&lane, 0);
    let q = g.malloc(&lane, 0);
    assert!(!p.is_null() && !q.is_null(), "malloc(0) must succeed");
    assert_ne!(p.0, q.0, "zero-size allocations must be unique");
    g.free(&lane, p);
    g.free(&lane, q);
    assert_eq!(g.stats().reserved_bytes, 0);
    g.check_invariants().unwrap();
}
