//! Integration tests for Gallatin's three pipelines interacting: slices,
//! whole blocks, and multi-segment allocations sharing one heap, plus
//! segment reclamation and cross-class reuse.

use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{launch, launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, WarpCtx};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

fn host_lane_call<R>(f: impl FnOnce(&gpu_sim::LaneCtx) -> R) -> R {
    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    f(&warp.lane(0))
}

#[test]
fn all_three_pipelines_share_one_heap() {
    // Default geometry: 16 MB segments, slices 16..4096, blocks 64K..16M.
    let g = Gallatin::new(GallatinConfig { heap_bytes: 256 << 20, ..Default::default() });
    host_lane_call(|l| {
        let slice = g.malloc(l, 100); // slice pipeline (rounds to 128)
        let block = g.malloc(l, 100 << 10); // block pipeline (128 KB block)
        let large = g.malloc(l, 40 << 20); // 3 segments from the back
        assert!(!slice.is_null() && !block.is_null() && !large.is_null());

        // Small from the front, large from the back of the heap.
        assert!(slice.0 < 32 << 20);
        assert!(large.0 >= (256 - 48) << 20);

        // All three payloads are live and disjoint.
        g.memory().write_stamp(slice, 1);
        g.memory().write_stamp(block, 2);
        g.memory().write_stamp(large, 3);
        assert_eq!(g.memory().read_stamp(slice), 1);
        assert_eq!(g.memory().read_stamp(block), 2);
        assert_eq!(g.memory().read_stamp(large), 3);

        g.free(l, slice);
        g.free(l, block);
        g.free(l, large);
        assert_eq!(g.stats().reserved_bytes, 0);
    });
    g.check_invariants().expect("invariants violated after mixed-pipeline round");
}

#[test]
fn segments_recycle_across_classes() {
    // Small heap: 4 segments. Fill with one class, free, then fill with
    // another class — the same segments must be reformatted.
    let g = Gallatin::new(GallatinConfig::small_test(256 << 10));
    host_lane_call(|l| {
        let mut ptrs = Vec::new();
        loop {
            let p = g.malloc(l, 16);
            if p.is_null() {
                break;
            }
            ptrs.push(p);
        }
        assert!(!ptrs.is_empty());
        for p in ptrs.drain(..) {
            g.free(l, p);
        }
        assert_eq!(g.free_segments(), 4, "all segments reclaimed");
        // Now the other extreme: whole-heap allocation.
        let big = g.malloc(l, 256 << 10);
        assert!(!big.is_null(), "reformat-to-large failed");
        g.free(l, big);
    });
    g.check_invariants().expect("invariants violated after cross-class recycling");
}

#[test]
fn concurrent_mixed_pipeline_storm() {
    let g = Gallatin::new(GallatinConfig { heap_bytes: 256 << 20, ..Default::default() });
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(16), 2048, |warp| {
        for lane in warp.lanes() {
            let l = warp.lane(lane);
            let tid = l.global_tid();
            let size = match tid % 7 {
                0..=3 => 16 << (tid % 9), // slices
                4 | 5 => 64 << 10,        // whole blocks
                _ => 17 << 20,            // 2 segments
            };
            let p = g.malloc(&l, size);
            if p.is_null() {
                continue; // transient exhaustion on the large path is ok
            }
            g.memory().write_stamp(p, tid ^ 0x5eed);
            if g.memory().read_stamp(p) != tid ^ 0x5eed {
                corrupt.fetch_add(1, Ordering::Relaxed);
            }
            g.free(&l, p);
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0);
    assert_eq!(g.stats().reserved_bytes, 0);
    g.check_invariants().expect("invariants violated after mixed-pipeline storm");
}

#[test]
fn slice_blocks_fully_recycle_under_churn() {
    // Repeatedly allocate and free entire blocks' worth of slices; the
    // allocator must sustain this indefinitely within a small heap.
    let g = Gallatin::new(GallatinConfig::small_test(128 << 10)); // 2 segments
    let spb = g.geometry().slices_per_block;
    for _round in 0..50 {
        let ptrs = Mutex::new(Vec::new());
        let failed = AtomicU64::new(0);
        launch(DeviceConfig::with_sms(4), spb, |l| {
            let p = g.malloc(l, 16);
            if p.is_null() {
                failed.fetch_add(1, Ordering::Relaxed);
            } else {
                ptrs.lock().unwrap().push(p.0);
            }
        });
        assert_eq!(failed.load(Ordering::Relaxed), 0, "churn exhausted the heap");
        let v = ptrs.into_inner().unwrap();
        launch(DeviceConfig::with_sms(4), v.len() as u64, |l| {
            g.free(l, DevicePtr(v[l.global_tid() as usize]));
        });
    }
    assert_eq!(g.stats().reserved_bytes, 0);
    g.check_invariants().expect("invariants violated after slice churn");
}

#[test]
fn interleaved_large_and_small_never_overlap() {
    let g = Gallatin::new(GallatinConfig { heap_bytes: 128 << 20, ..Default::default() });
    // One task churns multi-segment allocations; others churn slices.
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(8), 512, |warp| {
        for lane in warp.lanes() {
            let l = warp.lane(lane);
            let tid = l.global_tid();
            if tid % 64 == 0 {
                let p = g.malloc(&l, 20 << 20); // 2 segments
                if !p.is_null() {
                    g.memory().write_stamp(p, tid);
                    g.memory().write_stamp(p.offset((20 << 20) - 8), tid);
                    if g.memory().read_stamp(p) != tid {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    g.free(&l, p);
                }
            } else {
                for _ in 0..20 {
                    let p = g.malloc(&l, 64);
                    if !p.is_null() {
                        g.memory().write_stamp(p, tid);
                        if g.memory().read_stamp(p) != tid {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        g.free(&l, p);
                    }
                }
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0);
    g.check_invariants().expect("invariants violated after large/small interleave");
}

#[test]
fn geometry_inverse_mapping_on_live_allocations() {
    // Every returned pointer must map back to the segment/block/slice it
    // came from — the invariant `free` relies on (paper §5).
    let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
    let geo = *g.geometry();
    host_lane_call(|l| {
        for size in [16u64, 32, 64, 128, 256] {
            let p = g.malloc(l, size);
            assert!(!p.is_null());
            let class = geo.slice_class(size).unwrap();
            let seg = geo.segment_of(p.0);
            let block = geo.block_of(p.0, class);
            let slice = geo.slice_of(p.0, class);
            assert_eq!(geo.offset_of(seg, block, slice, class), p.0);
            assert_eq!(p.0 % geo.slice_size(class), 0, "slice alignment");
            g.free(l, p);
        }
    });
    g.check_invariants().expect("invariants violated after inverse-mapping walk");
}
