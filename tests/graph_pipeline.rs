//! Integration: the dynamic graph workload over the whole allocator
//! roster — the end-to-end pipeline the paper's §6.12 benchmark runs.

use allocators::{all_baselines, Ouroboros, OuroborosKind, QueueKind};
use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{launch, DeviceAllocator, DeviceConfig};
use graph::{uniform_edges, zipf_edges, DynamicGraph};
use std::sync::Arc;

const HEAP: u64 = 64 << 20;

fn roster() -> Vec<Arc<dyn DeviceAllocator>> {
    let mut v: Vec<Arc<dyn DeviceAllocator>> =
        vec![Arc::new(Gallatin::new(GallatinConfig::dense(HEAP)))];
    v.extend(all_baselines(HEAP));
    v
}

#[test]
fn graph_builds_identically_on_every_allocator() {
    let edges = uniform_edges(256, 20_000, 99);
    let mut reference: Option<Vec<u64>> = None;
    for a in roster() {
        if !a.is_managing() {
            continue;
        }
        let dyn_a: &dyn DeviceAllocator = a.as_ref();
        let g = DynamicGraph::new(256, dyn_a);
        launch(DeviceConfig::with_sms(8), edges.len() as u64, |l| {
            let (s, d) = edges[l.global_tid() as usize];
            g.insert_edge(l, s, d);
        });
        assert_eq!(g.failed_updates(), 0, "{} failed updates", a.name());
        assert_eq!(g.num_edges(), 20_000, "{}", a.name());
        // Degree sequence must be identical regardless of allocator.
        let degrees: Vec<u64> = (0..256).map(|v| g.degree(v) as u64).collect();
        match &reference {
            None => reference = Some(degrees),
            Some(r) => assert_eq!(&degrees, r, "{} degree sequence differs", a.name()),
        }
        launch(DeviceConfig::with_sms(8), 1, |l| g.destroy(l));
        assert_eq!(a.stats().reserved_bytes, 0, "{} leaked", a.name());
        if let Err(e) = a.check_invariants() {
            panic!("{}: invariant violation after graph build:\n{e}", a.name());
        }
    }
}

#[test]
fn insert_then_delete_restores_empty_graph() {
    for a in roster() {
        if !a.is_managing() {
            continue;
        }
        let dyn_a: &dyn DeviceAllocator = a.as_ref();
        let g = DynamicGraph::new(128, dyn_a);
        let edges = zipf_edges(128, 5_000, 0.8, 3);
        launch(DeviceConfig::with_sms(8), edges.len() as u64, |l| {
            let (s, d) = edges[l.global_tid() as usize];
            g.insert_edge(l, s, d);
        });
        launch(DeviceConfig::with_sms(8), edges.len() as u64, |l| {
            let (s, d) = edges[l.global_tid() as usize];
            assert!(g.delete_edge(l, s, d), "{}: edge missing on delete", a.name());
        });
        assert_eq!(g.num_edges(), 0, "{}", a.name());
        launch(DeviceConfig::with_sms(8), 1, |l| g.destroy(l));
        if let Err(e) = a.check_invariants() {
            panic!("{}: invariant violation after insert/delete cycle:\n{e}", a.name());
        }
    }
}

#[test]
fn skewed_expansion_discriminates_reserve_limited_allocators() {
    // The paper's headline failure mode: Gallatin absorbs hub growth,
    // a small-reserve Ouroboros does not.
    let gallatin = Gallatin::new(GallatinConfig::dense(HEAP));
    let ouroboros =
        Ouroboros::with_reserve(HEAP, OuroborosKind::Page, QueueKind::VirtArray, 1 << 20);

    let run = |a: &dyn DeviceAllocator| -> u64 {
        let g = DynamicGraph::new(512, a);
        for round in 0..6 {
            let batch = zipf_edges(512, 50_000, 1.0, 17 + round);
            launch(DeviceConfig::with_sms(8), batch.len() as u64, |l| {
                let (s, d) = batch[l.global_tid() as usize];
                g.insert_edge(l, s, d);
            });
        }
        let fails = g.failed_updates();
        launch(DeviceConfig::with_sms(8), 1, |l| g.destroy(l));
        fails
    };

    assert_eq!(run(&gallatin), 0, "Gallatin must absorb hub growth");
    assert!(run(&ouroboros) > 0, "reserve-limited allocator must eventually fail");
}

#[test]
fn graph_survives_concurrent_mixed_insert_delete() {
    let a = Gallatin::new(GallatinConfig::dense(HEAP));
    let dyn_a: &dyn DeviceAllocator = &a;
    let g = DynamicGraph::new(64, dyn_a);
    // Interleave inserts and deletes on the same vertices.
    launch(DeviceConfig::with_sms(8), 10_000, |l| {
        let tid = l.global_tid();
        let v = (tid % 64) as u32;
        g.insert_edge(l, v, tid);
        if tid % 3 == 0 {
            g.delete_edge(l, v, tid);
        }
    });
    let expect: u64 = (0..10_000u64).filter(|t| t % 3 != 0).count() as u64;
    assert_eq!(g.num_edges(), expect);
    launch(DeviceConfig::with_sms(8), 1, |l| g.destroy(l));
    assert_eq!(a.stats().reserved_bytes, 0);
    a.check_invariants().expect("invariants violated after mixed insert/delete");
}
