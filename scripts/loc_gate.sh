#!/usr/bin/env bash
# LOC gate: no source file under crates/**/src/ may grow past MAX_LINES.
#
# The PR that decomposed the monolithic allocator (gallatin.rs peaked at
# 1,633 lines) installed this so the next monolith gets caught in review
# instead of accreting. Split a failing file along its tier/module seams
# rather than raising the limit.
set -euo pipefail

MAX_LINES=${MAX_LINES:-900}
cd "$(dirname "$0")/.."

status=0
while IFS= read -r f; do
    lines=$(wc -l <"$f")
    if [ "$lines" -gt "$MAX_LINES" ]; then
        echo "LOC gate: $f has $lines lines (limit $MAX_LINES) — split it along module seams" >&2
        status=1
    fi
done < <(find crates -path '*/src/*' -name '*.rs' | sort)

if [ "$status" -eq 0 ]; then
    echo "LOC gate: all crates/**/src/*.rs files within $MAX_LINES lines"
fi
exit "$status"
