#!/usr/bin/env bash
# LOC gate: no source file under crates/**/src/ may grow past MAX_LINES.
#
# The PR that decomposed the monolithic allocator (gallatin.rs peaked at
# 1,633 lines) installed this so the next monolith gets caught in review
# instead of accreting. Split a failing file along its tier/module seams
# rather than raising the limit.
set -euo pipefail

MAX_LINES=${MAX_LINES:-900}
cd "$(dirname "$0")/.."

# Generated files are exempt: their size tracks their inputs, not code
# health, and splitting them is meaningless. Patterns are matched with
# `case` globs against the repo-relative path. (The perf-history
# artifacts under results/history/ are *.jsonl/*.md/*.csv and thus never
# scanned, but list the dir anyway so a future format change can't sneak
# generated output into the gate.)
EXEMPT_PATTERNS=(
    "results/history/*"
)

is_exempt() {
    local f="$1" pat
    for pat in "${EXEMPT_PATTERNS[@]}"; do
        # shellcheck disable=SC2254
        case "$f" in
        $pat) return 0 ;;
        esac
    done
    return 1
}

scan() {
    find crates -path '*/src/*' -name '*.rs' | sort
}

# Recursion self-test: the scan must reach files nested below a crate's
# src/ root (src/<module>/<file>.rs). If a future edit to the find
# expression silently stops recursing, deep modules like tiers/ and
# perf/ would drop out of the gate without anyone noticing — fail loudly
# here instead.
for probe in \
    crates/core/src/tiers/segment.rs \
    crates/bench/src/perf/gate.rs \
    crates/bench/src/experiments/ablation.rs; do
    if ! scan | grep -qx "$probe"; then
        echo "LOC gate: self-test failed — scan does not reach $probe (recursion broken?)" >&2
        exit 1
    fi
done

status=0
scanned=0
while IFS= read -r f; do
    if is_exempt "$f"; then
        continue
    fi
    scanned=$((scanned + 1))
    lines=$(wc -l <"$f")
    if [ "$lines" -gt "$MAX_LINES" ]; then
        echo "LOC gate: $f has $lines lines (limit $MAX_LINES) — split it along module seams" >&2
        status=1
    fi
done < <(scan)

if [ "$status" -eq 0 ]; then
    echo "LOC gate: $scanned crates/**/src/*.rs files within $MAX_LINES lines"
fi
exit "$status"
