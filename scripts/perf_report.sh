#!/usr/bin/env bash
# Render the gallatin-perf-v1 trend report (PERF_TREND.md +
# perf_trend.csv) for a history directory and, when running under
# GitHub Actions, publish the markdown into the job summary so the
# wall-clock trajectory is readable without downloading artifacts.
#
# Usage: scripts/perf_report.sh [history-dir]   (default results/history)
set -euo pipefail

HISTORY_DIR="${1:-results/history}"

cargo run --release -q -p bench --bin repro -- perf-report --history "$HISTORY_DIR"

if [ ! -f "$HISTORY_DIR/PERF_TREND.md" ]; then
    echo "error: perf-report produced no $HISTORY_DIR/PERF_TREND.md" >&2
    exit 1
fi

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    cat "$HISTORY_DIR/PERF_TREND.md" >> "$GITHUB_STEP_SUMMARY"
    echo "published trend report to the job summary"
fi
