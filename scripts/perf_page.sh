#!/usr/bin/env bash
# Assemble the committed performance page (PERF_PAGE.md) from the
# gallatin-perf-v1 history: regenerate the trend report for the history
# directory, then prepend provenance (run count, latest sha/stamp/host)
# so the page reads standalone at the repo root. Under GitHub Actions
# the page is also published into the job summary, next to
# scripts/perf_report.sh's trend output.
#
# Usage: scripts/perf_page.sh [history-dir] [out-file]
#        (defaults: results/history PERF_PAGE.md)
set -euo pipefail

HISTORY_DIR="${1:-results/history}"
OUT="${2:-PERF_PAGE.md}"
JSONL="$HISTORY_DIR/perf_history.jsonl"

if [ ! -f "$JSONL" ]; then
    echo "error: no $JSONL — append a run with 'repro perf' first" >&2
    exit 1
fi

cargo run --release -q -p bench --bin repro -- perf-report --history "$HISTORY_DIR"

RUNS=$(wc -l <"$JSONL" | tr -d ' ')
LATEST=$(tail -1 "$JSONL")
field() { printf '%s' "$LATEST" | sed -n "s/.*\"$1\":\"\([^\"]*\)\".*/\1/p"; }

{
    echo "# Gallatin performance page"
    echo
    echo "Committed snapshot of the perf-trend lane (E21; see TESTING.md"
    echo '"Perf lane"). Regenerate with `scripts/perf_page.sh` after'
    echo 'appending a run with `repro perf`.'
    echo
    echo "- **history**: \`$JSONL\` ($RUNS runs)"
    echo "- **latest run**: sha \`$(field sha)\`, stamp \`$(field stamp)\`, host \`$(field host)\`"
    echo "- **machine-readable**: \`$HISTORY_DIR/perf_trend.csv\`"
    echo
    cat "$HISTORY_DIR/PERF_TREND.md"
} >"$OUT"

echo "wrote $OUT ($RUNS history runs)"

if [ -n "${GITHUB_STEP_SUMMARY:-}" ]; then
    cat "$OUT" >>"$GITHUB_STEP_SUMMARY"
    echo "published perf page to the job summary"
fi
