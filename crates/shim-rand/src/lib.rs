//! Offline stand-in for the `rand` crate (see the workspace
//! `Cargo.toml` for why external dependencies are vendored as shims).
//!
//! Mirrors the rand 0.8 surface the workspace uses: `Rng` (`gen`,
//! `gen_range`, `gen_bool`), `SeedableRng::seed_from_u64`,
//! `rngs::StdRng`, and `distributions::Distribution`. The generator is
//! SplitMix64 — not the real StdRng stream, which only matters for
//! byte-identical reproduction of sequences generated elsewhere;
//! everything in-repo just needs a seeded, well-mixed stream.

/// Core RNG interface. Generic methods stay callable through
/// `R: Rng + ?Sized` receivers (as `Distribution::sample` requires)
/// because dispatch runs through the [`Generable`] / [`SampleRange`]
/// helper traits rather than `Self`.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    fn gen<T: Generable>(&mut self) -> T {
        T::generate(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_single(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} outside [0, 1]");
        self.gen::<f64>() < p
    }
}

/// Seeding interface; only the `seed_from_u64` entry point is used.
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

/// Types producible from a raw 64-bit stream (the shim's analogue of
/// sampling from rand's `Standard` distribution).
pub trait Generable {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Generable for u64 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Generable for u32 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Generable for u8 {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

impl Generable for bool {
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Generable for f64 {
    /// Uniform in [0, 1) with 53 random mantissa bits.
    fn generate<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Ranges usable with `gen_range`.
pub trait SampleRange<T> {
    fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! uniform_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for std::ops::Range<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "empty range in gen_range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift bounded sampling (Lemire); the tiny
                // modulo bias of `% span` would also be fine here, but
                // this is branch-free and unbiased enough for tests.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }

        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample_single<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "empty range in gen_range");
                let span = (end - start) as u64 + 1;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                start + hi as $t
            }
        }
    )*};
}

uniform_int_range!(u8, u16, u32, u64, usize);

pub mod rngs {
    use super::{Rng, SeedableRng};

    /// Seeded 64-bit generator (SplitMix64 under the hood).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

pub mod distributions {
    use super::Rng;

    /// Types that can be sampled with an external RNG.
    pub trait Distribution<T> {
        fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> T;
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: u64 = rng.gen_range(10..20);
            assert!((10..20).contains(&x));
            let y: u8 = rng.gen_range(0..4u8);
            assert!(y < 4);
        }
    }

    #[test]
    fn gen_bool_respects_probability() {
        let mut rng = StdRng::seed_from_u64(9);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.1)).count();
        assert!((500..2000).contains(&hits), "p=0.1 gave {hits}/10000");
        assert!(!(0..100).any(|_| rng.gen_bool(0.0)));
        assert!((0..100).all(|_| rng.gen_bool(1.0)));
    }

    #[test]
    fn f64_samples_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }
}
