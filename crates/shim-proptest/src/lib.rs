//! Offline stand-in for the `proptest` crate (see the workspace
//! `Cargo.toml` for why external dependencies are vendored as shims).
//!
//! Keeps the macro/trait surface the workspace's property tests use —
//! `proptest! { #![proptest_config(..)] #[test] fn f(x in strat) {..} }`,
//! `prop_oneof!`, `prop_assert!`, `prop_assert_eq!`, `Strategy`,
//! `prop::collection::vec`, `any::<T>()` — over a much simpler engine:
//! each test runs `cases` deterministically-seeded random cases (seed =
//! FNV-1a of the test name, per-case offset, overridable with
//! `PROPTEST_SEED`). There is no shrinking; a failure reports the seed
//! and case index so it can be replayed exactly.
//!
//! `*.proptest-regressions` files are NOT consulted: their entries are
//! RNG state hashes private to the real proptest engine. Recorded
//! regressions should instead be promoted to explicit #[test] cases
//! (as `tests/allocator_model.rs` does for `ops = [Malloc(0)]`).

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A source of random values; object-safe so `prop_oneof!` can mix
    /// differently-typed arms behind `BoxedStrategy`.
    pub trait Strategy {
        type Value;

        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            (**self).sample(rng)
        }
    }

    /// Always yields a clone of one value (`proptest::strategy::Just`).
    #[derive(Clone, Debug)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn sample(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.sample(rng))
        }
    }

    /// Uniform choice among boxed arms (`prop_oneof!` backing type).
    pub struct OneOf<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    pub fn one_of<T>(arms: Vec<BoxedStrategy<T>>) -> OneOf<T> {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        OneOf { arms }
    }

    impl<T> Strategy for OneOf<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.arms.len());
            self.arms[i].sample(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }

            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($(($($s:ident . $idx:tt),+);)*) => {$(
            impl<$($s: Strategy),+> Strategy for ($($s,)+) {
                type Value = ($($s::Value,)+);

                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    ($(self.$idx.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A.0);
        (A.0, B.1);
        (A.0, B.1, C.2);
        (A.0, B.1, C.2, D.3);
        (A.0, B.1, C.2, D.3, E.4);
        (A.0, B.1, C.2, D.3, E.4, F.5);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6);
        (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7);
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    pub struct VecStrategy<S> {
        element: S,
        len: std::ops::Range<usize>,
    }

    /// `prop::collection::vec(element, len_range)`.
    pub fn vec<S: Strategy>(element: S, len: std::ops::Range<usize>) -> VecStrategy<S> {
        assert!(!len.is_empty(), "empty length range");
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::{Generable, Rng};

    /// `any::<T>()` for types with a canonical full-domain strategy.
    pub struct Any<T> {
        _marker: std::marker::PhantomData<T>,
    }

    pub fn any<T: Generable>() -> Any<T> {
        Any { _marker: std::marker::PhantomData }
    }

    impl<T: Generable> Strategy for Any<T> {
        type Value = T;

        fn sample(&self, rng: &mut StdRng) -> T {
            rng.gen()
        }
    }
}

pub mod test_runner {
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Runner configuration (`ProptestConfig` in the prelude).
    #[derive(Clone, Debug)]
    pub struct Config {
        pub cases: u32,
    }

    impl Config {
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Clone, Debug, PartialEq, Eq)]
    pub enum TestCaseError {
        Fail(String),
        Reject(String),
    }

    impl TestCaseError {
        pub fn fail(msg: impl Into<String>) -> Self {
            TestCaseError::Fail(msg.into())
        }

        pub fn reject(msg: impl Into<String>) -> Self {
            TestCaseError::Reject(msg.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(m) => write!(f, "test case failed: {m}"),
                TestCaseError::Reject(m) => write!(f, "test case rejected: {m}"),
            }
        }
    }

    impl std::error::Error for TestCaseError {}

    fn fnv1a(name: &str) -> u64 {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for b in name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// Base seed for a named test: `PROPTEST_SEED` env override, else a
    /// stable hash of the test name (so runs are reproducible and
    /// different tests see different streams).
    pub fn base_seed(test_name: &str) -> u64 {
        match std::env::var("PROPTEST_SEED") {
            Ok(s) => s
                .trim()
                .parse::<u64>()
                .unwrap_or_else(|_| panic!("PROPTEST_SEED must be a u64, got {s:?}")),
            Err(_) => fnv1a(test_name),
        }
    }

    /// Drive `case` for `config.cases` deterministic cases. A returned
    /// `Fail` (or a panic inside `case`) aborts with the replay seed.
    pub fn run(
        config: &Config,
        test_name: &str,
        mut case: impl FnMut(&mut StdRng) -> Result<(), TestCaseError>,
    ) {
        let base = base_seed(test_name);
        for i in 0..config.cases as u64 {
            let seed = base.wrapping_add(i);
            let mut rng = StdRng::seed_from_u64(seed);
            match case(&mut rng) {
                Ok(()) => {}
                Err(TestCaseError::Reject(_)) => {}
                Err(TestCaseError::Fail(msg)) => panic!(
                    "proptest case failed: {msg}\n  \
                     (replay: PROPTEST_SEED={seed} with a single case, test {test_name})"
                ),
            }
        }
    }
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};
    // `prop::collection::vec(..)` paths resolve through this alias.
    pub use crate as prop;
}

#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests! { ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    (($cfg:expr);) => {};
    (($cfg:expr);
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat_param in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let config = $cfg;
            $crate::test_runner::run(&config, stringify!($name), |rng| {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), rng);)+
                $body
                Ok(())
            });
        }
        $crate::__proptest_tests! { ($cfg); $($rest)* }
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::one_of(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "assertion failed: {:?} != {:?}", l, r);
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        $crate::prop_assert!(l == r, "{}: {:?} != {:?}", format!($($fmt)+), l, r);
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Op {
        A(u8),
        B(u16),
    }

    fn op_strategy() -> impl Strategy<Value = Op> {
        prop_oneof![(0u8..10).prop_map(Op::A), (0u16..512).prop_map(Op::B)]
    }

    fn fallible(ok: bool) -> Result<(), TestCaseError> {
        prop_assert!(ok, "fallible got false");
        Ok(())
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn vec_lengths_in_range(ops in prop::collection::vec(op_strategy(), 1..50)) {
            prop_assert!(!ops.is_empty() && ops.len() < 50);
            for op in &ops {
                match op {
                    Op::A(x) => prop_assert!(*x < 10),
                    Op::B(x) => prop_assert!(*x < 512),
                }
            }
        }

        #[test]
        fn tuples_and_any(pairs in prop::collection::vec((0u8..12, any::<bool>()), 1..30)) {
            for (x, _b) in pairs {
                prop_assert!(x < 12, "x={} out of range", x);
            }
        }

        #[test]
        fn question_mark_propagates(x in 0u64..100, y in 0u64..100) {
            fallible(x < 100)?;
            prop_assert_eq!(x.min(99), x);
            prop_assert_eq!(y.min(99), y, "y was {}", y);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        use crate::strategy::Strategy;
        use rand::{rngs::StdRng, SeedableRng};
        let strat = crate::collection::vec(op_strategy(), 1..50);
        let a = strat.sample(&mut StdRng::seed_from_u64(1234));
        let b = strat.sample(&mut StdRng::seed_from_u64(1234));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "proptest case failed")]
    fn failing_property_panics_with_seed() {
        crate::test_runner::run(
            &ProptestConfig::with_cases(4),
            "failing_property_panics_with_seed",
            |_rng| Err(TestCaseError::fail("forced")),
        );
    }
}
