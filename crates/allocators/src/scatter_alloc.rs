//! ScatterAlloc (Steinberger et al.): hashed scattering over superblock
//! pages.
//!
//! The heap is split into fixed superblocks, each subdivided into fixed
//! pages. An allocation rounds to a power-of-two chunk size, hashes
//! `(warp, size)` to a superblock and then to a page inside it,
//! dedicates that page to its chunk size on first touch, and claims a
//! chunk with an atomic bitfield OR; collisions probe sibling pages of
//! the superblock, then re-hash to another superblock. Scattering trades
//! fragmentation for low contention — the structural reason ScatterAlloc
//! wins the paper's mid-range 512-byte scaling window and loses
//! utilization elsewhere. A per-superblock fill counter lets walkers
//! skip saturated superblocks without touching their pages.
//!
//! Allocations larger than a page are not possible (the paper notes the
//! real limit is the superblock; our page is the practical unit and is
//! sized to cover the benchmark's 8192-byte requests). Pages stay
//! dedicated to their first chunk size for the allocator's lifetime,
//! reproducing ScatterAlloc's known utilization decay on shifting size
//! mixes.

use crate::util::align_up;
use gpu_sim::{AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Page size: the largest servable allocation.
const PAGE_SIZE: u64 = 16 << 10;
/// Smallest chunk (same as the benchmark's smallest request).
const MIN_CHUNK: u64 = 16;
/// Bitmap words per page (one bit per MIN_CHUNK-sized slot).
const BITMAP_WORDS: usize = (PAGE_SIZE / MIN_CHUNK / 64) as usize;
/// Pages per superblock (superblock = 128 × 16 KB = 2 MiB).
const PAGES_PER_SB: u64 = 128;
/// Page probes within a superblock before re-hashing.
const SB_PAGE_PROBES: u64 = 16;
/// Superblocks probed before giving up.
const MAX_SB_PROBES: u64 = 64;

struct PageMeta {
    /// Chunk size the page is dedicated to; 0 = virgin.
    chunk_size: AtomicU32,
    /// Chunks currently allocated from this page.
    count: AtomicU32,
    /// One bit per chunk.
    bitmap: [AtomicU64; BITMAP_WORDS],
}

impl PageMeta {
    fn new() -> Self {
        PageMeta {
            chunk_size: AtomicU32::new(0),
            count: AtomicU32::new(0),
            bitmap: std::array::from_fn(|_| AtomicU64::new(0)),
        }
    }

    fn reset(&self) {
        self.chunk_size.store(0, Ordering::Relaxed);
        self.count.store(0, Ordering::Relaxed);
        for w in &self.bitmap {
            w.store(0, Ordering::Relaxed);
        }
    }
}

/// The ScatterAlloc allocator.
pub struct ScatterAlloc {
    mem: DeviceMemory,
    pages: Box<[PageMeta]>,
    /// Chunks currently allocated per superblock — a cheap saturation
    /// hint so probes skip full superblocks.
    sb_fill: Box<[AtomicU64]>,
    reserved: AtomicU64,
    metrics: Metrics,
}

#[inline]
fn splitmix(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

impl ScatterAlloc {
    /// Build an instance over a fresh arena (rounded up to whole pages).
    pub fn new(heap_bytes: u64) -> Self {
        let heap_bytes = align_up(heap_bytes, PAGE_SIZE);
        assert!(heap_bytes >= PAGE_SIZE, "heap smaller than one page");
        let num_pages = (heap_bytes / PAGE_SIZE) as usize;
        let num_sbs = (num_pages as u64).div_ceil(PAGES_PER_SB) as usize;
        ScatterAlloc {
            mem: DeviceMemory::new(heap_bytes as usize),
            pages: (0..num_pages).map(|_| PageMeta::new()).collect(),
            sb_fill: (0..num_sbs).map(|_| AtomicU64::new(0)).collect(),
            reserved: AtomicU64::new(0),
            metrics: Metrics::new(),
        }
    }

    /// Pages in superblock `sb` (the last superblock may be partial).
    #[inline]
    fn sb_pages(&self, sb: usize) -> u64 {
        let start = sb as u64 * PAGES_PER_SB;
        (self.pages.len() as u64 - start).min(PAGES_PER_SB)
    }

    /// Claim one chunk in `page` (already dedicated to `chunk`), scanning
    /// the bitfield from a hashed start position.
    fn claim_chunk(&self, page: usize, chunk: u64, hash: u64) -> Option<u64> {
        let meta = &self.pages[page];
        let chunks_per_page = (PAGE_SIZE / chunk) as usize;
        let words = chunks_per_page.div_ceil(64);
        let start_word = (hash as usize) % words;
        for i in 0..words {
            let w = (start_word + i) % words;
            // Bits valid in this word (last word may be partial).
            let valid = if (w + 1) * 64 <= chunks_per_page {
                u64::MAX
            } else {
                (1u64 << (chunks_per_page - w * 64)) - 1
            };
            loop {
                let cur = meta.bitmap[w].load(Ordering::Acquire);
                let open = !cur & valid;
                if open == 0 {
                    break;
                }
                let bit = open.trailing_zeros() as u64;
                let prev = meta.bitmap[w].fetch_or(1 << bit, Ordering::AcqRel);
                self.metrics.count_rmw();
                if prev & (1 << bit) == 0 {
                    return Some(w as u64 * 64 + bit);
                }
                // Lost the bit; rescan the word.
            }
        }
        None
    }
}

impl DeviceAllocator for ScatterAlloc {
    fn name(&self) -> &str {
        "ScatterAlloc"
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr {
        if size > PAGE_SIZE {
            self.metrics.count_malloc(false);
            return DevicePtr::NULL;
        }
        // size == 0 rounds up to MIN_CHUNK here: zero-size requests take
        // the minimum granule (the `DeviceAllocator::malloc` contract).
        let chunk = size.next_power_of_two().max(MIN_CHUNK);
        let chunks_per_page = PAGE_SIZE / chunk;
        let base_hash = splitmix(ctx.warp.warp_id ^ (chunk << 40));
        let num_sbs = self.sb_fill.len();
        for sb_probe in 0..MAX_SB_PROBES.min(num_sbs as u64) {
            let sb = (splitmix(base_hash.wrapping_add(sb_probe)) as usize) % num_sbs;
            let sb_pages = self.sb_pages(sb);
            // Saturation hint: a superblock whose fill already covers
            // every chunk it could hold is skipped without page probes.
            let sb_capacity = sb_pages * chunks_per_page;
            if self.sb_fill[sb].load(Ordering::Relaxed) >= sb_capacity {
                continue;
            }
            let page_hash = splitmix(base_hash ^ (sb as u64) << 17);
            for page_probe in 0..SB_PAGE_PROBES.min(sb_pages) {
                let page = sb * PAGES_PER_SB as usize
                    + ((page_hash.wrapping_add(page_probe)) % sb_pages) as usize;
                let meta = &self.pages[page];
                // Dedicate a virgin page, or verify the dedication.
                let cur = meta.chunk_size.load(Ordering::Acquire);
                if cur == 0 {
                    let _ = meta.chunk_size.compare_exchange(
                        0,
                        chunk as u32,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    );
                    self.metrics.count_cas(true);
                }
                if meta.chunk_size.load(Ordering::Acquire) != chunk as u32 {
                    continue;
                }
                // Reserve headroom via the fill count, then grab a bit.
                let prior = meta.count.fetch_add(1, Ordering::AcqRel);
                self.metrics.count_rmw();
                if prior as u64 >= chunks_per_page {
                    meta.count.fetch_sub(1, Ordering::AcqRel);
                    continue;
                }
                if let Some(slot) =
                    self.claim_chunk(page, chunk, page_hash.wrapping_add(page_probe))
                {
                    self.sb_fill[sb].fetch_add(1, Ordering::Relaxed);
                    self.reserved.fetch_add(chunk, Ordering::Relaxed);
                    self.metrics.count_malloc(true);
                    return DevicePtr(page as u64 * PAGE_SIZE + slot * chunk);
                }
                meta.count.fetch_sub(1, Ordering::AcqRel);
            }
        }
        self.metrics.count_malloc(false);
        DevicePtr::NULL
    }

    fn free(&self, _ctx: &LaneCtx, ptr: DevicePtr) {
        if ptr.is_null() {
            return;
        }
        self.metrics.count_free();
        let page = (ptr.0 / PAGE_SIZE) as usize;
        let meta = &self.pages[page];
        let chunk = meta.chunk_size.load(Ordering::Acquire) as u64;
        assert!(chunk >= MIN_CHUNK, "free into an undedicated page");
        let slot = (ptr.0 % PAGE_SIZE) / chunk;
        let prev =
            meta.bitmap[(slot / 64) as usize].fetch_and(!(1 << (slot % 64)), Ordering::AcqRel);
        self.metrics.count_rmw();
        assert!(prev & (1 << (slot % 64)) != 0, "double free of chunk {slot} in page {page}");
        meta.count.fetch_sub(1, Ordering::AcqRel);
        self.sb_fill[page / PAGES_PER_SB as usize].fetch_sub(1, Ordering::Relaxed);
        self.reserved.fetch_sub(chunk, Ordering::Relaxed);
        // Pages stay dedicated: ScatterAlloc does not re-type pages.
    }

    fn reset(&self) {
        for p in self.pages.iter() {
            p.reset();
        }
        for f in self.sb_fill.iter() {
            f.store(0, Ordering::Relaxed);
        }
        self.reserved.store(0, Ordering::Relaxed);
        self.metrics.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.mem.len() as u64
    }

    fn max_native_size(&self) -> u64 {
        PAGE_SIZE
    }

    fn supports_size(&self, size: u64) -> bool {
        size <= PAGE_SIZE
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            heap_bytes: self.mem.len() as u64,
            reserved_bytes: self.reserved.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch_warps, DeviceConfig, WarpCtx};

    fn with_lane<R>(f: impl FnOnce(&LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 3, sm_id: 0, base_tid: 96, active: 1 };
        f(&warp.lane(0))
    }

    #[test]
    fn allocations_are_chunk_aligned_and_distinct() {
        let a = ScatterAlloc::new(4 << 20);
        with_lane(|l| {
            let mut offs = Vec::new();
            for _ in 0..200 {
                let p = a.malloc(l, 100); // rounds to 128
                assert!(!p.is_null());
                assert_eq!(p.0 % 128, 0);
                offs.push(p.0);
            }
            offs.sort_unstable();
            offs.dedup();
            assert_eq!(offs.len(), 200);
            for &o in &offs {
                a.free(l, DevicePtr(o));
            }
            assert_eq!(a.stats().reserved_bytes, 0);
        });
    }

    #[test]
    fn page_limit_enforced() {
        let a = ScatterAlloc::new(1 << 20);
        with_lane(|l| {
            assert!(!a.malloc(l, PAGE_SIZE).is_null());
            assert!(a.malloc(l, PAGE_SIZE + 1).is_null());
            // Zero-size requests succeed with a minimum-chunk allocation.
            let z = a.malloc(l, 0);
            assert!(!z.is_null());
            a.free(l, z);
        });
        assert!(a.supports_size(8192));
        assert!(a.supports_size(0));
        assert!(!a.supports_size(PAGE_SIZE + 1));
    }

    #[test]
    fn pages_stay_dedicated_to_first_size() {
        // A tiny heap with one page: once dedicated to 16 B chunks, a
        // 4 KB request cannot be served.
        let a = ScatterAlloc::new(PAGE_SIZE);
        with_lane(|l| {
            let p = a.malloc(l, 16);
            assert!(!p.is_null());
            assert!(a.malloc(l, 4096).is_null(), "page must stay dedicated");
            a.free(l, p);
            assert!(a.malloc(l, 4096).is_null(), "dedication survives frees");
            assert!(!a.malloc(l, 16).is_null());
        });
    }

    #[test]
    fn free_then_realloc_reuses_chunks() {
        let a = ScatterAlloc::new(PAGE_SIZE); // one page: 1024 chunks of 16 B
        with_lane(|l| {
            let ptrs: Vec<_> = (0..1024).map(|_| a.malloc(l, 16)).collect();
            assert!(ptrs.iter().all(|p| !p.is_null()));
            assert!(a.malloc(l, 16).is_null(), "page full");
            for &p in &ptrs {
                a.free(l, p);
            }
            assert!(!a.malloc(l, 16).is_null());
        });
    }

    #[test]
    fn concurrent_storm_no_overlap() {
        let a = ScatterAlloc::new(8 << 20);
        launch_warps(DeviceConfig::with_sms(8), 1024, |warp| {
            for lane in warp.lanes() {
                let l = warp.lane(lane);
                for round in 0..5u64 {
                    let size = 16 << ((l.global_tid() + round) % 6);
                    let p = a.malloc(&l, size);
                    if !p.is_null() {
                        a.memory().write_stamp(p, l.global_tid() * 31 + round);
                        assert_eq!(a.memory().read_stamp(p), l.global_tid() * 31 + round);
                        a.free(&l, p);
                    }
                }
            }
        });
        assert_eq!(a.stats().reserved_bytes, 0);
    }

    #[test]
    fn reset_revirginizes_pages() {
        let a = ScatterAlloc::new(PAGE_SIZE);
        with_lane(|l| {
            a.malloc(l, 16);
        });
        a.reset();
        with_lane(|l| {
            assert!(!a.malloc(l, 4096).is_null(), "reset must clear dedication");
        });
    }

    #[test]
    #[should_panic(expected = "double free")]
    fn double_free_detected() {
        let a = ScatterAlloc::new(PAGE_SIZE);
        with_lane(|l| {
            let p = a.malloc(l, 64);
            a.free(l, p);
            a.free(l, p);
        });
    }
}
