//! Shared building blocks for the baseline allocators.

use std::sync::atomic::{AtomicU64, Ordering};

/// Round a request up to `align` (power of two).
#[inline]
pub fn align_up(size: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (size + align - 1) & !(align - 1)
}

/// Power-of-two size class index for `size`, relative to `min` (power of
/// two): 0 for `≤ min`, 1 for `≤ 2·min`, …
#[inline]
pub fn class_of(size: u64, min: u64) -> usize {
    debug_assert!(min.is_power_of_two());
    let rounded = size.next_power_of_two().max(min);
    (rounded.trailing_zeros() - min.trailing_zeros()) as usize
}

/// Size served by class `c`.
#[inline]
pub fn class_size(c: usize, min: u64) -> u64 {
    min << c
}

/// A Treiber stack of device offsets, with an ABA tag packed into the
/// head word (16-bit version, 48-bit offset — enough for 256 TB arenas).
///
/// The next-pointers live *inside the arena*, in the first 8 bytes of
/// each freed region, exactly as a device-side free list stores them.
pub struct OffsetStack {
    head: AtomicU64,
}
// (field private; constructor below)

const NIL: u64 = (1 << 48) - 1;
const OFF_MASK: u64 = (1 << 48) - 1;

impl OffsetStack {
    /// An empty stack.
    pub fn new() -> Self {
        OffsetStack { head: AtomicU64::new(NIL) }
    }

    #[inline]
    fn pack(tag: u64, off: u64) -> u64 {
        (tag << 48) | (off & OFF_MASK)
    }

    /// Push region at `off`; `link` stores the next-pointer into the
    /// region (the caller owns that memory).
    pub fn push(&self, off: u64, link: impl Fn(u64, u64)) {
        debug_assert!(off < NIL);
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            link(off, head & OFF_MASK);
            let new = Self::pack((head >> 48).wrapping_add(1), off);
            match self.head.compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return,
                Err(h) => head = h,
            }
        }
    }

    /// Pop a region offset; `next` reads the next-pointer out of a region.
    pub fn pop(&self, next: impl Fn(u64) -> u64) -> Option<u64> {
        let mut head = self.head.load(Ordering::Acquire);
        loop {
            let off = head & OFF_MASK;
            if off == NIL {
                return None;
            }
            let succ = next(off) & OFF_MASK;
            let new = Self::pack((head >> 48).wrapping_add(1), succ);
            match self.head.compare_exchange_weak(head, new, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => return Some(off),
                Err(h) => head = h,
            }
        }
    }

    /// Empty the stack (reset-time only).
    pub fn clear(&self) {
        self.head.store(NIL, Ordering::Release);
    }

    /// Whether the stack is empty.
    pub fn is_empty(&self) -> bool {
        self.head.load(Ordering::Acquire) & OFF_MASK == NIL
    }
}

impl Default for OffsetStack {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::DeviceMemory;

    #[test]
    fn align_and_classes() {
        assert_eq!(align_up(1, 8), 8);
        assert_eq!(align_up(8, 8), 8);
        assert_eq!(align_up(9, 8), 16);
        assert_eq!(class_of(1, 16), 0);
        assert_eq!(class_of(16, 16), 0);
        assert_eq!(class_of(17, 16), 1);
        assert_eq!(class_of(4096, 16), 8);
        assert_eq!(class_size(3, 16), 128);
    }

    #[test]
    fn stack_lifo_order() {
        let mem = DeviceMemory::new(1024);
        let s = OffsetStack::new();
        let link = |off: u64, next: u64| mem.store_u64(off, next);
        let next = |off: u64| mem.load_u64(off);
        assert!(s.is_empty());
        s.push(0, link);
        s.push(64, link);
        s.push(128, link);
        assert_eq!(s.pop(next), Some(128));
        assert_eq!(s.pop(next), Some(64));
        assert_eq!(s.pop(next), Some(0));
        assert_eq!(s.pop(next), None);
    }

    #[test]
    fn stack_concurrent_conservation() {
        let mem = DeviceMemory::new(64 * 1024);
        let s = OffsetStack::new();
        for i in 0..64u64 {
            s.push(i * 1024, |o, n| mem.store_u64(o, n));
        }
        std::thread::scope(|sc| {
            for _ in 0..8 {
                sc.spawn(|| {
                    for _ in 0..5_000 {
                        if let Some(off) = s.pop(|o| mem.load_u64(o)) {
                            s.push(off, |o, n| mem.store_u64(o, n));
                        }
                    }
                });
            }
        });
        let mut seen = std::collections::HashSet::new();
        while let Some(off) = s.pop(|o| mem.load_u64(o)) {
            assert!(seen.insert(off), "duplicate {off}");
            assert_eq!(off % 1024, 0);
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn clear_empties() {
        let mem = DeviceMemory::new(1024);
        let s = OffsetStack::new();
        s.push(8, |o, n| mem.store_u64(o, n));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.pop(|o| mem.load_u64(o)), None);
    }
}
