//! The Ouroboros allocator family (Winter et al.): queue-based recycling
//! over 8192-byte chunks.
//!
//! Device memory is carved into **chunks** of 8192 bytes; a chunk is split
//! into equal **pages** of one power-of-two size class (16 B…8192 B). Each
//! class owns a queue; an allocation pops from the smallest class that
//! fits, carving a fresh chunk when the queue is dry.
//!
//! The published matrix of variants is the cross product of two axes,
//! both reproduced here (paper §2 "Ouroboros"):
//!
//! * **what the queues recycle** — [`OuroborosKind::Chunk`] (C series):
//!   a fully freed chunk returns to a shared chunk queue and can be
//!   re-split for *any* class ("full reuse");
//!   [`OuroborosKind::Page`] (P series): freed pages go back to their own
//!   class's queue and can only ever serve that class again. The paper's
//!   warmed-up experiment (§6.9) hinges on exactly this: P variants never
//!   release memory, so their second run starts with pre-filled queues.
//! * **how the queue is built** — [`QueueKind::Static`] (S): a bounded
//!   ring; [`QueueKind::VirtArray`] (VA): a growable segmented array;
//!   [`QueueKind::VirtList`] (VL): a linked list guarded by a lock (the
//!   published queues are semaphore-controlled).
//!
//! No variant natively serves requests above the 8192-byte chunk; those
//! fall back to a **capped** CUDA-heap reserve at the top of the arena
//! (the paper's 500 MB reserve, scaled to the heap). The cap is what
//! makes Ouroboros fail the skewed-graph expansion test that Gallatin
//! passes.

use crate::cuda_heap::FirstFitHeap;
use crate::util::{class_of, class_size};
use crossbeam::queue::{ArrayQueue, SegQueue};
use gpu_sim::{AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics};
use parking_lot::Mutex;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// Chunk size: the hard ceiling of native allocations.
pub const CHUNK_BYTES: u64 = 8192;
/// Smallest page class.
const MIN_PAGE: u64 = 16;
/// Number of page classes: 16, 32, …, 8192.
const NUM_CLASSES: usize = 10;

/// C series (chunk reuse) vs P series (page reuse).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum OuroborosKind {
    /// C series: whole chunks recycle for any class (full reuse).
    Chunk,
    /// P series: pages recycle only for their original class.
    Page,
}

/// Queue implementation backing each variant.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum QueueKind {
    /// S: bounded ring queue.
    Static,
    /// VA: growable segmented-array queue.
    VirtArray,
    /// VL: lock-guarded linked-list queue.
    VirtList,
}

/// One queue of device offsets, in the variant's flavor.
enum Queue {
    Static(ArrayQueue<u64>),
    VirtArray(SegQueue<u64>),
    VirtList(Mutex<VecDeque<u64>>),
}

impl Queue {
    fn new(kind: QueueKind, capacity: usize) -> Self {
        match kind {
            QueueKind::Static => Queue::Static(ArrayQueue::new(capacity.max(1))),
            QueueKind::VirtArray => Queue::VirtArray(SegQueue::new()),
            QueueKind::VirtList => Queue::VirtList(Mutex::new(VecDeque::new())),
        }
    }

    fn push(&self, v: u64) -> bool {
        match self {
            Queue::Static(q) => q.push(v).is_ok(),
            Queue::VirtArray(q) => {
                q.push(v);
                true
            }
            Queue::VirtList(q) => {
                q.lock().push_back(v);
                true
            }
        }
    }

    fn pop(&self) -> Option<u64> {
        match self {
            Queue::Static(q) => q.pop(),
            Queue::VirtArray(q) => q.pop(),
            Queue::VirtList(q) => q.lock().pop_front(),
        }
    }

    fn drain(&self) {
        match self {
            Queue::Static(q) => while q.pop().is_some() {},
            Queue::VirtArray(q) => while q.pop().is_some() {},
            Queue::VirtList(q) => q.lock().clear(),
        }
    }
}

/// Per-chunk metadata for the C series' full-reuse accounting.
struct ChunkMeta {
    /// Pages freed back in this chunk's current life.
    freed: AtomicU32,
    /// Page class of the current life.
    class: AtomicU32,
}

/// Packed `(chunk_id + 1, pages_taken)` word for a class's active chunk
/// (C series). Zero id means "no active chunk".
const ACTIVE_CNT_BITS: u32 = 24;
const ACTIVE_CNT_MASK: u64 = (1 << ACTIVE_CNT_BITS) - 1;

#[inline]
fn active_pack(id_plus1: u64, count: u64) -> u64 {
    (id_plus1 << ACTIVE_CNT_BITS) | count
}

#[inline]
fn active_unpack(word: u64) -> (u64, u64) {
    (word >> ACTIVE_CNT_BITS, word & ACTIVE_CNT_MASK)
}

/// An Ouroboros allocator instance.
pub struct Ouroboros {
    mem: DeviceMemory,
    kind: OuroborosKind,
    queue_kind: QueueKind,
    name: String,
    /// P series: page queues, one per class.
    page_queues: Vec<Queue>,
    /// C series: active chunk per class, packed `(id+1, pages_taken)`.
    active: Vec<AtomicU64>,
    /// C series: fully freed chunks available for any class.
    chunk_queue: Queue,
    /// Bump cursor over the native region, in chunks.
    next_chunk: AtomicU64,
    /// Number of chunks in the native region.
    num_chunks: u64,
    chunk_meta: Box<[ChunkMeta]>,
    /// CUDA-heap fallback over the reserve at the top of the arena.
    fallback: FirstFitHeap,
    reserved: AtomicU64,
    metrics: Metrics,
}

impl Ouroboros {
    /// Build a variant with the default (paper-style) CUDA-heap reserve.
    pub fn new(heap_bytes: u64, kind: OuroborosKind, queue_kind: QueueKind) -> Self {
        // Reserve for the CUDA-heap fallback: the paper's setups keep
        // 500 MB beside the allocator; scale to a quarter of small heaps.
        let reserve = (heap_bytes / 4).clamp(64 << 10, 500 << 20);
        Self::with_reserve(heap_bytes, kind, queue_kind, reserve)
    }

    /// Explicit fallback-reserve size (the graph expansion experiment
    /// varies this).
    pub fn with_reserve(
        heap_bytes: u64,
        kind: OuroborosKind,
        queue_kind: QueueKind,
        reserve: u64,
    ) -> Self {
        assert!(heap_bytes > reserve + CHUNK_BYTES, "heap too small for reserve");
        let native = (heap_bytes - reserve) / CHUNK_BYTES * CHUNK_BYTES;
        let num_chunks = native / CHUNK_BYTES;
        let series = match kind {
            OuroborosKind::Chunk => "C",
            OuroborosKind::Page => "P",
        };
        let q = match queue_kind {
            QueueKind::Static => "S",
            QueueKind::VirtArray => "VA",
            QueueKind::VirtList => "VL",
        };
        let max_pages = (native / MIN_PAGE) as usize;
        Ouroboros {
            mem: DeviceMemory::new(heap_bytes as usize),
            kind,
            queue_kind,
            name: format!("Ouroboros-{series}-{q}"),
            page_queues: (0..NUM_CLASSES).map(|c| Queue::new(queue_kind, max_pages >> c)).collect(),
            active: (0..NUM_CLASSES).map(|_| AtomicU64::new(0)).collect(),
            chunk_queue: Queue::new(queue_kind, num_chunks as usize),
            next_chunk: AtomicU64::new(0),
            num_chunks,
            chunk_meta: (0..num_chunks)
                .map(|_| ChunkMeta { freed: AtomicU32::new(0), class: AtomicU32::new(0) })
                .collect(),
            fallback: FirstFitHeap::new(native, heap_bytes - native),
            reserved: AtomicU64::new(0),
            metrics: Metrics::new(),
        }
    }

    /// Grab a chunk: recycled (C series) or freshly carved.
    fn get_chunk(&self, class: usize) -> Option<u64> {
        let id = match self.chunk_queue.pop() {
            Some(id) => id,
            None => {
                let id = self.next_chunk.fetch_add(1, Ordering::Relaxed);
                self.metrics.count_rmw();
                if id >= self.num_chunks {
                    // Put the cursor back to avoid creeping past the end
                    // forever (harmless either way, counter is monotonic).
                    return None;
                }
                id
            }
        };
        let meta = &self.chunk_meta[id as usize];
        meta.class.store(class as u32, Ordering::Release);
        meta.freed.store(0, Ordering::Release);
        Some(id)
    }

    /// Split chunk `id` into pages of `class`, returning one and queueing
    /// the rest.
    fn split_chunk(&self, id: u64, class: usize) -> u64 {
        let page = class_size(class, MIN_PAGE);
        let pages = CHUNK_BYTES / page;
        let base = id * CHUNK_BYTES;
        for p in 1..pages {
            self.page_queues[class].push(base + p * page);
        }
        base
    }

    fn native_malloc(&self, size: u64) -> DevicePtr {
        let class = class_of(size, MIN_PAGE);
        debug_assert!(class < NUM_CLASSES);
        match self.kind {
            // P series: page-granular reuse through the class queue.
            OuroborosKind::Page => {
                if let Some(off) = self.page_queues[class].pop() {
                    self.metrics.count_rmw();
                    return DevicePtr(off);
                }
                match self.get_chunk(class) {
                    Some(id) => DevicePtr(self.split_chunk(id, class)),
                    None => match self.page_queues[class].pop() {
                        Some(off) => DevicePtr(off),
                        None => DevicePtr::NULL,
                    },
                }
            }
            // C series: pages come off the class's active chunk; reuse is
            // chunk-granular (a chunk re-enters circulation only when all
            // of its pages have been freed).
            OuroborosKind::Chunk => {
                let page = class_size(class, MIN_PAGE);
                let pages = CHUNK_BYTES / page;
                loop {
                    let cur = self.active[class].load(Ordering::Acquire);
                    let (id_plus1, cnt) = active_unpack(cur);
                    if id_plus1 != 0 && cnt < pages {
                        let ok = self.active[class]
                            .compare_exchange_weak(
                                cur,
                                cur + 1,
                                Ordering::AcqRel,
                                Ordering::Acquire,
                            )
                            .is_ok();
                        self.metrics.count_cas(ok);
                        if ok {
                            return DevicePtr((id_plus1 - 1) * CHUNK_BYTES + cnt * page);
                        }
                        continue;
                    }
                    // No active chunk, or exhausted: install a fresh one.
                    let Some(new) = self.get_chunk(class) else {
                        return DevicePtr::NULL;
                    };
                    let desired = active_pack(new + 1, 1);
                    let ok = self.active[class]
                        .compare_exchange(cur, desired, Ordering::AcqRel, Ordering::Acquire)
                        .is_ok();
                    self.metrics.count_cas(ok);
                    if ok {
                        return DevicePtr(new * CHUNK_BYTES);
                    }
                    // Someone else installed first; recycle ours.
                    self.chunk_queue.push(new);
                }
            }
        }
    }

    fn native_free(&self, ptr: DevicePtr) {
        let chunk = ptr.0 / CHUNK_BYTES;
        let meta = &self.chunk_meta[chunk as usize];
        let class = meta.class.load(Ordering::Acquire) as usize;
        match self.kind {
            OuroborosKind::Page => {
                // P series: the page only ever serves its original class.
                self.page_queues[class].push(ptr.0);
                self.metrics.count_rmw();
            }
            OuroborosKind::Chunk => {
                // C series: the chunk becomes reusable for any class once
                // every page of its current life has been returned.
                let pages = (CHUNK_BYTES / class_size(class, MIN_PAGE)) as u32;
                let freed = meta.freed.fetch_add(1, Ordering::AcqRel) + 1;
                self.metrics.count_rmw();
                if freed == pages {
                    self.chunk_queue.push(chunk);
                }
            }
        }
    }
}

impl DeviceAllocator for Ouroboros {
    fn name(&self) -> &str {
        &self.name
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, _ctx: &LaneCtx, size: u64) -> DevicePtr {
        // Zero-size requests take the minimum granule (the
        // `DeviceAllocator::malloc` contract).
        let size = size.max(1);
        let ptr = if size <= CHUNK_BYTES {
            self.native_malloc(size)
        } else {
            // Fallback to the capped CUDA-heap reserve.
            self.fallback.malloc(&self.mem, size, &self.metrics)
        };
        if !ptr.is_null() {
            let charged = if size <= CHUNK_BYTES {
                class_size(class_of(size, MIN_PAGE), MIN_PAGE)
            } else {
                // Must mirror the free path, which reads the fallback's
                // header (8-byte-aligned payload).
                crate::util::align_up(size, 8)
            };
            self.reserved.fetch_add(charged, Ordering::Relaxed);
        }
        self.metrics.count_malloc(!ptr.is_null());
        ptr
    }

    fn free(&self, _ctx: &LaneCtx, ptr: DevicePtr) {
        if ptr.is_null() {
            return;
        }
        self.metrics.count_free();
        if self.fallback.owns(ptr) {
            // Reserved-bytes accounting for fallback frees uses the
            // header the first-fit heap wrote.
            let hdr = self.mem.load_u64(ptr.0 - 8);
            self.reserved.fetch_sub(hdr.saturating_sub(8), Ordering::Relaxed);
            self.fallback.free(&self.mem, ptr, &self.metrics);
        } else {
            let chunk = ptr.0 / CHUNK_BYTES;
            let class = self.chunk_meta[chunk as usize].class.load(Ordering::Acquire) as usize;
            self.reserved.fetch_sub(class_size(class, MIN_PAGE), Ordering::Relaxed);
            self.native_free(ptr);
        }
    }

    fn reset(&self) {
        for q in &self.page_queues {
            q.drain();
        }
        for a in &self.active {
            a.store(0, Ordering::Relaxed);
        }
        self.chunk_queue.drain();
        self.next_chunk.store(0, Ordering::Relaxed);
        for m in self.chunk_meta.iter() {
            m.freed.store(0, Ordering::Relaxed);
            m.class.store(0, Ordering::Relaxed);
        }
        self.fallback.reset();
        self.reserved.store(0, Ordering::Relaxed);
        self.metrics.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.mem.len() as u64
    }

    fn max_native_size(&self) -> u64 {
        CHUNK_BYTES
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            heap_bytes: self.mem.len() as u64,
            reserved_bytes: self.reserved.load(Ordering::Relaxed),
        }
    }
}

// The queue kind is stored for introspection (benchmarks label variants).
impl Ouroboros {
    /// The series (C or P) this instance runs as.
    pub fn kind(&self) -> OuroborosKind {
        self.kind
    }

    /// The queue implementation this instance uses.
    pub fn queue_kind(&self) -> QueueKind {
        self.queue_kind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch_warps, DeviceConfig, WarpCtx};

    fn with_lane<R>(f: impl FnOnce(&LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    fn all_variants(heap: u64) -> Vec<Ouroboros> {
        let mut v = Vec::new();
        for kind in [OuroborosKind::Chunk, OuroborosKind::Page] {
            for q in [QueueKind::Static, QueueKind::VirtArray, QueueKind::VirtList] {
                v.push(Ouroboros::new(heap, kind, q));
            }
        }
        v
    }

    #[test]
    fn names_cover_the_matrix() {
        let names: Vec<String> =
            all_variants(4 << 20).iter().map(|a| a.name().to_string()).collect();
        assert_eq!(
            names,
            [
                "Ouroboros-C-S",
                "Ouroboros-C-VA",
                "Ouroboros-C-VL",
                "Ouroboros-P-S",
                "Ouroboros-P-VA",
                "Ouroboros-P-VL"
            ]
        );
    }

    #[test]
    fn alloc_free_roundtrip_all_variants() {
        for a in all_variants(4 << 20) {
            with_lane(|l| {
                let ptrs: Vec<_> = (0..300).map(|i| a.malloc(l, 16 << (i % 5))).collect();
                assert!(ptrs.iter().all(|p| !p.is_null()), "{}", a.name());
                let mut offs: Vec<u64> = ptrs.iter().map(|p| p.0).collect();
                offs.sort_unstable();
                offs.dedup();
                assert_eq!(offs.len(), 300, "{} overlap", a.name());
                for p in ptrs {
                    a.free(l, p);
                }
                assert_eq!(a.stats().reserved_bytes, 0, "{}", a.name());
            });
        }
    }

    #[test]
    fn p_series_reuses_only_same_class() {
        let a = Ouroboros::with_reserve(
            2 * CHUNK_BYTES + (64 << 10) + CHUNK_BYTES,
            OuroborosKind::Page,
            QueueKind::VirtArray,
            64 << 10,
        );
        // Native region: 3 chunks. Fill them all with 16 B pages.
        with_lane(|l| {
            let per_chunk = (CHUNK_BYTES / 16) as usize;
            let ptrs: Vec<_> = (0..3 * per_chunk).map(|_| a.malloc(l, 16)).collect();
            assert!(ptrs.iter().all(|p| !p.is_null()));
            for &p in &ptrs {
                a.free(l, p);
            }
            // All memory returned — but only as 16 B pages. A 4 KB
            // request finds no chunk (P series cannot repurpose).
            assert!(a.malloc(l, 4096).is_null(), "P series must not repurpose pages");
            assert!(!a.malloc(l, 16).is_null());
        });
    }

    #[test]
    fn c_series_repurposes_freed_chunks() {
        let a = Ouroboros::with_reserve(
            2 * CHUNK_BYTES + (64 << 10) + CHUNK_BYTES,
            OuroborosKind::Chunk,
            QueueKind::VirtArray,
            64 << 10,
        );
        with_lane(|l| {
            let per_chunk = (CHUNK_BYTES / 16) as usize;
            let ptrs: Vec<_> = (0..3 * per_chunk).map(|_| a.malloc(l, 16)).collect();
            assert!(ptrs.iter().all(|p| !p.is_null()));
            for &p in &ptrs {
                a.free(l, p);
            }
            // Full reuse: the freed chunks serve a different class.
            assert!(!a.malloc(l, 4096).is_null(), "C series must repurpose chunks");
        });
    }

    #[test]
    fn large_requests_use_capped_fallback() {
        let a =
            Ouroboros::with_reserve(1 << 20, OuroborosKind::Chunk, QueueKind::Static, 128 << 10);
        with_lane(|l| {
            assert_eq!(a.max_native_size(), 8192);
            let big = a.malloc(l, 64 << 10);
            assert!(!big.is_null(), "fallback serves large requests");
            assert!(big.0 >= (1 << 20) - (128 << 10), "fallback lives in the reserve");
            // The reserve is capped: a request beyond it fails even
            // though the native region has room.
            assert!(a.malloc(l, 256 << 10).is_null(), "reserve cap enforced");
            a.free(l, big);
            assert_eq!(a.stats().reserved_bytes, 0);
        });
    }

    #[test]
    fn page_payloads_do_not_overlap_under_contention() {
        for a in all_variants(8 << 20) {
            launch_warps(DeviceConfig::with_sms(8), 512, |warp| {
                for lane in warp.lanes() {
                    let l = warp.lane(lane);
                    for round in 0..4u64 {
                        let p = a.malloc(&l, 16 << (l.global_tid() % 4));
                        if !p.is_null() {
                            a.memory().write_stamp(p, l.global_tid() * 7 + round);
                            assert_eq!(
                                a.memory().read_stamp(p),
                                l.global_tid() * 7 + round,
                                "{} clobbered",
                                a.name()
                            );
                            a.free(&l, p);
                        }
                    }
                }
            });
        }
    }

    #[test]
    fn warmed_up_p_series_serves_from_queues() {
        // The §6.9 effect: after a run without reset, P queues are full
        // and the next run never carves chunks.
        let a = Ouroboros::new(4 << 20, OuroborosKind::Page, QueueKind::VirtArray);
        with_lane(|l| {
            let ptrs: Vec<_> = (0..1000).map(|_| a.malloc(l, 64)).collect();
            for &p in &ptrs {
                a.free(l, p);
            }
            let carved_before = a.next_chunk.load(Ordering::Relaxed);
            let again: Vec<_> = (0..1000).map(|_| a.malloc(l, 64)).collect();
            assert!(again.iter().all(|p| !p.is_null()));
            assert_eq!(
                a.next_chunk.load(Ordering::Relaxed),
                carved_before,
                "warmed-up run must not carve new chunks"
            );
        });
    }

    #[test]
    fn reset_restores_cold_state() {
        let a = Ouroboros::new(4 << 20, OuroborosKind::Chunk, QueueKind::VirtList);
        with_lane(|l| {
            for _ in 0..100 {
                a.malloc(l, 128);
            }
        });
        a.reset();
        assert_eq!(a.stats().reserved_bytes, 0);
        assert_eq!(a.next_chunk.load(Ordering::Relaxed), 0);
        with_lane(|l| assert!(!a.malloc(l, 128).is_null()));
    }
}
