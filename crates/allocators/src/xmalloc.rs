//! XMalloc (Huang et al.): warp-level request combining.
//!
//! XMalloc's signature idea is *coalescing at the memory-request level*:
//! allocations issued by the same warp in the same cycle are packed into
//! one combined superblock allocation with per-lane headers; one elected
//! lane performs the underlying allocation for everyone (paper §2
//! "XMalloc"). The backing store is a linked heap with tiers of free
//! buffers for common sizes.
//!
//! Port shape:
//!
//! * combined allocations are served from **two tiers** of lock-free LIFO
//!   free lists ([`crate::util::OffsetStack`]) threaded through the
//!   arena, refilled from a bump cursor — tier 1 is a small array of
//!   stacks hashed by warp (low contention, checked first; frees go
//!   here), tier 2 is one global stack per class (the overflow pool,
//!   checked when tier 1 misses), mirroring the original's two buffer
//!   tiers;
//! * [`XMalloc::warp_malloc`] packs the warp's requests into one combined
//!   block: a 16-byte combined header (live-lane refcount) plus, per
//!   lane, a 16-byte lane header recording the combined base;
//! * `free` decrements the combined refcount; the last lane returns the
//!   combined block to its size class — so one warp's allocations are
//!   physically adjacent and are recycled as a unit, exactly the
//!   behaviour that makes XMalloc fast on uniform warps and wasteful on
//!   divergent ones.

use crate::util::{align_up, OffsetStack};
use gpu_sim::{AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics, WarpCtx};
use std::sync::atomic::{AtomicU64, Ordering};

/// Smallest combined-block class.
const MIN_CLASS_BYTES: u64 = 64;
/// Combined header: `[refcount u64][class u64]`.
const COMBINED_HEADER: u64 = 16;
/// Lane header: `[combined base u64][reserved u64]`.
const LANE_HEADER: u64 = 16;

/// Tier-1 stacks per class, hashed by warp id.
const TIER1_WAYS: usize = 16;

/// The XMalloc allocator.
pub struct XMalloc {
    mem: DeviceMemory,
    /// Tier 1: `TIER1_WAYS` warp-hashed free lists per class.
    tier1: Vec<[OffsetStack; TIER1_WAYS]>,
    /// Tier 2: one global overflow free list per class.
    stacks: Vec<OffsetStack>,
    bump: AtomicU64,
    reserved: AtomicU64,
    metrics: Metrics,
}

impl XMalloc {
    /// Build an instance over a fresh arena.
    pub fn new(heap_bytes: u64) -> Self {
        let heap_bytes = align_up(heap_bytes, 64);
        // Classes MIN_CLASS_BYTES..=next_power_of_two(heap).
        let classes = (heap_bytes.next_power_of_two().trailing_zeros()
            - MIN_CLASS_BYTES.trailing_zeros()
            + 1) as usize;
        XMalloc {
            mem: DeviceMemory::new(heap_bytes as usize),
            tier1: (0..classes).map(|_| std::array::from_fn(|_| OffsetStack::new())).collect(),
            stacks: (0..classes).map(|_| OffsetStack::new()).collect(),
            bump: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            metrics: Metrics::new(),
        }
    }

    #[inline]
    fn class_of(&self, combined: u64) -> usize {
        let rounded = combined.next_power_of_two().max(MIN_CLASS_BYTES);
        (rounded.trailing_zeros() - MIN_CLASS_BYTES.trailing_zeros()) as usize
    }

    #[inline]
    fn class_bytes(&self, class: usize) -> u64 {
        MIN_CLASS_BYTES << class
    }

    /// Get a combined block of at least `combined` bytes: tier-1 free
    /// list first, tier-2 second, bump third.
    fn get_combined(&self, warp_hash: u64, combined: u64) -> Option<(u64, usize)> {
        let class = self.class_of(combined);
        if class >= self.stacks.len() {
            return None;
        }
        let way = (warp_hash as usize) % TIER1_WAYS;
        if let Some(off) = self.tier1[class][way].pop(|o| self.mem.load_u64(o)) {
            self.metrics.count_cas(true);
            return Some((off, class));
        }
        if let Some(off) = self.stacks[class].pop(|o| self.mem.load_u64(o)) {
            self.metrics.count_cas(true);
            return Some((off, class));
        }
        let bytes = self.class_bytes(class);
        let off = self.bump.fetch_add(bytes, Ordering::Relaxed);
        self.metrics.count_rmw();
        if off + bytes <= self.mem.len() as u64 {
            Some((off, class))
        } else {
            // Bump exhausted. Try larger classes' free lists before
            // failing (simple escalation; no splitting).
            for c in class + 1..self.stacks.len() {
                if let Some(off) = self.stacks[c].pop(|o| self.mem.load_u64(o)) {
                    self.metrics.count_cas(true);
                    return Some((off, c));
                }
            }
            None
        }
    }

    /// Serve a batch of lane requests as one combined allocation.
    /// `sizes[i]` are the per-lane byte counts; returns per-lane pointers.
    fn combined_malloc(&self, warp_hash: u64, sizes: &[u64]) -> Vec<DevicePtr> {
        debug_assert!(!sizes.is_empty());
        let lane_spans: Vec<u64> = sizes.iter().map(|&s| LANE_HEADER + align_up(s, 16)).collect();
        let payload: u64 = lane_spans.iter().sum();
        let combined = COMBINED_HEADER + payload;
        let Some((base, class)) = self.get_combined(warp_hash, combined) else {
            for _ in sizes {
                self.metrics.count_malloc(false);
            }
            return vec![DevicePtr::NULL; sizes.len()];
        };
        // Combined header: refcount = number of lanes; class + tier-1
        // way (chosen at allocation) packed for the freeing side.
        self.mem.store_u64(base, sizes.len() as u64);
        let way = (warp_hash as usize % TIER1_WAYS) as u64;
        self.mem.store_u64(base + 8, (way << 32) | class as u64);
        self.reserved.fetch_add(self.class_bytes(class), Ordering::Relaxed);
        let mut out = Vec::with_capacity(sizes.len());
        let mut cursor = base + COMBINED_HEADER;
        for &span in &lane_spans {
            self.mem.store_u64(cursor, base);
            out.push(DevicePtr(cursor + LANE_HEADER));
            cursor += span;
            self.metrics.count_malloc(true);
        }
        self.metrics.count_coalesced(sizes.len() as u64 - 1);
        out
    }
}

impl DeviceAllocator for XMalloc {
    fn name(&self) -> &str {
        "XMalloc"
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, _ctx: &LaneCtx, size: u64) -> DevicePtr {
        // Zero-size requests are valid (the `DeviceAllocator::malloc`
        // contract): the lane header alone makes the pointer unique.
        self.combined_malloc(_ctx.warp.warp_id, &[size])[0]
    }

    fn free(&self, _ctx: &LaneCtx, ptr: DevicePtr) {
        if ptr.is_null() {
            return;
        }
        self.metrics.count_free();
        let base = self.mem.load_u64(ptr.0 - LANE_HEADER);
        let remaining = self.mem.atomic_u64(base).fetch_sub(1, Ordering::AcqRel);
        self.metrics.count_rmw();
        assert!(remaining >= 1, "combined-block refcount underflow (double free?)");
        if remaining == 1 {
            // Last lane: recycle the combined block into its tier-1 way
            // (the original's fast buffer; tier 2 fills via bump misses).
            let word = self.mem.load_u64(base + 8);
            let class = (word & 0xffff_ffff) as usize;
            let way = (word >> 32) as usize % TIER1_WAYS;
            self.reserved.fetch_sub(self.class_bytes(class), Ordering::Relaxed);
            self.tier1[class][way].push(base, |o, n| self.mem.store_u64(o, n));
            self.metrics.count_cas(true);
        }
    }

    /// The defining XMalloc move: all requesting lanes of the warp share
    /// one combined allocation.
    fn warp_malloc(&self, warp: &WarpCtx, sizes: &[Option<u64>], out: &mut [DevicePtr]) {
        debug_assert_eq!(sizes.len(), warp.active as usize);
        let lanes: Vec<usize> = warp.lanes().filter(|&l| sizes[l].is_some()).collect();
        for p in out.iter_mut() {
            *p = DevicePtr::NULL;
        }
        if lanes.is_empty() {
            return;
        }
        let req: Vec<u64> = lanes.iter().map(|&l| sizes[l].unwrap()).collect();
        let ptrs = self.combined_malloc(warp.warp_id, &req);
        for (&lane, ptr) in lanes.iter().zip(ptrs) {
            out[lane] = ptr;
        }
    }

    fn reset(&self) {
        for ways in &self.tier1 {
            for s in ways {
                s.clear();
            }
        }
        for s in &self.stacks {
            s.clear();
        }
        self.bump.store(0, Ordering::Relaxed);
        self.reserved.store(0, Ordering::Relaxed);
        self.metrics.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.mem.len() as u64
    }

    fn max_native_size(&self) -> u64 {
        // A single lane's request plus headers must fit the largest class.
        self.mem.len() as u64 - COMBINED_HEADER - LANE_HEADER
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            heap_bytes: self.mem.len() as u64,
            reserved_bytes: self.reserved.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch_warps, DeviceConfig};

    fn warp_of(n: u32) -> WarpCtx {
        WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: n }
    }

    #[test]
    fn warp_requests_share_one_combined_block() {
        let a = XMalloc::new(1 << 20);
        let warp = warp_of(8);
        let sizes = vec![Some(64u64); 8];
        let mut out = vec![DevicePtr::NULL; 8];
        a.warp_malloc(&warp, &sizes, &mut out);
        assert!(out.iter().all(|p| !p.is_null()));
        // All eight live in one combined region: same recorded base.
        let bases: Vec<u64> = out.iter().map(|p| a.mem.load_u64(p.0 - LANE_HEADER)).collect();
        assert!(bases.windows(2).all(|w| w[0] == w[1]));
        // Payloads are disjoint.
        for w in out.windows(2) {
            assert!(w[1].0 - w[0].0 >= 64 + LANE_HEADER);
        }
        a.warp_free(&warp, &out);
        assert_eq!(a.stats().reserved_bytes, 0);
    }

    #[test]
    fn combined_block_recycles_after_last_free() {
        let a = XMalloc::new(1 << 20);
        let warp = warp_of(4);
        let sizes = vec![Some(32u64); 4];
        let mut out = vec![DevicePtr::NULL; 4];
        a.warp_malloc(&warp, &sizes, &mut out);
        let base = a.mem.load_u64(out[0].0 - LANE_HEADER);
        // Free all but one: block must not recycle yet.
        for p in &out[..3] {
            a.free(&warp.lane(0), *p);
        }
        let mut out2 = vec![DevicePtr::NULL; 4];
        a.warp_malloc(&warp, &sizes, &mut out2);
        let base2 = a.mem.load_u64(out2[0].0 - LANE_HEADER);
        assert_ne!(base, base2, "block recycled while a lane was live");
        a.free(&warp.lane(0), out[3]);
        // Now the original block is on the free list and is reused.
        let mut out3 = vec![DevicePtr::NULL; 4];
        a.warp_malloc(&warp, &sizes, &mut out3);
        let base3 = a.mem.load_u64(out3[0].0 - LANE_HEADER);
        assert_eq!(base3, base, "freed combined block must be reused");
    }

    #[test]
    fn scalar_path_is_a_one_lane_combination() {
        let a = XMalloc::new(1 << 16);
        let warp = warp_of(1);
        let l = warp.lane(0);
        let p = a.malloc(&l, 100);
        assert!(!p.is_null());
        a.mem.write_stamp(p, 77);
        assert_eq!(a.mem.read_stamp(p), 77);
        a.free(&l, p);
        assert_eq!(a.stats().reserved_bytes, 0);
    }

    #[test]
    fn zero_allocates_and_oversize_fails() {
        let a = XMalloc::new(1 << 16);
        let warp = warp_of(1);
        let l = warp.lane(0);
        // Zero-size requests succeed with a unique lane slot.
        let x = a.malloc(&l, 0);
        let y = a.malloc(&l, 0);
        assert!(!x.is_null() && !y.is_null());
        assert_ne!(x.0, y.0);
        a.free(&l, x);
        a.free(&l, y);
        assert!(a.malloc(&l, 1 << 20).is_null());
    }

    #[test]
    fn exhaustion_then_recycling() {
        let a = XMalloc::new(1 << 14);
        let warp = warp_of(1);
        let l = warp.lane(0);
        let mut live = Vec::new();
        loop {
            let p = a.malloc(&l, 1024);
            if p.is_null() {
                break;
            }
            live.push(p);
        }
        assert!(live.len() >= 4);
        for p in &live {
            a.free(&l, *p);
        }
        assert!(!a.malloc(&l, 1024).is_null(), "free lists must serve after exhaustion");
    }

    #[test]
    fn concurrent_warps_do_not_overlap() {
        let a = XMalloc::new(8 << 20);
        launch_warps(DeviceConfig::with_sms(8), 1024, |warp| {
            let n = warp.active as usize;
            let sizes: Vec<Option<u64>> =
                (0..n).map(|l| Some(16 + (warp.base_tid + l as u64) % 128)).collect();
            let mut out = vec![DevicePtr::NULL; n];
            for round in 0..4u64 {
                a.warp_malloc(warp, &sizes, &mut out);
                for (l, p) in out.iter().enumerate() {
                    if !p.is_null() {
                        a.memory().write_stamp(*p, warp.base_tid + l as u64 + round);
                    }
                }
                for (l, p) in out.iter().enumerate() {
                    if !p.is_null() {
                        assert_eq!(a.memory().read_stamp(*p), warp.base_tid + l as u64 + round);
                    }
                }
                a.warp_free(warp, &out);
            }
        });
        assert_eq!(a.stats().reserved_bytes, 0);
    }

    #[test]
    fn reset_restores_bump_and_lists() {
        let a = XMalloc::new(1 << 16);
        let warp = warp_of(1);
        a.malloc(&warp.lane(0), 512);
        a.reset();
        assert_eq!(a.stats().reserved_bytes, 0);
        assert!(!a.malloc(&warp.lane(0), 512).is_null());
    }
}
