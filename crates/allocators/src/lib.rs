//! # allocators: baseline GPU memory managers on the SIMT substrate
//!
//! The Gallatin paper evaluates against the allocators collected by the
//! Winter et al. survey ("war of the worlds" benchmark). This crate ports
//! each of those designs — structurally, not instruction-for-instruction —
//! onto the same [`gpu_sim`] substrate Gallatin runs on, so the benchmark
//! harness can compare the *algorithms* the way the paper does:
//!
//! * [`CudaHeapSim`] — the CUDA device heap: fully general, globally
//!   serialized first-fit free list. The paper's "orders of magnitude
//!   slower" fallback that every chunk-limited allocator leans on.
//! * [`reg_eff`] — the Register-Efficient allocators (Vinkler & Havran):
//!   lock-free chunk lists walked by rovers. Variants A, AW (the
//!   atomicAdd wrapper pseudo-allocator), C, CF, CM, CFM.
//! * [`ScatterAlloc`] — hashed scattering of requests across superblock
//!   pages with bitfield chunk claims.
//! * [`ouroboros`] — queue-based recycling over 8192-byte chunks, in the
//!   six published variants (C/P × S/VA/VL), with the capped CUDA-heap
//!   fallback for requests above the chunk size.
//! * [`XMalloc`] — warp-level request combining over size-class free
//!   lists.
//!
//! All implement [`gpu_sim::DeviceAllocator`]; [`all_baselines`] builds
//! the full roster the benchmarks iterate over.

#![warn(missing_docs)]

pub mod cuda_heap;
pub mod ouroboros;
pub mod reg_eff;
pub mod scatter_alloc;
pub mod util;
pub mod xmalloc;

pub use cuda_heap::{CudaHeapSim, FirstFitHeap};
pub use ouroboros::{Ouroboros, OuroborosKind, QueueKind};
pub use reg_eff::{RegEff, RegEffVariant};
pub use scatter_alloc::ScatterAlloc;
pub use xmalloc::XMalloc;

use gpu_sim::DeviceAllocator;
use std::sync::Arc;

/// Build every baseline allocator at the given heap size, in the order
/// the paper's figures list them.
///
/// ```
/// use gpu_sim::{DeviceAllocator, WarpCtx};
///
/// let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
/// for a in allocators::all_baselines(16 << 20) {
///     if a.is_managing() && a.supports_size(64) {
///         let p = a.malloc(&warp.lane(0), 64);
///         assert!(!p.is_null(), "{}", a.name());
///         a.free(&warp.lane(0), p);
///     }
/// }
/// ```
pub fn all_baselines(heap_bytes: u64) -> Vec<Arc<dyn DeviceAllocator>> {
    let mut v: Vec<Arc<dyn DeviceAllocator>> = Vec::new();
    v.push(Arc::new(CudaHeapSim::new(heap_bytes)));
    for kind in [OuroborosKind::Chunk, OuroborosKind::Page] {
        for queue in [QueueKind::Static, QueueKind::VirtArray, QueueKind::VirtList] {
            v.push(Arc::new(Ouroboros::new(heap_bytes, kind, queue)));
        }
    }
    for variant in [
        RegEffVariant::A,
        RegEffVariant::AW,
        RegEffVariant::C,
        RegEffVariant::CF,
        RegEffVariant::CM,
        RegEffVariant::CFM,
    ] {
        v.push(Arc::new(RegEff::new(heap_bytes, variant)));
    }
    v.push(Arc::new(ScatterAlloc::new(heap_bytes)));
    v.push(Arc::new(XMalloc::new(heap_bytes)));
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roster_is_complete_and_distinct() {
        let all = all_baselines(32 << 20);
        // CUDA + 6 Ouroboros + 6 RegEff + ScatterAlloc + XMalloc = 15.
        assert_eq!(all.len(), 15);
        let mut names: Vec<&str> = all.iter().map(|a| a.name()).collect();
        names.sort_unstable();
        let before = names.len();
        names.dedup();
        assert_eq!(names.len(), before, "duplicate allocator names");
    }

    #[test]
    fn only_aw_is_non_managing() {
        for a in all_baselines(32 << 20) {
            assert_eq!(a.is_managing(), a.name() != "RegEff-AW", "{}", a.name());
        }
    }
}
