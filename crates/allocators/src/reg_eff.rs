//! The Register-Efficient (RegEff) allocator family (Vinkler & Havran),
//! as benchmarked by the survey and the Gallatin paper.
//!
//! The design is a lock-free list of chunks threaded through the heap
//! itself: every chunk is `[8-byte header][payload]`, and the header packs
//! the payload size with a state (free / used / dead). Allocation walks
//! the chunk list from a *rover* position, claiming a free chunk with one
//! CAS and splitting off the remainder; freeing flips the state back with
//! optional forward coalescing.
//!
//! Variants (paper §2 "RegEff", §6.2):
//!
//! * **A** — atomic: one list, every walk starts at the heap head. Lowest
//!   fragmentation, highest contention.
//! * **AW** — atomic wrapper: a single `atomicAdd` bump with a no-op free.
//!   Shown in figures as the optimal-throughput bound but excluded from
//!   comparisons because it does not manage memory (it wraps and can hand
//!   the same bytes out twice). [`gpu_sim::DeviceAllocator::is_managing`]
//!   returns `false`.
//! * **C** — circular: a shared rover remembers where the last allocation
//!   succeeded, spreading walkers around the list.
//! * **CF** — circular + fused: frees coalesce with the following free
//!   chunk (fighting the fragmentation the rover causes).
//! * **CM** — circular multi: the heap is pre-split into per-rover
//!   regions, hashed by warp. This is the survey's "fragmented into a
//!   binary heap" structure: it multiplies throughput but caps the
//!   largest possible allocation at a region (`heap / num_rovers`).
//! * **CFM** — CM + fused coalescing.

use crate::util::align_up;
use gpu_sim::{AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics};
use std::sync::atomic::{AtomicU64, Ordering};

/// Chunk states packed into the low header bits.
const FREE: u64 = 0;
const USED: u64 = 1;
/// A chunk absorbed into its predecessor by fused coalescing; walkers
/// step over it, it is never claimed or revived.
const DEAD: u64 = 2;
/// Transient: a claimer owns the chunk and is publishing its split.
/// Walkers wait out this state instead of hopping the stale full extent
/// (a stale `(USED, whole_region)` header would leap them over the entire
/// free frontier and exhaust their walk budget).
const LOCKED: u64 = 3;
const STATE_MASK: u64 = 3;

const HEADER: u64 = 8;
/// Don't split off remainders smaller than this payload.
const MIN_SPLIT: u64 = 16;
/// Rovers for the multi variants.
const NUM_ROVERS: usize = 32;

#[inline]
fn pack(state: u64, size: u64) -> u64 {
    (size << 2) | state
}

#[inline]
fn unpack(header: u64) -> (u64, u64) {
    (header & STATE_MASK, header >> 2)
}

/// Which RegEff variant an instance runs as.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum RegEffVariant {
    /// Atomic: one list, walks start at the heap head.
    A,
    /// Atomic wrapper: bump allocator with no-op free (not managing).
    AW,
    /// Circular: a shared rover spreads walkers around the list.
    C,
    /// Circular fused: C plus forward coalescing on free.
    CF,
    /// Circular multi: per-rover heap regions hashed by warp.
    CM,
    /// Circular fused multi: CM plus coalescing.
    CFM,
}

impl RegEffVariant {
    fn coalesces(self) -> bool {
        matches!(self, RegEffVariant::CF | RegEffVariant::CFM)
    }

    fn num_regions(self) -> usize {
        match self {
            RegEffVariant::CM | RegEffVariant::CFM => NUM_ROVERS,
            _ => 1,
        }
    }

    fn uses_rover(self) -> bool {
        !matches!(self, RegEffVariant::A | RegEffVariant::AW)
    }

    fn display(self) -> &'static str {
        match self {
            RegEffVariant::A => "RegEff-A",
            RegEffVariant::AW => "RegEff-AW",
            RegEffVariant::C => "RegEff-C",
            RegEffVariant::CF => "RegEff-CF",
            RegEffVariant::CM => "RegEff-CM",
            RegEffVariant::CFM => "RegEff-CFM",
        }
    }
}

/// A RegEff allocator instance.
pub struct RegEff {
    mem: DeviceMemory,
    variant: RegEffVariant,
    /// Region boundaries: region r is `[bounds[r], bounds[r+1])`.
    bounds: Vec<u64>,
    /// One rover per region: the offset where the next walk starts.
    rovers: Vec<AtomicU64>,
    /// AW bump cursor.
    bump: AtomicU64,
    reserved: AtomicU64,
    metrics: Metrics,
}

impl RegEff {
    /// Build the given variant over a fresh arena.
    pub fn new(heap_bytes: u64, variant: RegEffVariant) -> Self {
        let heap_bytes = align_up(heap_bytes, 64);
        let mem = DeviceMemory::new(heap_bytes as usize);
        let regions = variant.num_regions();
        let mut bounds = Vec::with_capacity(regions + 1);
        for r in 0..=regions {
            bounds.push(align_up(heap_bytes * r as u64 / regions as u64, 8));
        }
        *bounds.last_mut().unwrap() = heap_bytes;
        let rovers = bounds[..regions].iter().map(|&b| AtomicU64::new(b)).collect();
        let alloc = RegEff {
            mem,
            variant,
            bounds,
            rovers,
            bump: AtomicU64::new(0),
            reserved: AtomicU64::new(0),
            metrics: Metrics::new(),
        };
        alloc.init_regions();
        alloc
    }

    fn init_regions(&self) {
        for r in 0..self.variant.num_regions() {
            let (lo, hi) = (self.bounds[r], self.bounds[r + 1]);
            self.mem.store_u64(lo, pack(FREE, hi - lo - HEADER));
            self.rovers[r].store(lo, Ordering::Relaxed);
        }
    }

    #[inline]
    fn region_of(&self, ctx_hash: u64) -> usize {
        (ctx_hash as usize) % self.variant.num_regions()
    }

    /// Walk the chunk list of region `r` from `start`, claiming the first
    /// free chunk that fits. Returns the payload offset.
    fn walk_alloc(&self, r: usize, need: u64) -> DevicePtr {
        let (lo, hi) = (self.bounds[r], self.bounds[r + 1]);
        let start = if self.variant.uses_rover() {
            let s = self.rovers[r].load(Ordering::Relaxed);
            if s >= lo && s < hi {
                s
            } else {
                lo
            }
        } else {
            lo
        };
        let mut pos = start;
        let mut traveled: u64 = 0;
        let budget = 2 * (hi - lo);
        loop {
            if pos + HEADER > hi {
                pos = lo;
            }
            let header = self.mem.atomic_u64(pos).load(Ordering::Acquire);
            let (state, size) = unpack(header);
            if size == 0 || pos + HEADER + size > hi {
                // Header corrupted by a racing split we half-observed;
                // restart from the region head (rare).
                pos = lo;
                traveled += HEADER;
                if traveled > budget {
                    return DevicePtr::NULL;
                }
                continue;
            }
            if state == LOCKED {
                // A claimer is mid-split; the window is two stores, so
                // wait it out rather than hopping the stale extent.
                // (Preemption point: under deterministic scheduling the
                // mid-split claimer may be parked and must get the turn.)
                gpu_sim::spin_hint();
                traveled += 1;
                if traveled > budget {
                    return DevicePtr::NULL;
                }
                continue;
            }
            if state == FREE && size >= need {
                // Lock the WHOLE chunk first; only then, owning its full
                // extent, publish a split. (Writing a remainder header
                // before winning the claim would scribble over memory a
                // racing winner already owns.)
                let ok = self
                    .mem
                    .atomic_u64(pos)
                    .compare_exchange(
                        header,
                        pack(LOCKED, size),
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    )
                    .is_ok();
                self.metrics.count_cas(ok);
                if !ok {
                    // Lost the claim; re-examine this position.
                    continue;
                }
                let got = if size >= need + HEADER + MIN_SPLIT {
                    // Publish the remainder first (Release), then our own
                    // shrunk header, so any walker that sees the shrunk
                    // size finds a valid header at the jump target.
                    let rem_off = pos + HEADER + need;
                    self.mem
                        .atomic_u64(rem_off)
                        .store(pack(FREE, size - need - HEADER), Ordering::Release);
                    self.mem.atomic_u64(pos).store(pack(USED, need), Ordering::Release);
                    need
                } else {
                    self.mem.atomic_u64(pos).store(pack(USED, size), Ordering::Release);
                    size
                };
                if self.variant.uses_rover() {
                    self.rovers[r].store(pos + HEADER + got, Ordering::Relaxed);
                }
                self.reserved.fetch_add(got + HEADER, Ordering::Relaxed);
                return DevicePtr(pos + HEADER);
            }
            // Used, dead, or too small: advance.
            pos += HEADER + size;
            traveled += HEADER + size;
            if traveled > budget {
                return DevicePtr::NULL;
            }
        }
    }

    fn list_free(&self, ptr: DevicePtr) {
        let pos = ptr.0 - HEADER;
        let header = self.mem.atomic_u64(pos).load(Ordering::Acquire);
        let (state, mut size) = unpack(header);
        assert_eq!(state, USED, "free of non-allocated pointer at {}", ptr.0);
        self.reserved.fetch_sub(size + HEADER, Ordering::Relaxed);
        let r = self.bounds.partition_point(|&b| b <= pos).saturating_sub(1);
        let hi = self.bounds[r + 1];
        if self.variant.coalesces() {
            // Fused: absorb following free chunks (bounded walk).
            for _ in 0..4 {
                let next = pos + HEADER + size;
                if next + HEADER > hi {
                    break;
                }
                let nh = self.mem.atomic_u64(next).load(Ordering::Acquire);
                let (ns, nsize) = unpack(nh);
                if ns != FREE || nsize == 0 || next + HEADER + nsize > hi {
                    break;
                }
                let ok = self
                    .mem
                    .atomic_u64(next)
                    .compare_exchange(nh, pack(DEAD, nsize), Ordering::AcqRel, Ordering::Acquire)
                    .is_ok();
                self.metrics.count_cas(ok);
                if !ok {
                    break;
                }
                size += HEADER + nsize;
            }
        }
        self.mem.atomic_u64(pos).store(pack(FREE, size), Ordering::Release);
        self.metrics.count_rmw();
    }
}

impl DeviceAllocator for RegEff {
    fn name(&self) -> &str {
        self.variant.display()
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr {
        // Zero-size requests take the minimum granule (the
        // `DeviceAllocator::malloc` contract).
        let need = align_up(size.max(1), 8);
        let ptr = match self.variant {
            RegEffVariant::AW => {
                // One atomicAdd, wrapping; never fails, never manages.
                let heap = self.mem.len() as u64;
                let off = self.bump.fetch_add(need + HEADER, Ordering::Relaxed) % heap;
                self.metrics.count_rmw();
                if off + need <= heap {
                    DevicePtr(off)
                } else {
                    DevicePtr(0)
                }
            }
            _ => {
                let r = self.region_of(ctx.warp.warp_id);
                let p = self.walk_alloc(r, need);
                if p.is_null() && self.variant.num_regions() > 1 {
                    // Spill to the neighbor regions before giving up.
                    let mut p2 = DevicePtr::NULL;
                    for step in 1..self.variant.num_regions() {
                        let alt = (r + step) % self.variant.num_regions();
                        p2 = self.walk_alloc(alt, need);
                        if !p2.is_null() {
                            break;
                        }
                    }
                    p2
                } else {
                    p
                }
            }
        };
        self.metrics.count_malloc(!ptr.is_null());
        ptr
    }

    fn free(&self, _ctx: &LaneCtx, ptr: DevicePtr) {
        if ptr.is_null() {
            return;
        }
        self.metrics.count_free();
        if self.variant == RegEffVariant::AW {
            return; // no-op by design
        }
        self.list_free(ptr);
    }

    fn reset(&self) {
        self.init_regions();
        self.bump.store(0, Ordering::Relaxed);
        self.reserved.store(0, Ordering::Relaxed);
        self.metrics.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.mem.len() as u64
    }

    fn max_native_size(&self) -> u64 {
        // Bounded by one region's single initial chunk.
        let r = self.variant.num_regions() as u64;
        self.mem.len() as u64 / r - HEADER
    }

    fn supports_size(&self, size: u64) -> bool {
        size <= self.max_native_size()
    }

    fn is_managing(&self) -> bool {
        self.variant != RegEffVariant::AW
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            heap_bytes: self.mem.len() as u64,
            reserved_bytes: self.reserved.load(Ordering::Relaxed),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, launch_warps, DeviceConfig, WarpCtx};

    fn with_lane<R>(f: impl FnOnce(&LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    fn managed_variants() -> Vec<RegEffVariant> {
        vec![
            RegEffVariant::A,
            RegEffVariant::C,
            RegEffVariant::CF,
            RegEffVariant::CM,
            RegEffVariant::CFM,
        ]
    }

    #[test]
    fn alloc_free_roundtrip_every_variant() {
        for v in managed_variants() {
            let a = RegEff::new(1 << 20, v);
            with_lane(|l| {
                let ptrs: Vec<_> = (0..100).map(|_| a.malloc(l, 64)).collect();
                assert!(ptrs.iter().all(|p| !p.is_null()), "{v:?}");
                let mut offs: Vec<u64> = ptrs.iter().map(|p| p.0).collect();
                offs.sort_unstable();
                offs.dedup();
                assert_eq!(offs.len(), 100, "{v:?} double allocation");
                for p in ptrs {
                    a.free(l, p);
                }
                assert_eq!(a.stats().reserved_bytes, 0, "{v:?}");
            });
        }
    }

    #[test]
    fn aw_is_a_non_managing_wrapper() {
        let a = RegEff::new(1 << 16, RegEffVariant::AW);
        assert!(!a.is_managing());
        with_lane(|l| {
            let p = a.malloc(l, 32);
            assert!(!p.is_null());
            a.free(l, p); // no-op
                          // AW never runs out: it wraps.
            for _ in 0..10_000 {
                assert!(!a.malloc(l, 512).is_null());
            }
        });
    }

    #[test]
    fn multi_variants_cap_native_size_at_region() {
        let a = RegEff::new(32 << 20, RegEffVariant::CM);
        assert_eq!(a.max_native_size(), (32 << 20) / 32 - 8);
        assert!(!a.supports_size(2 << 20));
        let single = RegEff::new(32 << 20, RegEffVariant::C);
        assert!(single.supports_size(16 << 20));
    }

    #[test]
    fn exhaustion_returns_null_then_free_recovers() {
        let a = RegEff::new(1 << 14, RegEffVariant::C);
        with_lane(|l| {
            let mut ptrs = Vec::new();
            loop {
                let p = a.malloc(l, 1024);
                if p.is_null() {
                    break;
                }
                ptrs.push(p);
            }
            assert!(ptrs.len() >= 10);
            for p in &ptrs {
                a.free(l, *p);
            }
            assert!(!a.malloc(l, 1024).is_null());
        });
    }

    #[test]
    fn coalescing_variant_reassembles_regions() {
        let a = RegEff::new(1 << 14, RegEffVariant::CF);
        with_lane(|l| {
            let ptrs: Vec<_> = (0..8).map(|_| a.malloc(l, 1024)).collect();
            assert!(ptrs.iter().all(|p| !p.is_null()));
            // Free back-to-front so forward coalescing sees free chunks.
            for p in ptrs.iter().rev() {
                a.free(l, *p);
            }
            let big = a.malloc(l, 8 * 1024 + 512);
            assert!(!big.is_null(), "coalescing failed to rebuild a large chunk");
        });
    }

    #[test]
    fn concurrent_storm_no_overlap() {
        for v in [RegEffVariant::C, RegEffVariant::CFM] {
            let a = RegEff::new(4 << 20, v);
            launch_warps(DeviceConfig::with_sms(8), 512, |warp| {
                for lane in warp.lanes() {
                    let l = warp.lane(lane);
                    for round in 0..5 {
                        let size = 16 << ((l.global_tid() + round) % 5);
                        let p = a.malloc(&l, size);
                        if !p.is_null() {
                            a.memory().write_stamp(p, l.global_tid() * 100 + round);
                            assert_eq!(
                                a.memory().read_stamp(p),
                                l.global_tid() * 100 + round,
                                "{v:?} clobbered"
                            );
                            a.free(&l, p);
                        }
                    }
                }
            });
            assert_eq!(a.stats().reserved_bytes, 0, "{v:?}");
        }
    }

    #[test]
    fn a_variant_serializes_from_head() {
        // Behavioural marker: A restarts at the head, so after freeing the
        // first chunk a new allocation lands there.
        let a = RegEff::new(1 << 16, RegEffVariant::A);
        with_lane(|l| {
            let first = a.malloc(l, 64);
            let _second = a.malloc(l, 64);
            a.free(l, first);
            let third = a.malloc(l, 64);
            assert_eq!(third.0, first.0);
        });
    }

    #[test]
    fn reset_restores_capacity() {
        let a = RegEff::new(1 << 16, RegEffVariant::CM);
        launch(DeviceConfig::with_sms(4), 64, |l| {
            a.malloc(l, 256);
        });
        a.reset();
        assert_eq!(a.stats().reserved_bytes, 0);
        with_lane(|l| {
            assert!(!a.malloc(l, a.max_native_size()).is_null());
        });
    }
}
