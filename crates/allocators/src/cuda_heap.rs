//! The CUDA device-heap model: fully general, globally serialized.
//!
//! The real CUDA device `malloc` supports any size but serializes heavily
//! under concurrent access, which is why the paper calls it "often several
//! orders of magnitude slower than the current state-of-the-art" (§1) and
//! why every chunk-limited allocator uses it only as a large-allocation
//! fallback. This model reproduces that behaviour class with an
//! address-ordered first-fit free list with boundary coalescing behind a
//! single lock: correct for any size, and a global serialization point
//! whose throughput collapses as thread count grows — the shape the
//! scaling benchmarks need.
//!
//! Each allocation carries an 8-byte size header, as a device heap does.

use gpu_sim::{AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics};
use parking_lot::Mutex;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};

const HEADER: u64 = 8;

/// A globally locked first-fit free list over a *region* of somebody's
/// arena. This is the reusable core of the CUDA-heap model; Ouroboros
/// embeds one over its reserved fallback region (the paper's "50 MB in
/// the CUDA heap" / 500 MB reserve), and [`CudaHeapSim`] wraps one over a
/// whole arena.
pub struct FirstFitHeap {
    region_start: u64,
    region_len: u64,
    /// Free regions keyed by offset (address-ordered → first fit is the
    /// leftmost fit; coalescing is a neighbor lookup).
    free: Mutex<BTreeMap<u64, u64>>,
    reserved: AtomicU64,
}

impl FirstFitHeap {
    /// A heap over `[region_start, region_start + region_len)` of an
    /// arena.
    pub fn new(region_start: u64, region_len: u64) -> Self {
        assert!(region_len >= 64, "heap region too small");
        let mut map = BTreeMap::new();
        map.insert(region_start, region_len);
        FirstFitHeap {
            region_start,
            region_len,
            free: Mutex::new(map),
            reserved: AtomicU64::new(0),
        }
    }

    /// Bytes currently reserved (headers included).
    pub fn reserved_bytes(&self) -> u64 {
        self.reserved.load(Ordering::Relaxed)
    }

    /// Whether `ptr` falls inside this heap's region.
    pub fn owns(&self, ptr: DevicePtr) -> bool {
        !ptr.is_null() && ptr.0 >= self.region_start && ptr.0 < self.region_start + self.region_len
    }

    /// First-fit allocation; the size header lives in `mem`.
    pub fn malloc(&self, mem: &DeviceMemory, size: u64, metrics: &Metrics) -> DevicePtr {
        // Zero-size requests take the minimum granule (the
        // `DeviceAllocator::malloc` contract).
        let size = size.max(1);
        let need = crate::util::align_up(size, 8) + HEADER;
        metrics.count_lock();
        let mut free = self.free.lock();
        // First fit: leftmost region large enough.
        let found = free.iter().find(|(_, &len)| len >= need).map(|(&off, &len)| (off, len));
        let Some((off, len)) = found else {
            return DevicePtr::NULL;
        };
        free.remove(&off);
        if len > need {
            free.insert(off + need, len - need);
        }
        drop(free);
        mem.store_u64(off, need);
        self.reserved.fetch_add(need, Ordering::Relaxed);
        DevicePtr(off + HEADER)
    }

    /// Free with boundary-tag coalescing.
    pub fn free(&self, mem: &DeviceMemory, ptr: DevicePtr, metrics: &Metrics) {
        if ptr.is_null() {
            return;
        }
        let off = ptr.0 - HEADER;
        let len = mem.load_u64(off);
        assert!(
            len >= HEADER && off + len <= self.region_start + self.region_len,
            "corrupt heap header"
        );
        self.reserved.fetch_sub(len, Ordering::Relaxed);
        metrics.count_lock();
        let mut free = self.free.lock();
        let mut start = off;
        let mut size = len;
        // Coalesce with the predecessor…
        if let Some((&p_off, &p_len)) = free.range(..off).next_back() {
            if p_off + p_len == off {
                free.remove(&p_off);
                start = p_off;
                size += p_len;
            }
        }
        // …and the successor.
        if let Some(&s_len) = free.get(&(off + len)) {
            free.remove(&(off + len));
            size += s_len;
        }
        let prev = free.insert(start, size);
        debug_assert!(prev.is_none(), "double free at {start}");
    }

    /// Restore the whole region to one free extent. Reset-time only.
    pub fn reset(&self) {
        let mut free = self.free.lock();
        free.clear();
        free.insert(self.region_start, self.region_len);
        drop(free);
        self.reserved.store(0, Ordering::Relaxed);
    }
}

/// Globally locked first-fit heap standing in for `cudaMalloc`'s device
/// heap — see the module docs.
pub struct CudaHeapSim {
    mem: DeviceMemory,
    heap: FirstFitHeap,
    metrics: Metrics,
    name: &'static str,
}

impl CudaHeapSim {
    /// Build a device heap over a fresh arena.
    pub fn new(heap_bytes: u64) -> Self {
        Self::named(heap_bytes, "CUDA")
    }

    /// Same allocator under a different display name.
    pub fn named(heap_bytes: u64, name: &'static str) -> Self {
        let mem = DeviceMemory::new(heap_bytes as usize);
        let heap = FirstFitHeap::new(0, heap_bytes);
        CudaHeapSim { mem, heap, metrics: Metrics::new(), name }
    }

    /// Allocate without a lane context (host-side / fallback use).
    pub fn raw_malloc(&self, size: u64) -> DevicePtr {
        let p = self.heap.malloc(&self.mem, size, &self.metrics);
        self.metrics.count_malloc(!p.is_null());
        p
    }

    /// Free without a lane context.
    pub fn raw_free(&self, ptr: DevicePtr) {
        self.metrics.count_free();
        self.heap.free(&self.mem, ptr, &self.metrics);
    }
}

impl DeviceAllocator for CudaHeapSim {
    fn name(&self) -> &str {
        self.name
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, _ctx: &LaneCtx, size: u64) -> DevicePtr {
        self.raw_malloc(size)
    }

    fn free(&self, _ctx: &LaneCtx, ptr: DevicePtr) {
        self.raw_free(ptr)
    }

    fn reset(&self) {
        self.heap.reset();
        self.metrics.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.mem.len() as u64
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn stats(&self) -> AllocStats {
        AllocStats { heap_bytes: self.mem.len() as u64, reserved_bytes: self.heap.reserved_bytes() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, DeviceConfig};

    #[test]
    fn first_fit_prefers_low_addresses() {
        let h = CudaHeapSim::new(1 << 16);
        let a = h.raw_malloc(100);
        let b = h.raw_malloc(100);
        assert!(a.0 < b.0);
        h.raw_free(a);
        let c = h.raw_malloc(50);
        assert_eq!(c.0, a.0, "freed low region reused first");
    }

    #[test]
    fn coalescing_rebuilds_large_regions() {
        let h = CudaHeapSim::new(1 << 16);
        let ptrs: Vec<_> = (0..8).map(|_| h.raw_malloc(4096)).collect();
        assert!(ptrs.iter().all(|p| !p.is_null()));
        assert!(h.raw_malloc(40_000).is_null(), "fragmented");
        for p in ptrs {
            h.raw_free(p);
        }
        assert!(!h.raw_malloc(60_000).is_null(), "coalesced back to one region");
    }

    #[test]
    fn any_size_supported_up_to_heap() {
        let h = CudaHeapSim::new(1 << 20);
        let p = h.raw_malloc((1 << 20) - 16);
        assert!(!p.is_null());
        assert!(h.raw_malloc(16).is_null());
        h.raw_free(p);
        assert!(!h.raw_malloc(1).is_null());
    }

    #[test]
    fn zero_size_allocates_minimum_granule() {
        let h = CudaHeapSim::new(1 << 12);
        let a = h.raw_malloc(0);
        let b = h.raw_malloc(0);
        assert!(!a.is_null() && !b.is_null());
        assert_ne!(a.0, b.0, "zero-size allocations must be unique");
        h.raw_free(a);
        h.raw_free(b);
    }

    #[test]
    fn concurrent_allocations_are_disjoint() {
        let h = CudaHeapSim::new(1 << 20);
        let ptrs = Mutex::new(Vec::new());
        launch(DeviceConfig::default(), 1000, |l| {
            let p = h.malloc(l, 64);
            assert!(!p.is_null());
            h.memory().write_stamp(p, l.global_tid());
            ptrs.lock().push((p, l.global_tid()));
        });
        for &(p, tid) in ptrs.lock().iter() {
            assert_eq!(h.memory().read_stamp(p), tid);
        }
        let mut offs: Vec<u64> = ptrs.lock().iter().map(|&(p, _)| p.0).collect();
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 1000);
    }

    #[test]
    fn reset_restores_whole_heap() {
        let h = CudaHeapSim::new(1 << 14);
        for _ in 0..10 {
            h.raw_malloc(512);
        }
        h.reset();
        assert_eq!(h.stats().reserved_bytes, 0);
        assert!(!h.raw_malloc((1 << 14) - 16).is_null());
    }
}
