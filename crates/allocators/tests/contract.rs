//! Property-based contract tests over every baseline allocator: for any
//! operation sequence, live allocations are disjoint and in-bounds, and
//! frees recycle. The same model the Gallatin crate is held to
//! (`tests/allocator_model.rs` at the workspace root).

use allocators::all_baselines;
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, WarpCtx};
use proptest::prelude::*;

const HEAP: u64 = 8 << 20;

#[derive(Clone, Debug)]
enum Op {
    Malloc(u8),
    Free(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u8..10).prop_map(Op::Malloc), (0u16..512).prop_map(Op::Free)]
}

/// Sizes spanning each allocator's native range (≤ 8192 B so every
/// baseline can serve natively).
fn menu(idx: u8) -> u64 {
    [1u64, 8, 16, 33, 100, 256, 1000, 4096, 7000, 8192][idx as usize]
}

fn run_contract(name_filter: fn(&str) -> bool, ops: &[Op]) -> Result<(), TestCaseError> {
    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let lane = warp.lane(0);
    for a in all_baselines(HEAP) {
        if !a.is_managing() || !name_filter(a.name()) {
            continue;
        }
        // live: ptr -> (requested size, stamp)
        let mut live: Vec<(DevicePtr, u64, u64)> = Vec::new();
        let mut stamp = 0u64;
        for op in ops {
            match op {
                Op::Malloc(i) => {
                    let size = menu(*i);
                    if !a.supports_size(size) {
                        continue;
                    }
                    let p = a.malloc(&lane, size);
                    if p.is_null() {
                        continue;
                    }
                    prop_assert!(
                        p.0 + size <= a.heap_bytes(),
                        "{}: allocation out of bounds",
                        a.name()
                    );
                    stamp += 1;
                    a.memory().write_stamp(p, stamp);
                    live.push((p, size, stamp));
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, _, _) = live.swap_remove((*i as usize) % live.len());
                    a.free(&lane, p);
                }
            }
            // Every live stamp must be intact: clobbering means two live
            // allocations overlap.
            for &(p, _, s) in &live {
                prop_assert_eq!(
                    a.memory().read_stamp(p),
                    s,
                    "{}: stamp clobbered (overlap)",
                    a.name()
                );
            }
        }
        for (p, _, _) in live {
            a.free(&lane, p);
        }
        prop_assert_eq!(a.stats().reserved_bytes, 0, "{}: leak", a.name());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cuda_heap_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n == "CUDA", &ops)?;
    }

    #[test]
    fn ouroboros_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n.starts_with("Ouroboros"), &ops)?;
    }

    #[test]
    fn reg_eff_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n.starts_with("RegEff"), &ops)?;
    }

    #[test]
    fn scatter_xmalloc_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n == "ScatterAlloc" || n == "XMalloc", &ops)?;
    }
}

// ---------------------------------------------------------------------------
// Concurrent contract: the same malloc/stamp/verify/free discipline run by
// many warps at once, under both execution modes. The deterministic runs use
// a small fixed seed set; a failing seed reproduces with
// `GALLATIN_SCHED_SEED=<seed>` (see TESTING.md).
// ---------------------------------------------------------------------------

const CONCURRENT_THREADS: u64 = 256;
const ROUNDS: u64 = 4;
const SEEDS: [u64; 3] = [1, 7, 42];

/// Run the concurrent contract kernel on `a` under `cfg`: every lane does
/// [`ROUNDS`] iterations of warp-coalesced malloc → stamp → verify → free,
/// sizes drawn deterministically from the menu (filtered through
/// `supports_size` so chunk-limited baselines skip what they cannot serve).
/// Afterwards the allocator must report zero reserved bytes and pass its
/// own invariant check.
fn run_concurrent_contract(a: &dyn DeviceAllocator, cfg: DeviceConfig) {
    launch_warps(cfg, CONCURRENT_THREADS, |warp| {
        let n = warp.active as usize;
        let mut ptrs = vec![DevicePtr::NULL; n];
        for round in 0..ROUNDS {
            // Per-(warp, lane, round) size choice is a pure function, so a
            // replayed schedule re-issues the identical request sequence.
            let sizes: Vec<Option<u64>> = (0..n)
                .map(|lane| {
                    let idx = (warp.warp_id * 31 + lane as u64 * 7 + round * 13) % 10;
                    let size = menu(idx as u8);
                    a.supports_size(size).then_some(size)
                })
                .collect();
            a.warp_malloc(warp, &sizes, &mut ptrs);
            let stamp_of = |lane: usize| (round << 32) | (warp.base_tid + lane as u64 + 1);
            for (lane, p) in ptrs.iter().enumerate() {
                if !p.is_null() {
                    a.memory().write_stamp(*p, stamp_of(lane));
                }
            }
            // Every stamp must survive until the free: a clobber means two
            // live allocations overlap.
            for (lane, p) in ptrs.iter().enumerate() {
                if !p.is_null() {
                    assert_eq!(
                        a.memory().read_stamp(*p),
                        stamp_of(lane),
                        "{}: stamp clobbered (overlap)",
                        a.name()
                    );
                }
            }
            a.warp_free(warp, &ptrs);
        }
    });
    assert_eq!(a.stats().reserved_bytes, 0, "{}: leak after concurrent contract", a.name());
    if let Err(e) = a.check_invariants() {
        panic!("{}: invariant violation after concurrent contract:\n{e}", a.name());
    }
}

/// Every baseline survives the concurrent contract under the free-running
/// rayon pool.
#[test]
fn concurrent_contract_pool_mode() {
    for a in all_baselines(HEAP) {
        if !a.is_managing() {
            continue;
        }
        run_concurrent_contract(a.as_ref(), DeviceConfig::with_sms(4));
    }
}

/// Every baseline survives the concurrent contract under the deterministic
/// scheduler for each seed in the fixed set, resetting between seeds so
/// each schedule starts from a pristine heap.
#[test]
fn concurrent_contract_deterministic_seeds() {
    for a in all_baselines(HEAP) {
        if !a.is_managing() {
            continue;
        }
        for seed in SEEDS {
            run_concurrent_contract(a.as_ref(), DeviceConfig::with_sms(4).seeded(seed));
            a.reset();
        }
    }
}

// ---------------------------------------------------------------------------
// Differential sweep: the same seeded workload through every allocator
// family — the five baselines plus Gallatin itself — with every outcome
// reduced to a ledger. Allocators may legitimately differ in *policy*
// (which requests they deny), but never in *contract*: the violation
// counters must be zero for every family, which also makes them pairwise
// equal. A failing seed replays with `GALLATIN_SCHED_SEED=<seed>`, and
// `GALLATIN_SCHED_SEED=<seed> repro trace` captures Gallatin's side of
// the schedule as a Chrome trace (see TESTING.md).
// ---------------------------------------------------------------------------

use gallatin::{DevicePool, Gallatin, GallatinConfig, GallatinPool};
use std::sync::atomic::{AtomicU64, Ordering};

const DIFF_THREADS: u64 = 128;
const DIFF_ROUNDS: u64 = 3;
const DIFF_SEEDS: u64 = 16;

/// Everything observable about one allocator's run of the shared
/// workload, reduced to counters so runs can be diffed exactly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
struct OutcomeLedger {
    /// Allocation requests issued by the workload.
    attempted: u64,
    /// Requests that returned a pointer.
    served: u64,
    /// Requests refused: unsupported size or NULL (exhaustion).
    denied: u64,
    /// Stamp clobbers observed — two live allocations overlapped.
    overlaps: u64,
    /// Pointers handed out beyond the heap end.
    oob: u64,
    /// Bytes still reserved after every pointer was freed.
    leaked_bytes: u64,
}

impl OutcomeLedger {
    /// The contract projection: counters that must be zero for every
    /// correct allocator regardless of its allocation policy.
    fn violations(&self) -> (u64, u64, u64) {
        (self.overlaps, self.oob, self.leaked_bytes)
    }
}

/// All allocator families under test, freshly constructed.
fn families(heap: u64) -> Vec<std::sync::Arc<dyn DeviceAllocator>> {
    let mut v: Vec<std::sync::Arc<dyn DeviceAllocator>> =
        all_baselines(heap).into_iter().filter(|a| a.is_managing()).collect();
    v.push(std::sync::Arc::new(Gallatin::new(GallatinConfig::small_test(heap))));
    // The sharded pool over the same total heap: two instances of half
    // the budget each, so its ledger is directly comparable to the
    // single-instance families.
    v.push(std::sync::Arc::new(GallatinPool::new(2, GallatinConfig::small_test(heap / 2))));
    // The hierarchical device pool over the same total heap: two
    // one-instance devices of half the budget each, so cross-device
    // routing and the interconnect layer face the same workload ledger.
    v.push(std::sync::Arc::new(DevicePool::new(2, 1, GallatinConfig::small_test(heap / 2))));
    v
}

/// Run the shared seeded workload on `a` and reduce it to a ledger: a
/// few rounds of warp-coalesced malloc → stamp → verify → free with
/// sizes drawn per (seed, warp, lane, round) from the menu. Violations
/// are *counted*, not asserted, so differing families produce
/// comparable ledgers instead of differently-located panics.
fn outcome_ledger(a: &dyn DeviceAllocator, seed: u64) -> OutcomeLedger {
    let attempted = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let denied = AtomicU64::new(0);
    let overlaps = AtomicU64::new(0);
    let oob = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(4).seeded(seed), DIFF_THREADS, |warp| {
        let n = warp.active as usize;
        let mut ptrs = vec![DevicePtr::NULL; n];
        for round in 0..DIFF_ROUNDS {
            let sizes: Vec<Option<u64>> = (0..n)
                .map(|lane| {
                    let idx = (seed * 17 + warp.warp_id * 31 + lane as u64 * 7 + round * 13) % 10;
                    let size = menu(idx as u8);
                    attempted.fetch_add(1, Ordering::Relaxed);
                    if a.supports_size(size) {
                        Some(size)
                    } else {
                        denied.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                })
                .collect();
            a.warp_malloc(warp, &sizes, &mut ptrs);
            let stamp_of = |lane: usize| (round << 32) | (warp.base_tid + lane as u64 + 1);
            for lane in 0..n {
                match (sizes[lane], ptrs[lane]) {
                    (Some(size), p) if !p.is_null() => {
                        served.fetch_add(1, Ordering::Relaxed);
                        if p.0 + size > a.heap_bytes() {
                            oob.fetch_add(1, Ordering::Relaxed);
                        } else {
                            a.memory().write_stamp(p, stamp_of(lane));
                        }
                    }
                    (Some(_), _) => {
                        denied.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
            for lane in 0..n {
                let p = ptrs[lane];
                if !p.is_null()
                    && p.0 + sizes[lane].unwrap_or(0) <= a.heap_bytes()
                    && a.memory().read_stamp(p) != stamp_of(lane)
                {
                    overlaps.fetch_add(1, Ordering::Relaxed);
                }
            }
            a.warp_free(warp, &ptrs);
        }
    });
    OutcomeLedger {
        attempted: attempted.into_inner(),
        served: served.into_inner(),
        denied: denied.into_inner(),
        overlaps: overlaps.into_inner(),
        oob: oob.into_inner(),
        leaked_bytes: a.stats().reserved_bytes,
    }
}

/// The 16-seed differential matrix: every family runs every seed, every
/// ledger balances, and the violation projection is zero everywhere —
/// checked both directly and as an explicit pairwise diff so a future
/// nonzero names the diverging pair of families.
#[test]
fn differential_sweep_contract_projection_agrees_across_families() {
    for seed in 0..DIFF_SEEDS {
        let fams = families(HEAP);
        let mut ledgers: Vec<(String, OutcomeLedger)> = Vec::new();
        for a in &fams {
            let led = outcome_ledger(a.as_ref(), seed);
            assert_eq!(
                led.attempted,
                led.served + led.denied,
                "{} seed {seed}: ledger does not balance: {led:?}",
                a.name()
            );
            assert!(led.served > 0, "{} seed {seed}: workload never got served", a.name());
            ledgers.push((a.name().to_string(), led));
        }
        for (name, led) in &ledgers {
            assert_eq!(
                led.violations(),
                (0, 0, 0),
                "{name} violated the contract on seed {seed} \
                 (overlaps, oob, leaked_bytes) — replay with GALLATIN_SCHED_SEED={seed}"
            );
        }
        for pair in ledgers.windows(2) {
            assert_eq!(
                pair[0].1.violations(),
                pair[1].1.violations(),
                "families {} and {} diverge on seed {seed}",
                pair[0].0,
                pair[1].0
            );
        }
    }
}

// ---------------------------------------------------------------------------
// Adversarial scenario sweep: the workload-engine generators (fragmentation
// attack, size-class flipper, skewed-SM hotspot, OOM-pressure ramp — see
// `bench::workload::adversarial`) run through every family over the same
// seed range as the differential sweep. Policy may differ (denial counts
// under OOM pressure legitimately vary per family); the contract projection
// must be zero everywhere. A failing (scenario, seed) pair dumps its exact
// script as a `gallatin-replay-v1` artifact (GALLATIN_REPLAY_DIR, default
// target/replay) for upload next to the lifecycle traces.
// ---------------------------------------------------------------------------

use bench::workload::{all_scenarios, dump_script, run_script};

/// Override the adversarial seed count (CI smoke uses a small value; the
/// default matches the differential sweep's 16).
const ADV_SEEDS_ENV: &str = "GALLATIN_ADV_SEEDS";

/// Device width for the adversarial sweep, matching the differential
/// sweep so hotspot skew and pool home-routing line up.
const ADV_SMS: u32 = 4;

fn adv_seeds() -> u64 {
    match std::env::var(ADV_SEEDS_ENV) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{ADV_SEEDS_ENV} must be a u64, got {s:?}")),
        Err(_) => DIFF_SEEDS,
    }
}

/// Every adversarial scenario × seed × family: ledgers balance, some
/// requests are served, the violation projection is zero, and therefore
/// pairwise equal across families. Failures ship the generated script.
#[test]
fn adversarial_scenarios_hold_across_all_families() {
    let seeds = adv_seeds();
    for scenario in all_scenarios(HEAP, ADV_SMS) {
        for seed in 0..seeds {
            let script = scenario.script(seed);
            script.validate().unwrap_or_else(|e| {
                panic!("{} seed {seed}: generator produced a bad script: {e}", scenario.name())
            });
            let mut ledgers = Vec::new();
            for a in families(HEAP) {
                let out = run_script(
                    a.as_ref(),
                    DeviceConfig::with_sms(ADV_SMS).seeded(seed),
                    &script,
                    true,
                );
                if out.attempted != out.served + out.denied
                    || out.served == 0
                    || out.violations() != (0, 0, 0)
                {
                    let dumped = dump_script(scenario.name(), seed, &script)
                        .map(|p| p.display().to_string())
                        .unwrap_or_else(|| "<dump failed>".to_string());
                    panic!(
                        "{} broke scenario {} on seed {seed}: {out:?}\n\
                         script dumped to {dumped} — replay with GALLATIN_SCHED_SEED={seed}",
                        a.name(),
                        scenario.name()
                    );
                }
                ledgers.push((a.name().to_string(), out));
            }
            for pair in ledgers.windows(2) {
                assert_eq!(
                    pair[0].1.violations(),
                    pair[1].1.violations(),
                    "families {} and {} diverge on scenario {} seed {seed}",
                    pair[0].0,
                    pair[1].0,
                    scenario.name()
                );
            }
        }
    }
}

/// Same scenario, same seed, fresh allocator ⇒ identical outcome: the
/// adversarial sweep is deterministic evidence, like the differential one.
#[test]
fn adversarial_outcomes_replay_per_seed() {
    for scenario in all_scenarios(HEAP, ADV_SMS) {
        let script = scenario.script(3);
        let a = Gallatin::new(GallatinConfig::small_test(HEAP));
        let device = DeviceConfig::with_sms(ADV_SMS).seeded(3);
        let first = run_script(&a, device, &script, true);
        a.reset();
        let second = run_script(&a, device, &script, true);
        assert_eq!(first, second, "{}: seed 3 must replay identically", scenario.name());
    }
}

// ---------------------------------------------------------------------------
// Elastic interleaving: arbitrary donate/shrink/grow/compact maintenance
// interleaved between the pool's workload launches must be *contract-
// invisible* — the violation projection stays (0, 0, 0) and therefore
// pairwise equal with every family running the plain workload. Donation
// re-homes only quiescent free segments, shrink/grow move capacity through
// the pool free list, and compaction migrates a pinned live set whose
// payload stamps must survive every relocation.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum MaintOp {
    /// Donate up to `max` free segments from `from` to the other instance.
    Donate { from: usize, max: u64 },
    /// Park up to `max` of instance `at`'s free segments on the pool list.
    Shrink { at: usize, max: u64 },
    /// Adopt up to `max` parked segments into instance `at`.
    Grow { at: usize, max: u64 },
    /// Compact the pinned live set (migrate out of sparse segments).
    Compact,
}

fn maint_strategy() -> impl Strategy<Value = MaintOp> {
    prop_oneof![
        (0usize..2, 1u64..4).prop_map(|(from, max)| MaintOp::Donate { from, max }),
        (0usize..2, 1u64..4).prop_map(|(at, max)| MaintOp::Shrink { at, max }),
        (0usize..2, 1u64..4).prop_map(|(at, max)| MaintOp::Grow { at, max }),
        Just(MaintOp::Compact),
    ]
}

/// The differential workload on a two-instance pool, split into one
/// launch per round with a slice of the maintenance schedule applied
/// between launches. A pinned set of stamped allocations (one per small
/// class) lives across the whole run so compaction has real payloads to
/// migrate; relocations rewrite the pinned pointers and the stamps must
/// still read back at the end. Reduced to the same [`OutcomeLedger`] as
/// the plain families.
fn pool_ledger_with_maintenance(seed: u64, ops: &[MaintOp]) -> OutcomeLedger {
    let pool = GallatinPool::new(2, GallatinConfig::small_test(HEAP / 2));
    let host = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let lane = host.lane(0);
    let mut pinned: Vec<(DevicePtr, u64, u64)> = Vec::new();
    for (k, size) in [16u64, 33, 100, 256, 1000].into_iter().enumerate() {
        let p = pool.malloc(&lane, size);
        if !p.is_null() {
            let stamp = 0xE1A5_7100 + k as u64;
            pool.memory().write_stamp(p, stamp);
            pinned.push((p, size, stamp));
        }
    }
    let attempted = AtomicU64::new(0);
    let served = AtomicU64::new(0);
    let denied = AtomicU64::new(0);
    let overlaps = AtomicU64::new(0);
    let oob = AtomicU64::new(0);
    for round in 0..DIFF_ROUNDS {
        launch_warps(DeviceConfig::with_sms(4).seeded(seed ^ (round << 8)), DIFF_THREADS, |warp| {
            let n = warp.active as usize;
            let mut ptrs = vec![DevicePtr::NULL; n];
            let sizes: Vec<Option<u64>> = (0..n)
                .map(|l| {
                    let idx = (seed * 17 + warp.warp_id * 31 + l as u64 * 7 + round * 13) % 10;
                    let size = menu(idx as u8);
                    attempted.fetch_add(1, Ordering::Relaxed);
                    if pool.supports_size(size) {
                        Some(size)
                    } else {
                        denied.fetch_add(1, Ordering::Relaxed);
                        None
                    }
                })
                .collect();
            pool.warp_malloc(warp, &sizes, &mut ptrs);
            let stamp_of = |l: usize| (round << 32) | (warp.base_tid + l as u64 + 1);
            for l in 0..n {
                match (sizes[l], ptrs[l]) {
                    (Some(size), p) if !p.is_null() => {
                        served.fetch_add(1, Ordering::Relaxed);
                        if p.0 + size > pool.heap_bytes() {
                            oob.fetch_add(1, Ordering::Relaxed);
                        } else {
                            pool.memory().write_stamp(p, stamp_of(l));
                        }
                    }
                    (Some(_), _) => {
                        denied.fetch_add(1, Ordering::Relaxed);
                    }
                    _ => {}
                }
            }
            for l in 0..n {
                let p = ptrs[l];
                if !p.is_null() && pool.memory().read_stamp(p) != stamp_of(l) {
                    overlaps.fetch_add(1, Ordering::Relaxed);
                }
            }
            pool.warp_free(warp, &ptrs);
        });
        // This round's slice of the maintenance schedule (round-robin so
        // every op lands between two different launches).
        for op in ops.iter().skip(round as usize).step_by(DIFF_ROUNDS as usize) {
            match *op {
                MaintOp::Donate { from, max } => {
                    if let Err(e) = pool.donate(from, 1 - from, max) {
                        panic!("donation bounced without planted corruption: {e}");
                    }
                }
                MaintOp::Shrink { at, max } => {
                    pool.shrink_instance(at, max);
                }
                MaintOp::Grow { at, max } => {
                    pool.grow(at, max);
                }
                MaintOp::Compact => {
                    let live: Vec<(DevicePtr, u64)> =
                        pinned.iter().map(|&(p, s, _)| (p, s)).collect();
                    for r in pool.compact(&live, 0.9) {
                        if let Some(e) = pinned.iter_mut().find(|e| e.0 == r.old) {
                            e.0 = r.new;
                        }
                    }
                }
            }
        }
        if let Err(e) = pool.check_invariants() {
            panic!("invariants violated after round {round} maintenance (seed {seed}):\n{e}");
        }
    }
    for &(p, _, s) in &pinned {
        if pool.memory().read_stamp(p) != s {
            overlaps.fetch_add(1, Ordering::Relaxed);
        }
    }
    for &(p, _, _) in &pinned {
        pool.free(&lane, p);
    }
    OutcomeLedger {
        attempted: attempted.into_inner(),
        served: served.into_inner(),
        denied: denied.into_inner(),
        overlaps: overlaps.into_inner(),
        oob: oob.into_inner(),
        leaked_bytes: pool.stats().reserved_bytes,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Any interleaving of donate/shrink/grow/compact with the shared
    /// workload keeps the violation projection zero — and thus pairwise
    /// equal with every family of the differential sweep running the
    /// plain workload on the same seed.
    #[test]
    fn elastic_maintenance_is_contract_invisible(
        seed in 0u64..4,
        ops in prop::collection::vec(maint_strategy(), 1..10),
    ) {
        let maint = pool_ledger_with_maintenance(seed, &ops);
        prop_assert_eq!(
            maint.attempted, maint.served + maint.denied,
            "maintenance ledger does not balance: {:?} under {:?}", maint, ops
        );
        prop_assert!(maint.served > 0, "workload never got served under {:?}", ops);
        prop_assert_eq!(
            maint.violations(), (0, 0, 0),
            "maintenance interleaving broke the contract: {:?} under {:?}", maint, ops
        );
        for a in families(HEAP) {
            let led = outcome_ledger(a.as_ref(), seed);
            prop_assert_eq!(
                led.violations(), maint.violations(),
                "family {} diverges from the maintained pool on seed {}", a.name(), seed
            );
        }
    }
}

/// Same seed, same family, fresh heap ⇒ the *entire* ledger replays
/// identically — the differential sweep is deterministic evidence, not a
/// flaky sample.
#[test]
fn differential_sweep_ledgers_replay_per_seed() {
    for a in families(HEAP) {
        let first = outcome_ledger(a.as_ref(), 0);
        a.reset();
        let second = outcome_ledger(a.as_ref(), 0);
        assert_eq!(
            first,
            second,
            "{}: seed 0 must replay to an identical ledger (GALLATIN_SCHED_SEED=0)",
            a.name()
        );
    }
}
