//! Property-based contract tests over every baseline allocator: for any
//! operation sequence, live allocations are disjoint and in-bounds, and
//! frees recycle. The same model the Gallatin crate is held to
//! (`tests/allocator_model.rs` at the workspace root).

use allocators::all_baselines;
use gpu_sim::{DeviceAllocator, DevicePtr, WarpCtx};
use proptest::prelude::*;

const HEAP: u64 = 8 << 20;

#[derive(Clone, Debug)]
enum Op {
    Malloc(u8),
    Free(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u8..10).prop_map(Op::Malloc), (0u16..512).prop_map(Op::Free)]
}

/// Sizes spanning each allocator's native range (≤ 8192 B so every
/// baseline can serve natively).
fn menu(idx: u8) -> u64 {
    [1u64, 8, 16, 33, 100, 256, 1000, 4096, 7000, 8192][idx as usize]
}

fn run_contract(name_filter: fn(&str) -> bool, ops: &[Op]) -> Result<(), TestCaseError> {
    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let lane = warp.lane(0);
    for a in all_baselines(HEAP) {
        if !a.is_managing() || !name_filter(a.name()) {
            continue;
        }
        // live: ptr -> (requested size, stamp)
        let mut live: Vec<(DevicePtr, u64, u64)> = Vec::new();
        let mut stamp = 0u64;
        for op in ops {
            match op {
                Op::Malloc(i) => {
                    let size = menu(*i);
                    if !a.supports_size(size) {
                        continue;
                    }
                    let p = a.malloc(&lane, size);
                    if p.is_null() {
                        continue;
                    }
                    prop_assert!(
                        p.0 + size <= a.heap_bytes(),
                        "{}: allocation out of bounds",
                        a.name()
                    );
                    stamp += 1;
                    a.memory().write_stamp(p, stamp);
                    live.push((p, size, stamp));
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, _, _) = live.swap_remove((*i as usize) % live.len());
                    a.free(&lane, p);
                }
            }
            // Every live stamp must be intact: clobbering means two live
            // allocations overlap.
            for &(p, _, s) in &live {
                prop_assert_eq!(
                    a.memory().read_stamp(p),
                    s,
                    "{}: stamp clobbered (overlap)",
                    a.name()
                );
            }
        }
        for (p, _, _) in live {
            a.free(&lane, p);
        }
        prop_assert_eq!(a.stats().reserved_bytes, 0, "{}: leak", a.name());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cuda_heap_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n == "CUDA", &ops)?;
    }

    #[test]
    fn ouroboros_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n.starts_with("Ouroboros"), &ops)?;
    }

    #[test]
    fn reg_eff_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n.starts_with("RegEff"), &ops)?;
    }

    #[test]
    fn scatter_xmalloc_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n == "ScatterAlloc" || n == "XMalloc", &ops)?;
    }
}
