//! Property-based contract tests over every baseline allocator: for any
//! operation sequence, live allocations are disjoint and in-bounds, and
//! frees recycle. The same model the Gallatin crate is held to
//! (`tests/allocator_model.rs` at the workspace root).

use allocators::all_baselines;
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, WarpCtx};
use proptest::prelude::*;

const HEAP: u64 = 8 << 20;

#[derive(Clone, Debug)]
enum Op {
    Malloc(u8),
    Free(u16),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![(0u8..10).prop_map(Op::Malloc), (0u16..512).prop_map(Op::Free)]
}

/// Sizes spanning each allocator's native range (≤ 8192 B so every
/// baseline can serve natively).
fn menu(idx: u8) -> u64 {
    [1u64, 8, 16, 33, 100, 256, 1000, 4096, 7000, 8192][idx as usize]
}

fn run_contract(name_filter: fn(&str) -> bool, ops: &[Op]) -> Result<(), TestCaseError> {
    let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let lane = warp.lane(0);
    for a in all_baselines(HEAP) {
        if !a.is_managing() || !name_filter(a.name()) {
            continue;
        }
        // live: ptr -> (requested size, stamp)
        let mut live: Vec<(DevicePtr, u64, u64)> = Vec::new();
        let mut stamp = 0u64;
        for op in ops {
            match op {
                Op::Malloc(i) => {
                    let size = menu(*i);
                    if !a.supports_size(size) {
                        continue;
                    }
                    let p = a.malloc(&lane, size);
                    if p.is_null() {
                        continue;
                    }
                    prop_assert!(
                        p.0 + size <= a.heap_bytes(),
                        "{}: allocation out of bounds",
                        a.name()
                    );
                    stamp += 1;
                    a.memory().write_stamp(p, stamp);
                    live.push((p, size, stamp));
                }
                Op::Free(i) => {
                    if live.is_empty() {
                        continue;
                    }
                    let (p, _, _) = live.swap_remove((*i as usize) % live.len());
                    a.free(&lane, p);
                }
            }
            // Every live stamp must be intact: clobbering means two live
            // allocations overlap.
            for &(p, _, s) in &live {
                prop_assert_eq!(
                    a.memory().read_stamp(p),
                    s,
                    "{}: stamp clobbered (overlap)",
                    a.name()
                );
            }
        }
        for (p, _, _) in live {
            a.free(&lane, p);
        }
        prop_assert_eq!(a.stats().reserved_bytes, 0, "{}: leak", a.name());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cuda_heap_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n == "CUDA", &ops)?;
    }

    #[test]
    fn ouroboros_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n.starts_with("Ouroboros"), &ops)?;
    }

    #[test]
    fn reg_eff_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n.starts_with("RegEff"), &ops)?;
    }

    #[test]
    fn scatter_xmalloc_contract(ops in prop::collection::vec(op_strategy(), 1..200)) {
        run_contract(|n| n == "ScatterAlloc" || n == "XMalloc", &ops)?;
    }
}

// ---------------------------------------------------------------------------
// Concurrent contract: the same malloc/stamp/verify/free discipline run by
// many warps at once, under both execution modes. The deterministic runs use
// a small fixed seed set; a failing seed reproduces with
// `GALLATIN_SCHED_SEED=<seed>` (see TESTING.md).
// ---------------------------------------------------------------------------

const CONCURRENT_THREADS: u64 = 256;
const ROUNDS: u64 = 4;
const SEEDS: [u64; 3] = [1, 7, 42];

/// Run the concurrent contract kernel on `a` under `cfg`: every lane does
/// [`ROUNDS`] iterations of warp-coalesced malloc → stamp → verify → free,
/// sizes drawn deterministically from the menu (filtered through
/// `supports_size` so chunk-limited baselines skip what they cannot serve).
/// Afterwards the allocator must report zero reserved bytes and pass its
/// own invariant check.
fn run_concurrent_contract(a: &dyn DeviceAllocator, cfg: DeviceConfig) {
    launch_warps(cfg, CONCURRENT_THREADS, |warp| {
        let n = warp.active as usize;
        let mut ptrs = vec![DevicePtr::NULL; n];
        for round in 0..ROUNDS {
            // Per-(warp, lane, round) size choice is a pure function, so a
            // replayed schedule re-issues the identical request sequence.
            let sizes: Vec<Option<u64>> = (0..n)
                .map(|lane| {
                    let idx = (warp.warp_id * 31 + lane as u64 * 7 + round * 13) % 10;
                    let size = menu(idx as u8);
                    a.supports_size(size).then_some(size)
                })
                .collect();
            a.warp_malloc(warp, &sizes, &mut ptrs);
            let stamp_of = |lane: usize| (round << 32) | (warp.base_tid + lane as u64 + 1);
            for lane in 0..n {
                if !ptrs[lane].is_null() {
                    a.memory().write_stamp(ptrs[lane], stamp_of(lane));
                }
            }
            // Every stamp must survive until the free: a clobber means two
            // live allocations overlap.
            for lane in 0..n {
                if !ptrs[lane].is_null() {
                    assert_eq!(
                        a.memory().read_stamp(ptrs[lane]),
                        stamp_of(lane),
                        "{}: stamp clobbered (overlap)",
                        a.name()
                    );
                }
            }
            a.warp_free(warp, &ptrs);
        }
    });
    assert_eq!(a.stats().reserved_bytes, 0, "{}: leak after concurrent contract", a.name());
    if let Err(e) = a.check_invariants() {
        panic!("{}: invariant violation after concurrent contract:\n{e}", a.name());
    }
}

/// Every baseline survives the concurrent contract under the free-running
/// rayon pool.
#[test]
fn concurrent_contract_pool_mode() {
    for a in all_baselines(HEAP) {
        if !a.is_managing() {
            continue;
        }
        run_concurrent_contract(a.as_ref(), DeviceConfig::with_sms(4));
    }
}

/// Every baseline survives the concurrent contract under the deterministic
/// scheduler for each seed in the fixed set, resetting between seeds so
/// each schedule starts from a pristine heap.
#[test]
fn concurrent_contract_deterministic_seeds() {
    for a in all_baselines(HEAP) {
        if !a.is_managing() {
            continue;
        }
        for seed in SEEDS {
            run_concurrent_contract(a.as_ref(), DeviceConfig::with_sms(4).seeded(seed));
            a.reset();
        }
    }
}
