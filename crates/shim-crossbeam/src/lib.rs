//! Offline stand-in for the `crossbeam` crate (see the workspace
//! `Cargo.toml` for why external dependencies are vendored as shims).
//!
//! Only `crossbeam::queue::{ArrayQueue, SegQueue}` are used by this
//! workspace (the Ouroboros baseline's chunk queues). The shims keep the
//! exact API and linearizable semantics but back the queues with a
//! `std::sync::Mutex<VecDeque>` instead of lock-free arrays — fine for a
//! correctness simulator, where queue throughput is not what is being
//! measured. Neither type yields to the deterministic scheduler while
//! the internal lock is held, so they behave as single atomic steps.

pub mod queue {
    use std::collections::VecDeque;
    use std::sync::{Mutex, PoisonError};

    /// Bounded MPMC queue with `crossbeam::queue::ArrayQueue`'s API.
    pub struct ArrayQueue<T> {
        cap: usize,
        items: Mutex<VecDeque<T>>,
    }

    impl<T> ArrayQueue<T> {
        pub fn new(cap: usize) -> Self {
            assert!(cap > 0, "capacity must be non-zero");
            ArrayQueue { cap, items: Mutex::new(VecDeque::with_capacity(cap)) }
        }

        /// Push; returns the value back if the queue is full.
        pub fn push(&self, value: T) -> Result<(), T> {
            let mut q = self.items.lock().unwrap_or_else(PoisonError::into_inner);
            if q.len() == self.cap {
                Err(value)
            } else {
                q.push_back(value);
                Ok(())
            }
        }

        pub fn pop(&self) -> Option<T> {
            self.items.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
        }

        pub fn len(&self) -> usize {
            self.items.lock().unwrap_or_else(PoisonError::into_inner).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }

        pub fn capacity(&self) -> usize {
            self.cap
        }
    }

    /// Unbounded MPMC queue with `crossbeam::queue::SegQueue`'s API.
    pub struct SegQueue<T> {
        items: Mutex<VecDeque<T>>,
    }

    impl<T> SegQueue<T> {
        pub fn new() -> Self {
            SegQueue { items: Mutex::new(VecDeque::new()) }
        }

        pub fn push(&self, value: T) {
            self.items.lock().unwrap_or_else(PoisonError::into_inner).push_back(value);
        }

        pub fn pop(&self) -> Option<T> {
            self.items.lock().unwrap_or_else(PoisonError::into_inner).pop_front()
        }

        pub fn len(&self) -> usize {
            self.items.lock().unwrap_or_else(PoisonError::into_inner).len()
        }

        pub fn is_empty(&self) -> bool {
            self.len() == 0
        }
    }

    impl<T> Default for SegQueue<T> {
        fn default() -> Self {
            Self::new()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::queue::{ArrayQueue, SegQueue};

    #[test]
    fn array_queue_bounded_fifo() {
        let q = ArrayQueue::new(2);
        assert!(q.push(1).is_ok());
        assert!(q.push(2).is_ok());
        assert_eq!(q.push(3), Err(3));
        assert_eq!(q.pop(), Some(1));
        assert_eq!(q.pop(), Some(2));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn seg_queue_unbounded_fifo() {
        let q = SegQueue::new();
        for i in 0..100 {
            q.push(i);
        }
        for i in 0..100 {
            assert_eq!(q.pop(), Some(i));
        }
        assert_eq!(q.pop(), None);
    }
}
