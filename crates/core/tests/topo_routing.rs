//! Device-level routing in the hierarchical topology pool (ISSUE 10
//! acceptance), mirroring `pool_routing.rs` one layer up:
//!
//! * property: a pointer malloc'd on device `i` (SM affinity chooses
//!   `i`, and the instance within it) and freed from a lane pinned to
//!   an arbitrary device `j` routes home through the `(device,
//!   instance)` tables, for arbitrary `(devices × width × SM × size
//!   class)` combinations — the pointer→device→instance round-trip;
//! * seeded sweep: churn with rotated cross-device frees shows zero
//!   leaks and zero double frees in the lifecycle ledger across
//!   `GALLATIN_TOPO_SEEDS` deterministic schedule seeds (default 16;
//!   CI quick uses 4);
//! * spill regression: exhausting a whole device crosses the
//!   interconnect deterministically, the spilled events carry the peer
//!   device's tag, and the trace replays byte-identically under the
//!   same seed;
//! * the global allocator can be topology-backed
//!   (`init_global_device_pool`), exercised here because this
//!   integration binary is its own process.

use gallatin::global::{
    global_allocator, global_allocator_initialized, global_check_invariants, global_device_pool,
    global_free, global_malloc, init_global_device_pool,
};
use gallatin::{DevicePool, GallatinConfig};
use gpu_sim::trace::{self, Ledger, TraceSink};
use gpu_sim::{launch, launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, WarpCtx};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const HEAP: u64 = 1 << 20; // per instance: 16 small_test segments
const WARPS: u64 = 8;

/// Seed sweep width, overridable by `GALLATIN_TOPO_SEEDS` (the CI quick
/// lane sets 4).
fn topo_seeds() -> u64 {
    std::env::var("GALLATIN_TOPO_SEEDS")
        .ok()
        .map(|s| s.parse().expect("GALLATIN_TOPO_SEEDS must be a u64"))
        .unwrap_or(16)
}

/// One seeded round: every warp mallocs a mixed batch on its affinity
/// device, then a second kernel frees each warp's batch from the *next*
/// warp — one SM over, hence (for multi-device topologies) routinely
/// one device over. The armed ledger proves every free found its owner.
fn routed_churn(seed: u64, devices: u32, width: usize) {
    let pool = Arc::new(DevicePool::new(devices, width, GallatinConfig::small_test(HEAP)));
    let num_sms = devices * width as u32;
    let device_bytes = pool.stride() * width as u64;
    let sink = Arc::new(TraceSink::new());
    sink.set_leak_check(true);
    trace::with_sink(sink.clone(), || {
        // (malloc home device, batch) per warp, for the rotated pass.
        let slots: Vec<Mutex<(usize, Vec<DevicePtr>)>> =
            (0..WARPS).map(|_| Mutex::new((0, Vec::new()))).collect();
        launch_warps(DeviceConfig::with_sms(num_sms).seeded(seed), WARPS * 32, |warp| {
            let k = warp.active as usize;
            let sizes: Vec<Option<u64>> =
                (0..k).map(|l| Some(16u64 << ((warp.base_tid as usize + l) % 4))).collect();
            let mut out = vec![DevicePtr::NULL; k];
            pool.warp_malloc(warp, &sizes, &mut out);
            let home = warp.sm_id as usize % devices as usize;
            for p in &out {
                assert!(!p.is_null(), "per-device heap must not exhaust");
                assert_eq!(
                    (p.0 / device_bytes) as usize,
                    home,
                    "an uncontended topology places on the affinity device"
                );
            }
            *slots[warp.warp_id as usize].lock().unwrap() = (home, out);
        });
        assert_eq!(pool.total_cross_spills(), 0, "this workload fits every home device");
        // Rotated frees: warp w returns warp (w+1)'s batch.
        let cross = AtomicU64::new(0);
        launch_warps(DeviceConfig::with_sms(num_sms).seeded(seed ^ 0x5eed), WARPS * 32, |warp| {
            let victim = ((warp.warp_id + 1) % WARPS) as usize;
            let (owner_home, ptrs) = slots[victim].lock().unwrap().clone();
            if warp.sm_id as usize % devices as usize != owner_home {
                cross.fetch_add(1, Ordering::Relaxed);
            }
            pool.warp_free(warp, &ptrs);
        });
        if devices > 1 {
            assert!(
                cross.load(Ordering::Relaxed) > 0,
                "rotation must exercise the cross-device path"
            );
            assert!(pool.topo_stats().peer_accesses > 0, "peer frees must be classified");
        }
        assert_eq!(pool.stats().reserved_bytes, 0, "every routed free reached its owner");
        let ledger = Ledger::build(&sink.snapshot());
        assert!(ledger.live.is_empty(), "seed {seed}: cross-device leaks: {:?}", ledger.live);
        assert!(
            ledger.double_frees.is_empty(),
            "seed {seed}: mis-routed frees: {:?}",
            ledger.double_frees
        );
        pool.check_invariants().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    });
}

#[test]
fn cross_device_frees_route_home_across_seeds() {
    for seed in 0..topo_seeds() {
        routed_churn(seed, 2, 2);
    }
}

#[test]
fn wider_topologies_route_the_same_way() {
    for seed in [3, 11] {
        routed_churn(seed, 4, 2);
        routed_churn(seed, 3, 1);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: SM affinity picks device `i` and instance
    /// `i'` within it; a warp on an arbitrary other SM frees; the
    /// reservation comes back to zero — the free routed home purely by
    /// the pointer→device→instance tables.
    #[test]
    fn pointer_mallocd_on_device_i_freed_from_j_routes_home(
        devices in 1u32..=4,
        width in 1usize..=2,
        malloc_sm in 0u32..8,
        free_sm in 0u32..8,
        count in 1usize..=32,
        class_skew in 0usize..5,
    ) {
        let pool = DevicePool::new(devices, width, GallatinConfig::small_test(HEAP));
        let device_bytes = pool.stride() * width as u64;
        let seg_bytes = pool.pool(0).instance(0).geometry().segment_bytes;
        let wm = WarpCtx { warp_id: 0, sm_id: malloc_sm, base_tid: 0, active: count as u32 };
        let sizes: Vec<Option<u64>> =
            (0..count).map(|l| Some(16u64 << ((l + class_skew) % 5))).collect();
        let mut out = vec![DevicePtr::NULL; count];
        pool.warp_malloc(&wm, &sizes, &mut out);
        let home_dev = malloc_sm as usize % devices as usize;
        let home_inst = malloc_sm as usize % width;
        for p in &out {
            prop_assert!(!p.is_null());
            // Pointer → physical device → instance round-trip: the
            // flat instance index decomposes as device × width + local.
            prop_assert_eq!(
                (p.0 / device_bytes) as usize, home_dev,
                "a fresh topology serves from the affinity device"
            );
            prop_assert_eq!(
                (p.0 / pool.stride()) as usize, home_dev * width + home_inst,
                "…and from the affinity instance within it"
            );
            // The routing table agrees with the physical placement
            // (no donations have moved anything yet).
            prop_assert_eq!(pool.home_of_segment(p.0 / seg_bytes), home_dev);
        }
        prop_assert_eq!(pool.total_cross_spills(), 0);
        let wf = WarpCtx { warp_id: 1, sm_id: free_sm, base_tid: 1 << 20, active: count as u32 };
        pool.warp_free(&wf, &out);
        prop_assert_eq!(
            pool.stats().reserved_bytes, 0,
            "a free from device {} must route to owner {}",
            free_sm as usize % devices as usize, home_dev
        );
        pool.check_invariants().map_err(TestCaseError::fail)?;
    }
}

/// Exhaust device 0 wholesale from SM 0 and overflow once; return the
/// cross-spill counters and the trace export for replay comparison.
fn spill_run(seed: u64) -> (u64, u64, String) {
    let pool = Arc::new(DevicePool::new(2, 1, GallatinConfig::small_test(HEAP)));
    let device_bytes = pool.stride();
    let sink = Arc::new(TraceSink::new());
    sink.set_leak_check(true);
    let export = trace::with_sink(sink.clone(), || {
        launch_warps(DeviceConfig::with_sms(1).seeded(seed), 32, |warp| {
            let l = warp.lane(0);
            let seg = pool.pool(0).instance(0).geometry().segment_bytes;
            // 16 segment-sized claims drain device 0 (width 1); the
            // 17th must cross the interconnect.
            let held: Vec<_> = (0..17).map(|_| pool.malloc(&l, seg)).collect();
            assert!(held.iter().all(|p| !p.is_null()), "the peer must absorb the overflow");
            assert!(held[..16].iter().all(|p| p.0 < device_bytes), "home device serves first");
            assert!(held[16].0 >= device_bytes, "the 17th allocation crossed devices");
            for p in held {
                pool.free(&l, p);
            }
        });
        pool.check_invariants().expect("clean after the cross-device round-trip");
        trace::chrome_trace_json(&sink.snapshot())
    });
    (pool.cross_spill_count(0), pool.cross_spill_count(1), export)
}

#[test]
fn cross_device_spill_is_deterministic_and_device_tagged() {
    let (home, peer, a) = spill_run(5);
    assert_eq!((home, peer), (1, 0), "exactly one cross spill, charged to the home device");
    assert!(a.contains("\"device\": 1"), "spilled events must carry the serving device's tag");
    let (home2, _, b) = spill_run(5);
    assert_eq!(home2, 1);
    assert_eq!(a, b, "the cross-device spill must replay byte-identically under one seed");
}

#[test]
fn global_allocator_can_be_a_device_pool() {
    assert!(!global_allocator_initialized());
    init_global_device_pool(2, 2, 64 << 20).expect("first init in this process");
    let pool = global_device_pool().expect("the global is topology-backed");
    assert_eq!((pool.devices(), pool.width()), (2, 2));
    assert_eq!(global_allocator().heap_bytes(), 64 << 20); // 16 MB per instance
    assert_eq!(global_allocator().name(), "DevicePool");
    // Double init of any flavour reports what already won.
    let err = init_global_device_pool(4, 1, 128 << 20).unwrap_err();
    assert_eq!(err.existing, "DevicePool");
    let err = gallatin::global::init_global_pool(2, 64 << 20).unwrap_err();
    assert_eq!(err.existing, "DevicePool");

    let ok = AtomicU64::new(0);
    launch(DeviceConfig::with_sms(4), 4096, |ctx| {
        let p = global_malloc(ctx, 48);
        assert!(!p.is_null());
        global_allocator().memory().write_stamp(p, ctx.global_tid());
        assert_eq!(global_allocator().memory().read_stamp(p), ctx.global_tid());
        global_free(ctx, p);
        ok.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ok.load(Ordering::Relaxed), 4096);
    assert_eq!(global_allocator().stats().reserved_bytes, 0);
    global_check_invariants().expect("topology-backed global consistent after the storm");
    // Same-lane malloc/free is all-local traffic — affinity routing
    // keeps a self-contained storm off the interconnect entirely.
    let s = pool.topo_stats();
    assert!(s.local_accesses > 0);
    assert_eq!(s.peer_accesses, 0, "a same-lane storm never crosses the interconnect");
}
