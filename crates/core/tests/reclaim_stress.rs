//! Stress tests targeting Gallatin's segment-reclamation protocol — the
//! class→free→reformat transition guarded by the `ldcv` staleness check
//! and the drain-before-reformat rule (see `crate::table` docs).
//!
//! The scenario these force: a segment's last block is freed (reclaim
//! begins) while other threads are still popping blocks from its ring
//! and while further threads immediately demand segments of a *different*
//! class (reformat pressure). Any protocol hole shows up as a double
//! allocation (caught by payload stamps), a lost segment (caught by
//! capacity accounting), or a cross-structure inconsistency (caught by
//! `Gallatin::check_invariants`).
//!
//! Beyond the free-running pool runs, `explore_schedules` sweeps the
//! same churn under the deterministic scheduler across a fixed seed
//! range; a failure reports the first bad seed, reproducible with
//! `GALLATIN_SCHED_SEED=<seed>` (see TESTING.md).

use gallatin::{Gallatin, GallatinConfig, TREE_FREE};
use gpu_sim::{
    explore_schedules, launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, FaultPlan,
    PreemptPoint,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Tiny heap = constant segment churn: every warp's allocations span
/// whole segments, so segments cycle through reclaim/reformat constantly.
fn churn_config() -> GallatinConfig {
    GallatinConfig::small_test(256 << 10) // 4 segments of 64 KB
}

#[test]
fn alternating_class_churn_reclaims_and_reformats() {
    let g = Gallatin::new(churn_config());
    let spb = g.geometry().slices_per_block; // 64
    let corrupt = AtomicU64::new(0);

    // Each warp fills a whole block of one class, verifies, frees it all
    // (returning the block, often the segment), then repeats with another
    // class — forcing reformats of the same segments.
    launch_warps(DeviceConfig::with_sms(4), 64, |warp| {
        for round in 0..30u64 {
            let class_size = 16u64 << ((warp.warp_id + round) % 5);
            let mut ptrs = Vec::with_capacity(spb as usize / 4);
            for i in 0..spb / 4 {
                let p = g.malloc(&warp.lane(0), class_size);
                if p.is_null() {
                    continue;
                }
                g.memory().write_stamp(p, warp.warp_id * 1_000_000 + round * 1000 + i);
                ptrs.push((p, warp.warp_id * 1_000_000 + round * 1000 + i));
            }
            for &(p, stamp) in &ptrs {
                if g.memory().read_stamp(p) != stamp {
                    corrupt.fetch_add(1, Ordering::Relaxed);
                }
                g.free(&warp.lane(0), p);
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0, "double allocation during churn");
    assert_eq!(g.stats().reserved_bytes, 0);
    g.check_invariants().expect("invariants violated after churn");
    // No segment may be lost: after a reset everything is claimable.
    g.reset();
    assert_eq!(g.free_segments(), 4);
    g.check_invariants().expect("invariants violated after reset");
}

#[test]
fn block_pop_racing_reclaim_never_double_serves() {
    // Two populations: block-grabbers (whole-block mallocs, which pop from
    // rings) and slice churners (which drive free counters to the reclaim
    // threshold). The ldcv re-check is what keeps them apart.
    let g = Gallatin::new(churn_config());
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(4), 128, |warp| {
        let l = warp.lane(0);
        for round in 0..40u64 {
            if warp.warp_id % 2 == 0 {
                // Whole-block path (1 KB blocks of class 0).
                let p = g.malloc(&l, 1024);
                if !p.is_null() {
                    g.memory().write_stamp(p, warp.warp_id ^ round);
                    if g.memory().read_stamp(p) != warp.warp_id ^ round {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    g.free(&l, p);
                }
            } else {
                // Slice path on the same class (16 B slices, same blocks).
                let mut ptrs = [DevicePtr::NULL; 16];
                for (i, slot) in ptrs.iter_mut().enumerate() {
                    *slot = g.malloc(&l, 16);
                    if !slot.is_null() {
                        g.memory().write_stamp(*slot, round * 100 + i as u64);
                    }
                }
                for (i, p) in ptrs.iter().enumerate() {
                    if !p.is_null() {
                        if g.memory().read_stamp(*p) != round * 100 + i as u64 {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        g.free(&l, *p);
                    }
                }
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0);
    assert_eq!(g.stats().reserved_bytes, 0);
    g.check_invariants().expect("invariants violated after pop/reclaim race");
}

#[test]
fn large_allocation_racing_segment_reclaim() {
    // Multi-segment claims from the back race against slice-churn
    // reclaims: the contiguous claim's per-bit rollback must never
    // intersect a segment the block pipeline still owns.
    let g = Gallatin::new(GallatinConfig::small_test(512 << 10)); // 8 segments
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(4), 64, |warp| {
        let l = warp.lane(0);
        for round in 0..30u64 {
            if warp.warp_id % 4 == 0 {
                // 2-segment large allocation.
                let p = g.malloc(&l, 128 << 10);
                if !p.is_null() {
                    g.memory().write_stamp(p, warp.warp_id);
                    g.memory().write_stamp(p.offset((128 << 10) - 8), warp.warp_id);
                    if g.memory().read_stamp(p) != warp.warp_id {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    g.free(&l, p);
                }
            } else {
                let p = g.malloc(&l, 16 << ((warp.warp_id + round) % 5));
                if !p.is_null() {
                    g.memory().write_stamp(p, warp.warp_id * 7919 + round);
                    if g.memory().read_stamp(p) != warp.warp_id * 7919 + round {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    g.free(&l, p);
                }
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0);
    assert_eq!(g.stats().reserved_bytes, 0);
    g.check_invariants().expect("invariants violated after large/reclaim race");
}

#[test]
fn flat_scan_backend_survives_the_same_churn() {
    // The ablation backend must be just as correct, only slower.
    let g = Gallatin::new(GallatinConfig {
        search: gallatin::SearchStructure::FlatScan,
        ..churn_config()
    });
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(4), 64, |warp| {
        let l = warp.lane(0);
        for round in 0..20u64 {
            let p = g.malloc(&l, 16 << ((warp.warp_id + round) % 5));
            if !p.is_null() {
                g.memory().write_stamp(p, warp.warp_id * 31 + round);
                if g.memory().read_stamp(p) != warp.warp_id * 31 + round {
                    corrupt.fetch_add(1, Ordering::Relaxed);
                }
                g.free(&l, p);
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0);
    assert_eq!(g.stats().reserved_bytes, 0);
    g.check_invariants().expect("invariants violated after flat-scan churn");
}

// =====================================================================
// Deterministic-schedule coverage
// =====================================================================

/// The reclaim churn as a deterministic scenario: one full mixed-class
/// run (slice, whole-block, and 2-segment large allocations) under the
/// seeded scheduler, panicking on any contract violation so
/// `explore_schedules` can attribute it to its seed.
fn churn_scenario(seed: u64) {
    let g = Gallatin::new(GallatinConfig::small_test(512 << 10)); // 8 segments
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(4).seeded(seed), 64, |warp| {
        let l = warp.lane(0);
        for round in 0..6u64 {
            match (warp.warp_id + round) % 3 {
                0 => {
                    // Slice churn across classes.
                    let mut ptrs = [DevicePtr::NULL; 8];
                    for (i, slot) in ptrs.iter_mut().enumerate() {
                        *slot = g.malloc(&l, 16 << ((round + i as u64) % 5));
                        if !slot.is_null() {
                            g.memory().write_stamp(*slot, round * 100 + i as u64);
                        }
                    }
                    for (i, p) in ptrs.iter().enumerate() {
                        if !p.is_null() {
                            if g.memory().read_stamp(*p) != round * 100 + i as u64 {
                                corrupt.fetch_add(1, Ordering::Relaxed);
                            }
                            g.free(&l, *p);
                        }
                    }
                }
                1 => {
                    // Whole-block path (pops from rings, racing reclaim).
                    let p = g.malloc(&l, 1024);
                    if !p.is_null() {
                        g.memory().write_stamp(p, warp.warp_id ^ round);
                        if g.memory().read_stamp(p) != warp.warp_id ^ round {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        g.free(&l, p);
                    }
                }
                _ => {
                    // 2-segment large allocation from the back.
                    let p = g.malloc(&l, 128 << 10);
                    if !p.is_null() {
                        g.memory().write_stamp(p, warp.warp_id);
                        if g.memory().read_stamp(p) != warp.warp_id {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        g.free(&l, p);
                    }
                }
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0, "double allocation under seed {seed}");
    assert_eq!(g.stats().reserved_bytes, 0, "leak under seed {seed}");
    if let Err(e) = g.check_invariants() {
        panic!("invariants violated under seed {seed}:\n{e}");
    }
}

/// Sweep the churn scenario across 64 deterministic schedules. A failing
/// interleaving reports its seed and reproduces exactly with
/// `GALLATIN_SCHED_SEED=<seed> cargo test -p gallatin reclaim`.
#[test]
fn deterministic_schedule_sweep_survives_reclaim_churn() {
    match explore_schedules(0..64, churn_scenario) {
        Ok(ran) => assert!(ran >= 1, "sweep must run at least one schedule"),
        Err(failure) => panic!("{failure}"),
    }
}

/// The acceptance property of the deterministic mode: the same seed
/// replays the identical interleaving, so two runs agree on *every*
/// metrics counter (including schedule-sensitive ones like CAS
/// failures) and on the final heap state.
#[test]
fn same_seed_replays_identical_metrics_and_outcome() {
    fn run(seed: u64) -> (gpu_sim::metrics::MetricsSnapshot, u64, u64) {
        let g = Gallatin::new(GallatinConfig::small_test(256 << 10));
        launch_warps(DeviceConfig::with_sms(4).seeded(seed), 96, |warp| {
            let l = warp.lane(0);
            for round in 0..8u64 {
                let p = g.malloc(&l, 16 << ((warp.warp_id + round) % 5));
                if !p.is_null() {
                    g.free(&l, p);
                }
            }
        });
        g.check_invariants().expect("invariants violated");
        (g.metrics().unwrap().snapshot(), g.stats().reserved_bytes, g.free_segments())
    }
    let a = run(0xA11C);
    let b = run(0xA11C);
    assert_eq!(a, b, "identical seed must replay the identical schedule");
}

// =====================================================================
// Fault-injected straggler coverage: format-drain under contention
// =====================================================================

/// The churn scenario with a schedule fault: the warp making the `nth`
/// pop-CAS crossing ([`PreemptPoint::RingPop`]) is parked for many turn
/// grants, so it holds a popped block while every other warp keeps
/// freeing blocks, reclaiming segments, and reformatting them for other
/// classes around it. Returns the run's metrics for aggregate assertions.
///
/// Correctness here is the whole reclamation protocol at once: the
/// reclaim quiesce-check must see the straggler's block as *out*
/// (derived occupancy, not a wrappable counter) and abort; a straggler
/// resuming onto a reclaimed/reformatted segment must be routed home by
/// Algorithm 2's `ldcv` re-check; and a format drain overlapping the
/// park must wait the straggler out rather than terminate early — any
/// early termination tears the ring rebuild and shows up as a double
/// allocation (payload stamps) or a cross-structure inconsistency
/// (`check_invariants`).
fn faulted_churn(seed: u64, nth: u64) -> gpu_sim::metrics::MetricsSnapshot {
    let g = Gallatin::new(churn_config());
    let corrupt = AtomicU64::new(0);
    let cfg = DeviceConfig::with_sms(4).seeded(seed).with_fault(FaultPlan::park(
        PreemptPoint::RingPop,
        nth,
        48,
    ));
    // 4 warps: even warps hammer the whole-block path (ring pops — fault
    // candidates), odd warps churn slices across classes (reclaim and
    // reformat pressure on the same 4 segments).
    launch_warps(cfg, 128, |warp| {
        let l = warp.lane(0);
        for round in 0..6u64 {
            if warp.warp_id % 2 == 0 {
                let p = g.malloc(&l, 1024);
                if !p.is_null() {
                    g.memory().write_stamp(p, warp.warp_id * 1000 + round);
                    if g.memory().read_stamp(p) != warp.warp_id * 1000 + round {
                        corrupt.fetch_add(1, Ordering::Relaxed);
                    }
                    g.free(&l, p);
                }
            } else {
                let mut ptrs = [DevicePtr::NULL; 8];
                for (i, slot) in ptrs.iter_mut().enumerate() {
                    *slot = g.malloc(&l, 16 << ((warp.warp_id + round + i as u64) % 5));
                    if !slot.is_null() {
                        g.memory().write_stamp(*slot, round * 100 + i as u64);
                    }
                }
                for (i, p) in ptrs.iter().enumerate() {
                    if !p.is_null() {
                        if g.memory().read_stamp(*p) != round * 100 + i as u64 {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        g.free(&l, *p);
                    }
                }
            }
        }
    });
    assert_eq!(
        corrupt.load(Ordering::Relaxed),
        0,
        "double allocation under seed {seed}, fault nth {nth}"
    );
    assert_eq!(g.stats().reserved_bytes, 0, "leak under seed {seed}, fault nth {nth}");
    if let Err(e) = g.check_invariants() {
        panic!("invariants violated under seed {seed}, fault nth {nth}:\n{e}");
    }
    g.metrics().unwrap().snapshot()
}

/// Sweep the faulted churn across schedules × fault positions. Each run
/// is individually checked (stamps, leak, invariants); in aggregate the
/// sweep must actually have driven the protocol through its guarded
/// transitions — reclaims attempted, and at least one straggler routed
/// home by the `ldcv` re-check or one reclaim aborted at the
/// quiesce-check. A failing combination replays exactly from its
/// `(seed, nth)` pair.
#[test]
fn straggler_parked_across_reclaim_is_routed_home() {
    let (mut attempts, mut aborts, mut bounces) = (0u64, 0u64, 0u64);
    for seed in 0..8u64 {
        for nth in [1u64, 3, 7, 13] {
            let s = faulted_churn(seed, nth);
            attempts += s.reclaim_attempts;
            aborts += s.reclaim_aborts;
            bounces += s.straggler_bounces;
        }
    }
    assert!(attempts > 0, "sweep never attempted a reclaim — workload too tame");
    assert!(
        bounces > 0,
        "sweep never bounced a straggler home: the ldcv window was never exercised \
         ({attempts} reclaim attempts, {aborts} aborts)"
    );
}

// =====================================================================
// Invariant-checker negative coverage
// =====================================================================

/// A deliberately-stale memory-table entry — the exact shape of bug the
/// `ldcv` staleness check defends against (a segment recycled while a
/// reader still believes its old `tree_id`) — must be caught by
/// `check_invariants`.
#[test]
fn invariant_checker_catches_stale_table_entry() {
    let g = Gallatin::new(churn_config());
    let warp = gpu_sim::WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let lane = warp.lane(0);
    let p = g.malloc(&lane, 16);
    assert!(!p.is_null());
    g.check_invariants().expect("healthy heap must pass");

    // Simulate the stale transition: the formatted segment's table entry
    // reverts to TREE_FREE while a slice is still live and its blocks
    // are still owned by the class pipeline.
    let seg = g.geometry().segment_of(p.0);
    let true_id = g.table().seg(seg).tree_id.swap(TREE_FREE, Ordering::SeqCst);
    let err = g.check_invariants().expect_err("stale table entry must be flagged");
    assert!(err.contains(&format!("segment {seg}")), "error must name the stale segment: {err}");
    assert!(
        err.contains("TREE_FREE but missing from the segment tree"),
        "error must identify the free/formatted contradiction: {err}"
    );

    // Restoring the true id heals the heap.
    g.table().seg(seg).tree_id.store(true_id, Ordering::SeqCst);
    g.check_invariants().expect("restored heap must pass");
    g.free(&lane, p);
    assert_eq!(g.stats().reserved_bytes, 0);
}
