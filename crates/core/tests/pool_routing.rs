//! Cross-instance routing in the sharded pool (ISSUE 5 acceptance):
//!
//! * property: a pointer malloc'd on instance `i` and freed from a lane
//!   pinned to instance `j` routes home by pointer range, for arbitrary
//!   pool widths, SM pinnings, and size mixes;
//! * seeded sweep: churn with rotated cross-instance frees shows zero
//!   leaks and zero double frees in the lifecycle ledger across 16
//!   deterministic schedule seeds;
//! * spill regression: exhausting a home instance spills to the sibling
//!   deterministically, the spilled events carry the sibling's instance
//!   tag, and the trace replays byte-identically under the same seed;
//! * the global allocator can be pool-backed (`init_global_pool`),
//!   exercised here because this integration binary is its own process.

use gallatin::global::{
    global_allocator, global_allocator_initialized, global_check_invariants, global_free,
    global_malloc, global_pool, init_global_pool,
};
use gallatin::{GallatinConfig, GallatinPool};
use gpu_sim::trace::{self, Ledger, TraceSink};
use gpu_sim::{launch, launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, WarpCtx};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

const HEAP: u64 = 1 << 20; // per instance: 16 small_test segments
const WARPS: u64 = 8;

/// One seeded round: every warp mallocs a mixed batch on its home
/// instance, then a second kernel frees each warp's batch from a
/// *different* warp (hence, for pool widths > 1, routinely a different
/// home instance). The armed ledger proves every free found its owner.
fn routed_churn(seed: u64, n: usize) {
    let pool = Arc::new(GallatinPool::new(n, GallatinConfig::small_test(HEAP)));
    let sink = Arc::new(TraceSink::new());
    sink.set_leak_check(true);
    trace::with_sink(sink.clone(), || {
        // (malloc home, batch) per warp, for the rotated free pass.
        let slots: Vec<Mutex<(usize, Vec<DevicePtr>)>> =
            (0..WARPS).map(|_| Mutex::new((0, Vec::new()))).collect();
        launch_warps(DeviceConfig::with_sms(4).seeded(seed), WARPS * 32, |warp| {
            let k = warp.active as usize;
            let sizes: Vec<Option<u64>> =
                (0..k).map(|l| Some(16u64 << ((warp.base_tid as usize + l) % 4))).collect();
            let mut out = vec![DevicePtr::NULL; k];
            pool.warp_malloc(warp, &sizes, &mut out);
            let home = warp.sm_id as usize % n;
            for p in &out {
                assert!(!p.is_null(), "per-instance heap must not exhaust");
                assert_eq!(
                    (p.0 / pool.stride()) as usize,
                    home,
                    "an uncontended pool places on the home instance"
                );
            }
            *slots[warp.warp_id as usize].lock().unwrap() = (home, out);
        });
        assert_eq!(pool.total_spills(), 0, "this workload fits every home instance");
        // Rotated frees: warp w returns warp (w+1)'s batch.
        let cross = AtomicU64::new(0);
        launch_warps(DeviceConfig::with_sms(4).seeded(seed ^ 0x5eed), WARPS * 32, |warp| {
            let victim = ((warp.warp_id + 1) % WARPS) as usize;
            let (owner_home, ptrs) = slots[victim].lock().unwrap().clone();
            if warp.sm_id as usize % n != owner_home {
                cross.fetch_add(1, Ordering::Relaxed);
            }
            pool.warp_free(warp, &ptrs);
        });
        if n > 1 {
            assert!(
                cross.load(Ordering::Relaxed) > 0,
                "rotation must exercise the cross-instance path"
            );
        }
        assert_eq!(pool.stats().reserved_bytes, 0, "every routed free reached its owner");
        let ledger = Ledger::build(&sink.snapshot());
        assert!(ledger.live.is_empty(), "seed {seed}: cross-instance leaks: {:?}", ledger.live);
        assert!(
            ledger.double_frees.is_empty(),
            "seed {seed}: mis-routed frees: {:?}",
            ledger.double_frees
        );
        pool.check_invariants().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    });
}

#[test]
fn cross_instance_frees_route_home_across_16_seeds() {
    for seed in 0..16 {
        routed_churn(seed, 2);
    }
}

#[test]
fn wider_pools_route_the_same_way() {
    for seed in [3, 11] {
        routed_churn(seed, 4);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The headline property: instance `i` mallocs (SM pinning chooses
    /// `i`), a lane pinned to an arbitrary instance `j` frees, and the
    /// reservation comes back to zero — the free routed home purely by
    /// pointer range.
    #[test]
    fn pointer_mallocd_on_i_freed_from_j_routes_home(
        n in 1usize..=4,
        malloc_sm in 0u32..8,
        free_sm in 0u32..8,
        count in 1usize..=32,
        class_skew in 0usize..5,
    ) {
        let pool = GallatinPool::new(n, GallatinConfig::small_test(HEAP));
        let wm = WarpCtx { warp_id: 0, sm_id: malloc_sm, base_tid: 0, active: count as u32 };
        let sizes: Vec<Option<u64>> =
            (0..count).map(|l| Some(16u64 << ((l + class_skew) % 5))).collect();
        let mut out = vec![DevicePtr::NULL; count];
        pool.warp_malloc(&wm, &sizes, &mut out);
        let home = malloc_sm as usize % n;
        for p in &out {
            prop_assert!(!p.is_null());
            prop_assert_eq!(
                (p.0 / pool.stride()) as usize, home,
                "a fresh pool serves from the home instance"
            );
        }
        prop_assert_eq!(pool.total_spills(), 0);
        let wf = WarpCtx { warp_id: 1, sm_id: free_sm, base_tid: 1 << 20, active: count as u32 };
        pool.warp_free(&wf, &out);
        prop_assert_eq!(
            pool.stats().reserved_bytes, 0,
            "a free from instance {} must route to owner {}", free_sm as usize % n, home
        );
        pool.check_invariants().map_err(TestCaseError::fail)?;
    }
}

/// Exhaust instance 0 wholesale from SM 0 and overflow once; return the
/// spill counters and the trace export for replay comparison.
fn spill_run(seed: u64) -> (u64, u64, String) {
    let pool = Arc::new(GallatinPool::new(2, GallatinConfig::small_test(HEAP)));
    let sink = Arc::new(TraceSink::new());
    sink.set_leak_check(true);
    let export = trace::with_sink(sink.clone(), || {
        launch_warps(DeviceConfig::with_sms(1).seeded(seed), 32, |warp| {
            let l = warp.lane(0);
            let seg = pool.instance(0).geometry().segment_bytes;
            // 16 segment-sized claims drain instance 0; the 17th must
            // come from instance 1.
            let held: Vec<_> = (0..17).map(|_| pool.malloc(&l, seg)).collect();
            assert!(held.iter().all(|p| !p.is_null()), "sibling must absorb the overflow");
            assert!(held[..16].iter().all(|p| p.0 < pool.stride()), "home serves first");
            assert!(held[16].0 >= pool.stride(), "the 17th allocation spilled");
            for p in held {
                pool.free(&l, p);
            }
        });
        pool.check_invariants().expect("clean after the spill round-trip");
        trace::chrome_trace_json(&sink.snapshot())
    });
    (pool.spill_count(0), pool.spill_count(1), export)
}

#[test]
fn spill_path_is_deterministic_and_instance_tagged() {
    let (home, sibling, a) = spill_run(5);
    assert_eq!((home, sibling), (1, 0), "exactly one spill, charged to the home instance");
    assert!(a.contains("\"instance\": 1"), "spilled events must carry the serving instance's tag");
    let (home2, _, b) = spill_run(5);
    assert_eq!(home2, 1);
    assert_eq!(a, b, "the spill schedule must replay byte-identically under one seed");
}

#[test]
fn global_allocator_can_be_a_pool() {
    assert!(!global_allocator_initialized());
    init_global_pool(2, 64 << 20).expect("first init in this process");
    let pool = global_pool().expect("the global is pool-backed");
    assert_eq!(pool.num_instances(), 2);
    assert_eq!(global_allocator().heap_bytes(), 64 << 20); // 32 MB each
    assert_eq!(global_allocator().name(), "GallatinPool");
    // Double init of either flavour reports what already won.
    let err = init_global_pool(4, 128 << 20).unwrap_err();
    assert_eq!(err.existing, "GallatinPool");
    let err = gallatin::global::init_global_allocator(16 << 20).unwrap_err();
    assert_eq!(err.existing, "GallatinPool");

    let ok = AtomicU64::new(0);
    launch(DeviceConfig::with_sms(4), 4096, |ctx| {
        let p = global_malloc(ctx, 48);
        assert!(!p.is_null());
        global_allocator().memory().write_stamp(p, ctx.global_tid());
        assert_eq!(global_allocator().memory().read_stamp(p), ctx.global_tid());
        global_free(ctx, p);
        ok.fetch_add(1, Ordering::Relaxed);
    });
    assert_eq!(ok.load(Ordering::Relaxed), 4096);
    assert_eq!(global_allocator().stats().reserved_bytes, 0);
    global_check_invariants().expect("pool-backed global consistent after the storm");
}
