//! Tier-1 hard-seed matrix, promoted from `.github/workflows/nightly.yml`.
//!
//! The nightly `hard-seeds` job replays the full reclaim suite under
//! each schedule seed that historically produced the nastiest
//! interleavings (straggler parked across reclaim+reformat, pop racing
//! the FREE publish). Nightly coverage is a day late for a PR that
//! reintroduces one of those windows, so this file runs a **fast
//! subset** — one alternating-class churn per seed, small enough for the
//! per-PR path — with one `#[test]` per seed so a regression names its
//! seed directly in the test title, exactly like the nightly job matrix.
//!
//! Keep the seed list in sync with the `hard-seeds` matrix in
//! nightly.yml: add any seed a sweep failure reports; never remove.

use gallatin::{Gallatin, GallatinConfig, GallatinPool};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
use std::sync::atomic::{AtomicU64, Ordering};

/// The nightly hard-seed matrix (nightly.yml `hard-seeds.strategy.matrix.seed`).
const HARD_SEEDS: [u64; 5] = [7, 13, 29, 42, 57];

/// Schedule seeds that produced the tightest elastic-pool interleavings
/// during the donation sweeps (`tests/elastic.rs`): donation, shrink,
/// and grow racing churn, reclaim, and adopt-before-spill. Same
/// contract as `HARD_SEEDS`: add any seed a sweep failure reports,
/// never remove. The CI adversarial job's quick elastic step runs the
/// first four seeds of the full sweep; this list pins the keepers.
const ELASTIC_HARD_SEEDS: [u64; 4] = [2, 5, 9, 14];

/// One fast churn under the pinned schedule: whole-block fills with the
/// class alternating per round over a 4-segment heap, so segments cycle
/// through reclaim/reformat while the scheduler interleaves at the
/// pinned seed. The shape is the nightly suite's alternating-class
/// churn at a quarter of the warp-rounds — enough to cross the
/// reclaim/reformat windows the hard seeds were recorded for.
fn hard_seed_churn(seed: u64) {
    let g = Gallatin::new(GallatinConfig::small_test(256 << 10)); // 4 segments
    let spb = g.geometry().slices_per_block;
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(4).seeded(seed), 32, |warp| {
        for round in 0..8u64 {
            let class_size = 16u64 << ((warp.warp_id + round) % 5);
            let mut ptrs = Vec::with_capacity(spb as usize / 4);
            for i in 0..spb / 4 {
                let p = g.malloc(&warp.lane(0), class_size);
                if p.is_null() {
                    continue;
                }
                let stamp = warp.warp_id * 1_000_000 + round * 1000 + i;
                g.memory().write_stamp(p, stamp);
                ptrs.push((p, stamp));
            }
            for &(p, stamp) in &ptrs {
                if g.memory().read_stamp(p) != stamp {
                    corrupt.fetch_add(1, Ordering::Relaxed);
                }
                g.free(&warp.lane(0), p);
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0, "double allocation under seed {seed}");
    assert_eq!(g.stats().reserved_bytes, 0, "leak under seed {seed}");
    if let Err(e) = g.check_invariants() {
        panic!("invariants violated under seed {seed}:\n{e}");
    }
    // No segment may be lost to the churn: after a reset everything is
    // claimable again.
    g.reset();
    assert_eq!(g.free_segments(), 4, "segment lost under seed {seed}");
}

/// One fast elastic churn under the pinned schedule: a two-instance
/// pool over 8 segments with a maintenance warp shuttling capacity
/// (donate → shrink → grow) while the other warps churn blocks and
/// slices — the `tests/elastic.rs` sweep scenario at a single seed.
/// Checks payload integrity, leak-freedom, segment conservation, and
/// the cross-structure invariants including the ownership audit.
fn elastic_hard_seed_churn(seed: u64) {
    let pool = GallatinPool::new(2, GallatinConfig::small_test(256 << 10)); // 8 segments
    let corrupt = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(4).seeded(seed), 128, |warp| {
        let l = warp.lane(0);
        if warp.warp_id == 0 {
            for round in 0..6u64 {
                let (from, to) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
                if let Err(e) = pool.donate(from, to, 1) {
                    panic!("donation bounced under seed {seed}: {e}");
                }
                let parked = pool.shrink_instance(to, 1);
                pool.grow(from, parked);
            }
        } else {
            for round in 0..6u64 {
                let mut ptrs = [DevicePtr::NULL; 8];
                for (i, slot) in ptrs.iter_mut().enumerate() {
                    let size = if (warp.warp_id + i as u64) % 3 == 0 {
                        1024
                    } else {
                        16 << ((warp.warp_id + round + i as u64) % 5)
                    };
                    *slot = pool.malloc(&l, size);
                    if !slot.is_null() {
                        pool.memory().write_stamp(*slot, round * 100 + i as u64);
                    }
                }
                for (i, p) in ptrs.iter().enumerate() {
                    if !p.is_null() {
                        if pool.memory().read_stamp(*p) != round * 100 + i as u64 {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        pool.free(&l, *p);
                    }
                }
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0, "torn payload under seed {seed}");
    assert_eq!(pool.stats().reserved_bytes, 0, "leak under seed {seed}");
    let s = pool.pool_stats();
    let owned: u64 = s.instances.iter().map(|i| i.owned_segments).sum();
    assert_eq!(owned + s.pool_free_segments, 8, "segments lost under seed {seed}: {s:?}");
    if let Err(e) = pool.check_invariants() {
        panic!("invariants violated under seed {seed}:\n{e}");
    }
}

macro_rules! hard_seed_test {
    ($name:ident, $seed:expr) => {
        #[test]
        fn $name() {
            hard_seed_churn($seed);
        }
    };
}

hard_seed_test!(hard_seed_7, HARD_SEEDS[0]);
hard_seed_test!(hard_seed_13, HARD_SEEDS[1]);
hard_seed_test!(hard_seed_29, HARD_SEEDS[2]);
hard_seed_test!(hard_seed_42, HARD_SEEDS[3]);
hard_seed_test!(hard_seed_57, HARD_SEEDS[4]);

macro_rules! elastic_hard_seed_test {
    ($name:ident, $seed:expr) => {
        #[test]
        fn $name() {
            elastic_hard_seed_churn($seed);
        }
    };
}

elastic_hard_seed_test!(elastic_hard_seed_2, ELASTIC_HARD_SEEDS[0]);
elastic_hard_seed_test!(elastic_hard_seed_5, ELASTIC_HARD_SEEDS[1]);
elastic_hard_seed_test!(elastic_hard_seed_9, ELASTIC_HARD_SEEDS[2]);
elastic_hard_seed_test!(elastic_hard_seed_14, ELASTIC_HARD_SEEDS[3]);

/// The macro invocations above must cover both lists — a new seed added
/// to `HARD_SEEDS` or `ELASTIC_HARD_SEEDS` without a matching test
/// fails here instead of silently running nowhere.
#[test]
fn every_hard_seed_has_a_test() {
    assert_eq!(HARD_SEEDS, [7, 13, 29, 42, 57], "add a hard_seed_test! for the new seed");
    assert_eq!(
        ELASTIC_HARD_SEEDS,
        [2, 5, 9, 14],
        "add an elastic_hard_seed_test! for the new seed"
    );
}
