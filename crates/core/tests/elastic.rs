//! Elastic-pool sweeps: segment donation, shrink, and grow racing live
//! device traffic and the segment-reclamation protocol.
//!
//! Donation re-homes a segment with a three-step handoff (withdraw →
//! quiesce-check → route-then-publish; see `gallatin`'s `elastic`
//! module docs). These sweeps drive that handoff *concurrently* with
//! block churn under the deterministic scheduler: a maintenance warp
//! migrates capacity back and forth — donate hot↔cold, shrink to the
//! pool free list, grow back — while churn warps allocate, stamp,
//! verify, and free across every tier, including fault-injected
//! stragglers parked mid-ring-pop across the donation window. Any
//! protocol hole shows up as a torn payload (stamps), a lost or
//! double-owned segment (conservation + `check_invariants`), or a
//! routing error (a free panics on an unowned pointer).
//!
//! A failing combination reports its schedule seed and replays exactly
//! with `GALLATIN_SCHED_SEED=<seed>` (see TESTING.md "Elastic pool
//! sweeps").

use gallatin::{Gallatin, GallatinConfig, GallatinPool, TREE_FREE};
use gpu_sim::trace::{Ledger, TraceSink};
use gpu_sim::{
    explore_schedules, launch_warps, DeviceAllocator, DeviceConfig, DevicePtr, FaultPlan,
    PreemptPoint, WarpCtx,
};
use proptest::prelude::*;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// Two instances of 4 segments each: tight enough that donation and
/// shrink visibly move the capacity the churn warps compete over.
fn elastic_config() -> GallatinConfig {
    GallatinConfig::small_test(256 << 10)
}

/// Override the sweep's seed count (the CI adversarial job's quick
/// elastic step sets 4; the default matches the adversarial suite's 16).
const ELASTIC_SEEDS_ENV: &str = "GALLATIN_ELASTIC_SEEDS";

fn sweep_seeds() -> u64 {
    match std::env::var(ELASTIC_SEEDS_ENV) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{ELASTIC_SEEDS_ENV} must be a u64, got {s:?}")),
        Err(_) => 16,
    }
}

/// Totals a run contributes to the sweep-level assertions.
struct ElasticOutcome {
    donated: u64,
    returned: u64,
    adopted: u64,
}

/// One deterministic run: warp 0 performs elastic maintenance while
/// warps 1–3 churn blocks and slices on both instances. Every run is
/// individually checked for payload integrity, leak-freedom, segment
/// conservation, and cross-structure invariants.
fn donation_racing_churn(seed: u64, fault: Option<FaultPlan>) -> ElasticOutcome {
    let pool = GallatinPool::new(2, elastic_config()); // 8 segments total
    let corrupt = AtomicU64::new(0);
    let mut cfg = DeviceConfig::with_sms(4).seeded(seed);
    if let Some(f) = fault {
        cfg = cfg.with_fault(f);
    }
    launch_warps(cfg, 128, |warp| {
        let l = warp.lane(0);
        if warp.warp_id == 0 {
            // Maintenance warp: shuttle capacity while the others churn.
            // Without planted corruption a donation may find the donor
            // empty (Ok(0)) but must never observe a torn segment —
            // membership in a segment tree implies quiescence, and the
            // withdraw step makes the handoff all-or-nothing.
            for round in 0..6u64 {
                let (from, to) = if round % 2 == 0 { (0, 1) } else { (1, 0) };
                match pool.donate(from, to, 1) {
                    Ok(_) => {}
                    Err(e) => panic!(
                        "donation observed a non-quiescent segment in a segment tree \
                         under seed {seed}: {e}"
                    ),
                }
                let parked = pool.shrink_instance(to, 1);
                // Whatever shrink parked is up for grabs: this grow and
                // the malloc path's adopt-before-spill race for it.
                pool.grow(from, parked);
            }
        } else {
            for round in 0..6u64 {
                if warp.warp_id % 2 == 0 {
                    // Whole-block path: pops from rings (fault-injection
                    // candidates), frees drive segment reclaim.
                    let p = pool.malloc(&l, 1024);
                    if !p.is_null() {
                        pool.memory().write_stamp(p, warp.warp_id * 1000 + round);
                        if pool.memory().read_stamp(p) != warp.warp_id * 1000 + round {
                            corrupt.fetch_add(1, Ordering::Relaxed);
                        }
                        pool.free(&l, p);
                    }
                } else {
                    // Slice churn across classes: reformat pressure on
                    // the same segments donation is shuttling.
                    let mut ptrs = [DevicePtr::NULL; 8];
                    for (i, slot) in ptrs.iter_mut().enumerate() {
                        *slot = pool.malloc(&l, 16 << ((warp.warp_id + round + i as u64) % 5));
                        if !slot.is_null() {
                            pool.memory().write_stamp(*slot, round * 100 + i as u64);
                        }
                    }
                    for (i, p) in ptrs.iter().enumerate() {
                        if !p.is_null() {
                            if pool.memory().read_stamp(*p) != round * 100 + i as u64 {
                                corrupt.fetch_add(1, Ordering::Relaxed);
                            }
                            pool.free(&l, *p);
                        }
                    }
                }
            }
        }
    });
    assert_eq!(corrupt.load(Ordering::Relaxed), 0, "torn payload under seed {seed}");
    assert_eq!(pool.stats().reserved_bytes, 0, "leak under seed {seed}");
    let s = pool.pool_stats();
    let owned: u64 = s.instances.iter().map(|i| i.owned_segments).sum();
    assert_eq!(owned + s.pool_free_segments, 8, "segments not conserved under seed {seed}: {s:?}");
    if let Err(e) = pool.check_invariants() {
        panic!("invariants violated under seed {seed}:\n{e}");
    }
    ElasticOutcome {
        donated: s.donated_segments,
        returned: s.returned_segments,
        adopted: s.adopted_segments,
    }
}

/// 16-seed sweep (`GALLATIN_ELASTIC_SEEDS` overrides the count) of
/// donation/shrink/grow racing reclaim, no faults. In
/// aggregate the sweep must actually have moved capacity — a sweep
/// where every donation found an empty donor would prove nothing.
#[test]
fn donation_racing_reclaim_schedule_sweep() {
    let totals = std::sync::Mutex::new((0u64, 0u64, 0u64));
    match explore_schedules(0..sweep_seeds(), |seed| {
        let o = donation_racing_churn(seed, None);
        let mut t = totals.lock().unwrap();
        t.0 += o.donated;
        t.1 += o.returned;
        t.2 += o.adopted;
    }) {
        Ok(ran) => assert!(ran >= 1, "sweep must run at least one schedule"),
        Err(failure) => panic!("{failure}"),
    }
    let (donated, returned, adopted) = *totals.lock().unwrap();
    assert!(donated > 0, "sweep never donated a segment — workload too tame");
    assert!(
        returned > 0 && adopted > 0,
        "sweep never exercised shrink/grow (returned {returned}, adopted {adopted})"
    );
}

/// The same seeds with a straggler parked at a ring-pop crossing for
/// 48 turn grants — holding a popped block across donations, shrinks,
/// reclaims, and reformat traffic. The parked warp's segment is
/// formatted (hence absent from every segment tree), so the
/// claim-unreachable step must simply never offer it to a donation;
/// the straggler must resume onto intact state.
#[test]
fn donation_racing_straggler_fault_sweep() {
    let donated = AtomicU64::new(0);
    for seed in 0..sweep_seeds() {
        for nth in [1u64, 7] {
            let o =
                donation_racing_churn(seed, Some(FaultPlan::park(PreemptPoint::RingPop, nth, 48)));
            donated.fetch_add(o.donated, Ordering::Relaxed);
        }
    }
    assert!(
        donated.load(Ordering::Relaxed) > 0,
        "faulted sweep never donated a segment — workload too tame"
    );
}

/// Forced quiesce failure: metadata planted to look formatted while the
/// segment sits in the donor's tree — the exact torn state a racing
/// reclaim bug would leave in the donation window. The donation must
/// bounce the segment back (never re-home it), the independent
/// invariant sweep must flag the same contradiction, and healing the
/// plant must let the full donation through.
#[test]
fn donation_across_a_torn_quiesce_window_bounces_and_never_corrupts() {
    let pool = GallatinPool::new(2, elastic_config());
    pool.instance(0).table().seg(0).tree_id.store(0, Ordering::SeqCst);
    let err = pool.donate(0, 1, 4).unwrap_err();
    assert!(err.contains("quiesce"), "unexpected error: {err}");
    let s = pool.pool_stats();
    assert_eq!(s.instances[0].owned_segments, 4, "the bounced segment stayed home");
    assert_eq!(s.donated_segments, 0);
    let report = pool.check_invariants().unwrap_err();
    assert!(
        report.contains("simultaneously free and formatted"),
        "invariant sweep must flag the planted tear: {report}"
    );
    pool.instance(0).table().seg(0).tree_id.store(TREE_FREE, Ordering::SeqCst);
    assert_eq!(pool.donate(0, 1, 4), Ok(4));
    pool.check_invariants().expect("clean after the healed donation");
}

/// Planted corruption under live traffic: after a churn launch leaves
/// formatted segments with live allocations, a donation that *skips*
/// the quiesce protocol (test-only `debug_donate_skip_quiesce`) must be
/// caught by `check_invariants` — the donor still holds block-tree
/// state for a segment it no longer owns.
#[test]
fn skip_quiesce_donation_after_real_traffic_is_caught() {
    let pool = GallatinPool::new(2, elastic_config());
    let held = std::sync::Mutex::new(Vec::new());
    launch_warps(DeviceConfig::with_sms(4).seeded(5), 128, |warp| {
        let l = warp.lane(0);
        for i in 0..4u64 {
            let p = pool.malloc(&l, 16 << ((warp.warp_id + i) % 5));
            if !p.is_null() {
                held.lock().unwrap().push(p);
            }
        }
    });
    assert!(!held.lock().unwrap().is_empty());
    pool.check_invariants().expect("healthy before the planted corruption");
    let seg = pool.debug_donate_skip_quiesce(0, 1).expect("a formatted segment to steal");
    let report = pool.check_invariants().unwrap_err();
    assert!(report.contains(&format!("segment {seg}")), "unexpected report: {report}");
    assert!(
        report.contains("not owned by this instance")
            || report.contains("simultaneously free and formatted"),
        "unexpected report: {report}"
    );
}

// ---------------------------------------------------------------------------
// Compaction migration property: for ANY live-slice layout, a compaction
// pass preserves every payload byte-for-byte and leaves a lifecycle
// ledger with zero leaks, double frees, unknown frees, and size
// mismatches — every migration is an honestly-paired malloc/free.
// ---------------------------------------------------------------------------

/// Sizes spanning the slice classes plus the smallest whole-block size,
/// so arbitrary layouts mix both compactable granularities.
const COMPACT_MENU: [u64; 6] = [16, 32, 64, 128, 256, 1024];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn compaction_preserves_contents_and_the_ledger_balances(
        layout in prop::collection::vec((0usize..6, any::<bool>()), 10..120),
        occupancy in prop_oneof![Just(0.25f64), Just(0.5), Just(0.9)],
    ) {
        let sink = Arc::new(TraceSink::new());
        let records = gpu_sim::trace::with_sink(sink.clone(), || {
            let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
            let host = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
            let lane = host.lane(0);
            // Arbitrary layout: allocate everything, stamp, then free
            // the subset the layout marks dead — leaving an arbitrary
            // scatter of live slices across blocks and segments.
            let mut all: Vec<(DevicePtr, u64, u64, bool)> = Vec::new();
            for (i, &(menu_idx, keep)) in layout.iter().enumerate() {
                let size = COMPACT_MENU[menu_idx];
                let p = g.malloc(&lane, size);
                prop_assert!(!p.is_null(), "layout exhausted the test heap");
                let stamp = 0xC0_0000 + i as u64;
                g.memory().write_stamp(p, stamp);
                all.push((p, size, stamp, keep));
            }
            for &(p, _, _, keep) in &all {
                if !keep {
                    g.free(&lane, p);
                }
            }
            let mut live: Vec<(DevicePtr, u64, u64)> = all
                .iter()
                .filter(|e| e.3)
                .map(|&(p, size, stamp, _)| (p, size, stamp))
                .collect();
            let pairs: Vec<(DevicePtr, u64)> =
                live.iter().map(|&(p, size, _)| (p, size)).collect();
            let relos = g.compact(&pairs, occupancy);
            for r in &relos {
                prop_assert_eq!(r.size, live.iter().find(|e| e.0 == r.old).unwrap().1);
                let e = live.iter_mut().find(|e| e.0 == r.old).unwrap();
                e.0 = r.new;
            }
            // Every live payload survived the migration byte-for-byte.
            for &(p, _, stamp) in &live {
                prop_assert_eq!(
                    g.memory().read_stamp(p), stamp,
                    "payload torn by compaction (relocations: {:?})", relos
                );
            }
            g.check_invariants().expect("invariants violated after compaction");
            for &(p, _, _) in &live {
                g.free(&lane, p);
            }
            prop_assert_eq!(g.stats().reserved_bytes, 0);
            Ok(sink.snapshot())
        })?;
        prop_assert_eq!(sink.dropped(), 0);
        let outcome = Ledger::build(&records).outcome();
        prop_assert_eq!(outcome.leaks, 0, "compaction leaked: {:?}", outcome);
        prop_assert_eq!(outcome.double_frees, 0, "compaction double-freed: {:?}", outcome);
        prop_assert_eq!(outcome.unknown_frees, 0, "compaction freed unknown ptr: {:?}", outcome);
        prop_assert_eq!(outcome.size_mismatches, 0, "compaction size mismatch: {:?}", outcome);
        prop_assert_eq!(outcome.mallocs, outcome.frees, "every malloc pairs with a free");
    }
}
