//! Free-route inversion property: for an *arbitrary* geometry and an
//! arbitrary request size, the pointer produced by `malloc` must route
//! back — from the offset alone, via Algorithm 4's segment-table lookup —
//! to the pipeline that produced it, and freeing it must return exactly
//! what that pipeline reserved.
//!
//! Algorithm 4 discriminates on `tree_id[segment_of(ptr)]`:
//! a slice class for the slice pipeline, the same class plus a set
//! whole-block bit for the block pipeline, and a `LARGE_BASE + n` marker
//! for the multi-segment pipeline.

use gallatin::{Gallatin, GallatinConfig, SearchStructure, LARGE_BASE};
use gpu_sim::{DeviceAllocator, WarpCtx};
use proptest::prelude::*;
use std::sync::atomic::Ordering;

/// Arbitrary-but-valid geometries: every knob that
/// `GallatinConfig::geometry` validates is drawn from its legal range,
/// and dependent knobs (segment size, heap size) are derived so the
/// combination always passes validation.
fn config_strategy() -> impl Strategy<Value = GallatinConfig> {
    (3u32..=6, 1usize..=4, 2u32..=6, 0u32..=2, 2u64..=8, any::<bool>(), any::<bool>()).prop_map(
        |(e_min, n_classes, e_spb, e_seg, n_segs, flat, wide)| {
            let min_slice = 1u64 << e_min;
            let max_slice = min_slice << (n_classes - 1);
            let slices_per_block = 1u64 << e_spb;
            let segment_bytes = (max_slice * slices_per_block) << e_seg;
            GallatinConfig {
                heap_bytes: segment_bytes * n_segs,
                segment_bytes,
                min_slice,
                max_slice,
                slices_per_block,
                num_sms: 2,
                min_buffer_slots: 1,
                search: if flat { SearchStructure::FlatScan } else { SearchStructure::Veb },
                randomize_probe_starts: true,
                wide_veb_scans: wide,
            }
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn free_route_inverts_malloc_route(
        cfg in config_strategy(),
        pipeline in 0u8..3,
        raw in any::<u64>(),
    ) {
        let geo = cfg.geometry();
        let max_block = geo.block_size(geo.num_classes - 1);
        // Pick a size inside the chosen pipeline's band (the slice band
        // includes 0: a zero-size request is a minimum-slice request).
        let (lo, hi) = match pipeline {
            0 => (0, geo.max_slice()),
            1 => (geo.max_slice() + 1, max_block),
            _ => (max_block + 1, geo.heap_bytes),
        };
        let size = lo + raw % (hi - lo + 1);

        let g = Gallatin::new(cfg);
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        let lane = warp.lane(0);
        let p = g.malloc(&lane, size);
        prop_assert!(!p.is_null(), "fresh heap must serve a {size}-byte request");

        // Algorithm 4's routing key, recovered from the offset alone.
        let eff = size.max(1);
        let seg = geo.segment_of(p.0);
        let id = g.table().seg(seg).tree_id.load(Ordering::SeqCst);
        match pipeline {
            0 => {
                let c = geo.slice_class(eff).expect("band 0 is the slice range");
                prop_assert_eq!(id as usize, c, "slice alloc must sit in a class-{} segment", c);
                prop_assert_eq!(p.0 % geo.slice_size(c), 0, "slice-aligned");
                prop_assert!(
                    !g.table().seg(seg).is_whole_block(geo.block_of(p.0, c)),
                    "slice alloc must not set the whole-block bit"
                );
                prop_assert_eq!(g.stats().reserved_bytes, geo.slice_size(c));
            }
            1 => {
                let c = geo.block_class(eff).expect("band 1 is the block range");
                prop_assert_eq!(id as usize, c, "block alloc must sit in a class-{} segment", c);
                prop_assert_eq!(geo.slice_of(p.0, c), 0, "block alloc starts on a block boundary");
                prop_assert!(
                    g.table().seg(seg).is_whole_block(geo.block_of(p.0, c)),
                    "block alloc must set the whole-block bit"
                );
                prop_assert_eq!(g.stats().reserved_bytes, geo.block_size(c));
            }
            _ => {
                let n = geo.segments_for(eff);
                prop_assert_eq!(p.0 % geo.segment_bytes, 0, "large alloc is segment-aligned");
                prop_assert_eq!(
                    u64::from(id), u64::from(LARGE_BASE) + n,
                    "large alloc head must carry its span"
                );
                prop_assert_eq!(g.stats().reserved_bytes, n * geo.segment_bytes);
            }
        }

        // Freeing through Algorithm 4 must return exactly what the
        // producing pipeline reserved — a mis-route would leave a residue
        // (or trip the allocator's own cross-structure invariants).
        g.free(&lane, p);
        prop_assert_eq!(g.stats().reserved_bytes, 0, "free must invert the reservation");
        g.check_invariants().map_err(TestCaseError::fail)?;
    }
}
