//! Allocation-lifecycle tracing, end to end against the real allocator:
//! determinism under a fixed schedule seed, event coverage, ledger
//! pairing, and the leak-at-teardown negative test (ISSUE 4 acceptance
//! criteria).

use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::trace::{self, Ledger, TraceEvent, TraceSink};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
use std::sync::Arc;

const HEAP: u64 = 1 << 20;
const WARPS: u64 = 8;
const ROUNDS: usize = 3;

/// Seeded churn workload: every warp mallocs a mixed-size batch, stamps
/// and verifies it, then frees it, for a few rounds, under the
/// deterministic scheduler.
fn churn(g: &Gallatin, seed: u64) {
    launch_warps(DeviceConfig::with_sms(4).seeded(seed), WARPS * 32, |warp| {
        let n = warp.active as usize;
        let sizes: Vec<Option<u64>> =
            (0..n).map(|l| Some(16u64 << ((warp.base_tid as usize + l) % 4))).collect();
        let mut out = vec![DevicePtr::NULL; n];
        for _ in 0..ROUNDS {
            g.warp_malloc(warp, &sizes, &mut out);
            for p in &out {
                assert!(!p.is_null(), "tiny churn heap must not exhaust");
            }
            g.warp_free(warp, &out);
        }
    });
}

/// Run the churn workload under a fresh allocator and sink; return the
/// Chrome-trace export of the captured records.
fn run_traced(seed: u64) -> String {
    let g = Gallatin::new(GallatinConfig::small_test(HEAP));
    let sink = Arc::new(TraceSink::new());
    trace::with_sink(sink.clone(), || churn(&g, seed));
    assert_eq!(sink.dropped(), 0, "capacity must cover the whole workload");
    trace::chrome_trace_json(&sink.snapshot())
}

#[test]
fn same_seed_produces_byte_identical_trace() {
    let a = run_traced(7);
    let b = run_traced(7);
    assert_eq!(a, b, "fixed GALLATIN_SCHED_SEED must replay to an identical trace");
    let c = run_traced(8);
    assert_ne!(a, c, "different seeds must explore different interleavings");
}

#[test]
fn trace_covers_the_allocator_event_vocabulary_and_balances() {
    let g = Gallatin::new(GallatinConfig::small_test(HEAP));
    let sink = Arc::new(TraceSink::new());
    trace::with_sink(sink.clone(), || churn(&g, 3));
    let records = sink.snapshot();
    let has = |name: &str| records.iter().any(|r| r.event.name() == name);
    for name in [
        "malloc",
        "free",
        "segment_grab",
        "segment_reformat",
        "ring_pop",
        "claim_cas",
        "coalesce_group",
        "buffer_install",
    ] {
        assert!(has(name), "workload never emitted a {name} event");
    }
    // Every malloc carries a lane; warp-protocol events do not.
    let m = records.iter().find(|r| matches!(r.event, TraceEvent::Malloc { .. })).unwrap();
    assert_ne!(m.lane, trace::LANE_NONE);
    // Clean run: the ledger pairs everything.
    let ledger = Ledger::build(&records);
    assert_eq!(ledger.mallocs, WARPS * 32 * ROUNDS as u64);
    assert_eq!(ledger.frees, ledger.mallocs);
    assert!(ledger.live.is_empty(), "leaks in a balanced workload: {:?}", ledger.live);
    assert!(ledger.double_frees.is_empty());
    assert!(ledger.peak_live_bytes > 0);
    assert_eq!(ledger.timeline.last().map(|&(_, b)| b), Some(0), "all bytes returned");
    g.check_invariants().expect("allocator healthy after churn");
}

#[test]
fn planted_leak_is_pinpointed_and_dumps_a_trace() {
    let dir = std::env::temp_dir().join(format!("gallatin_trace_leak_{}", std::process::id()));
    // Env mutation is safe here: Rust runs tests of one binary in threads,
    // but this is the only test in the binary touching this variable's
    // value before reading it back in the same scope.
    std::env::set_var(trace::TRACE_DIR_ENV, &dir);

    let g = Gallatin::new(GallatinConfig::small_test(HEAP));
    let sink = Arc::new(TraceSink::new());
    sink.set_leak_check(true);
    let err = trace::with_sink(sink.clone(), || {
        launch_warps(DeviceConfig::with_sms(2).seeded(11), 64, |warp| {
            let n = warp.active as usize;
            let sizes = vec![Some(32u64); n];
            let mut out = vec![DevicePtr::NULL; n];
            g.warp_malloc(warp, &sizes, &mut out);
            // Plant the leak: warp 1 lane 5 keeps its allocation.
            if warp.warp_id == 1 {
                out[5] = DevicePtr::NULL;
            }
            g.warp_free(warp, &out);
        });
        let ledger = Ledger::build(&sink.snapshot());
        assert_eq!(ledger.live.len(), 1, "exactly the planted leak");
        let leaked = ledger.live[0].ptr;
        let err = g.check_invariants().expect_err("leak check must fire");
        assert!(
            err.contains(&format!("leaked allocation ptr {leaked}")),
            "report must pinpoint the planted pointer: {err}"
        );
        err
    });
    // Provenance: the report names the planting warp and lane.
    assert!(err.contains("warp 1 lane 5"), "report must carry provenance: {err}");
    // The failure auto-dumped a replayable artifact into $GALLATIN_TRACE_DIR.
    assert!(err.contains("trace auto-dumped to"), "missing dump notice: {err}");
    let dump = dir.join("trace_invariant_failure_seed_none.json");
    let body = std::fs::read_to_string(&dump)
        .unwrap_or_else(|e| panic!("dump {} unreadable: {e}", dump.display()));
    assert!(body.contains("\"traceEvents\""));
    assert!(body.contains("\"name\": \"malloc\""));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn clean_teardown_passes_the_armed_leak_check() {
    let g = Gallatin::new(GallatinConfig::small_test(HEAP));
    let sink = Arc::new(TraceSink::new());
    sink.set_leak_check(true);
    trace::with_sink(sink, || {
        churn(&g, 5);
        g.check_invariants().expect("balanced workload must pass the armed leak check");
    });
}
