//! Per-SM block buffers (paper §4.3, "Faster access to blocks").
//!
//! To keep slice allocation at one atomic in the common case, live blocks
//! are cached in a buffer indexed by streaming multiprocessor: the
//! smallest slice class gets one slot per SM, each larger class half as
//! many, with a floor (4 in the paper) to bound contention on big classes.
//! On the paper's A40 example with 128 SMs: 128 slots for 16 B, 64 for
//! 32 B, 32 for 64 B, and so on.
//!
//! A slot holds an [`Entry`] — the block handle *plus the recycle
//! generation it was installed under* (see
//! [`SegmentMeta::claim_slices`](crate::table::SegmentMeta::claim_slices)).
//! CAS-ing full entries rather than bare handles closes the slot-ABA
//! window: a designated replacer whose block was recycled and
//! re-installed while it fetched the replacement holds the old
//! generation, so its swap fails instead of evicting the live entry.

use crate::table::BlockHandle;
use gpu_sim::trace;
use std::sync::atomic::{AtomicU64, Ordering};

/// A buffered block: the handle and the claim-word generation it was
/// installed under.
pub type Entry = (BlockHandle, u32);

/// Sentinel for an unoccupied buffer slot.
pub const EMPTY_SLOT: u64 = BlockHandle::NULL_RAW;

/// Bit position of the generation within a packed slot word; handles
/// (segment × block indexes) stay far below 2^48 for any real geometry.
const SLOT_GEN_SHIFT: u32 = 48;

fn pack((block, gen): Entry) -> u64 {
    debug_assert_eq!(block.0 >> SLOT_GEN_SHIFT, 0, "block handle overflows the slot packing");
    ((gen as u64 & 0xFFFF) << SLOT_GEN_SHIFT) | block.0
}

fn unpack(v: u64) -> Entry {
    (BlockHandle(v & ((1 << SLOT_GEN_SHIFT) - 1)), (v >> SLOT_GEN_SHIFT) as u32)
}

/// The block buffer of one slice class.
pub struct BlockBuffer {
    slots: Box<[AtomicU64]>,
}

impl BlockBuffer {
    /// A buffer with `slots` slots, all empty.
    pub fn new(slots: u32) -> Self {
        assert!(slots > 0);
        BlockBuffer { slots: (0..slots).map(|_| AtomicU64::new(EMPTY_SLOT)).collect() }
    }

    /// Number of slots each class gets: `num_sms >> class`, floored at
    /// `min_slots` (paper §4.3's A40 example).
    pub fn slots_for_class(num_sms: u32, class: usize, min_slots: u32) -> u32 {
        (num_sms >> class).max(min_slots)
    }

    /// Number of slots in this buffer.
    #[inline]
    pub fn num_slots(&self) -> u32 {
        self.slots.len() as u32
    }

    /// The slot an SM maps to.
    #[inline]
    pub fn slot(&self, sm_id: u32) -> &AtomicU64 {
        &self.slots[(sm_id as usize) % self.slots.len()]
    }

    /// Load the entry currently cached for `sm_id`, if any.
    #[inline]
    pub fn current(&self, sm_id: u32) -> Option<Entry> {
        let v = self.slot(sm_id).load(Ordering::Acquire);
        (v != EMPTY_SLOT).then(|| unpack(v))
    }

    /// Install `entry` into an empty slot. Returns `Err(current)` with
    /// the entry some other thread installed first.
    pub fn try_install(&self, sm_id: u32, entry: Entry) -> Result<(), Entry> {
        match self.slot(sm_id).compare_exchange(
            EMPTY_SLOT,
            pack(entry),
            Ordering::AcqRel,
            Ordering::Acquire,
        ) {
            Ok(_) => {
                trace::emit(|| trace::TraceEvent::BufferInstall {
                    slot: (sm_id as usize % self.slots.len()) as u32,
                    block: entry.0 .0,
                });
                Ok(())
            }
            Err(cur) => Err(unpack(cur)),
        }
    }

    /// Replace `old` with `new` (the exhausted-block swap done by the
    /// thread that took the block's last slice). Returns whether this
    /// thread performed the swap; a stale `old` — same block, earlier
    /// generation — fails.
    pub fn try_replace(&self, sm_id: u32, old: Entry, new: Entry) -> bool {
        let swapped = self
            .slot(sm_id)
            .compare_exchange(pack(old), pack(new), Ordering::AcqRel, Ordering::Acquire)
            .is_ok();
        if swapped {
            trace::emit(|| trace::TraceEvent::BufferReplace {
                slot: (sm_id as usize % self.slots.len()) as u32,
                old: old.0 .0,
                new: new.0 .0,
            });
        }
        swapped
    }

    /// Clear `old` out of the slot (used when no replacement block could
    /// be obtained). Returns whether this thread performed the clear.
    pub fn try_clear(&self, sm_id: u32, old: Entry) -> bool {
        self.slot(sm_id)
            .compare_exchange(pack(old), EMPTY_SLOT, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Drain every slot, returning the blocks that were cached. Used at
    /// reset; not safe concurrently with allocation.
    pub fn drain(&self) -> Vec<BlockHandle> {
        let mut out = Vec::new();
        for s in self.slots.iter() {
            let v = s.swap(EMPTY_SLOT, Ordering::AcqRel);
            if v != EMPTY_SLOT {
                out.push(unpack(v).0);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn slot_counts_follow_paper_example() {
        // A40 example: 128 SMs → 128, 64, 32 … floored at 4.
        assert_eq!(BlockBuffer::slots_for_class(128, 0, 4), 128);
        assert_eq!(BlockBuffer::slots_for_class(128, 1, 4), 64);
        assert_eq!(BlockBuffer::slots_for_class(128, 2, 4), 32);
        assert_eq!(BlockBuffer::slots_for_class(128, 5, 4), 4);
        assert_eq!(BlockBuffer::slots_for_class(128, 8, 4), 4);
    }

    #[test]
    fn install_then_current() {
        let b = BlockBuffer::new(4);
        assert!(b.current(0).is_none());
        assert!(b.try_install(0, (BlockHandle(42), 3)).is_ok());
        assert_eq!(b.current(0), Some((BlockHandle(42), 3)));
        // Same slot via modular SM mapping.
        assert_eq!(b.current(4), Some((BlockHandle(42), 3)));
        // Competing install loses and learns the winner.
        assert_eq!(b.try_install(0, (BlockHandle(7), 0)), Err((BlockHandle(42), 3)));
    }

    #[test]
    fn replace_requires_expected_entry() {
        let b = BlockBuffer::new(2);
        b.try_install(1, (BlockHandle(10), 5)).unwrap();
        assert!(!b.try_replace(1, (BlockHandle(11), 5), (BlockHandle(12), 0)));
        // Right block, stale generation: the slot-ABA guard rejects it.
        assert!(!b.try_replace(1, (BlockHandle(10), 4), (BlockHandle(12), 0)));
        assert!(b.try_replace(1, (BlockHandle(10), 5), (BlockHandle(12), 0)));
        assert_eq!(b.current(1), Some((BlockHandle(12), 0)));
    }

    #[test]
    fn clear_empties_slot() {
        let b = BlockBuffer::new(1);
        b.try_install(0, (BlockHandle(5), 1)).unwrap();
        assert!(!b.try_clear(0, (BlockHandle(5), 0)), "stale generation must not clear");
        assert!(b.try_clear(0, (BlockHandle(5), 1)));
        assert!(b.current(0).is_none());
        assert!(!b.try_clear(0, (BlockHandle(5), 1)));
    }

    #[test]
    fn drain_collects_all_cached_blocks() {
        let b = BlockBuffer::new(3);
        b.try_install(0, (BlockHandle(1), 7)).unwrap();
        b.try_install(2, (BlockHandle(3), 0)).unwrap();
        let mut drained = b.drain();
        drained.sort_by_key(|h| h.0);
        assert_eq!(drained, vec![BlockHandle(1), BlockHandle(3)]);
        assert!(b.current(0).is_none());
    }
}
