//! The memory table: per-segment and per-block metadata (paper §5.1).
//!
//! Since the maximum number of blocks per segment is known at
//! construction, all metadata is pre-allocated: every segment carries a
//! `tree_id` word, a block ring queue ([`crate::ring::BlockRing`]), a
//! whole-block bitmap, and `max_blocks` pairs of slice malloc/free
//! counters. Formatting a segment for a larger block size simply leaves
//! the excess block counters unused, exactly as described in the paper.
//!
//! ## Segment lifecycle and the reclamation protocol
//!
//! A segment is in one of three logical states, encoded in `tree_id`:
//!
//! * `TREE_FREE` — owned by the segment tree;
//! * `0..num_classes` — formatted for that block tree;
//! * `LARGE_BASE + n` — head of an `n`-segment large allocation
//!   (`LARGE_BODY` marks its non-head segments).
//!
//! Transitions are guarded the way the paper's Algorithm 2 implies:
//!
//! * **Format** (free → class c): the formatter owns the segment
//!   exclusively (it claimed the bit from the segment tree). Before
//!   rebuilding the ring it *drains stragglers*: it spins until the ring's
//!   occupancy equals the block count of the segment's previous life. A
//!   straggler is a thread that popped a block just as the segment was
//!   being reclaimed; Algorithm 2's `ldcv` re-check makes it push the
//!   block back, and the drain guarantees the reformat cannot overlap
//!   that push. This closes the ABA window between reclaim and reuse.
//!   Because [`crate::ring::BlockRing::len`] is derived from the ring's
//!   ticket positions minus in-flight pushes (never a racy side counter),
//!   observing `len() == prev_blocks` proves every block is home *and*
//!   fully published — the drain doubles as a quiescence barrier, so the
//!   ring rebuild cannot tear an in-flight push. The drain spin is
//!   **bounded**: if a straggler never returns its block the formatter
//!   panics with a diagnostic naming the segment, the missing-block
//!   count, the in-flight push count, and the deterministic schedule
//!   seed (when one is active) so the hang replays from one line.
//! * **Reclaim** (class c → free) is a *two-phase verify*, triggered by
//!   the free that returns the last block:
//!   1. **claim-unreachable** — the reclaimer removes the segment from
//!      its block tree (`claim_exact`), so no new block request can find
//!      it, and publishes `TREE_FREE` so any popper already inside
//!      Algorithm 2 fails its `ldcv` staleness re-check and pushes its
//!      block back;
//!   2. **quiesce-check → publish** — it re-verifies that the ring's
//!      derived occupancy still equals the block count. Exact occupancy
//!      makes this single observation sufficient: a popper that slipped
//!      in before the publish has already passed its ticket CAS and
//!      lowered `len()`, so a full reading proves no block is out and no
//!      push is unpublished. On success the segment is handed to the
//!      segment tree; otherwise the reclaim *aborts* (restores the class
//!      id and block-tree bit) rather than waiting — the in-window
//!      popper legitimately owns its block and will re-trigger reclaim
//!      when it frees.

use crate::config::Geometry;
use crate::ring::BlockRing;
use gpu_sim::trace;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

/// `tree_id` value for a segment owned by the segment tree.
pub const TREE_FREE: u32 = u32::MAX;
/// `tree_id` value for a non-head segment of a large allocation.
pub const LARGE_BODY: u32 = u32::MAX - 1;
/// `tree_id` base for heads of large allocations: `LARGE_BASE + n` marks
/// the head of an `n`-segment allocation. (The paper stores
/// `numBlockTrees + numSegments`; we offset from the top of the u32 range
/// to keep the class ids dense.)
pub const LARGE_BASE: u32 = 1 << 24;

/// Upper bound on format-drain spin iterations before declaring the
/// straggler lost and panicking with diagnostics. Sized for real stalls
/// (tens of milliseconds of OS-scheduling noise in pool mode), far above
/// anything a correct protocol produces.
pub const DRAIN_SPIN_LIMIT: u64 = 1 << 26;

/// A handle to one block: `(segment, block_index)` packed densely.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct BlockHandle(pub u64);

impl BlockHandle {
    /// Raw value of the null handle.
    pub const NULL_RAW: u64 = u64::MAX;

    /// Pack `(segment, block)` into a handle.
    #[inline]
    pub fn new(seg: u64, block: u64, max_blocks: u64) -> Self {
        BlockHandle(seg * max_blocks + block)
    }

    /// The segment this handle's block belongs to.
    #[inline]
    pub fn segment(self, max_blocks: u64) -> u64 {
        self.0 / max_blocks
    }

    /// The block index within its segment.
    #[inline]
    pub fn block(self, max_blocks: u64) -> u64 {
        self.0 % max_blocks
    }
}

/// Per-segment metadata.
pub struct SegmentMeta {
    /// Current owner: `TREE_FREE`, a block-tree class, or a large-alloc
    /// marker. Only the reclaim handshake is SeqCst (the TREE_FREE
    /// store in `tiers/segment.rs` racing [`SegmentMeta::ldcv_tree_id`]
    /// — a store-buffering pair); every other access is Acquire/Release
    /// under exclusive segment ownership (see TESTING.md, "Ordering
    /// audit").
    pub tree_id: AtomicU32,
    /// Block count of the segment's current (or, when free, previous)
    /// format — the drain target for the next format.
    pub cur_blocks: AtomicU32,
    /// Free-block ring queue.
    pub ring: BlockRing,
    /// One bit per block: set while the block is handed out wholesale
    /// (block-level allocation) rather than sliced.
    pub whole_block: Box<[AtomicU64]>,
    /// Per-block slice *claim words*: recycle generation in the high
    /// bits, served-slice count in the low [`SLICE_GEN_SHIFT`] bits (see
    /// [`SegmentMeta::claim_slices`] for why the count alone is not
    /// enough).
    pub malloc_ctr: Box<[AtomicU32]>,
    /// Per-block slice free counters.
    pub free_ctr: Box<[AtomicU32]>,
}

/// Bit position of the recycle generation within a block's claim word;
/// the low bits below it hold the served-slice count, so
/// `slices_per_block` must fit in them (validated by the geometry).
pub const SLICE_GEN_SHIFT: u32 = 16;

/// Mask extracting the served-slice count from a claim word.
pub const SLICE_COUNT_MASK: u32 = (1 << SLICE_GEN_SHIFT) - 1;

impl SegmentMeta {
    fn new(max_blocks: u64) -> Self {
        let words = max_blocks.div_ceil(64) as usize;
        SegmentMeta {
            tree_id: AtomicU32::new(TREE_FREE),
            cur_blocks: AtomicU32::new(0),
            ring: BlockRing::new(max_blocks),
            whole_block: (0..words).map(|_| AtomicU64::new(0)).collect(),
            malloc_ctr: (0..max_blocks).map(|_| AtomicU32::new(0)).collect(),
            free_ctr: (0..max_blocks).map(|_| AtomicU32::new(0)).collect(),
        }
    }

    /// Read the tree id with `ldcv` semantics (Algorithm 2's staleness
    /// check).
    ///
    /// SeqCst retained: this load is the freer's side of the reclaim
    /// handshake — freer writes counters then loads `tree_id`; reclaimer
    /// stores `TREE_FREE` then reads counters. Both must agree on one
    /// total order or each can miss the other's write (store-buffering),
    /// double-counting a freed slice into a reformatted segment.
    #[inline]
    pub fn ldcv_tree_id(&self) -> u32 {
        self.tree_id.load(Ordering::SeqCst)
    }

    /// Whether this segment is quiescent and free: owned by no block
    /// tree (`tree_id == TREE_FREE`) and fully drained — every block of
    /// its previous format is home in the ring and published. This is
    /// exactly the state the two-phase reclaim publishes, so it doubles
    /// as the precondition for re-homing a segment across pool instances
    /// (elastic donation): a segment passing this check has no live
    /// slices, no wholesale blocks, and no straggler mid-push.
    #[inline]
    pub fn is_quiescent_free(&self) -> bool {
        self.ldcv_tree_id() == TREE_FREE
            && self.ring.len() == self.cur_blocks.load(Ordering::Acquire) as u64
    }

    /// Load `block`'s claim word (generation + served count).
    #[inline]
    pub fn claim_word(&self, block: u64) -> u32 {
        self.malloc_ctr[block as usize].load(Ordering::Acquire)
    }

    /// The recycle generation `block` is currently in.
    #[inline]
    pub fn slice_gen(&self, block: u64) -> u32 {
        self.claim_word(block) >> SLICE_GEN_SHIFT
    }

    /// Advance `block`'s claim word to the next generation with a zero
    /// count. Called by whoever exclusively owns the block's recycle
    /// transition (the freer of the last slice, a trim, a reformat); the
    /// bump is what makes any claim still in flight against the old
    /// generation fail instead of landing on the recycled block.
    #[inline]
    pub fn retire_claim_word(&self, block: u64) {
        let ctr = &self.malloc_ctr[block as usize];
        let gen = ctr.load(Ordering::Acquire) >> SLICE_GEN_SHIFT;
        ctr.store(gen.wrapping_add(1) << SLICE_GEN_SHIFT, Ordering::Release);
    }

    /// Reserve up to `want` slices of `block` for one coalesced group
    /// with a single bounded CAS loop (Algorithm 3): one successful RMW
    /// claims the whole group's slices, and the claim is clamped to the
    /// block's remaining capacity so the count never overshoots `spb` —
    /// it is always an exact tally of slices handed out.
    ///
    /// The claim only lands while the block is still in generation
    /// `gen` — the generation under which the caller read the block out
    /// of its per-SM buffer slot. Without that check a claimant that
    /// stalls between reading the slot and CAS-ing the counter can land
    /// its claim on a block that was meanwhile fully freed, recycled
    /// (count reset), pushed to the ring, and even re-installed
    /// elsewhere — reserving slices from a block it does not own and
    /// wrecking the ring/buffer ownership invariants. A generation
    /// mismatch returns `(0, 0)`: the caller re-reads its buffer slot
    /// and retries against whatever lives there now. (16 generation
    /// bits wrap only after 65,536 recycles of one block *while* a
    /// claimant is stalled — not a window a bounded kernel can hold
    /// open.)
    ///
    /// Returns `(base, taken)`; `taken == 0` with an up-to-date
    /// generation means the block is exhausted and its designated
    /// replacer (the taker of the last slice) is swapping in a fresh
    /// one. Each CAS attempt is recorded on `metrics`, which doubles as
    /// the deterministic scheduler's preemption point.
    pub fn claim_slices(
        &self,
        block: u64,
        want: u32,
        spb: u64,
        gen: u32,
        metrics: &gpu_sim::Metrics,
    ) -> (u32, u32) {
        let ctr = &self.malloc_ctr[block as usize];
        let mut cur = ctr.load(Ordering::Acquire);
        let mut attempts = 0u32;
        loop {
            if cur >> SLICE_GEN_SHIFT != gen {
                self.emit_claim(block, attempts, gen, 0);
                return (0, 0); // stale handle: the block was recycled
            }
            let count = cur & SLICE_COUNT_MASK;
            let take = want.min((spb as u32).saturating_sub(count));
            if take == 0 {
                self.emit_claim(block, attempts, gen, 0);
                return (count, 0);
            }
            attempts += 1;
            match ctr.compare_exchange(cur, cur + take, Ordering::AcqRel, Ordering::Acquire) {
                Ok(_) => {
                    metrics.count_cas(true);
                    self.emit_claim(block, attempts, gen, take);
                    return (count, take);
                }
                Err(actual) => {
                    metrics.count_cas(false);
                    cur = actual;
                }
            }
        }
    }

    /// Trace a resolved slice claim. The ring tag doubles as the segment
    /// id; everything inside the closure runs only with a sink installed.
    #[inline]
    fn emit_claim(&self, block: u64, attempts: u32, gen: u32, taken: u32) {
        trace::emit(|| trace::TraceEvent::ClaimCas {
            seg: self.ring.tag(),
            block,
            attempts,
            gen,
            taken,
        });
    }

    /// Mark `block` as handed out wholesale (block-level allocation).
    #[inline]
    pub fn set_whole_block(&self, block: u64) {
        self.whole_block[(block / 64) as usize].fetch_or(1 << (block % 64), Ordering::AcqRel);
    }

    /// Clears the whole-block bit; returns whether it was set (exclusive
    /// among concurrent clearers, protecting against double free).
    #[inline]
    pub fn clear_whole_block(&self, block: u64) -> bool {
        let prev = self.whole_block[(block / 64) as usize]
            .fetch_and(!(1 << (block % 64)), Ordering::AcqRel);
        prev & (1 << (block % 64)) != 0
    }

    /// Whether `block` is currently handed out wholesale.
    #[inline]
    pub fn is_whole_block(&self, block: u64) -> bool {
        self.whole_block[(block / 64) as usize].load(Ordering::Acquire) & (1 << (block % 64)) != 0
    }
}

/// The memory table: all segments' metadata.
pub struct MemoryTable {
    geo: Geometry,
    segments: Box<[SegmentMeta]>,
}

impl MemoryTable {
    /// Pre-allocate metadata for every segment of `geo` (paper §5.1).
    pub fn new(geo: Geometry) -> Self {
        let segments = (0..geo.num_segments)
            .map(|_| SegmentMeta::new(geo.max_blocks))
            .collect::<Vec<_>>()
            .into_boxed_slice();
        for (i, meta) in segments.iter().enumerate() {
            meta.ring.set_tag(i as u64);
        }
        MemoryTable { geo, segments }
    }

    /// Metadata of segment `seg`.
    #[inline]
    pub fn seg(&self, seg: u64) -> &SegmentMeta {
        &self.segments[seg as usize]
    }

    /// The geometry this table was laid out for.
    #[inline]
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Format a freshly claimed segment for class `c`: drain stragglers
    /// from its previous life, rebuild the ring with the class's block
    /// ids, zero the counters, then publish the class id. Returns the
    /// number of spin iterations the drain took (0 when the segment was
    /// already quiescent), for the caller's `drain_spins` metric.
    ///
    /// The caller must exclusively own the segment (a successful
    /// `claim_exact`/`claim_first_ge` on the segment tree).
    ///
    /// # Panics
    ///
    /// The drain is bounded ([`DRAIN_SPIN_LIMIT`] iterations). If a
    /// straggler never pushes its block home — a protocol violation, not
    /// a slow schedule — this panics with the segment id, missing-block
    /// count, in-flight push count, and the active deterministic schedule
    /// seed so the failure replays deterministically.
    pub fn format_segment(&self, seg: u64, class: usize) -> u64 {
        let meta = self.seg(seg);
        debug_assert_eq!(meta.tree_id.load(Ordering::SeqCst), TREE_FREE);
        // Drain: wait until every block of the previous format is home.
        // len() is derived occupancy, so equality also proves no push is
        // mid-publish — the reset below cannot tear an in-flight store.
        let prev_blocks = meta.cur_blocks.load(Ordering::Acquire) as u64;
        let mut spins = 0u64;
        while meta.ring.len() < prev_blocks {
            // spin_hint keeps the straggler schedulable under the
            // deterministic coordinator (it may be a parked warp that
            // still has to push its block home).
            gpu_sim::spin_hint();
            spins += 1;
            if spins > DRAIN_SPIN_LIMIT {
                let seed = match gpu_sim::current_sched_seed() {
                    Some(s) => format!("{s}"),
                    None => "none (pool mode)".to_string(),
                };
                panic!(
                    "segment {seg} drain stalled after {spins} spins: \
                     {} of {prev_blocks} block(s) never returned \
                     ({} push(es) in flight, sched seed {seed})",
                    prev_blocks - meta.ring.len(),
                    meta.ring.pushes_in_flight(),
                );
            }
        }
        let nblocks = self.geo.blocks_per_segment(class);
        meta.ring.reset_full(nblocks);
        meta.cur_blocks.store(nblocks as u32, Ordering::Release);
        for b in 0..nblocks as usize {
            // Zero the count but advance the generation: a claimant
            // stalled on a handle from before the reclaim must not land
            // on the reformatted block.
            meta.retire_claim_word(b as u64);
            meta.free_ctr[b].store(0, Ordering::Relaxed);
        }
        for w in meta.whole_block.iter() {
            w.store(0, Ordering::Relaxed);
        }
        // Release: publishes the fully formatted segment (ring reset,
        // counters zeroed above) to the Acquire-class readers on the
        // malloc path. The SeqCst half of the reclaim handshake is the
        // *store to TREE_FREE* (tiers/segment.rs) racing ldcv_tree_id —
        // this store only ever follows an exclusive claim.
        meta.tree_id.store(class as u32, Ordering::Release);
        trace::emit(|| trace::TraceEvent::SegmentReformat {
            seg,
            class: class as u32,
            drain_spins: spins,
        });
        spins
    }

    /// Mark segments `[start, start+n)` as one large allocation. Caller
    /// exclusively owns them (claimed from the segment tree).
    pub fn mark_large(&self, start: u64, n: u64) {
        debug_assert!(n >= 1);
        // Release: the caller exclusively owns these segments (claimed
        // from the tree), so this is a plain publish, not a handshake.
        self.seg(start).tree_id.store(LARGE_BASE + n as u32, Ordering::Release);
        for s in start + 1..start + n {
            self.seg(s).tree_id.store(LARGE_BODY, Ordering::Release);
        }
    }

    /// Release a large allocation's segments back to the free state;
    /// returns `n`, the number of segments. Returns `None` if `seg` is not
    /// a large-allocation head (double free / bogus pointer).
    pub fn unmark_large(&self, seg: u64) -> Option<u64> {
        let meta = self.seg(seg);
        // Acquire: pairs with mark_large's Release publish; the CAS
        // below is the exclusivity arbiter, this load only routes.
        let id = meta.tree_id.load(Ordering::Acquire);
        if id < LARGE_BASE || id == LARGE_BODY || id == TREE_FREE {
            return None;
        }
        let n = (id - LARGE_BASE) as u64;
        // Exclusive release: only one freer may transition head → FREE.
        // AcqRel: winning the CAS both acquires the allocation's writes
        // and releases the freed state; losers only need the routing
        // Acquire above.
        if meta
            .tree_id
            .compare_exchange(id, TREE_FREE, Ordering::AcqRel, Ordering::Acquire)
            .is_err()
        {
            return None;
        }
        for s in seg + 1..seg + n {
            // Release: body segments become claimable; a claimant's
            // Acquire read of TREE_FREE must see the head transition
            // already done (program order above).
            self.seg(s).tree_id.store(TREE_FREE, Ordering::Release);
        }
        Some(n)
    }

    /// Reset every segment to the initial free state. Not thread-safe.
    pub fn reset(&self) {
        for meta in self.segments.iter() {
            meta.tree_id.store(TREE_FREE, Ordering::Relaxed);
            meta.cur_blocks.store(0, Ordering::Relaxed);
            meta.ring.reset_empty();
            for w in meta.whole_block.iter() {
                w.store(0, Ordering::Relaxed);
            }
            for c in meta.malloc_ctr.iter() {
                c.store(0, Ordering::Relaxed);
            }
            for c in meta.free_ctr.iter() {
                c.store(0, Ordering::Relaxed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GallatinConfig;

    fn table() -> MemoryTable {
        MemoryTable::new(GallatinConfig::small_test(1 << 20).geometry())
    }

    #[test]
    fn block_handle_packs_and_unpacks() {
        let h = BlockHandle::new(5, 17, 64);
        assert_eq!(h.segment(64), 5);
        assert_eq!(h.block(64), 17);
    }

    #[test]
    fn format_publishes_class_and_fills_ring() {
        let t = table();
        t.format_segment(3, 1); // class 1: 2 KB blocks, 32 per segment
        let meta = t.seg(3);
        assert_eq!(meta.ldcv_tree_id(), 1);
        assert_eq!(meta.ring.len(), 32);
        assert_eq!(meta.cur_blocks.load(Ordering::Relaxed), 32);
        let mut ids = Vec::new();
        while let Some(b) = meta.ring.pop() {
            ids.push(b);
        }
        assert_eq!(ids, (0..32).collect::<Vec<_>>());
    }

    #[test]
    fn reformat_after_full_return() {
        let t = table();
        t.format_segment(0, 0); // 64 blocks
        let meta = t.seg(0);
        let b = meta.ring.pop().unwrap();
        meta.ring.push(b);
        // Simulate reclaim then reformat for a different class.
        meta.tree_id.store(TREE_FREE, Ordering::SeqCst);
        t.format_segment(0, 4); // 16 KB blocks, 4 per segment
        assert_eq!(meta.ring.len(), 4);
        assert_eq!(meta.ldcv_tree_id(), 4);
    }

    #[test]
    fn whole_block_bits_are_exclusive() {
        let t = table();
        let meta = t.seg(1);
        meta.set_whole_block(63);
        assert!(meta.is_whole_block(63));
        assert!(!meta.is_whole_block(62));
        assert!(meta.clear_whole_block(63));
        assert!(!meta.clear_whole_block(63), "second clear must lose");
    }

    #[test]
    fn large_mark_unmark_roundtrip() {
        let t = table();
        t.mark_large(4, 3);
        assert_eq!(t.seg(4).ldcv_tree_id(), LARGE_BASE + 3);
        assert_eq!(t.seg(5).ldcv_tree_id(), LARGE_BODY);
        assert_eq!(t.seg(6).ldcv_tree_id(), LARGE_BODY);
        assert_eq!(t.unmark_large(4), Some(3));
        assert_eq!(t.seg(4).ldcv_tree_id(), TREE_FREE);
        assert_eq!(t.seg(5).ldcv_tree_id(), TREE_FREE);
        // Double free is rejected.
        assert_eq!(t.unmark_large(4), None);
        // Body segments are never valid heads.
        t.mark_large(8, 2);
        assert_eq!(t.unmark_large(9), None);
    }

    #[test]
    fn reset_restores_initial_state() {
        let t = table();
        t.format_segment(2, 0);
        t.seg(2).ring.pop();
        t.reset();
        assert_eq!(t.seg(2).ldcv_tree_id(), TREE_FREE);
        assert_eq!(t.seg(2).ring.len(), 0);
        assert_eq!(t.seg(2).cur_blocks.load(Ordering::Relaxed), 0);
        // Reformat works after reset (drain target is 0).
        t.format_segment(2, 0);
        assert_eq!(t.seg(2).ring.len(), 64);
    }

    #[test]
    fn drain_waits_for_straggler() {
        let t = std::sync::Arc::new(table());
        t.format_segment(0, 0);
        let b = t.seg(0).ring.pop().unwrap(); // straggler holds a block
        t.seg(0).tree_id.store(TREE_FREE, Ordering::SeqCst);

        let t2 = t.clone();
        let handle = std::thread::spawn(move || {
            // Will spin until the straggler pushes back.
            t2.format_segment(0, 1);
        });
        std::thread::sleep(std::time::Duration::from_millis(20));
        assert!(!handle.is_finished(), "format must wait for the straggler");
        t.seg(0).ring.push(b);
        handle.join().unwrap();
        assert_eq!(t.seg(0).ldcv_tree_id(), 1);
        assert_eq!(t.seg(0).ring.len(), 32);
    }
}
