//! Block tier: per-class block trees and per-SM block buffers
//! (Algorithm 2).
//!
//! A set bit in a class's tree means "this segment is formatted for the
//! class and has blocks available" (paper §4.2); blocks wait in their
//! segment's ring and the hot wavefront is cached per SM in
//! [`crate::buffer::BlockBuffer`] slots for the slice tier to claim
//! from.

use super::{seed_diag, segment::SegmentTier, slice::SliceTier, TierCtx};
use crate::buffer::BlockBuffer;
use crate::config::GallatinConfig;
use crate::index::SegmentIndex;
use crate::table::{BlockHandle, SegmentMeta, DRAIN_SPIN_LIMIT};
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;

/// The block tier: per-class availability trees plus the per-SM buffer
/// wavefront.
pub(crate) struct BlockTier {
    /// One tree per slice class; a set bit means "this segment is
    /// formatted for the class and has blocks available" (§4.2).
    pub trees: Vec<SegmentIndex>,
    /// Per-class, per-SM cached blocks the slice pipeline claims from.
    pub buffers: Vec<BlockBuffer>,
}

impl BlockTier {
    /// Empty trees and sized buffers for every slice class.
    pub fn new(cfg: &GallatinConfig, num_segments: u64, num_classes: usize) -> Self {
        let trees =
            (0..num_classes).map(|_| SegmentIndex::new(cfg.index_kind(), num_segments)).collect();
        let buffers = (0..num_classes)
            .map(|c| {
                BlockBuffer::new(BlockBuffer::slots_for_class(cfg.num_sms, c, cfg.min_buffer_slots))
            })
            .collect();
        BlockTier { trees, buffers }
    }

    /// Pop a block of `class` from some formatted segment (probing the
    /// block tree from `sm_id`'s start hint), pulling a new segment from
    /// the segment tree when none has blocks available.
    pub fn get(
        &self,
        ctx: &TierCtx,
        class: usize,
        sm_id: u32,
        segments: &SegmentTier,
    ) -> Option<BlockHandle> {
        let hint = ctx.probe_hint(sm_id, ctx.geo.num_segments);
        loop {
            let Some(seg) = self.trees[class].find_first_from(hint) else {
                // No formatted segment with availability; grab a new one.
                if !segments.provide(ctx, class, sm_id, self) {
                    // One more scan: a concurrent thread may have attached
                    // a segment between our search and the failed claim.
                    self.trees[class].find_first_from(hint)?;
                }
                continue;
            };
            let meta = ctx.table.seg(seg);
            let Some(block) = meta.ring.pop() else {
                // Ring empty: deactivate the segment so searches skip it,
                // repairing the race where a free lands in between.
                if self.trees[class].claim_exact(seg) {
                    ctx.metrics.count_cas(true);
                    if !meta.ring.is_empty() && meta.ldcv_tree_id() == class as u32 {
                        self.trees[class].insert(seg);
                    }
                }
                continue;
            };
            ctx.metrics.count_rmw();
            // Algorithm 2's staleness check: the segment may have been
            // reclaimed and reformatted since we found it.
            if meta.ldcv_tree_id() != class as u32 {
                // Route the block home (the straggler bounce the reclaim
                // protocol's drain waits for) and retry elsewhere.
                self.push_home(ctx, meta, seg, block);
                ctx.metrics.count_straggler_bounce();
                ctx.metrics.count_cas(false);
                continue;
            }
            return Some(BlockHandle::new(seg, block, ctx.geo.max_blocks));
        }
    }

    /// Push `block` home to `seg`'s ring, riding out transient fullness:
    /// `push` reports "full" while the popper of the wrapped-onto cell is
    /// between its ticket CAS and its sequence store, and dropping the
    /// block would leak it. The wait is bounded — a push that can never
    /// land means a block was duplicated or the ring was torn, so after
    /// [`DRAIN_SPIN_LIMIT`] spins this panics with replay diagnostics
    /// instead of hanging silently.
    pub fn push_home(&self, ctx: &TierCtx, meta: &SegmentMeta, seg: u64, block: u64) {
        let mut spins = 0u64;
        while !meta.ring.push(block) {
            gpu_sim::spin_hint();
            spins += 1;
            if spins > DRAIN_SPIN_LIMIT {
                panic!(
                    "segment {seg}: block {block} cannot be pushed home after {spins} spins \
                     (ring occupancy {}, {} push(es) in flight, sched seed {})",
                    meta.ring.len(),
                    meta.ring.pushes_in_flight(),
                    seed_diag(),
                );
            }
        }
        ctx.metrics.count_rmw();
    }

    /// Return a block to its segment's ring and restore the segment's
    /// block-tree visibility; reclaim the segment when every block is home
    /// (paper §4.2 / §5).
    pub fn free_block(
        &self,
        ctx: &TierCtx,
        handle: BlockHandle,
        class: usize,
        segments: &SegmentTier,
    ) {
        let seg = handle.segment(ctx.geo.max_blocks);
        let block = handle.block(ctx.geo.max_blocks);
        let meta = ctx.table.seg(seg);
        self.push_home(ctx, meta, seg, block);
        let nblocks = ctx.geo.blocks_per_segment(class);
        if meta.ring.len() == nblocks {
            segments.try_reclaim(ctx, seg, class, nblocks, self);
        } else {
            // Ensure the segment is findable again (idempotent set-bit).
            self.trees[class].insert(seg);
        }
    }

    /// The buffer share of the invariant check (invariant 4: every
    /// buffered block belongs to a segment whose `tree_id` matches the
    /// buffer's class), collecting each segment's cached blocks for the
    /// per-block ownership accounting. `current(i)` for i < num_slots
    /// visits each slot exactly once (identity under the modular SM
    /// mapping). A buffered block of a segment the instance does not
    /// own (per `owned`) is an error: a segment must be fully drained —
    /// wavefront included — before it can be donated away.
    pub fn check_buffers(
        &self,
        ctx: &TierCtx,
        owned: &dyn Fn(u64) -> bool,
        errors: &mut Vec<String>,
    ) -> HashMap<u64, HashSet<u64>> {
        let geo = ctx.geo;
        let mut buffered: HashMap<u64, HashSet<u64>> = HashMap::new();
        for (class, buffer) in self.buffers.iter().enumerate() {
            for i in 0..buffer.num_slots() {
                let Some((handle, _gen)) = buffer.current(i) else { continue };
                let seg = handle.segment(geo.max_blocks);
                let block = handle.block(geo.max_blocks);
                if seg >= geo.num_segments || block >= geo.blocks_per_segment(class) {
                    errors.push(format!(
                        "buffer[class {class}] slot {i} holds out-of-range block {seg}/{block}"
                    ));
                    continue;
                }
                if !owned(seg) {
                    errors.push(format!(
                        "buffer[class {class}] slot {i} caches block {block} of segment \
                         {seg}, which this instance does not own"
                    ));
                }
                let id = ctx.table.seg(seg).ldcv_tree_id();
                if id != class as u32 {
                    errors.push(format!(
                        "buffer[class {class}] slot {i} caches block {block} of segment \
                         {seg}, whose tree_id is {id}"
                    ));
                }
                if !buffered.entry(seg).or_default().insert(block) {
                    errors.push(format!("block {seg}/{block} is cached in two buffer slots"));
                }
            }
        }
        buffered
    }

    /// The formatted-segment share of the invariant check (invariant 3:
    /// every block of a formatted segment is accounted for exactly once
    /// — waiting in the ring, handed out wholesale, cached in a per-SM
    /// buffer, or carrying live slices). Returns the segment's
    /// reserved-byte contribution; live-slice accounting delegates to
    /// [`SliceTier::check_block`].
    pub fn check_formatted(
        &self,
        ctx: &TierCtx,
        seg: u64,
        class: usize,
        cached_set: &HashSet<u64>,
        errors: &mut Vec<String>,
    ) -> u64 {
        let geo = ctx.geo;
        let meta = ctx.table.seg(seg);
        let nblocks = geo.blocks_per_segment(class);
        let cur = meta.cur_blocks.load(Ordering::Acquire) as u64;
        if cur != nblocks {
            errors.push(format!(
                "segment {seg} (class {class}): cur_blocks is {cur}, format implies \
                 {nblocks}"
            ));
        }
        let snap = meta.ring.snapshot();
        // Skipped cells are an error, not a tolerance: the
        // allocator is quiescent here, so every ticket must be
        // published — a hole can mask a vanished block.
        if snap.skipped > 0 {
            errors.push(format!(
                "segment {seg} ring has {} unpublished cell(s) at a quiescent point \
                 (torn push, or phantom occupancy masking a vanished block)",
                snap.skipped
            ));
        }
        if snap.ids.len() as u64 + snap.skipped != meta.ring.len() {
            errors.push(format!(
                "segment {seg} ring occupancy drift: derived occupancy {} vs {} \
                 published + {} unpublished cell(s)",
                meta.ring.len(),
                snap.ids.len(),
                snap.skipped
            ));
        }
        let mut in_ring = vec![false; nblocks as usize];
        for &b in &snap.ids {
            if b >= nblocks {
                errors.push(format!(
                    "segment {seg} ring holds out-of-range block {b} (class {class} \
                     has {nblocks} blocks)"
                ));
            } else if std::mem::replace(&mut in_ring[b as usize], true) {
                errors.push(format!("segment {seg} ring holds block {b} twice"));
            }
        }
        let mut reserved = 0u64;
        for b in 0..nblocks {
            let Some(live) = SliceTier::check_block(ctx, seg, b, errors) else { continue };
            let whole = meta.is_whole_block(b);
            let ringed = in_ring[b as usize];
            let cached = cached_set.contains(&b);
            // Invariant 3: exactly one owner per block.
            if ringed && (whole || cached || live > 0) {
                errors.push(format!(
                    "segment {seg} block {b} is in the ring but also in use \
                     (whole={whole}, buffered={cached}, live slices={live})"
                ));
            }
            if whole && (cached || live > 0) {
                errors.push(format!(
                    "segment {seg} block {b} is wholesale but also \
                     buffered={cached} / live slices={live}"
                ));
            }
            if !ringed && !whole && !cached && live == 0 {
                errors.push(format!(
                    "segment {seg} block {b} is unaccounted for: not in the ring, \
                     not wholesale, not buffered, and has no live slices"
                ));
            }
            reserved += if whole { geo.block_size(class) } else { live * geo.slice_size(class) };
        }
        reserved
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GallatinConfig;
    use crate::gallatin::Gallatin;
    use gpu_sim::{DeviceAllocator, WarpCtx};

    fn tiny() -> Gallatin {
        Gallatin::new(GallatinConfig::small_test(1 << 20)) // 16 segments
    }

    #[test]
    fn block_allocation_and_free_roundtrip() {
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        let l = warp.lane(0);
        // 1 KB > max_slice (256 B): block path, 1 KB blocks.
        let p = g.malloc(&l, 1000);
        assert!(!p.is_null());
        assert_eq!(p.0 % 1024, 0, "block allocations are block-aligned");
        let before = g.free_segments();
        g.free(&l, p);
        // Freeing the only block returns the segment.
        assert_eq!(g.free_segments(), before + 1);
    }

    #[test]
    fn probe_hints_spread_sms_and_knob_restores_legacy_order() {
        // Randomized probe starts (default on): SM 0 keeps the legacy
        // front-first placement, other SMs start their segment probes at
        // hashed positions so concurrent warps do not all claim bit 0.
        // SM 1 allocates first, so its segment claim cannot piggyback on
        // a segment another SM already activated.
        let g = tiny(); // 16 segments
        let w0 = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        let w1 = WarpCtx { warp_id: 1, sm_id: 1, base_tid: 32, active: 1 };
        let b = g.malloc(&w1.lane(0), 16);
        assert_ne!(g.geometry().segment_of(b.0), 0, "SM 1 probes from its hashed start");
        // SM 0 joins the already-active segment instead of claiming a
        // fresh one: wraparound still finds "any free".
        let a = g.malloc(&w0.lane(0), 16);
        assert_eq!(g.geometry().segment_of(a.0), g.geometry().segment_of(b.0));
        g.free(&w0.lane(0), a);
        g.free(&w1.lane(0), b);
        g.check_invariants().expect("invariants hold with randomized probes");

        // Knob off: every SM scans from the front, as the seed did.
        let legacy = Gallatin::new(GallatinConfig {
            randomize_probe_starts: false,
            ..GallatinConfig::small_test(1 << 20)
        });
        let c = legacy.malloc(&w1.lane(0), 16);
        assert_eq!(legacy.geometry().segment_of(c.0), 0, "knob off restores front-first order");
        legacy.free(&w1.lane(0), c);
        legacy.check_invariants().expect("invariants hold with the knob off");
    }
}
