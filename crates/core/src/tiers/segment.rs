//! Segment tier: the segment tree, claim/reclaim/trim (Algorithm 1).
//!
//! Segments are claimed from the *front* of the tree to be formatted
//! for a slice class and from the *back* (contiguous first-fit) for
//! large allocations, keeping the two traffic kinds from fragmenting
//! each other (paper §4.1). The class→free transition is the two-phase
//! verify described in [`crate::table`]'s module docs; `trim` is the
//! host-side maintenance hook that releases the buffered wavefront.

use super::{block::BlockTier, TierCtx};
use crate::index::SegmentIndex;
use crate::table::{LARGE_BASE, LARGE_BODY, SLICE_COUNT_MASK, TREE_FREE};
use gpu_sim::trace;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::Ordering;

/// The segment tier: ownership of the segment tree and the protocols
/// that move segments between "free" and "formatted".
pub(crate) struct SegmentTier {
    /// One bit per free segment; allocations claim from the front,
    /// multi-segment allocations from the back (§4.1).
    pub tree: SegmentIndex,
}

impl SegmentTier {
    /// A tier whose tree spans `universe` segments but starts with only
    /// `[first, first+count)` free — pool mode, where every instance's
    /// tree covers the whole arena (so adopted segments are insertable
    /// anywhere) but initially owns just its shard.
    pub fn with_span(
        kind: crate::index::SearchStructure,
        universe: u64,
        first: u64,
        count: u64,
    ) -> Self {
        let tree = SegmentIndex::new(kind, universe);
        tree.insert_range(first, count);
        SegmentTier { tree }
    }

    /// Claim one free segment, probing from `sm_id`'s hashed start with
    /// wraparound. Every claim attempt — won or lost — is surfaced to the
    /// metrics, so the E14 ablation prices exactly the CAS traffic the
    /// randomized starts remove.
    fn claim_front(&self, ctx: &TierCtx, sm_id: u32) -> Option<u64> {
        let universe = ctx.geo.num_segments;
        let hint = ctx.probe_hint(sm_id, universe);
        let mut x = hint;
        // With a zero hint the first pass already covers the whole
        // universe, so there is nothing to wrap back for.
        let mut wrapped = hint == 0;
        loop {
            match self.tree.successor(x) {
                Some(s) => {
                    let won = self.tree.claim_exact(s);
                    ctx.metrics.count_cas(won);
                    if won {
                        return Some(s);
                    }
                    // Lost the race for s; resume the scan just past it.
                    x = s + 1;
                }
                None => {
                    if wrapped {
                        return None;
                    }
                    wrapped = true;
                    x = 0;
                }
            }
            if x >= universe {
                if wrapped {
                    return None;
                }
                wrapped = true;
                x = 0;
            }
        }
    }

    /// Claim one segment from the segment tree (probing from `sm_id`'s
    /// start hint), format it for `class`, and attach it to that block
    /// tree. Returns `false` when no segment is free.
    pub fn provide(&self, ctx: &TierCtx, class: usize, sm_id: u32, blocks: &BlockTier) -> bool {
        let Some(seg) = self.claim_front(ctx, sm_id) else {
            return false;
        };
        trace::emit(|| trace::TraceEvent::SegmentGrab { seg, class: class as u32 });
        let drain_spins = ctx.table.format_segment(seg, class);
        ctx.metrics.count_drain_spins(drain_spins);
        // Broadcast availability: insert into the block tree last, so any
        // thread that finds the segment sees a fully formatted state.
        blocks.trees[class].insert(seg);
        ctx.metrics.count_rmw();
        true
    }

    /// Claim `n` contiguous segments from the *back* of the segment tree
    /// (first fit from the end) as one large allocation.
    pub fn claim_back(&self, ctx: &TierCtx, n: u64) -> Option<u64> {
        let start = self.tree.claim_contiguous_from_back(n)?;
        ctx.table.mark_large(start, n);
        Some(start)
    }

    /// Attempt the class→free transition — the two-phase verify described
    /// in `crate::table`'s module docs.
    pub fn try_reclaim(
        &self,
        ctx: &TierCtx,
        seg: u64,
        class: usize,
        nblocks: u64,
        blocks: &BlockTier,
    ) {
        // Phase 1 (claim-unreachable): remove the segment from its block
        // tree so no new block request can find it.
        if !blocks.trees[class].claim_exact(seg) {
            // Not present: either a popper deactivated it (it will be
            // re-inserted by the next free) or another reclaimer owns it.
            return;
        }
        ctx.metrics.count_reclaim_attempt();
        trace::emit(|| trace::TraceEvent::SegmentReclaim {
            seg,
            class: class as u32,
            phase: trace::ReclaimPhase::Attempt,
        });
        let meta = ctx.table.seg(seg);
        // ...and publish FREE so any popper already inside Algorithm 2
        // fails its ldcv staleness re-check and pushes its block back.
        // SeqCst retained: this store races `ldcv_tree_id` on the
        // free/pop path in a store-buffering shape — reclaimer stores
        // FREE then reads occupancy, popper bumps occupancy then reads
        // the id. Release/Acquire would let both read stale and each
        // miss the other (see TESTING.md, "Ordering audit").
        meta.tree_id.store(TREE_FREE, Ordering::SeqCst);
        // Phase 2 (quiesce-check): derived occupancy equal to the block
        // count proves every block is home *and* every push is published
        // — a popper that slipped in before the FREE store has already
        // passed its ticket CAS and lowered len(), so one observation
        // suffices; no second scan or wait is needed.
        if meta.ring.len() != nblocks {
            // Abort rather than wait: the in-window popper legitimately
            // owns its block (its ldcv predates our publish) and will
            // re-trigger reclaim when it frees. The segment stays
            // formatted.
            ctx.metrics.count_reclaim_abort();
            trace::emit(|| trace::TraceEvent::SegmentReclaim {
                seg,
                class: class as u32,
                phase: trace::ReclaimPhase::Abort,
            });
            // Aborts are a legitimate outcome under contention; dump the
            // trace only when explicitly asked (debugging a reclaim race).
            if trace::compiled_in()
                && std::env::var_os(trace::TRACE_ABORT_DUMP_ENV).is_some()
                && trace::current_sink().is_some()
            {
                trace::auto_dump("reclaim_abort");
            }
            // Release (abort restore): re-publishing the class only has
            // to be visible-with-context to Acquire readers; the
            // handshake above already ran and nothing new was written
            // that a reader could miss.
            meta.tree_id.store(class as u32, Ordering::Release);
            blocks.trees[class].insert(seg);
            return;
        }
        // Publish: the ring is full and the id is FREE; any late
        // straggler bounces off the ldcv check and the next format's
        // bounded drain covers the push-back.
        self.tree.insert(seg);
        trace::emit(|| trace::TraceEvent::SegmentReclaim {
            seg,
            class: class as u32,
            phase: trace::ReclaimPhase::Publish,
        });
    }

    /// Release the block-buffer *wavefront*: every block cached in a
    /// per-SM buffer slot that has served no live slices is returned to
    /// its segment's ring (and the segment to the segment tree when that
    /// empties it).
    ///
    /// The paper attributes Gallatin's utilization gap to exactly these
    /// always-populated buffers (§6.11: "as all allocation sizes start
    /// with some blocks live, allocating from only one size will leave
    /// the initialized blocks from other sizes untouched"). `trim` is the
    /// corresponding maintenance hook: an application at a memory
    /// high-water mark can call it between kernels to recover the
    /// wavefront. Blocks with live slices stay cached.
    ///
    /// Must not run concurrently with allocation (host-side maintenance
    /// point, like a stream synchronization on the GPU).
    pub fn trim(&self, ctx: &TierCtx, blocks: &BlockTier) -> u64 {
        let mut reclaimed = 0;
        for (class, buffer) in blocks.buffers.iter().enumerate() {
            for handle in buffer.drain() {
                let seg = handle.segment(ctx.geo.max_blocks);
                let block = handle.block(ctx.geo.max_blocks);
                let meta = ctx.table.seg(seg);
                let word = meta.claim_word(block);
                let served = (word & SLICE_COUNT_MASK) as u64;
                let freed = meta.free_ctr[block as usize].load(Ordering::Acquire) as u64;
                if served == freed {
                    // No live slices: safe to recycle wholesale.
                    meta.retire_claim_word(block);
                    meta.free_ctr[block as usize].store(0, Ordering::Release);
                    blocks.free_block(ctx, handle, class, self);
                    reclaimed += 1;
                } else {
                    // Live slices: *retire* the block — mark it exhausted
                    // (count saturated, generation preserved) and credit
                    // the never-served slices as freed, so the ordinary
                    // free path recycles it once the live slices come
                    // back. (Re-buffering it instead could strand it if
                    // the slot is taken, leaking the block.)
                    let spb = ctx.geo.slices_per_block;
                    meta.malloc_ctr[block as usize]
                        .store((word & !SLICE_COUNT_MASK) | spb as u32, Ordering::Relaxed);
                    let credit = (spb - served) as u32;
                    let prev = meta.free_ctr[block as usize].fetch_add(credit, Ordering::AcqRel);
                    if (prev + credit) as u64 == spb {
                        // All live slices were freed between our loads:
                        // recycle now.
                        meta.retire_claim_word(block);
                        meta.free_ctr[block as usize].store(0, Ordering::Release);
                        blocks.free_block(ctx, handle, class, self);
                        reclaimed += 1;
                    }
                }
            }
        }
        reclaimed
    }

    /// The segment tier's share of the invariant check: walk every
    /// segment this instance owns (per the `owned` predicate — always
    /// true standalone, the pool's routing table in pool mode) and
    /// verify single ownership (invariant 1), drained-ness of free
    /// segments (invariant 2), and large-allocation span integrity,
    /// delegating formatted segments to [`BlockTier::check_formatted`].
    /// Unowned segments are another instance's to audit, but any residue
    /// of one in *this* instance's trees is an error (a donation that
    /// left without the quiesce handshake). Returns the reserved-byte
    /// total implied by the table for the owned segments.
    pub fn check(
        &self,
        ctx: &TierCtx,
        blocks: &BlockTier,
        buffered: &HashMap<u64, HashSet<u64>>,
        owned: &dyn Fn(u64) -> bool,
        errors: &mut Vec<String>,
    ) -> u64 {
        let geo = ctx.geo;
        let spb = geo.slices_per_block;
        let empty = HashSet::new();
        let mut computed_reserved: u64 = 0;
        // LARGE_BODY segments still owed to the most recent large head.
        let mut expect_body = 0u64;
        for seg in 0..geo.num_segments {
            let in_seg_tree = self.tree.contains(seg);
            if !owned(seg) {
                if in_seg_tree {
                    errors.push(format!(
                        "segment {seg} is not owned by this instance but is still in its \
                         segment tree"
                    ));
                }
                for (c, tree) in blocks.trees.iter().enumerate() {
                    if tree.contains(seg) {
                        errors.push(format!(
                            "segment {seg} is not owned by this instance but is still in its \
                             block tree {c}"
                        ));
                    }
                }
                if expect_body > 0 {
                    errors.push(format!(
                        "segment {seg} leaves this instance's ownership while a large \
                         allocation is still owed {expect_body} body segment(s)"
                    ));
                    expect_body = 0;
                }
                continue;
            }
            let meta = ctx.table.seg(seg);
            let id = meta.ldcv_tree_id();
            for (c, tree) in blocks.trees.iter().enumerate() {
                if tree.contains(seg) && id != c as u32 {
                    errors.push(format!(
                        "segment {seg} is in block tree {c} but its tree_id is {id}"
                    ));
                }
            }
            if id == LARGE_BODY {
                if expect_body == 0 {
                    errors.push(format!(
                        "segment {seg} is marked LARGE_BODY with no preceding large head"
                    ));
                } else {
                    expect_body -= 1;
                }
                if in_seg_tree {
                    errors.push(format!("large-body segment {seg} is also in the segment tree"));
                }
                continue;
            }
            if expect_body > 0 {
                errors.push(format!(
                    "segment {seg} (tree_id {id}) interrupts a large allocation still owed \
                     {expect_body} body segment(s)"
                ));
                expect_body = 0;
            }
            if id == TREE_FREE {
                if !in_seg_tree {
                    errors.push(format!(
                        "segment {seg} is TREE_FREE but missing from the segment tree"
                    ));
                }
                // Invariant 2: drained, with nothing outstanding.
                let prev_blocks = meta.cur_blocks.load(Ordering::Acquire) as u64;
                if meta.ring.len() != prev_blocks {
                    errors.push(format!(
                        "free segment {seg} is not drained: ring holds {} of {prev_blocks} \
                         blocks",
                        meta.ring.len()
                    ));
                }
                let snap = meta.ring.snapshot();
                if snap.skipped > 0 {
                    errors.push(format!(
                        "free segment {seg} ring has {} unpublished cell(s) at a quiescent \
                         point (torn push, or phantom occupancy masking a vanished block)",
                        snap.skipped
                    ));
                }
                for b in 0..prev_blocks {
                    let m = (meta.claim_word(b) & SLICE_COUNT_MASK) as u64;
                    let f = meta.free_ctr[b as usize].load(Ordering::Acquire) as u64;
                    if m.min(spb) != f {
                        errors.push(format!(
                            "free segment {seg} block {b} has live slices \
                             (malloc_ctr {m}, free_ctr {f})"
                        ));
                    }
                    if meta.is_whole_block(b) {
                        errors.push(format!(
                            "free segment {seg} block {b} still has its whole-block bit set"
                        ));
                    }
                }
                continue;
            }
            if (id as usize) < geo.num_classes {
                let class = id as usize;
                if in_seg_tree {
                    errors.push(format!(
                        "segment {seg} is formatted for class {class} but is also in the \
                         segment tree (simultaneously free and formatted)"
                    ));
                }
                let cached_set = buffered.get(&seg).unwrap_or(&empty);
                computed_reserved += blocks.check_formatted(ctx, seg, class, cached_set, errors);
                continue;
            }
            if id >= LARGE_BASE {
                let n = (id - LARGE_BASE) as u64;
                if n == 0 || seg + n > geo.num_segments {
                    errors.push(format!(
                        "segment {seg} heads a large allocation with invalid span {n}"
                    ));
                } else {
                    expect_body = n - 1;
                    computed_reserved += n * geo.segment_bytes;
                }
                if in_seg_tree {
                    errors.push(format!("large-head segment {seg} is also in the segment tree"));
                }
                continue;
            }
            errors.push(format!("segment {seg} has invalid tree_id {id}"));
        }
        if expect_body > 0 {
            errors.push(format!(
                "large allocation at the end of the heap is missing {expect_body} body \
                 segment(s)"
            ));
        }
        computed_reserved
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GallatinConfig;
    use crate::gallatin::Gallatin;
    use gpu_sim::{DeviceAllocator, WarpCtx};
    use std::sync::atomic::Ordering;

    fn tiny() -> Gallatin {
        Gallatin::new(GallatinConfig::small_test(1 << 20)) // 16 segments
    }

    fn with_lane<R>(f: impl FnOnce(&gpu_sim::LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    #[test]
    fn trim_releases_the_wavefront() {
        let g = tiny(); // 16 segments
        with_lane(|l| {
            // Touch every slice class once: each pins a buffered block,
            // and thus a segment.
            let ptrs: Vec<_> = (0..5).map(|c| g.malloc(l, 16 << c)).collect();
            for &p in &ptrs {
                g.free(l, p);
            }
            assert!(g.free_segments() < 16, "wavefront pins segments");
            let reclaimed = g.trim();
            assert!(reclaimed >= 5, "trim reclaimed only {reclaimed}");
            assert_eq!(g.free_segments(), 16, "wavefront fully released");
            // Allocation still works after a trim.
            let p = g.malloc(l, 16);
            assert!(!p.is_null());
            g.free(l, p);
        });
    }

    #[test]
    fn trim_retires_blocks_with_live_slices() {
        let g = tiny();
        with_lane(|l| {
            let live = g.malloc(l, 16);
            assert!(!live.is_null());
            g.memory().write_stamp(live, 0x11fe);
            g.trim();
            // The live slice survives the trim…
            assert_eq!(g.memory().read_stamp(live), 0x11fe);
            // …and freeing it recycles the retired block and its segment.
            g.free(l, live);
            assert_eq!(g.free_segments(), 16);
            assert_eq!(g.stats().reserved_bytes, 0);
        });
    }

    #[test]
    fn invariant_checker_flags_stale_tree_id() {
        let g = tiny();
        // Corrupt the table: claim a free segment's tree_id without
        // removing it from the segment tree or formatting it.
        g.table().seg(15).tree_id.store(0, Ordering::SeqCst);
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("segment 15"), "unexpected report: {err}");
        assert!(err.contains("simultaneously free and formatted"), "unexpected report: {err}");
    }

    #[test]
    fn invariant_checker_flags_vanished_block() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 16);
            g.free(l, p);
        });
        g.check_invariants().expect("healthy before corruption");
        // Steal a block out of the slice segment's ring and drop it.
        let seg = 0;
        g.table().seg(seg).ring.pop().unwrap();
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("unaccounted"), "unexpected report: {err}");
    }

    #[test]
    fn invariant_checker_rejects_phantom_occupancy() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 16);
            g.free(l, p);
        });
        g.check_invariants().expect("healthy before injection");
        // Inject occupancy drift: a ticket with no published block, the
        // footprint the retired side-counter design could produce.
        g.table().seg(0).ring.debug_inject_phantom_push();
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("unpublished cell"), "unexpected report: {err}");
    }
}
