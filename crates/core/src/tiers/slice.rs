//! Slice tier: generation-tagged claim words and coalesced group claims
//! (Algorithm 3).
//!
//! The hot path: a same-class warp group's leader issues one batched
//! claim on the cached block's malloc counter
//! ([`crate::table::SegmentMeta::claim_slices`]), reserving slices for
//! every lane in a single successful RMW. Claim words carry a recycle
//! generation so a stale buffered handle can never land slices on a
//! recycled block (the slice-pipeline ABA).

use super::{block::BlockTier, segment::SegmentTier, TierCtx};
use crate::table::{BlockHandle, SLICE_COUNT_MASK};
use gpu_sim::{trace, DevicePtr};
use std::sync::atomic::Ordering;

/// Number of times the slice pipeline retries a failed block refresh
/// before declaring the heap exhausted.
const SLICE_RETRIES: usize = 64;

/// The slice tier. Stateless: slice state lives in the claim words and
/// free counters of the memory table, and the cached wavefront belongs
/// to the block tier — this type owns the *protocol*.
pub(crate) struct SliceTier;

impl SliceTier {
    /// The current recycle generation of `handle`'s claim word — captured
    /// when a block enters a buffer so later claims and buffer swaps can
    /// detect that the block was recycled in between (see
    /// [`crate::table::SegmentMeta::claim_slices`] and [`crate::buffer`]).
    fn block_gen(ctx: &TierCtx, handle: BlockHandle) -> u32 {
        let seg = handle.segment(ctx.geo.max_blocks);
        let block = handle.block(ctx.geo.max_blocks);
        ctx.table.seg(seg).slice_gen(block)
    }

    /// Allocate one slice of `class` per lane in `lanes` (a coalesced
    /// group), writing results through `assign`. Returns the number of
    /// lanes served (a prefix of `lanes`); the rest hit heap exhaustion.
    ///
    /// The group leader's single batched claim on the cached block's
    /// malloc counter ([`crate::table::SegmentMeta::claim_slices`])
    /// reserves slices for every lane in one successful RMW — one atomic
    /// per group, not per lane; lanes that did not fit the block retry
    /// after the last-slice taker swaps a fresh block into the buffer.
    /// Allocation-free: this is the hot path.
    ///
    /// (Sibling tiers arrive as explicit arguments by design — the
    /// cross-tier call graph stays visible in signatures — hence the
    /// argument-count allowance.)
    #[allow(clippy::too_many_arguments)]
    pub fn malloc_group(
        &self,
        ctx: &TierCtx,
        sm_id: u32,
        class: usize,
        lanes: &[u32],
        mut assign: impl FnMut(u32, DevicePtr),
        blocks: &BlockTier,
        segments: &SegmentTier,
    ) -> usize {
        let spb = ctx.geo.slices_per_block;
        let buffer = &blocks.buffers[class];
        let mut next = 0usize; // lanes[..next] are served
        let mut attempts = 0;
        while next < lanes.len() {
            attempts += 1;
            if attempts > SLICE_RETRIES {
                break; // heap exhausted for this class
            }
            let entry = match buffer.current(sm_id) {
                Some(e) => e,
                None => {
                    // Leader fetches a block and installs it.
                    let Some(new) = blocks.get(ctx, class, sm_id, segments) else { break };
                    let fresh = (new, Self::block_gen(ctx, new));
                    match buffer.try_install(sm_id, fresh) {
                        Ok(()) => fresh,
                        Err(winner) => {
                            // Someone beat us; return ours and use theirs.
                            blocks.free_block(ctx, new, class, segments);
                            winner
                        }
                    }
                }
            };
            let (handle, gen) = entry;
            let seg = handle.segment(ctx.geo.max_blocks);
            let block = handle.block(ctx.geo.max_blocks);
            let meta = ctx.table.seg(seg);
            let want = (lanes.len() - next) as u32;
            let (base, take) = meta.claim_slices(block, want, spb, gen, ctx.metrics);
            if take > 0 {
                // One successful RMW served `take` lanes: the leader's
                // atomic plus `take − 1` piggybacked followers.
                ctx.metrics.count_coalesced((take - 1) as u64);
                trace::emit(|| trace::TraceEvent::CoalesceGroup {
                    class: class as u32,
                    lanes: take,
                });
                for (rank, lane) in lanes[next..next + take as usize].iter().enumerate() {
                    let idx = base as u64 + rank as u64;
                    let off = ctx.geo.offset_of(seg, block, idx, class);
                    trace::emit_lane(*lane, || trace::TraceEvent::Malloc {
                        size: ctx.geo.slice_size(class),
                        tier: trace::AllocTier::Slice,
                        ptr: off,
                    });
                    assign(*lane, DevicePtr(off));
                }
                next += take as usize;
                ctx.reserved.fetch_add(take as u64 * ctx.geo.slice_size(class), Ordering::Relaxed);
            }

            if (base, take) == (0, 0) {
                // Generation mismatch: the cached entry went stale (the
                // block was recycled out from under us). Evict it if it is
                // still in the slot, then retry with whatever is current.
                buffer.try_clear(sm_id, entry);
                continue;
            }

            if (base + take) as u64 == spb && take > 0 {
                // This group took the block's final slice: it is the
                // designated replacer (paper §4.3). Swap in a fresh block,
                // or clear the slot on exhaustion so others can retry.
                match blocks.get(ctx, class, sm_id, segments) {
                    Some(new) => {
                        let fresh = (new, Self::block_gen(ctx, new));
                        if !buffer.try_replace(sm_id, entry, fresh) {
                            blocks.free_block(ctx, new, class, segments);
                        }
                    }
                    None => {
                        buffer.try_clear(sm_id, entry);
                    }
                }
            } else if next < lanes.len() {
                // Found the block exhausted (or only partly served): the
                // designated replacer owns the swap; yield so it can
                // finish, then retry with the fresh block. (spin_hint
                // also hands the turn back under deterministic
                // scheduling — the replacer may be a parked warp.)
                gpu_sim::spin_hint();
            }
        }
        next
    }

    /// Free one slice (Algorithm 4's small-allocation branch).
    pub fn free_one(
        &self,
        ctx: &TierCtx,
        seg: u64,
        class: usize,
        off: u64,
        blocks: &BlockTier,
        segments: &SegmentTier,
    ) {
        let block = ctx.geo.block_of(off, class);
        self.free_n(ctx, seg, class, block, 1, blocks, segments);
    }

    /// Return `n` slices of one block with a single atomic — the
    /// coalesced-free counterpart of Algorithm 3 (paper §6.5: frees from
    /// the same warp hitting the same block share one `fetch_add`).
    #[allow(clippy::too_many_arguments)]
    pub fn free_n(
        &self,
        ctx: &TierCtx,
        seg: u64,
        class: usize,
        block: u64,
        n: u32,
        blocks: &BlockTier,
        segments: &SegmentTier,
    ) {
        let meta = ctx.table.seg(seg);
        let spb = ctx.geo.slices_per_block;
        let prev = meta.free_ctr[block as usize].fetch_add(n, Ordering::AcqRel);
        ctx.metrics.count_rmw();
        ctx.metrics.count_coalesced(n.saturating_sub(1) as u64);
        ctx.reserved.fetch_sub(n as u64 * ctx.geo.slice_size(class), Ordering::Relaxed);
        if prev as u64 + n as u64 == spb {
            // Every slice allocated and returned: recycle the block.
            // Exclusive here (only one free observes the last count).
            // Bumping the claim word's generation invalidates any stale
            // buffer entry and in-flight claim that still references this
            // incarnation of the block — without it, a claimant that read
            // the handle before the recycle could land slices on the
            // recycled counter (the slice-pipeline ABA).
            meta.retire_claim_word(block);
            meta.free_ctr[block as usize].store(0, Ordering::Release);
            blocks.free_block(
                ctx,
                BlockHandle::new(seg, block, ctx.geo.max_blocks),
                class,
                segments,
            );
        }
    }

    /// The slice share of the invariant check for one block: verify the
    /// free counter never exceeds served slices (a double free) and
    /// return the live-slice count, or `None` when the counters are
    /// inconsistent (the block's ownership cannot be judged).
    pub fn check_block(ctx: &TierCtx, seg: u64, b: u64, errors: &mut Vec<String>) -> Option<u64> {
        let meta = ctx.table.seg(seg);
        let spb = ctx.geo.slices_per_block;
        let m = (meta.claim_word(b) & SLICE_COUNT_MASK) as u64;
        let f = meta.free_ctr[b as usize].load(Ordering::Acquire) as u64;
        let served = m.min(spb);
        if f > served {
            errors.push(format!(
                "segment {seg} block {b}: free counter {f} exceeds served \
                 slices {served} (double free)"
            ));
            return None;
        }
        Some(served - f)
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GallatinConfig;
    use crate::gallatin::Gallatin;
    use crate::table::SLICE_COUNT_MASK;
    use gpu_sim::{DeviceAllocator, DevicePtr, WarpCtx};

    fn tiny() -> Gallatin {
        Gallatin::new(GallatinConfig::small_test(1 << 20)) // 16 segments
    }

    fn with_lane<R>(f: impl FnOnce(&gpu_sim::LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    #[test]
    fn slice_exhaustion_returns_null_not_overlap() {
        // Heap of 2 segments, all blocks of class 0 = 64 slices each.
        let g = Gallatin::new(GallatinConfig::small_test(128 << 10));
        with_lane(|l| {
            let mut ptrs = std::collections::HashSet::new();
            let mut failed = 0;
            for _ in 0..(2 * 64 * 64 + 100) {
                let p = g.malloc(l, 16);
                if p.is_null() {
                    failed += 1;
                } else {
                    assert!(ptrs.insert(p.0), "double allocation at {}", p.0);
                }
            }
            assert!(failed >= 100, "over-subscription must fail");
        });
    }

    #[test]
    fn free_then_realloc_reuses_memory() {
        let g = tiny();
        with_lane(|l| {
            // Fill a whole block so it recycles on full free.
            let spb = g.geometry().slices_per_block as usize;
            let ptrs: Vec<_> = (0..spb).map(|_| g.malloc(l, 16)).collect();
            assert!(ptrs.iter().all(|p| !p.is_null()));
            for &p in &ptrs {
                g.free(l, p);
            }
            // The allocator can serve the same number again.
            let again: Vec<_> = (0..spb).map(|_| g.malloc(l, 16)).collect();
            assert!(again.iter().all(|p| !p.is_null()));
            for &p in &again {
                g.free(l, p);
            }
        });
    }

    #[test]
    fn warp_malloc_coalesces_same_class() {
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        let before = g.metrics().unwrap().snapshot();
        g.warp_malloc(&warp, &sizes, &mut out);
        let mut offs: Vec<u64> = out.iter().map(|p| p.0).collect();
        assert!(out.iter().all(|p| !p.is_null()));
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 32);
        // Coalescing: 31 of the 32 requests piggybacked on the leader.
        let m = g.metrics().unwrap().snapshot();
        assert_eq!(m.coalesced_requests, 31);
        // Atomic budget, like the free-side twin: 32 mallocs including a
        // cold start (segment claim, format, block-tree insert, ring
        // pop, slice claim) stay a handful of atomics, not ~32.
        let atomics = (m.atomic_rmw + m.cas_attempts) - (before.atomic_rmw + before.cas_attempts);
        assert!(atomics <= 6, "mallocs not coalesced: {atomics} atomics for 32 requests");
        g.warp_free(&warp, &out);
    }

    #[test]
    fn warp_malloc_coalesces_steady_state_group_to_one_atomic() {
        // The malloc-side twin of `warp_free_coalesces_same_block`,
        // asserting the paper's O(1) headline exactly: once a block is
        // cached, a coalesced 32-lane same-class group costs ONE atomic
        // RMW on shared metadata (the batched slice claim).
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 16 };
        // Warm-up: 16 slices install a block (64 slices) in SM 0's slot.
        let sizes = vec![Some(16u64); 16];
        let mut warm = vec![DevicePtr::NULL; 16];
        g.warp_malloc(&warp, &sizes, &mut warm);
        assert!(warm.iter().all(|p| !p.is_null()));
        // Measured group: 32 more slices fit the cached block (16+32<64),
        // so no block fetch and no last-slice replacement can hide cost.
        let full = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        let before = g.metrics().unwrap().snapshot();
        g.warp_malloc(&full, &sizes, &mut out);
        let after = g.metrics().unwrap().snapshot();
        assert!(out.iter().all(|p| !p.is_null()));
        let atomics =
            (after.atomic_rmw + after.cas_attempts) - (before.atomic_rmw + before.cas_attempts);
        assert_eq!(atomics, 1, "a steady-state coalesced group must cost exactly one RMW");
        assert_eq!(after.coalesced_requests - before.coalesced_requests, 31);
        g.warp_free(&full, &out);
        g.warp_free(&warp, &warm);
        assert_eq!(g.stats().reserved_bytes, 0);
    }

    #[test]
    fn batched_claim_never_overshoots_the_block_counter() {
        // The bounded CAS claim must clamp to the block's remaining
        // capacity: a group larger than what is left takes the remainder
        // (and the last-slice duty), never pushing malloc_ctr past spb.
        let g = tiny(); // spb = 64
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        // 3 warps × 32 = 96 slices: the first block (64) is exhausted
        // mid-group and a second is installed.
        let mut all = Vec::new();
        for _ in 0..3 {
            g.warp_malloc(&warp, &sizes, &mut out);
            assert!(out.iter().all(|p| !p.is_null()));
            all.extend(out.iter().copied());
        }
        let spb = g.geometry().slices_per_block as u32;
        for seg in 0..g.geometry().num_segments {
            let meta = g.table().seg(seg);
            for b in 0..g.geometry().max_blocks {
                let m = meta.claim_word(b) & SLICE_COUNT_MASK;
                assert!(m <= spb, "segment {seg} block {b}: claim count {m} overshot {spb}");
            }
        }
        g.warp_free(&warp, &all[..32]);
        g.warp_free(&warp, &all[32..64]);
        g.warp_free(&warp, &all[64..]);
        assert_eq!(g.stats().reserved_bytes, 0);
        g.check_invariants().expect("invariants after exhausting blocks mid-group");
    }

    #[test]
    fn warp_free_coalesces_same_block() {
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        g.warp_malloc(&warp, &sizes, &mut out);
        assert!(out.iter().all(|p| !p.is_null()));
        let before = g.metrics().unwrap().snapshot().atomic_rmw;
        g.warp_free(&warp, &out);
        let after = g.metrics().unwrap().snapshot().atomic_rmw;
        // 32 frees of slices in (at most two) blocks: a handful of
        // fetch_adds, not 32.
        assert!(
            after - before <= 4,
            "frees not coalesced: {} atomics for 32 frees",
            after - before
        );
        assert_eq!(g.stats().reserved_bytes, 0);
    }
}
