//! The three allocation tiers, decomposed (paper §4).
//!
//! Gallatin's design is three pipelines layered over one memory table:
//!
//! * [`segment::SegmentTier`] — the segment tree: claim free segments
//!   from the front (to format for a class) or back (large
//!   allocations), the two-phase reclaim protocol, and `trim`
//!   (Algorithm 1, §4.1);
//! * [`block::BlockTier`] — per-class block trees plus the per-SM block
//!   buffers: pop blocks from formatted segments' rings, push them
//!   home, keep the wavefront cached (Algorithm 2, §4.2);
//! * [`slice::SliceTier`] — generation-tagged claim words and the
//!   coalesced group claim: one batched RMW serves a whole same-class
//!   warp group (Algorithm 3, §4.3).
//!
//! Each tier owns its slice of the cross-structure invariant check and
//! its own metrics/trace emissions. The tiers are deliberately *not*
//! self-contained objects: the protocols cross tiers by design (a block
//! free may reclaim a segment; a slice claim may pull a fresh block,
//! which may pull a fresh segment), so methods take the sibling tier as
//! an explicit argument — the call graph stays visible in the
//! signatures instead of hiding behind shared mutable state. Shared
//! read-only facilities (geometry, memory table, metrics, the reserved
//! counter, probe randomization) travel in a [`TierCtx`] built per call
//! by the thin `Gallatin` composition root.

pub(crate) mod block;
pub(crate) mod segment;
pub(crate) mod slice;

pub(crate) use block::BlockTier;
pub(crate) use segment::SegmentTier;
pub(crate) use slice::SliceTier;

use crate::config::Geometry;
use crate::table::MemoryTable;
use gpu_sim::Metrics;
use std::sync::atomic::AtomicU64;

/// The read-only seam every tier operates through: borrowed views of the
/// composition root's shared state, rebuilt per call (it is all
/// references, so construction is free).
pub(crate) struct TierCtx<'a> {
    /// Derived geometry (sizes, counts, offset arithmetic).
    pub geo: &'a Geometry,
    /// The memory table: per-segment metadata (tree ids, rings, claim
    /// words, free counters).
    pub table: &'a MemoryTable,
    /// Striped instrumentation counters.
    pub metrics: &'a Metrics,
    /// Bytes reserved by live allocations (shared accounting).
    pub reserved: &'a AtomicU64,
    /// Start tree probes at an SM-hashed position (paper §4.3).
    pub randomize_probes: bool,
}

impl TierCtx<'_> {
    /// Start position for a tree probe over `universe` ids by `sm_id`.
    ///
    /// A Fibonacci multiplicative hash of the SM id, scaled onto the
    /// universe: concurrent SMs begin their successor scans ~uniformly
    /// spread across the tree's words instead of all reading — and then
    /// CAS-hammering — bit 0 (the paper's block-selection randomization,
    /// §4.3). SM 0 maps to 0, so single-SM workloads keep the legacy
    /// front-first placement; wraparound search preserves the "find any
    /// free" contract for everyone else. Identity, not time or an RNG:
    /// deterministic-mode replays stay bit-identical.
    #[inline]
    pub fn probe_hint(&self, sm_id: u32, universe: u64) -> u64 {
        if !self.randomize_probes {
            return 0;
        }
        (((sm_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) * universe) >> 32
    }
}

/// The active deterministic schedule seed, formatted for diagnostics.
pub(crate) fn seed_diag() -> String {
    match gpu_sim::current_sched_seed() {
        Some(s) => s.to_string(),
        None => "none (pool mode)".to_string(),
    }
}
