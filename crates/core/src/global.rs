//! The global allocator variant (paper Appendix A.2).
//!
//! For convenience, Gallatin ships a variant callable through static
//! device pointers: `init_global_allocator(num_bytes)` once on the host,
//! then `global_malloc` / `global_free` from any device function. This
//! module reproduces that interface over a process-wide instance — a
//! single [`Gallatin`] by default, or a sharded [`GallatinPool`] via
//! [`init_global_pool`].
//!
//! Initialization is once-only, as with the CUDA original where the
//! device pointer is set once: a second `init_*` call returns
//! [`AlreadyInitialized`] (carrying what the global already is) instead
//! of silently keeping the first instance.
//!
//! ```
//! use gallatin::global::{global_free, global_malloc, init_global_allocator};
//! use gpu_sim::{launch, DeviceConfig};
//!
//! init_global_allocator(64 << 20).expect("first init in this process");
//! launch(DeviceConfig::default(), 1024, |ctx| {
//!     let p = global_malloc(ctx, 64);
//!     assert!(!p.is_null());
//!     global_free(ctx, p);
//! });
//! ```

use crate::config::GallatinConfig;
use crate::device_pool::DevicePool;
use crate::gallatin::Gallatin;
use crate::pool::GallatinPool;
use gpu_sim::{DeviceAllocator, DevicePtr, LaneCtx};
use std::sync::OnceLock;

/// What the process-wide global allocator is backed by.
enum GlobalBackend {
    // All boxed: Gallatin inlines its per-class tree/buffer tables,
    // and the pools carry the shared table plus ownership/free-list
    // state inline.
    Single(Box<Gallatin>),
    Pool(Box<GallatinPool>),
    Device(Box<DevicePool>),
}

impl GlobalBackend {
    fn as_dyn(&self) -> &(dyn DeviceAllocator + Send + Sync) {
        match self {
            GlobalBackend::Single(g) => g.as_ref(),
            GlobalBackend::Pool(p) => p.as_ref(),
            GlobalBackend::Device(t) => t.as_ref(),
        }
    }
}

static GLOBAL: OnceLock<GlobalBackend> = OnceLock::new();

/// The global allocator was already initialized; the new configuration
/// was discarded. Carries a description of what the global already is.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AlreadyInitialized {
    /// `name()` of the backend that won the initialization race.
    pub existing: String,
}

impl std::fmt::Display for AlreadyInitialized {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "global allocator already initialized (as {})", self.existing)
    }
}

impl std::error::Error for AlreadyInitialized {}

fn set_global(backend: GlobalBackend) -> Result<(), AlreadyInitialized> {
    GLOBAL
        .set(backend)
        .map_err(|_| AlreadyInitialized { existing: global_allocator().name().to_string() })
}

/// Round a byte budget down to whole default segments (16 MB), with a
/// one-segment floor.
fn whole_segments(num_bytes: u64) -> u64 {
    (num_bytes / (16 << 20) * (16 << 20)).max(16 << 20)
}

/// Initialize the global allocator with `num_bytes` of device memory
/// (rounded down to whole segments, minimum one segment) and the default
/// configuration. Errors with [`AlreadyInitialized`] if the global was
/// already set, as the CUDA original's device pointer is set once.
pub fn init_global_allocator(num_bytes: u64) -> Result<(), AlreadyInitialized> {
    init_global_allocator_with(GallatinConfig {
        heap_bytes: whole_segments(num_bytes),
        ..GallatinConfig::default()
    })
}

/// Initialize the global allocator with an explicit configuration.
pub fn init_global_allocator_with(cfg: GallatinConfig) -> Result<(), AlreadyInitialized> {
    set_global(GlobalBackend::Single(Box::new(Gallatin::new(cfg))))
}

/// Initialize the global allocator as a [`GallatinPool`] of `n`
/// instances sharing `num_bytes` in total: each instance gets
/// `num_bytes / n`, rounded down to whole default segments (minimum one
/// segment each). Placement, spilling, and free routing follow the pool
/// semantics (see [`GallatinPool`]).
pub fn init_global_pool(n: usize, num_bytes: u64) -> Result<(), AlreadyInitialized> {
    assert!(n > 0, "a pool needs at least one instance");
    let cfg = GallatinConfig {
        heap_bytes: whole_segments(num_bytes / n as u64),
        ..GallatinConfig::default()
    };
    init_global_pool_with(n, cfg)
}

/// Initialize the global allocator as a [`GallatinPool`] with an explicit
/// *per-instance* configuration.
pub fn init_global_pool_with(n: usize, cfg: GallatinConfig) -> Result<(), AlreadyInitialized> {
    set_global(GlobalBackend::Pool(Box::new(GallatinPool::new(n, cfg))))
}

/// Initialize the global allocator as a [`DevicePool`] spanning
/// `devices` devices of `width` instances each, sharing `num_bytes` in
/// total: each instance gets `num_bytes / (devices * width)`, rounded
/// down to whole default segments (minimum one segment each). Placement
/// is SM-affine at both levels, frees route by segment home, and only a
/// whole-device denial crosses the interconnect (see [`DevicePool`]).
pub fn init_global_device_pool(
    devices: u32,
    width: usize,
    num_bytes: u64,
) -> Result<(), AlreadyInitialized> {
    assert!(devices > 0, "a topology needs at least one device");
    assert!(width > 0, "a device pool needs at least one instance");
    let cfg = GallatinConfig {
        heap_bytes: whole_segments(num_bytes / (devices as u64 * width as u64)),
        ..GallatinConfig::default()
    };
    init_global_device_pool_with(devices, width, cfg)
}

/// Initialize the global allocator as a [`DevicePool`] with an explicit
/// *per-instance* configuration.
pub fn init_global_device_pool_with(
    devices: u32,
    width: usize,
    cfg: GallatinConfig,
) -> Result<(), AlreadyInitialized> {
    set_global(GlobalBackend::Device(Box::new(DevicePool::new(devices, width, cfg))))
}

/// Whether any `init_global_*` call has succeeded.
pub fn global_allocator_initialized() -> bool {
    GLOBAL.get().is_some()
}

/// The global instance — a [`Gallatin`] or a [`GallatinPool`], behind the
/// common [`DeviceAllocator`] interface.
///
/// # Panics
/// Panics if the global allocator has not been initialized.
pub fn global_allocator() -> &'static (dyn DeviceAllocator + Send + Sync) {
    GLOBAL.get().expect("call init_global_allocator first").as_dyn()
}

/// The global pool, when [`init_global_pool`] initialized one — `None`
/// when the global is a single instance (or uninitialized). For
/// pool-specific introspection (per-instance metrics, spill counts).
pub fn global_pool() -> Option<&'static GallatinPool> {
    match GLOBAL.get() {
        Some(GlobalBackend::Pool(p)) => Some(p),
        _ => None,
    }
}

/// The global device pool, when [`init_global_device_pool`] initialized
/// one — `None` otherwise. For topology-specific introspection
/// (per-device pools, cross-device spill counts, local/peer traffic).
pub fn global_device_pool() -> Option<&'static DevicePool> {
    match GLOBAL.get() {
        Some(GlobalBackend::Device(t)) => Some(t),
        _ => None,
    }
}

/// Device-side `void* global_malloc(num_bytes)`.
pub fn global_malloc(ctx: &LaneCtx, num_bytes: u64) -> DevicePtr {
    global_allocator().malloc(ctx, num_bytes)
}

/// Device-side `void global_free(void* alloc)`.
pub fn global_free(ctx: &LaneCtx, alloc: DevicePtr) {
    global_allocator().free(ctx, alloc)
}

/// Run the invariant check on the global instance — the host-side
/// maintenance check, callable between launches the way
/// `cudaDeviceSynchronize` + a verifier kernel would be on the GPU. For
/// a pool this checks every instance plus the pool-wide ledger.
///
/// # Panics
/// Panics if the global allocator has not been initialized.
pub fn global_check_invariants() -> Result<(), String> {
    global_allocator().check_invariants()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, DeviceConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    // Note: the global is process-wide, so all assertions live in one
    // test to avoid cross-test init races. (The pool-backed global is
    // exercised in the `pool_routing` integration test — its own
    // process.)
    #[test]
    fn global_variant_end_to_end() {
        assert!(!global_allocator_initialized());
        init_global_allocator(48 << 20).expect("first init succeeds");
        assert!(global_allocator_initialized());
        // Double init is an explicit error naming the existing backend,
        // and the first instance stays in place.
        let err = init_global_allocator(128 << 20).unwrap_err();
        assert_eq!(err.existing, "Gallatin");
        assert!(err.to_string().contains("already initialized"));
        let err = init_global_pool(2, 64 << 20).unwrap_err();
        assert_eq!(err.existing, "Gallatin");
        assert_eq!(global_allocator().heap_bytes(), 48 << 20);
        assert!(global_pool().is_none(), "the global is a single instance");

        let ok = AtomicU64::new(0);
        launch(DeviceConfig::default(), 10_000, |ctx| {
            let p = global_malloc(ctx, 32);
            assert!(!p.is_null());
            global_allocator().memory().write_stamp(p, ctx.global_tid());
            assert_eq!(global_allocator().memory().read_stamp(p), ctx.global_tid());
            global_free(ctx, p);
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10_000);
        assert_eq!(global_allocator().stats().reserved_bytes, 0);
        global_check_invariants().expect("global heap consistent after the storm");
    }
}
