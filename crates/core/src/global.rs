//! The global allocator variant (paper Appendix A.2).
//!
//! For convenience, Gallatin ships a variant callable through static
//! device pointers: `init_global_allocator(num_bytes)` once on the host,
//! then `global_malloc` / `global_free` from any device function. This
//! module reproduces that interface over a process-wide instance.
//!
//! ```
//! use gallatin::global::{global_free, global_malloc, init_global_allocator};
//! use gpu_sim::{launch, DeviceConfig};
//!
//! init_global_allocator(64 << 20);
//! launch(DeviceConfig::default(), 1024, |ctx| {
//!     let p = global_malloc(ctx, 64);
//!     assert!(!p.is_null());
//!     global_free(ctx, p);
//! });
//! ```

use crate::config::GallatinConfig;
use crate::gallatin::Gallatin;
use gpu_sim::{DeviceAllocator, DevicePtr, LaneCtx};
use std::sync::OnceLock;

static GLOBAL: OnceLock<Gallatin> = OnceLock::new();

/// Initialize the global allocator with `num_bytes` of device memory
/// (rounded down to whole segments, minimum one segment) and the default
/// configuration. Subsequent calls are ignored, as with the CUDA
/// original where the device pointer is set once.
pub fn init_global_allocator(num_bytes: u64) {
    init_global_allocator_with(GallatinConfig {
        heap_bytes: (num_bytes / (16 << 20) * (16 << 20)).max(16 << 20),
        ..GallatinConfig::default()
    });
}

/// Initialize the global allocator with an explicit configuration.
pub fn init_global_allocator_with(cfg: GallatinConfig) {
    let _ = GLOBAL.set(Gallatin::new(cfg));
}

/// Whether [`init_global_allocator`] has been called.
pub fn global_allocator_initialized() -> bool {
    GLOBAL.get().is_some()
}

/// The global instance.
///
/// # Panics
/// Panics if the global allocator has not been initialized.
pub fn global_allocator() -> &'static Gallatin {
    GLOBAL.get().expect("call init_global_allocator first")
}

/// Device-side `void* global_malloc(num_bytes)`.
pub fn global_malloc(ctx: &LaneCtx, num_bytes: u64) -> DevicePtr {
    global_allocator().malloc(ctx, num_bytes)
}

/// Device-side `void global_free(void* alloc)`.
pub fn global_free(ctx: &LaneCtx, alloc: DevicePtr) {
    global_allocator().free(ctx, alloc)
}

/// Run [`Gallatin::check_invariants`] on the global instance — the
/// host-side maintenance check, callable between launches the way
/// `cudaDeviceSynchronize` + a verifier kernel would be on the GPU.
///
/// # Panics
/// Panics if the global allocator has not been initialized.
pub fn global_check_invariants() -> Result<(), String> {
    global_allocator().check_invariants()
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch, DeviceConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    // Note: the global is process-wide, so all assertions live in one
    // test to avoid cross-test init races.
    #[test]
    fn global_variant_end_to_end() {
        assert!(!global_allocator_initialized());
        init_global_allocator(48 << 20);
        assert!(global_allocator_initialized());
        // Second init is a no-op.
        init_global_allocator(128 << 20);
        assert_eq!(global_allocator().heap_bytes(), 48 << 20);

        let ok = AtomicU64::new(0);
        launch(DeviceConfig::default(), 10_000, |ctx| {
            let p = global_malloc(ctx, 32);
            assert!(!p.is_null());
            global_allocator().memory().write_stamp(p, ctx.global_tid());
            assert_eq!(global_allocator().memory().read_stamp(p), ctx.global_tid());
            global_free(ctx, p);
            ok.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ok.load(Ordering::Relaxed), 10_000);
        assert_eq!(global_allocator().stats().reserved_bytes, 0);
        global_check_invariants().expect("global heap consistent after the storm");
    }
}
