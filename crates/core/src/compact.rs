//! Compaction by migration (DynaSOAr-style defragmentation).
//!
//! Two-phase reclaim only returns a segment when *every* block is home,
//! so a workload that frees most — but not all — of its allocations
//! strands nearly-empty segments: one live slice pins 64 KiB. DynaSOAr's
//! answer is to migrate the stragglers into denser blocks so the
//! nearly-empty ones become reclaimable; this module is that pass,
//! host-side and quiescent (like [`crate::gallatin::Gallatin::trim`],
//! it must not run concurrently with device traffic).
//!
//! The caller supplies its live pointers (`(ptr, requested size)`). The
//! pass groups them by segment, marks *victims* — formatted segments
//! whose live bytes are at or below `max_occupancy` of the segment — and
//! migrates each victim-resident allocation: allocate a replacement
//! through the ordinary malloc path, copy the payload byte-for-byte,
//! free the original. Replacements that land inside the victim set are
//! held (not freed back, which would just re-bounce the next migration)
//! until the search escapes the set, then released. Every migration is
//! a traced malloc/free pair, so the lifecycle [`gpu_sim::trace::Ledger`]
//! proves contents-preserving behavior the same way it audits ordinary
//! traffic; the returned [`Relocation`]s let the caller rewrite its
//! pointers. Once the last straggler leaves a victim, the ordinary free
//! path's reclaim returns the segment — there is no special-case
//! reclaim here, the existing two-phase protocol does the work.

use crate::gallatin::Gallatin;
use crate::pool::GallatinPool;
use gpu_sim::{trace, DevicePtr};
use std::collections::{HashMap, HashSet};

/// One migrated allocation: the caller must replace `old` with `new` in
/// its own pointer bookkeeping (the payload was copied verbatim).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Relocation {
    /// The pointer that was freed.
    pub old: DevicePtr,
    /// The replacement holding the same `size` bytes of payload.
    pub new: DevicePtr,
    /// The originally requested size in bytes.
    pub size: u64,
}

/// Backstop on replacement attempts per migration. The bounce loop
/// terminates on its own (every bounce consumes a slot of a victim
/// segment, and an exhausted victim stops being offered), so this only
/// guards against a protocol bug turning into a hang.
const MAX_BOUNCES: usize = 1 << 17;

impl Gallatin {
    /// Migrate live allocations out of nearly-empty segments so those
    /// segments become reclaimable. `live` is the caller's set of live
    /// `(pointer, requested size)` pairs; a formatted segment whose
    /// live bytes are at or below `max_occupancy * segment_bytes` is a
    /// victim. Returns the relocations performed (possibly empty).
    /// Allocations that cannot be placed outside the victim set (no
    /// headroom) are left where they are — best effort, never lossy.
    ///
    /// Host-side maintenance: must not run concurrently with
    /// allocation, and `live` must be exactly the live set.
    pub fn compact(&self, live: &[(DevicePtr, u64)], max_occupancy: f64) -> Vec<Relocation> {
        assert!((0.0..=1.0).contains(&max_occupancy), "occupancy is a fraction");
        let geo = &self.geo;
        let mut seg_live: HashMap<u64, u64> = HashMap::new();
        for &(p, size) in live {
            *seg_live.entry(geo.segment_of(p.0)).or_default() += size.max(1);
        }
        let mut victims: HashSet<u64> = HashSet::new();
        for (&seg, &bytes) in &seg_live {
            let id = self.table.seg(seg).ldcv_tree_id();
            // Only class-formatted segments compact; large allocations
            // are exactly their segments and have nothing to migrate.
            if (id as usize) < geo.num_classes
                && (bytes as f64) <= max_occupancy * geo.segment_bytes as f64
            {
                victims.insert(seg);
            }
        }
        if victims.is_empty() {
            return Vec::new();
        }
        let mut out = Vec::new();
        let mut bounced: Vec<DevicePtr> = Vec::new();
        for &(old, size) in live {
            if !victims.contains(&geo.segment_of(old.0)) {
                continue;
            }
            // Find a replacement outside the victim set, holding (not
            // recycling) any that land inside it so the search drains
            // the victims instead of churning one slot.
            let mut new = DevicePtr::NULL;
            for _ in 0..MAX_BOUNCES {
                let q = self.malloc_routed(0, size);
                if q.is_null() {
                    break;
                }
                if victims.contains(&geo.segment_of(q.0)) {
                    bounced.push(q);
                    continue;
                }
                new = q;
                break;
            }
            if new.is_null() {
                continue;
            }
            let mut buf = vec![0u8; size as usize];
            self.mem.read_bytes(old, &mut buf);
            self.mem.write_bytes(new, &buf);
            self.free_routed(old);
            out.push(Relocation { old, new, size });
        }
        for q in bounced {
            self.free_routed(q);
        }
        out
    }
}

impl GallatinPool {
    /// Pool-wide compaction: split `live` by owning instance (via the
    /// segment routing table) and run each instance's pass under its
    /// trace-instance stamp, so the ledger keeps pairing per
    /// `(instance, ptr)`. Typically followed by
    /// [`GallatinPool::donate`] or [`GallatinPool::shrink_to`] — the
    /// point of compaction is that afterwards there are whole free
    /// segments to move.
    pub fn compact(&self, live: &[(DevicePtr, u64)], max_occupancy: f64) -> Vec<Relocation> {
        let mut out = Vec::new();
        for i in 0..self.num_instances() {
            let mine: Vec<(DevicePtr, u64)> =
                live.iter().copied().filter(|&(p, _)| self.owner_of(p) == i).collect();
            if mine.is_empty() {
                continue;
            }
            out.extend(trace::with_instance(i as u32, || {
                self.instance(i).compact(&mine, max_occupancy)
            }));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::GallatinConfig;
    use gpu_sim::{DeviceAllocator, WarpCtx};

    fn with_lane<R>(f: impl FnOnce(&gpu_sim::LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    #[test]
    fn compaction_migrates_out_of_nearly_empty_segments() {
        let g = Gallatin::new(GallatinConfig::small_test(1 << 20)); // 16 segments
        with_lane(|l| {
            // Fill two segments with 1 KiB blocks (64 per segment)…
            let a: Vec<_> = (0..64).map(|_| g.malloc(l, 1024)).collect();
            let b: Vec<_> = (0..64).map(|_| g.malloc(l, 1024)).collect();
            assert!(a.iter().chain(&b).all(|p| !p.is_null()));
            // …then empty segment A down to one straggler and open one
            // slot in dense segment B for it to land in.
            for &p in &a[1..] {
                g.free(l, p);
            }
            g.free(l, b[0]);
            g.memory().write_stamp(a[0], 0xfeed_f00d);
            assert_eq!(g.free_segments(), 14, "both segments pinned");
            let live: Vec<_> = std::iter::once((a[0], 1024u64))
                .chain(b[1..].iter().map(|&p| (p, 1024u64)))
                .collect();
            let relos = g.compact(&live, 0.25);
            assert_eq!(relos.len(), 1, "only the straggler moves");
            assert_eq!(relos[0].old, a[0]);
            assert_eq!(relos[0].size, 1024);
            // Payload preserved byte-for-byte, and the nearly-empty
            // segment was reclaimed by the ordinary free path.
            assert_eq!(g.memory().read_stamp(relos[0].new), 0xfeed_f00d);
            assert_eq!(g.free_segments(), 15, "victim segment reclaimed");
            g.check_invariants().expect("clean after compaction");
            g.free(l, relos[0].new);
            for &p in &b[1..] {
                g.free(l, p);
            }
            assert_eq!(g.free_segments(), 16);
            assert_eq!(g.stats().reserved_bytes, 0);
            g.check_invariants().expect("clean after teardown");
        });
    }

    #[test]
    fn dense_segments_are_not_touched() {
        let g = Gallatin::new(GallatinConfig::small_test(1 << 20));
        with_lane(|l| {
            let held: Vec<_> = (0..64).map(|_| g.malloc(l, 1024)).collect();
            let live: Vec<_> = held.iter().map(|&p| (p, 1024u64)).collect();
            assert!(g.compact(&live, 0.25).is_empty(), "a full segment is not a victim");
            for &p in &held {
                g.free(l, p);
            }
            g.check_invariants().expect("clean");
        });
    }

    #[test]
    fn pool_compaction_creates_donatable_segments() {
        let p = GallatinPool::new(2, GallatinConfig::small_test(1 << 20));
        let w0 = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        let l = w0.lane(0);
        // Two sparse segments on instance 0: one straggler block each.
        let a: Vec<_> = (0..64).map(|_| p.malloc(&l, 1024)).collect();
        let b: Vec<_> = (0..64).map(|_| p.malloc(&l, 1024)).collect();
        for &q in &a[1..] {
            p.free(&l, q);
        }
        for &q in &b[2..] {
            p.free(&l, q);
        }
        p.memory().write_stamp(a[0], 0xaa);
        p.memory().write_stamp(b[0], 0xb0);
        p.memory().write_stamp(b[1], 0xb1);
        let live = vec![(a[0], 1024u64), (b[0], 1024), (b[1], 1024)];
        let relos = p.compact(&live, 0.25);
        // All three stragglers coalesce into a fresh segment, so both
        // victims empty out and reclaim.
        assert_eq!(relos.len(), 3);
        let stamps: Vec<u64> = relos.iter().map(|r| p.memory().read_stamp(r.new)).collect();
        for (r, s) in relos.iter().zip(&stamps) {
            let expect = match () {
                _ if r.old == a[0] => 0xaa,
                _ if r.old == b[0] => 0xb0,
                _ => 0xb1,
            };
            assert_eq!(*s, expect, "payload preserved across migration");
        }
        p.check_invariants().expect("clean after pool compaction");
        // The freed-up segments are now donatable to instance 1.
        let freed = p.instance(0).free_segments();
        assert!(freed >= 15, "compaction freed the sparse segments (free = {freed})");
        let donated = p.donate(0, 1, 2).expect("donation after compaction");
        assert!(donated >= 2);
        p.check_invariants().expect("clean after donate");
        for r in &relos {
            p.free(&l, r.new);
        }
        let still: Vec<_> =
            live.iter().filter(|(q, _)| !relos.iter().any(|r| r.old == *q)).collect();
        for (q, _) in still {
            p.free(&l, *q);
        }
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after teardown");
    }
}
