//! The Gallatin allocator: segment, block, and slice pipelines.
//!
//! Allocation routes by size (paper Figure 3, smallest pipeline first):
//!
//! * `size ≤ max_slice` (4096 B default) → **slice** pipeline: coalesce
//!   same-class requests in the warp, one batched claim on the cached
//!   block's malloc counter serves the whole group (Algorithm 3);
//! * `max_slice < size ≤ segment` → **block** pipeline: pop a whole block
//!   of the smallest sufficient class (Algorithm 2);
//! * `size > segment` → **segment** pipeline: claim contiguous segments
//!   from the *back* of the segment tree (Algorithm 1's multi-segment
//!   branch).
//!
//! Frees invert the mapping from the pointer offset alone (Algorithm 4):
//! divide by the segment size for the segment id, read its `tree_id`,
//! then route to the slice, block, or segment return path.

use crate::buffer::BlockBuffer;
use crate::config::{GallatinConfig, Geometry};
use crate::index::SegmentIndex;
use crate::table::{
    BlockHandle, MemoryTable, SegmentMeta, DRAIN_SPIN_LIMIT, LARGE_BASE, LARGE_BODY,
    SLICE_COUNT_MASK, TREE_FREE,
};
use gpu_sim::{
    trace, AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics, WarpCtx,
};
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of times the slice pipeline retries a failed block refresh
/// before declaring the heap exhausted.
const SLICE_RETRIES: usize = 64;

/// The active deterministic schedule seed, formatted for diagnostics.
fn seed_diag() -> String {
    match gpu_sim::current_sched_seed() {
        Some(s) => s.to_string(),
        None => "none (pool mode)".to_string(),
    }
}

/// The Gallatin GPU memory manager.
pub struct Gallatin {
    geo: Geometry,
    mem: DeviceMemory,
    /// One bit per free segment; allocations claim from the front,
    /// multi-segment allocations from the back (§4.1).
    segment_tree: SegmentIndex,
    /// One tree per slice class; a set bit means "this segment is
    /// formatted for the class and has blocks available" (§4.2).
    block_trees: Vec<SegmentIndex>,
    table: MemoryTable,
    buffers: Vec<BlockBuffer>,
    metrics: Metrics,
    /// Start tree probes at an SM-hashed position (paper §4.3); see
    /// [`GallatinConfig::randomize_probe_starts`].
    randomize_probes: bool,
    /// Bytes reserved by live allocations (internal accounting, includes
    /// size-class rounding).
    reserved: AtomicU64,
}

impl Gallatin {
    /// Build and initialize an allocator over a fresh arena.
    pub fn new(cfg: GallatinConfig) -> Self {
        let geo = cfg.geometry();
        let mem = DeviceMemory::new(geo.heap_bytes as usize);
        let segment_tree = SegmentIndex::new_full(cfg.search, geo.num_segments);
        let block_trees =
            (0..geo.num_classes).map(|_| SegmentIndex::new(cfg.search, geo.num_segments)).collect();
        let table = MemoryTable::new(geo);
        let buffers = (0..geo.num_classes)
            .map(|c| {
                BlockBuffer::new(BlockBuffer::slots_for_class(cfg.num_sms, c, cfg.min_buffer_slots))
            })
            .collect();
        Gallatin {
            geo,
            mem,
            segment_tree,
            block_trees,
            table,
            buffers,
            metrics: Metrics::new(),
            randomize_probes: cfg.randomize_probe_starts,
            reserved: AtomicU64::new(0),
        }
    }

    /// Start position for a tree probe over `universe` ids by `sm_id`.
    ///
    /// A Fibonacci multiplicative hash of the SM id, scaled onto the
    /// universe: concurrent SMs begin their successor scans ~uniformly
    /// spread across the tree's words instead of all reading — and then
    /// CAS-hammering — bit 0 (the paper's block-selection randomization,
    /// §4.3). SM 0 maps to 0, so single-SM workloads keep the legacy
    /// front-first placement; wraparound search preserves the "find any
    /// free" contract for everyone else. Identity, not time or an RNG:
    /// deterministic-mode replays stay bit-identical.
    #[inline]
    fn probe_hint(&self, sm_id: u32, universe: u64) -> u64 {
        if !self.randomize_probes {
            return 0;
        }
        (((sm_id as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32) * universe) >> 32
    }

    /// The derived geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Number of segments currently free (diagnostics / tests).
    pub fn free_segments(&self) -> u64 {
        self.segment_tree.count()
    }

    /// Bytes reserved by live allocations, saturated against wrap.
    ///
    /// The `reserved` counter is adjusted with unpaired Relaxed
    /// `fetch_add`/`fetch_sub` on the malloc and free paths, so a reader
    /// racing those updates can observe the subtraction before the
    /// matching addition and see the counter momentarily below zero —
    /// which as a `u64` reads as ~2^64. Stats must never surface that
    /// absurdity, so a wrapped reading reports 0. (The transient is
    /// read-side only: the adds and subs themselves always pair off, and
    /// [`Self::check_invariants`] verifies the settled value exactly.)
    pub fn reserved_bytes(&self) -> u64 {
        let raw = self.reserved.load(Ordering::Relaxed);
        if (raw as i64) < 0 {
            0
        } else {
            raw
        }
    }

    /// Raw access to the memory table, for tests and diagnostic tools
    /// (e.g. corrupting a `tree_id` to exercise [`Self::check_invariants`]).
    /// Not part of the allocation API.
    #[doc(hidden)]
    pub fn table(&self) -> &MemoryTable {
        &self.table
    }

    /// Release the block-buffer *wavefront*: every block cached in a
    /// per-SM buffer slot that has served no live slices is returned to
    /// its segment's ring (and the segment to the segment tree when that
    /// empties it).
    ///
    /// The paper attributes Gallatin's utilization gap to exactly these
    /// always-populated buffers (§6.11: "as all allocation sizes start
    /// with some blocks live, allocating from only one size will leave
    /// the initialized blocks from other sizes untouched"). `trim` is the
    /// corresponding maintenance hook: an application at a memory
    /// high-water mark can call it between kernels to recover the
    /// wavefront. Blocks with live slices stay cached.
    ///
    /// Must not run concurrently with allocation (host-side maintenance
    /// point, like a stream synchronization on the GPU).
    pub fn trim(&self) -> u64 {
        let mut reclaimed = 0;
        for (class, buffer) in self.buffers.iter().enumerate() {
            for handle in buffer.drain() {
                let seg = handle.segment(self.geo.max_blocks);
                let block = handle.block(self.geo.max_blocks);
                let meta = self.table.seg(seg);
                let word = meta.claim_word(block);
                let served = (word & SLICE_COUNT_MASK) as u64;
                let freed = meta.free_ctr[block as usize].load(Ordering::Acquire) as u64;
                if served == freed {
                    // No live slices: safe to recycle wholesale.
                    meta.retire_claim_word(block);
                    meta.free_ctr[block as usize].store(0, Ordering::Release);
                    self.free_block(handle, class);
                    reclaimed += 1;
                } else {
                    // Live slices: *retire* the block — mark it exhausted
                    // (count saturated, generation preserved) and credit
                    // the never-served slices as freed, so the ordinary
                    // free path recycles it once the live slices come
                    // back. (Re-buffering it instead could strand it if
                    // the slot is taken, leaking the block.)
                    let spb = self.geo.slices_per_block;
                    meta.malloc_ctr[block as usize]
                        .store((word & !SLICE_COUNT_MASK) | spb as u32, Ordering::Relaxed);
                    let credit = (spb - served) as u32;
                    let prev = meta.free_ctr[block as usize].fetch_add(credit, Ordering::AcqRel);
                    if (prev + credit) as u64 == spb {
                        // All live slices were freed between our loads:
                        // recycle now.
                        meta.retire_claim_word(block);
                        meta.free_ctr[block as usize].store(0, Ordering::Release);
                        self.free_block(handle, class);
                        reclaimed += 1;
                    }
                }
            }
        }
        reclaimed
    }

    // ==================================================================
    // Invariant checking (host-side diagnostics)
    // ==================================================================

    /// Walk the segment tree, block trees, memory table, and per-SM block
    /// buffers and verify the cross-structure invariants of paper §4–5:
    ///
    /// 1. each segment has exactly one owner — `tree_id` is `TREE_FREE`
    ///    iff the segment is in the segment tree, and a segment in a block
    ///    tree is formatted for exactly that class;
    /// 2. freed segments are drained — a `TREE_FREE` segment's ring holds
    ///    every block of its previous format, with no live slices and no
    ///    whole-block bits outstanding;
    /// 3. every block of a formatted segment is accounted for exactly
    ///    once: waiting in the ring, handed out wholesale, cached in a
    ///    per-SM buffer, or carrying live slices;
    /// 4. every buffered block belongs to a segment whose `tree_id`
    ///    matches the buffer's class;
    /// 5. the `reserved` counter equals the byte total implied by live
    ///    slices, whole blocks, and large allocations.
    ///
    /// Like [`Gallatin::trim`], this must only run while the allocator is
    /// quiescent (a host-side maintenance point between kernels). All
    /// violations are collected before returning, so one corruption
    /// reports its full blast radius in a single `Err`.
    pub fn check_invariants(&self) -> Result<(), String> {
        use std::collections::{HashMap, HashSet};
        let geo = &self.geo;
        let spb = geo.slices_per_block;
        let mut errors: Vec<String> = Vec::new();

        // Per-SM buffers (invariant 4), collecting each segment's cached
        // blocks for the ownership accounting below. `current(i)` for
        // i < num_slots visits each slot exactly once (identity under the
        // modular SM mapping).
        let mut buffered: HashMap<u64, HashSet<u64>> = HashMap::new();
        for (class, buffer) in self.buffers.iter().enumerate() {
            for i in 0..buffer.num_slots() {
                let Some((handle, _gen)) = buffer.current(i) else { continue };
                let seg = handle.segment(geo.max_blocks);
                let block = handle.block(geo.max_blocks);
                if seg >= geo.num_segments || block >= geo.blocks_per_segment(class) {
                    errors.push(format!(
                        "buffer[class {class}] slot {i} holds out-of-range block {seg}/{block}"
                    ));
                    continue;
                }
                let id = self.table.seg(seg).ldcv_tree_id();
                if id != class as u32 {
                    errors.push(format!(
                        "buffer[class {class}] slot {i} caches block {block} of segment \
                         {seg}, whose tree_id is {id}"
                    ));
                }
                if !buffered.entry(seg).or_default().insert(block) {
                    errors.push(format!("block {seg}/{block} is cached in two buffer slots"));
                }
            }
        }

        let empty = HashSet::new();
        let mut computed_reserved: u64 = 0;
        // LARGE_BODY segments still owed to the most recent large head.
        let mut expect_body = 0u64;
        for seg in 0..geo.num_segments {
            let meta = self.table.seg(seg);
            let id = meta.ldcv_tree_id();
            let in_seg_tree = self.segment_tree.contains(seg);
            for (c, tree) in self.block_trees.iter().enumerate() {
                if tree.contains(seg) && id != c as u32 {
                    errors.push(format!(
                        "segment {seg} is in block tree {c} but its tree_id is {id}"
                    ));
                }
            }
            if id == LARGE_BODY {
                if expect_body == 0 {
                    errors.push(format!(
                        "segment {seg} is marked LARGE_BODY with no preceding large head"
                    ));
                } else {
                    expect_body -= 1;
                }
                if in_seg_tree {
                    errors.push(format!("large-body segment {seg} is also in the segment tree"));
                }
                continue;
            }
            if expect_body > 0 {
                errors.push(format!(
                    "segment {seg} (tree_id {id}) interrupts a large allocation still owed \
                     {expect_body} body segment(s)"
                ));
                expect_body = 0;
            }
            if id == TREE_FREE {
                if !in_seg_tree {
                    errors.push(format!(
                        "segment {seg} is TREE_FREE but missing from the segment tree"
                    ));
                }
                // Invariant 2: drained, with nothing outstanding.
                let prev_blocks = meta.cur_blocks.load(Ordering::Acquire) as u64;
                if meta.ring.len() != prev_blocks {
                    errors.push(format!(
                        "free segment {seg} is not drained: ring holds {} of {prev_blocks} \
                         blocks",
                        meta.ring.len()
                    ));
                }
                let snap = meta.ring.snapshot();
                if snap.skipped > 0 {
                    errors.push(format!(
                        "free segment {seg} ring has {} unpublished cell(s) at a quiescent \
                         point (torn push, or phantom occupancy masking a vanished block)",
                        snap.skipped
                    ));
                }
                for b in 0..prev_blocks {
                    let m = (meta.claim_word(b) & SLICE_COUNT_MASK) as u64;
                    let f = meta.free_ctr[b as usize].load(Ordering::Acquire) as u64;
                    if m.min(spb) != f {
                        errors.push(format!(
                            "free segment {seg} block {b} has live slices \
                             (malloc_ctr {m}, free_ctr {f})"
                        ));
                    }
                    if meta.is_whole_block(b) {
                        errors.push(format!(
                            "free segment {seg} block {b} still has its whole-block bit set"
                        ));
                    }
                }
                continue;
            }
            if (id as usize) < geo.num_classes {
                let class = id as usize;
                if in_seg_tree {
                    errors.push(format!(
                        "segment {seg} is formatted for class {class} but is also in the \
                         segment tree (simultaneously free and formatted)"
                    ));
                }
                let nblocks = geo.blocks_per_segment(class);
                let cur = meta.cur_blocks.load(Ordering::Acquire) as u64;
                if cur != nblocks {
                    errors.push(format!(
                        "segment {seg} (class {class}): cur_blocks is {cur}, format implies \
                         {nblocks}"
                    ));
                }
                let snap = meta.ring.snapshot();
                // Skipped cells are an error, not a tolerance: the
                // allocator is quiescent here, so every ticket must be
                // published — a hole can mask a vanished block.
                if snap.skipped > 0 {
                    errors.push(format!(
                        "segment {seg} ring has {} unpublished cell(s) at a quiescent point \
                         (torn push, or phantom occupancy masking a vanished block)",
                        snap.skipped
                    ));
                }
                if snap.ids.len() as u64 + snap.skipped != meta.ring.len() {
                    errors.push(format!(
                        "segment {seg} ring occupancy drift: derived occupancy {} vs {} \
                         published + {} unpublished cell(s)",
                        meta.ring.len(),
                        snap.ids.len(),
                        snap.skipped
                    ));
                }
                let mut in_ring = vec![false; nblocks as usize];
                for &b in &snap.ids {
                    if b >= nblocks {
                        errors.push(format!(
                            "segment {seg} ring holds out-of-range block {b} (class {class} \
                             has {nblocks} blocks)"
                        ));
                    } else if std::mem::replace(&mut in_ring[b as usize], true) {
                        errors.push(format!("segment {seg} ring holds block {b} twice"));
                    }
                }
                let cached_set = buffered.get(&seg).unwrap_or(&empty);
                for b in 0..nblocks {
                    let m = (meta.claim_word(b) & SLICE_COUNT_MASK) as u64;
                    let f = meta.free_ctr[b as usize].load(Ordering::Acquire) as u64;
                    let served = m.min(spb);
                    if f > served {
                        errors.push(format!(
                            "segment {seg} block {b}: free counter {f} exceeds served \
                             slices {served} (double free)"
                        ));
                        continue;
                    }
                    let live = served - f;
                    let whole = meta.is_whole_block(b);
                    let ringed = in_ring[b as usize];
                    let cached = cached_set.contains(&b);
                    // Invariant 3: exactly one owner per block.
                    if ringed && (whole || cached || live > 0) {
                        errors.push(format!(
                            "segment {seg} block {b} is in the ring but also in use \
                             (whole={whole}, buffered={cached}, live slices={live})"
                        ));
                    }
                    if whole && (cached || live > 0) {
                        errors.push(format!(
                            "segment {seg} block {b} is wholesale but also \
                             buffered={cached} / live slices={live}"
                        ));
                    }
                    if !ringed && !whole && !cached && live == 0 {
                        errors.push(format!(
                            "segment {seg} block {b} is unaccounted for: not in the ring, \
                             not wholesale, not buffered, and has no live slices"
                        ));
                    }
                    computed_reserved +=
                        if whole { geo.block_size(class) } else { live * geo.slice_size(class) };
                }
                continue;
            }
            if id >= LARGE_BASE {
                let n = (id - LARGE_BASE) as u64;
                if n == 0 || seg + n > geo.num_segments {
                    errors.push(format!(
                        "segment {seg} heads a large allocation with invalid span {n}"
                    ));
                } else {
                    expect_body = n - 1;
                    computed_reserved += n * geo.segment_bytes;
                }
                if in_seg_tree {
                    errors.push(format!("large-head segment {seg} is also in the segment tree"));
                }
                continue;
            }
            errors.push(format!("segment {seg} has invalid tree_id {id}"));
        }
        if expect_body > 0 {
            errors.push(format!(
                "large allocation at the end of the heap is missing {expect_body} body \
                 segment(s)"
            ));
        }

        // Invariant 5: the reserved counter matches the table. Checked on
        // the raw counter, not the saturating accessor — a wrapped value
        // is itself the violation being reported.
        let reserved = self.reserved.load(Ordering::Acquire);
        if computed_reserved != reserved {
            let wrapped = if (reserved as i64) < 0 { " (wrapped below zero)" } else { "" };
            errors.push(format!(
                "reserved accounting mismatch: counter says {reserved} bytes{wrapped}, table \
                 implies {computed_reserved}"
            ));
        }
        // Lifecycle-ledger leak check: when a trace sink is installed on
        // this (host) thread with its teardown leak check armed, any
        // allocation the trace saw malloc'd but never freed is a
        // violation, reported with its full provenance.
        if trace::compiled_in() {
            if let Some(sink) = trace::current_sink() {
                if sink.leak_check_enabled() {
                    let ledger = trace::Ledger::build(&sink.snapshot());
                    for l in &ledger.live {
                        errors.push(format!(
                            "leaked allocation ptr {} ({} B): allocated at step {} by sm {} \
                             warp {} lane {} and never freed",
                            l.ptr, l.size, l.step, l.sm, l.warp, l.lane
                        ));
                    }
                    for d in &ledger.double_frees {
                        errors.push(format!(
                            "unmatched free of ptr {} at step {} (sm {} warp {} lane {}): \
                             double free or free of an untraced allocation",
                            d.ptr, d.step, d.sm, d.warp, d.lane
                        ));
                    }
                }
            }
        }
        if errors.is_empty() {
            Ok(())
        } else {
            // Every invariant failure leaves a replayable artifact behind
            // when a trace was being captured.
            if let Some(path) = trace::auto_dump("invariant_failure") {
                errors.push(format!("trace auto-dumped to {}", path.display()));
            }
            Err(errors.join("\n"))
        }
    }

    // ==================================================================
    // Segment pipeline (Algorithm 1)
    // ==================================================================

    /// Claim one free segment, probing from `sm_id`'s hashed start with
    /// wraparound. Every claim attempt — won or lost — is surfaced to the
    /// metrics, so the E14 ablation prices exactly the CAS traffic the
    /// randomized starts remove.
    fn claim_segment_front(&self, sm_id: u32) -> Option<u64> {
        let universe = self.geo.num_segments;
        let hint = self.probe_hint(sm_id, universe);
        let mut x = hint;
        // With a zero hint the first pass already covers the whole
        // universe, so there is nothing to wrap back for.
        let mut wrapped = hint == 0;
        loop {
            match self.segment_tree.successor(x) {
                Some(s) => {
                    let won = self.segment_tree.claim_exact(s);
                    self.metrics.count_cas(won);
                    if won {
                        return Some(s);
                    }
                    // Lost the race for s; resume the scan just past it.
                    x = s + 1;
                }
                None => {
                    if wrapped {
                        return None;
                    }
                    wrapped = true;
                    x = 0;
                }
            }
            if x >= universe {
                if wrapped {
                    return None;
                }
                wrapped = true;
                x = 0;
            }
        }
    }

    /// Claim one segment from the segment tree (probing from `sm_id`'s
    /// start hint), format it for `class`, and attach it to that block
    /// tree. Returns `false` when no segment is free.
    fn get_segment(&self, class: usize, sm_id: u32) -> bool {
        let Some(seg) = self.claim_segment_front(sm_id) else {
            return false;
        };
        trace::emit(|| trace::TraceEvent::SegmentGrab { seg, class: class as u32 });
        let drain_spins = self.table.format_segment(seg, class);
        self.metrics.count_drain_spins(drain_spins);
        // Broadcast availability: insert into the block tree last, so any
        // thread that finds the segment sees a fully formatted state.
        self.block_trees[class].insert(seg);
        self.metrics.count_rmw();
        true
    }

    /// Claim `n` contiguous segments from the *back* of the segment tree
    /// (first fit from the end) as one large allocation.
    fn get_segments_back(&self, n: u64) -> Option<u64> {
        let start = self.segment_tree.claim_contiguous_from_back(n)?;
        self.table.mark_large(start, n);
        Some(start)
    }

    // ==================================================================
    // Block pipeline (Algorithm 2)
    // ==================================================================

    /// Pop a block of `class` from some formatted segment (probing the
    /// block tree from `sm_id`'s start hint), pulling a new segment from
    /// the segment tree when none has blocks available.
    fn get_block(&self, class: usize, sm_id: u32) -> Option<BlockHandle> {
        let hint = self.probe_hint(sm_id, self.geo.num_segments);
        loop {
            let Some(seg) = self.block_trees[class].find_first_from(hint) else {
                // No formatted segment with availability; grab a new one.
                if !self.get_segment(class, sm_id) {
                    // One more scan: a concurrent thread may have attached
                    // a segment between our search and the failed claim.
                    self.block_trees[class].find_first_from(hint)?;
                }
                continue;
            };
            let meta = self.table.seg(seg);
            let Some(block) = meta.ring.pop() else {
                // Ring empty: deactivate the segment so searches skip it,
                // repairing the race where a free lands in between.
                if self.block_trees[class].claim_exact(seg) {
                    self.metrics.count_cas(true);
                    if !meta.ring.is_empty() && meta.ldcv_tree_id() == class as u32 {
                        self.block_trees[class].insert(seg);
                    }
                }
                continue;
            };
            self.metrics.count_rmw();
            // Algorithm 2's staleness check: the segment may have been
            // reclaimed and reformatted since we found it.
            if meta.ldcv_tree_id() != class as u32 {
                // Route the block home (the straggler bounce the reclaim
                // protocol's drain waits for) and retry elsewhere.
                self.push_home(meta, seg, block);
                self.metrics.count_straggler_bounce();
                self.metrics.count_cas(false);
                continue;
            }
            return Some(BlockHandle::new(seg, block, self.geo.max_blocks));
        }
    }

    /// Push `block` home to `seg`'s ring, riding out transient fullness:
    /// `push` reports "full" while the popper of the wrapped-onto cell is
    /// between its ticket CAS and its sequence store, and dropping the
    /// block would leak it. The wait is bounded — a push that can never
    /// land means a block was duplicated or the ring was torn, so after
    /// [`DRAIN_SPIN_LIMIT`] spins this panics with replay diagnostics
    /// instead of hanging silently.
    fn push_home(&self, meta: &SegmentMeta, seg: u64, block: u64) {
        let mut spins = 0u64;
        while !meta.ring.push(block) {
            gpu_sim::spin_hint();
            spins += 1;
            if spins > DRAIN_SPIN_LIMIT {
                panic!(
                    "segment {seg}: block {block} cannot be pushed home after {spins} spins \
                     (ring occupancy {}, {} push(es) in flight, sched seed {})",
                    meta.ring.len(),
                    meta.ring.pushes_in_flight(),
                    seed_diag(),
                );
            }
        }
        self.metrics.count_rmw();
    }

    /// Return a block to its segment's ring and restore the segment's
    /// block-tree visibility; reclaim the segment when every block is home
    /// (paper §4.2 / §5).
    fn free_block(&self, handle: BlockHandle, class: usize) {
        let seg = handle.segment(self.geo.max_blocks);
        let block = handle.block(self.geo.max_blocks);
        let meta = self.table.seg(seg);
        self.push_home(meta, seg, block);
        let nblocks = self.geo.blocks_per_segment(class);
        if meta.ring.len() == nblocks {
            self.try_reclaim_segment(seg, class, nblocks);
        } else {
            // Ensure the segment is findable again (idempotent set-bit).
            self.block_trees[class].insert(seg);
        }
    }

    /// Attempt the class→free transition — the two-phase verify described
    /// in `crate::table`'s module docs.
    fn try_reclaim_segment(&self, seg: u64, class: usize, nblocks: u64) {
        // Phase 1 (claim-unreachable): remove the segment from its block
        // tree so no new block request can find it.
        if !self.block_trees[class].claim_exact(seg) {
            // Not present: either a popper deactivated it (it will be
            // re-inserted by the next free) or another reclaimer owns it.
            return;
        }
        self.metrics.count_reclaim_attempt();
        trace::emit(|| trace::TraceEvent::SegmentReclaim {
            seg,
            class: class as u32,
            phase: trace::ReclaimPhase::Attempt,
        });
        let meta = self.table.seg(seg);
        // ...and publish FREE so any popper already inside Algorithm 2
        // fails its ldcv staleness re-check and pushes its block back.
        meta.tree_id.store(TREE_FREE, Ordering::SeqCst);
        // Phase 2 (quiesce-check): derived occupancy equal to the block
        // count proves every block is home *and* every push is published
        // — a popper that slipped in before the FREE store has already
        // passed its ticket CAS and lowered len(), so one observation
        // suffices; no second scan or wait is needed.
        if meta.ring.len() != nblocks {
            // Abort rather than wait: the in-window popper legitimately
            // owns its block (its ldcv predates our publish) and will
            // re-trigger reclaim when it frees. The segment stays
            // formatted.
            self.metrics.count_reclaim_abort();
            trace::emit(|| trace::TraceEvent::SegmentReclaim {
                seg,
                class: class as u32,
                phase: trace::ReclaimPhase::Abort,
            });
            // Aborts are a legitimate outcome under contention; dump the
            // trace only when explicitly asked (debugging a reclaim race).
            if trace::compiled_in()
                && std::env::var_os(trace::TRACE_ABORT_DUMP_ENV).is_some()
                && trace::current_sink().is_some()
            {
                trace::auto_dump("reclaim_abort");
            }
            meta.tree_id.store(class as u32, Ordering::SeqCst);
            self.block_trees[class].insert(seg);
            return;
        }
        // Publish: the ring is full and the id is FREE; any late
        // straggler bounces off the ldcv check and the next format's
        // bounded drain covers the push-back.
        self.segment_tree.insert(seg);
        trace::emit(|| trace::TraceEvent::SegmentReclaim {
            seg,
            class: class as u32,
            phase: trace::ReclaimPhase::Publish,
        });
    }

    // ==================================================================
    // Slice pipeline (Algorithm 3)
    // ==================================================================

    /// The current recycle generation of `handle`'s claim word — captured
    /// when a block enters a buffer so later claims and buffer swaps can
    /// detect that the block was recycled in between (see
    /// [`SegmentMeta::claim_slices`] and [`crate::buffer`]).
    fn block_gen(&self, handle: BlockHandle) -> u32 {
        let seg = handle.segment(self.geo.max_blocks);
        let block = handle.block(self.geo.max_blocks);
        self.table.seg(seg).slice_gen(block)
    }

    /// Allocate one slice of `class` per lane in `lanes` (a coalesced
    /// group), writing results through `assign`. Returns the number of
    /// lanes served (a prefix of `lanes`); the rest hit heap exhaustion.
    ///
    /// The group leader's single batched claim on the cached block's
    /// malloc counter ([`SegmentMeta::claim_slices`]) reserves slices for
    /// every lane in one successful RMW — one atomic per group, not per
    /// lane; lanes that did not fit the block retry after the last-slice
    /// taker swaps a fresh block into the buffer. Allocation-free: this
    /// is the hot path.
    fn slice_malloc_group(
        &self,
        sm_id: u32,
        class: usize,
        lanes: &[u32],
        mut assign: impl FnMut(u32, DevicePtr),
    ) -> usize {
        let spb = self.geo.slices_per_block;
        let buffer = &self.buffers[class];
        let mut next = 0usize; // lanes[..next] are served
        let mut attempts = 0;
        while next < lanes.len() {
            attempts += 1;
            if attempts > SLICE_RETRIES {
                break; // heap exhausted for this class
            }
            let entry = match buffer.current(sm_id) {
                Some(e) => e,
                None => {
                    // Leader fetches a block and installs it.
                    let Some(new) = self.get_block(class, sm_id) else { break };
                    let fresh = (new, self.block_gen(new));
                    match buffer.try_install(sm_id, fresh) {
                        Ok(()) => fresh,
                        Err(winner) => {
                            // Someone beat us; return ours and use theirs.
                            self.free_block(new, class);
                            winner
                        }
                    }
                }
            };
            let (handle, gen) = entry;
            let seg = handle.segment(self.geo.max_blocks);
            let block = handle.block(self.geo.max_blocks);
            let meta = self.table.seg(seg);
            let want = (lanes.len() - next) as u32;
            let (base, take) = meta.claim_slices(block, want, spb, gen, &self.metrics);
            if take > 0 {
                // One successful RMW served `take` lanes: the leader's
                // atomic plus `take − 1` piggybacked followers.
                self.metrics.count_coalesced((take - 1) as u64);
                trace::emit(|| trace::TraceEvent::CoalesceGroup {
                    class: class as u32,
                    lanes: take,
                });
                for (rank, lane) in lanes[next..next + take as usize].iter().enumerate() {
                    let idx = base as u64 + rank as u64;
                    let off = self.geo.offset_of(seg, block, idx, class);
                    trace::emit_lane(*lane, || trace::TraceEvent::Malloc {
                        size: self.geo.slice_size(class),
                        tier: trace::AllocTier::Slice,
                        ptr: off,
                    });
                    assign(*lane, DevicePtr(off));
                }
                next += take as usize;
                self.reserved
                    .fetch_add(take as u64 * self.geo.slice_size(class), Ordering::Relaxed);
            }

            if (base, take) == (0, 0) {
                // Generation mismatch: the cached entry went stale (the
                // block was recycled out from under us). Evict it if it is
                // still in the slot, then retry with whatever is current.
                buffer.try_clear(sm_id, entry);
                continue;
            }

            if (base + take) as u64 == spb && take > 0 {
                // This group took the block's final slice: it is the
                // designated replacer (paper §4.3). Swap in a fresh block,
                // or clear the slot on exhaustion so others can retry.
                match self.get_block(class, sm_id) {
                    Some(new) => {
                        let fresh = (new, self.block_gen(new));
                        if !buffer.try_replace(sm_id, entry, fresh) {
                            self.free_block(new, class);
                        }
                    }
                    None => {
                        buffer.try_clear(sm_id, entry);
                    }
                }
            } else if next < lanes.len() {
                // Found the block exhausted (or only partly served): the
                // designated replacer owns the swap; yield so it can
                // finish, then retry with the fresh block. (spin_hint
                // also hands the turn back under deterministic
                // scheduling — the replacer may be a parked warp.)
                gpu_sim::spin_hint();
            }
        }
        next
    }

    /// Free one slice (Algorithm 4's small-allocation branch).
    fn slice_free(&self, seg: u64, class: usize, off: u64) {
        let block = self.geo.block_of(off, class);
        self.slice_free_n(seg, class, block, 1);
    }

    /// Return `n` slices of one block with a single atomic — the
    /// coalesced-free counterpart of Algorithm 3 (paper §6.5: frees from
    /// the same warp hitting the same block share one `fetch_add`).
    fn slice_free_n(&self, seg: u64, class: usize, block: u64, n: u32) {
        let meta = self.table.seg(seg);
        let spb = self.geo.slices_per_block;
        let prev = meta.free_ctr[block as usize].fetch_add(n, Ordering::AcqRel);
        self.metrics.count_rmw();
        self.metrics.count_coalesced(n.saturating_sub(1) as u64);
        self.reserved.fetch_sub(n as u64 * self.geo.slice_size(class), Ordering::Relaxed);
        if prev as u64 + n as u64 == spb {
            // Every slice allocated and returned: recycle the block.
            // Exclusive here (only one free observes the last count).
            // Bumping the claim word's generation invalidates any stale
            // buffer entry and in-flight claim that still references this
            // incarnation of the block — without it, a claimant that read
            // the handle before the recycle could land slices on the
            // recycled counter (the slice-pipeline ABA).
            meta.retire_claim_word(block);
            meta.free_ctr[block as usize].store(0, Ordering::Release);
            self.free_block(BlockHandle::new(seg, block, self.geo.max_blocks), class);
        }
    }

    // ==================================================================
    // Size routing
    // ==================================================================

    /// Allocate a whole block (mid-size requests).
    fn block_malloc(&self, class: usize, sm_id: u32) -> DevicePtr {
        let Some(handle) = self.get_block(class, sm_id) else {
            return DevicePtr::NULL;
        };
        let seg = handle.segment(self.geo.max_blocks);
        let block = handle.block(self.geo.max_blocks);
        self.table.seg(seg).set_whole_block(block);
        self.reserved.fetch_add(self.geo.block_size(class), Ordering::Relaxed);
        let off = self.geo.offset_of(seg, block, 0, class);
        trace::emit(|| trace::TraceEvent::Malloc {
            size: self.geo.block_size(class),
            tier: trace::AllocTier::Block,
            ptr: off,
        });
        DevicePtr(off)
    }

    /// Allocate `n` contiguous segments (requests above the largest
    /// block).
    fn large_malloc(&self, size: u64) -> DevicePtr {
        let n = self.geo.segments_for(size);
        match self.get_segments_back(n) {
            Some(start) => {
                self.reserved.fetch_add(n * self.geo.segment_bytes, Ordering::Relaxed);
                let off = start * self.geo.segment_bytes;
                trace::emit(|| trace::TraceEvent::Malloc {
                    size: n * self.geo.segment_bytes,
                    tier: trace::AllocTier::Large,
                    ptr: off,
                });
                DevicePtr(off)
            }
            None => DevicePtr::NULL,
        }
    }

    fn malloc_routed(&self, sm_id: u32, size: u64) -> DevicePtr {
        if size > self.geo.heap_bytes {
            self.metrics.count_malloc(false);
            return DevicePtr::NULL;
        }
        // Zero-size requests are served as the minimum slice (see the
        // `DeviceAllocator::malloc` contract).
        let size = size.max(1);
        let ptr = if let Some(class) = self.geo.slice_class(size) {
            let mut out = DevicePtr::NULL;
            self.slice_malloc_group(sm_id, class, &[0u32], |_, p| out = p);
            out
        } else if let Some(class) = self.geo.block_class(size) {
            self.block_malloc(class, sm_id)
        } else {
            self.large_malloc(size)
        };
        self.metrics.count_malloc(!ptr.is_null());
        ptr
    }

    fn free_routed(&self, ptr: DevicePtr) {
        self.metrics.count_free();
        let off = ptr.0;
        assert!(off < self.geo.heap_bytes, "free of foreign pointer {off}");
        trace::emit(|| trace::TraceEvent::Free { ptr: off });
        let seg = self.geo.segment_of(off);
        let meta = self.table.seg(seg);
        let id = meta.ldcv_tree_id();
        if (id as usize) < self.geo.num_classes {
            let class = id as usize;
            let block = self.geo.block_of(off, class);
            let is_block_start = self.geo.slice_of(off, class) == 0;
            if is_block_start && meta.is_whole_block(block) && meta.clear_whole_block(block) {
                self.reserved.fetch_sub(self.geo.block_size(class), Ordering::Relaxed);
                self.free_block(BlockHandle::new(seg, block, self.geo.max_blocks), class);
                return;
            }
            self.slice_free(seg, class, off);
        } else if id == LARGE_BODY {
            panic!("free of interior pointer into a large allocation (segment {seg})");
        } else if id >= LARGE_BASE && id != TREE_FREE {
            if let Some(n) = self.table.unmark_large(seg) {
                self.reserved.fetch_sub(n * self.geo.segment_bytes, Ordering::Relaxed);
                self.segment_tree.insert_range(seg, n);
            }
        } else {
            panic!("free into an unformatted segment {seg} (double free?)");
        }
    }
}

impl DeviceAllocator for Gallatin {
    fn name(&self) -> &str {
        "Gallatin"
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr {
        self.malloc_routed(ctx.sm_id(), size)
    }

    fn free(&self, _ctx: &LaneCtx, ptr: DevicePtr) {
        self.free_routed(ptr);
    }

    /// Warp-collective free with opportunistic coalescing: slice frees
    /// targeting the same block are grouped so one `fetch_add(k)` returns
    /// all of them (paper §6.5). Whole-block and large frees take the
    /// scalar path.
    fn warp_free(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) {
        debug_assert_eq!(ptrs.len(), warp.active as usize);
        // (block handle raw, count) groups; ≤32 entries, fixed scratch.
        let mut groups = [(u64::MAX, 0u32); gpu_sim::WARP_SIZE];
        let mut classes = [0usize; gpu_sim::WARP_SIZE];
        let mut n_groups = 0usize;
        for lane in warp.lanes() {
            let ptr = ptrs[lane];
            if ptr.is_null() {
                continue;
            }
            self.metrics.count_free();
            let off = ptr.0;
            assert!(off < self.geo.heap_bytes, "free of foreign pointer {off}");
            trace::emit_lane(lane as u32, || trace::TraceEvent::Free { ptr: off });
            let seg = self.geo.segment_of(off);
            let meta = self.table.seg(seg);
            let id = meta.ldcv_tree_id();
            if (id as usize) < self.geo.num_classes {
                let class = id as usize;
                let block = self.geo.block_of(off, class);
                let is_block_start = self.geo.slice_of(off, class) == 0;
                if is_block_start && meta.is_whole_block(block) && meta.clear_whole_block(block) {
                    self.reserved.fetch_sub(self.geo.block_size(class), Ordering::Relaxed);
                    self.free_block(BlockHandle::new(seg, block, self.geo.max_blocks), class);
                    continue;
                }
                // Coalesce: ballot-equivalent grouping by block.
                let key = BlockHandle::new(seg, block, self.geo.max_blocks).0;
                match groups[..n_groups].iter().position(|&(k, _)| k == key) {
                    Some(i) => groups[i].1 += 1,
                    None => {
                        groups[n_groups] = (key, 1);
                        classes[n_groups] = class;
                        n_groups += 1;
                    }
                }
            } else if id == LARGE_BODY {
                panic!("free of interior pointer into a large allocation (segment {seg})");
            } else if id >= LARGE_BASE && id != TREE_FREE {
                if let Some(n) = self.table.unmark_large(seg) {
                    self.reserved.fetch_sub(n * self.geo.segment_bytes, Ordering::Relaxed);
                    self.segment_tree.insert_range(seg, n);
                }
            } else {
                panic!("free into an unformatted segment {seg} (double free?)");
            }
        }
        for (i, &(key, count)) in groups[..n_groups].iter().enumerate() {
            let handle = BlockHandle(key);
            let seg = handle.segment(self.geo.max_blocks);
            let block = handle.block(self.geo.max_blocks);
            self.slice_free_n(seg, classes[i], block, count);
        }
    }

    /// Warp-collective allocation with opportunistic coalescing
    /// (Algorithm 3): lanes requesting the same slice class are grouped by
    /// ballot; each group's leader issues one atomic for the whole group.
    fn warp_malloc(&self, warp: &WarpCtx, sizes: &[Option<u64>], out: &mut [DevicePtr]) {
        debug_assert_eq!(sizes.len(), warp.active as usize);
        debug_assert_eq!(out.len(), warp.active as usize);
        for p in out.iter_mut() {
            *p = DevicePtr::NULL;
        }
        // Group lanes by slice class (cg::coalesced_threads + ballot).
        // Fixed-size scratch keeps this path allocation-free.
        let mut keys = [None::<usize>; gpu_sim::WARP_SIZE];
        for lane in warp.lanes() {
            // max(1): zero-size requests coalesce into the smallest class.
            keys[lane] = sizes[lane].and_then(|sz| self.geo.slice_class(sz.max(1)));
        }
        let mut lanes_buf = [0u32; gpu_sim::WARP_SIZE];
        for class in 0..self.geo.num_classes {
            let mut n = 0usize;
            for lane in warp.lanes() {
                if keys[lane] == Some(class) {
                    lanes_buf[n] = lane as u32;
                    n += 1;
                }
            }
            if n == 0 {
                continue;
            }
            let served = self.slice_malloc_group(warp.sm_id, class, &lanes_buf[..n], |lane, p| {
                out[lane as usize] = p;
            });
            // Unserved lanes (exhaustion) keep NULL.
            for _ in 0..served {
                self.metrics.count_malloc(true);
            }
            for _ in served..n {
                self.metrics.count_malloc(false);
            }
        }
        // Non-slice requests fall through to the scalar paths.
        for lane in warp.lanes() {
            if keys[lane].is_none() {
                if let Some(size) = sizes[lane] {
                    out[lane] = self.malloc_routed(warp.sm_id, size);
                }
            }
        }
    }

    fn reset(&self) {
        for b in &self.buffers {
            b.drain();
        }
        self.table.reset();
        self.segment_tree.fill();
        for t in &self.block_trees {
            t.clear();
        }
        self.metrics.reset();
        self.reserved.store(0, Ordering::Relaxed);
    }

    fn heap_bytes(&self) -> u64 {
        self.geo.heap_bytes
    }

    fn max_native_size(&self) -> u64 {
        // Any size up to the whole heap, by design.
        self.geo.heap_bytes
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn check_invariants(&self) -> Result<(), String> {
        Gallatin::check_invariants(self)
    }

    fn stats(&self) -> AllocStats {
        AllocStats { heap_bytes: self.geo.heap_bytes, reserved_bytes: self.reserved_bytes() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch_warps, DeviceConfig};

    fn tiny() -> Gallatin {
        Gallatin::new(GallatinConfig::small_test(1 << 20)) // 16 segments
    }

    fn with_lane<R>(f: impl FnOnce(&LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    #[test]
    fn slice_allocations_are_distinct_and_in_bounds() {
        let g = tiny();
        with_lane(|l| {
            let mut ptrs = Vec::new();
            for _ in 0..500 {
                let p = g.malloc(l, 16);
                assert!(!p.is_null());
                assert!(p.0 + 16 <= g.heap_bytes());
                ptrs.push(p.0);
            }
            ptrs.sort_unstable();
            ptrs.dedup();
            assert_eq!(ptrs.len(), 500);
            for &p in &ptrs {
                g.free(l, DevicePtr(p));
            }
        });
    }

    #[test]
    fn size_zero_allocates_and_oversize_fails_cleanly() {
        let g = tiny();
        with_lane(|l| {
            // malloc(0) returns a valid unique pointer (the contract in
            // `DeviceAllocator::malloc`): it is a minimum-slice request.
            let a = g.malloc(l, 0);
            let b = g.malloc(l, 0);
            assert!(!a.is_null() && !b.is_null());
            assert_ne!(a.0, b.0, "zero-size allocations must be unique");
            g.free(l, a);
            g.free(l, b);
            assert!(g.malloc(l, g.heap_bytes() + 1).is_null());
            g.check_invariants().unwrap();
        });
    }

    #[test]
    fn block_allocation_and_free_roundtrip() {
        let g = tiny();
        with_lane(|l| {
            // 1 KB > max_slice (256 B): block path, 1 KB blocks.
            let p = g.malloc(l, 1000);
            assert!(!p.is_null());
            assert_eq!(p.0 % 1024, 0, "block allocations are block-aligned");
            let before = g.free_segments();
            g.free(l, p);
            // Freeing the only block returns the segment.
            assert_eq!(g.free_segments(), before + 1);
        });
    }

    #[test]
    fn large_allocations_come_from_the_back() {
        let g = tiny();
        with_lane(|l| {
            let seg_bytes = g.geometry().segment_bytes;
            let p = g.malloc(l, 3 * seg_bytes); // 3 contiguous segments
            assert!(!p.is_null());
            assert_eq!(p.0 % seg_bytes, 0);
            assert_eq!(g.geometry().segment_of(p.0), 13, "claims from the back");
            let small = g.malloc(l, 16);
            assert_eq!(g.geometry().segment_of(small.0), 0, "small from the front");
            g.free(l, p);
            assert_eq!(g.free_segments(), 15); // one held by the slice segment
            g.free(l, small);
        });
    }

    #[test]
    fn whole_heap_allocation_succeeds_when_empty() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, g.heap_bytes());
            assert!(!p.is_null());
            assert_eq!(p.0, 0);
            assert!(g.malloc(l, 16).is_null(), "nothing left");
            g.free(l, p);
            assert!(!g.malloc(l, 16).is_null());
        });
    }

    #[test]
    fn slice_exhaustion_returns_null_not_overlap() {
        // Heap of 2 segments, all blocks of class 0 = 64 slices each.
        let g = Gallatin::new(GallatinConfig::small_test(128 << 10));
        with_lane(|l| {
            let mut ptrs = std::collections::HashSet::new();
            let mut failed = 0;
            for _ in 0..(2 * 64 * 64 + 100) {
                let p = g.malloc(l, 16);
                if p.is_null() {
                    failed += 1;
                } else {
                    assert!(ptrs.insert(p.0), "double allocation at {}", p.0);
                }
            }
            assert!(failed >= 100, "over-subscription must fail");
        });
    }

    #[test]
    fn free_then_realloc_reuses_memory() {
        let g = tiny();
        with_lane(|l| {
            // Fill a whole block so it recycles on full free.
            let spb = g.geometry().slices_per_block as usize;
            let ptrs: Vec<_> = (0..spb).map(|_| g.malloc(l, 16)).collect();
            assert!(ptrs.iter().all(|p| !p.is_null()));
            for &p in &ptrs {
                g.free(l, p);
            }
            // The allocator can serve the same number again.
            let again: Vec<_> = (0..spb).map(|_| g.malloc(l, 16)).collect();
            assert!(again.iter().all(|p| !p.is_null()));
            for &p in &again {
                g.free(l, p);
            }
        });
    }

    #[test]
    fn payload_stamps_survive() {
        let g = tiny();
        with_lane(|l| {
            let ptrs: Vec<_> = (0..200)
                .map(|i| {
                    let p = g.malloc(l, 64);
                    g.memory().write_stamp(p, 0xabc0 + i);
                    p
                })
                .collect();
            for (i, &p) in ptrs.iter().enumerate() {
                assert_eq!(g.memory().read_stamp(p), 0xabc0 + i as u64);
                g.free(l, p);
            }
        });
    }

    #[test]
    fn warp_malloc_coalesces_same_class() {
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        let before = g.metrics().unwrap().snapshot();
        g.warp_malloc(&warp, &sizes, &mut out);
        let mut offs: Vec<u64> = out.iter().map(|p| p.0).collect();
        assert!(out.iter().all(|p| !p.is_null()));
        offs.sort_unstable();
        offs.dedup();
        assert_eq!(offs.len(), 32);
        // Coalescing: 31 of the 32 requests piggybacked on the leader.
        let m = g.metrics().unwrap().snapshot();
        assert_eq!(m.coalesced_requests, 31);
        // Atomic budget, like the free-side twin: 32 mallocs including a
        // cold start (segment claim, format, block-tree insert, ring
        // pop, slice claim) stay a handful of atomics, not ~32.
        let atomics = (m.atomic_rmw + m.cas_attempts) - (before.atomic_rmw + before.cas_attempts);
        assert!(atomics <= 6, "mallocs not coalesced: {atomics} atomics for 32 requests");
        g.warp_free(&warp, &out);
    }

    #[test]
    fn warp_malloc_coalesces_steady_state_group_to_one_atomic() {
        // The malloc-side twin of `warp_free_coalesces_same_block`,
        // asserting the paper's O(1) headline exactly: once a block is
        // cached, a coalesced 32-lane same-class group costs ONE atomic
        // RMW on shared metadata (the batched slice claim).
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 16 };
        // Warm-up: 16 slices install a block (64 slices) in SM 0's slot.
        let sizes = vec![Some(16u64); 16];
        let mut warm = vec![DevicePtr::NULL; 16];
        g.warp_malloc(&warp, &sizes, &mut warm);
        assert!(warm.iter().all(|p| !p.is_null()));
        // Measured group: 32 more slices fit the cached block (16+32<64),
        // so no block fetch and no last-slice replacement can hide cost.
        let full = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        let before = g.metrics().unwrap().snapshot();
        g.warp_malloc(&full, &sizes, &mut out);
        let after = g.metrics().unwrap().snapshot();
        assert!(out.iter().all(|p| !p.is_null()));
        let atomics =
            (after.atomic_rmw + after.cas_attempts) - (before.atomic_rmw + before.cas_attempts);
        assert_eq!(atomics, 1, "a steady-state coalesced group must cost exactly one RMW");
        assert_eq!(after.coalesced_requests - before.coalesced_requests, 31);
        g.warp_free(&full, &out);
        g.warp_free(&warp, &warm);
        assert_eq!(g.stats().reserved_bytes, 0);
    }

    #[test]
    fn probe_hints_spread_sms_and_knob_restores_legacy_order() {
        // Randomized probe starts (default on): SM 0 keeps the legacy
        // front-first placement, other SMs start their segment probes at
        // hashed positions so concurrent warps do not all claim bit 0.
        // SM 1 allocates first, so its segment claim cannot piggyback on
        // a segment another SM already activated.
        let g = tiny(); // 16 segments
        let w0 = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        let w1 = WarpCtx { warp_id: 1, sm_id: 1, base_tid: 32, active: 1 };
        let b = g.malloc(&w1.lane(0), 16);
        assert_ne!(g.geometry().segment_of(b.0), 0, "SM 1 probes from its hashed start");
        // SM 0 joins the already-active segment instead of claiming a
        // fresh one: wraparound still finds "any free".
        let a = g.malloc(&w0.lane(0), 16);
        assert_eq!(g.geometry().segment_of(a.0), g.geometry().segment_of(b.0));
        g.free(&w0.lane(0), a);
        g.free(&w1.lane(0), b);
        g.check_invariants().expect("invariants hold with randomized probes");

        // Knob off: every SM scans from the front, as the seed did.
        let legacy = Gallatin::new(GallatinConfig {
            randomize_probe_starts: false,
            ..GallatinConfig::small_test(1 << 20)
        });
        let c = legacy.malloc(&w1.lane(0), 16);
        assert_eq!(legacy.geometry().segment_of(c.0), 0, "knob off restores front-first order");
        legacy.free(&w1.lane(0), c);
        legacy.check_invariants().expect("invariants hold with the knob off");
    }

    #[test]
    fn batched_claim_never_overshoots_the_block_counter() {
        // The bounded CAS claim must clamp to the block's remaining
        // capacity: a group larger than what is left takes the remainder
        // (and the last-slice duty), never pushing malloc_ctr past spb.
        let g = tiny(); // spb = 64
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        // 3 warps × 32 = 96 slices: the first block (64) is exhausted
        // mid-group and a second is installed.
        let mut all = Vec::new();
        for _ in 0..3 {
            g.warp_malloc(&warp, &sizes, &mut out);
            assert!(out.iter().all(|p| !p.is_null()));
            all.extend(out.iter().copied());
        }
        let spb = g.geometry().slices_per_block as u32;
        for seg in 0..g.geometry().num_segments {
            let meta = g.table().seg(seg);
            for b in 0..g.geometry().max_blocks {
                let m = meta.claim_word(b) & SLICE_COUNT_MASK;
                assert!(m <= spb, "segment {seg} block {b}: claim count {m} overshot {spb}");
            }
        }
        g.warp_free(&warp, &all[..32]);
        g.warp_free(&warp, &all[32..64]);
        g.warp_free(&warp, &all[64..]);
        assert_eq!(g.stats().reserved_bytes, 0);
        g.check_invariants().expect("invariants after exhausting blocks mid-group");
    }

    #[test]
    fn warp_free_coalesces_same_block() {
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 32 };
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        g.warp_malloc(&warp, &sizes, &mut out);
        assert!(out.iter().all(|p| !p.is_null()));
        let before = g.metrics().unwrap().snapshot().atomic_rmw;
        g.warp_free(&warp, &out);
        let after = g.metrics().unwrap().snapshot().atomic_rmw;
        // 32 frees of slices in (at most two) blocks: a handful of
        // fetch_adds, not 32.
        assert!(
            after - before <= 4,
            "frees not coalesced: {} atomics for 32 frees",
            after - before
        );
        assert_eq!(g.stats().reserved_bytes, 0);
    }

    #[test]
    fn mixed_warp_requests_route_correctly() {
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 8 };
        let sizes = vec![
            Some(16u64),
            Some(16),
            Some(256),
            None,
            Some(1024),           // block path
            Some((2 * 64) << 10), // large path (2 segments)
            Some(16),
            Some(32),
        ];
        let mut out = vec![DevicePtr::NULL; 8];
        g.warp_malloc(&warp, &sizes, &mut out);
        for (i, p) in out.iter().enumerate() {
            if sizes[i].is_some() {
                assert!(!p.is_null(), "lane {i} failed");
            } else {
                assert!(p.is_null());
            }
        }
        g.warp_free(&warp, &out);
        assert_eq!(g.stats().reserved_bytes, 0);
    }

    #[test]
    fn concurrent_malloc_free_storm_no_overlap() {
        let g = std::sync::Arc::new(Gallatin::new(GallatinConfig::small_test(2 << 20)));
        let threads = 2048u64;
        launch_warps(DeviceConfig::with_sms(8), threads, |warp| {
            let n = warp.active as usize;
            let sizes: Vec<Option<u64>> =
                (0..n).map(|l| Some(16 << ((warp.base_tid as usize + l) % 4))).collect();
            let mut out = vec![DevicePtr::NULL; n];
            for _round in 0..10 {
                g.warp_malloc(warp, &sizes, &mut out);
                for (l, p) in out.iter().enumerate() {
                    if !p.is_null() {
                        g.memory().write_stamp(*p, warp.base_tid + l as u64);
                    }
                }
                for (l, p) in out.iter().enumerate() {
                    if !p.is_null() {
                        assert_eq!(
                            g.memory().read_stamp(*p),
                            warp.base_tid + l as u64,
                            "payload clobbered: overlapping allocation"
                        );
                    }
                }
                g.warp_free(warp, &out);
            }
        });
        assert_eq!(g.stats().reserved_bytes, 0);
        g.check_invariants().expect("invariants violated after storm");
    }

    #[test]
    fn invariants_hold_through_the_allocation_lifecycle() {
        let g = tiny();
        g.check_invariants().expect("fresh allocator");
        with_lane(|l| {
            // Live allocations across all three pipelines.
            let slices: Vec<_> = (0..10).map(|i| g.malloc(l, 16 << (i % 5))).collect();
            let block = g.malloc(l, 1024);
            let large = g.malloc(l, 2 * (64 << 10));
            g.check_invariants().expect("live allocations");
            for &p in &slices {
                g.free(l, p);
            }
            g.free(l, block);
            g.free(l, large);
            g.check_invariants().expect("after frees");
        });
        g.trim();
        g.check_invariants().expect("after trim");
        g.reset();
        g.check_invariants().expect("after reset");
    }

    #[test]
    fn invariant_checker_flags_stale_tree_id() {
        let g = tiny();
        // Corrupt the table: claim a free segment's tree_id without
        // removing it from the segment tree or formatting it.
        g.table.seg(15).tree_id.store(0, Ordering::SeqCst);
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("segment 15"), "unexpected report: {err}");
        assert!(err.contains("simultaneously free and formatted"), "unexpected report: {err}");
    }

    #[test]
    fn invariant_checker_flags_vanished_block() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 16);
            g.free(l, p);
        });
        g.check_invariants().expect("healthy before corruption");
        // Steal a block out of the slice segment's ring and drop it.
        let seg = 0;
        g.table.seg(seg).ring.pop().unwrap();
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("unaccounted"), "unexpected report: {err}");
    }

    #[test]
    fn invariant_checker_flags_reserved_drift() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 16);
            g.reserved.fetch_add(1, Ordering::Relaxed);
            let err = g.check_invariants().unwrap_err();
            assert!(err.contains("reserved accounting mismatch"), "unexpected report: {err}");
            g.reserved.fetch_sub(1, Ordering::Relaxed);
            g.free(l, p);
            g.check_invariants().expect("healthy after undoing the drift");
        });
    }

    #[test]
    fn reserved_stat_never_reports_a_wrapped_value() {
        let g = tiny();
        // Simulate the read-side transient: a free's fetch_sub observed
        // before the matching malloc's fetch_add drives the raw counter
        // below zero (~2^64 as a u64).
        g.reserved.fetch_sub(4096, Ordering::Relaxed);
        assert_eq!(g.stats().reserved_bytes, 0, "wrapped counter must saturate to 0");
        assert_eq!(g.reserved_bytes(), 0);
        g.reserved.fetch_add(4096, Ordering::Relaxed);
        assert_eq!(g.stats().reserved_bytes, 0);
        // Ordinary values pass through untouched.
        with_lane(|l| {
            let p = g.malloc(l, 16);
            assert!(g.stats().reserved_bytes > 0);
            g.free(l, p);
            assert_eq!(g.stats().reserved_bytes, 0);
        });
        g.check_invariants().expect("healthy after the transient was undone");
    }

    #[test]
    fn invariant_checker_rejects_phantom_occupancy() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 16);
            g.free(l, p);
        });
        g.check_invariants().expect("healthy before injection");
        // Inject occupancy drift: a ticket with no published block, the
        // footprint the retired side-counter design could produce.
        g.table.seg(0).ring.debug_inject_phantom_push();
        let err = g.check_invariants().unwrap_err();
        assert!(err.contains("unpublished cell"), "unexpected report: {err}");
    }

    #[test]
    fn trim_releases_the_wavefront() {
        let g = tiny(); // 16 segments
        with_lane(|l| {
            // Touch every slice class once: each pins a buffered block,
            // and thus a segment.
            let ptrs: Vec<_> = (0..5).map(|c| g.malloc(l, 16 << c)).collect();
            for &p in &ptrs {
                g.free(l, p);
            }
            assert!(g.free_segments() < 16, "wavefront pins segments");
            let reclaimed = g.trim();
            assert!(reclaimed >= 5, "trim reclaimed only {reclaimed}");
            assert_eq!(g.free_segments(), 16, "wavefront fully released");
            // Allocation still works after a trim.
            let p = g.malloc(l, 16);
            assert!(!p.is_null());
            g.free(l, p);
        });
    }

    #[test]
    fn trim_retires_blocks_with_live_slices() {
        let g = tiny();
        with_lane(|l| {
            let live = g.malloc(l, 16);
            assert!(!live.is_null());
            g.memory().write_stamp(live, 0x11fe);
            g.trim();
            // The live slice survives the trim…
            assert_eq!(g.memory().read_stamp(live), 0x11fe);
            // …and freeing it recycles the retired block and its segment.
            g.free(l, live);
            assert_eq!(g.free_segments(), 16);
            assert_eq!(g.stats().reserved_bytes, 0);
        });
    }

    #[test]
    fn reset_restores_full_capacity() {
        let g = tiny();
        with_lane(|l| {
            for _ in 0..100 {
                g.malloc(l, 64);
            }
            let p = g.malloc(l, (4 * 64) << 10);
            assert!(!p.is_null());
        });
        g.reset();
        assert_eq!(g.free_segments(), 16);
        assert_eq!(g.stats().reserved_bytes, 0);
        with_lane(|l| {
            let p = g.malloc(l, g.heap_bytes());
            assert!(!p.is_null(), "whole heap available after reset");
        });
    }

    #[test]
    #[should_panic(expected = "interior pointer")]
    fn interior_large_free_panics() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 2 * (64 << 10));
            g.free(l, DevicePtr(p.0 + (64 << 10)));
        });
    }
}
