//! The Gallatin allocator: a thin composition of the three tier modules.
//!
//! Allocation routes by size (paper Figure 3, smallest pipeline first):
//!
//! * `size ≤ max_slice` (4096 B default) → **slice** pipeline
//!   ([`crate::tiers::SliceTier`]): coalesce same-class requests in the
//!   warp, one batched claim on the cached block's malloc counter serves
//!   the whole group (Algorithm 3);
//! * `max_slice < size ≤ segment` → **block** pipeline
//!   ([`crate::tiers::BlockTier`]): pop a whole block of the smallest
//!   sufficient class (Algorithm 2);
//! * `size > segment` → **segment** pipeline
//!   ([`crate::tiers::SegmentTier`]): claim contiguous segments from the
//!   *back* of the segment tree (Algorithm 1's multi-segment branch).
//!
//! Frees invert the mapping from the pointer offset alone (Algorithm 4):
//! divide by the segment size for the segment id, read its `tree_id`,
//! then route to the slice, block, or segment return path.
//!
//! This file owns only the glue: size routing, the warp-collective entry
//! points, and the shared state ([`TierCtx`]) the tiers borrow per call.
//! The protocols live in [`crate::tiers`].

use crate::config::{GallatinConfig, Geometry};
use crate::table::{BlockHandle, MemoryTable, LARGE_BASE, LARGE_BODY, TREE_FREE};
use crate::tiers::{BlockTier, SegmentTier, SliceTier, TierCtx};
use gpu_sim::{
    trace, AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics, WarpCtx,
};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// The Gallatin GPU memory manager.
pub struct Gallatin {
    pub(crate) geo: Geometry,
    pub(crate) mem: DeviceMemory,
    /// Segment tree, claim/reclaim/trim (Algorithm 1).
    pub(crate) segments: SegmentTier,
    /// Per-class block trees and per-SM buffers (Algorithm 2).
    pub(crate) blocks: BlockTier,
    /// Generation-tagged claim words and coalesced claims (Algorithm 3).
    pub(crate) slices: SliceTier,
    /// Shared in pool mode: every instance of a [`crate::pool::GallatinPool`]
    /// holds the same table so a donated segment's metadata travels with
    /// it (see `crate::elastic`).
    pub(crate) table: Arc<MemoryTable>,
    pub(crate) metrics: Metrics,
    /// Start tree probes at an SM-hashed position (paper §4.3); see
    /// [`GallatinConfig::randomize_probe_starts`].
    pub(crate) randomize_probes: bool,
    /// Bytes reserved by live allocations (internal accounting, includes
    /// size-class rounding).
    pub(crate) reserved: AtomicU64,
    /// The segment span `[first, first+count)` this instance initially
    /// owns — the whole universe standalone, one shard in pool mode.
    /// `reset_local` restores exactly this span.
    pub(crate) span: (u64, u64),
}

/// Append lifecycle-ledger violations (leaks and unmatched frees seen by
/// the host thread's trace sink, when its teardown leak check is armed)
/// to `errors`, each with full provenance. Shared by the single-instance
/// and pool invariant checks: the ledger pairs per `(instance, ptr)`, so
/// one pass covers every instance whose events the sink captured.
pub(crate) fn ledger_errors(errors: &mut Vec<String>) {
    if !trace::compiled_in() {
        return;
    }
    let Some(sink) = trace::current_sink() else { return };
    if !sink.leak_check_enabled() {
        return;
    }
    let ledger = trace::Ledger::build(&sink.snapshot());
    let inst = |i: u32| if i == 0 { String::new() } else { format!(" instance {i}") };
    for l in &ledger.live {
        errors.push(format!(
            "leaked allocation ptr {} ({} B): allocated at step {} by sm {} \
             warp {} lane {}{} and never freed",
            l.ptr,
            l.size,
            l.step,
            l.sm,
            l.warp,
            l.lane,
            inst(l.instance)
        ));
    }
    for d in &ledger.double_frees {
        errors.push(format!(
            "unmatched free of ptr {} at step {} (sm {} warp {} lane {}{}): \
             double free or free of an untraced allocation",
            d.ptr,
            d.step,
            d.sm,
            d.warp,
            d.lane,
            inst(d.instance)
        ));
    }
    for m in &ledger.size_mismatches {
        errors.push(format!(
            "free-size mismatch on ptr {}: malloc recorded {} B at step {}, \
             free recorded {} B at step {}{}",
            m.ptr,
            m.malloc_size,
            m.malloc_step,
            m.free_size,
            m.step,
            inst(m.instance)
        ));
    }
}

impl Gallatin {
    /// Build and initialize an allocator over a fresh arena.
    pub fn new(cfg: GallatinConfig) -> Self {
        let bytes = cfg.geometry().heap_bytes as usize;
        Self::with_memory(cfg, DeviceMemory::new(bytes))
    }

    /// Build an allocator over caller-provided device memory. Owns the
    /// whole heap and a private memory table; pool instances instead go
    /// through `with_shared_table` (see `crate::elastic`) so a donated
    /// segment's metadata is visible from its new home.
    pub fn with_memory(cfg: GallatinConfig, mem: DeviceMemory) -> Self {
        let geo = cfg.geometry();
        let table = Arc::new(MemoryTable::new(geo));
        Self::with_shared_table(cfg, mem, table, 0, geo.num_segments)
    }

    /// The borrowed view of shared state every tier call operates through.
    #[inline]
    fn ctx(&self) -> TierCtx<'_> {
        TierCtx {
            geo: &self.geo,
            table: &self.table,
            metrics: &self.metrics,
            reserved: &self.reserved,
            randomize_probes: self.randomize_probes,
        }
    }

    /// The derived geometry.
    pub fn geometry(&self) -> &Geometry {
        &self.geo
    }

    /// Number of segments currently free (diagnostics / tests).
    pub fn free_segments(&self) -> u64 {
        self.segments.tree.count()
    }

    /// Bytes reserved by live allocations, saturated against wrap.
    ///
    /// The `reserved` counter is adjusted with unpaired Relaxed
    /// `fetch_add`/`fetch_sub` on the malloc and free paths, so a reader
    /// racing those updates can observe the subtraction before the
    /// matching addition and see the counter momentarily below zero —
    /// which as a `u64` reads as ~2^64. Stats must never surface that
    /// absurdity, so a wrapped reading reports 0. (The transient is
    /// read-side only: the adds and subs themselves always pair off, and
    /// [`Self::check_invariants`] verifies the settled value exactly.)
    pub fn reserved_bytes(&self) -> u64 {
        let raw = self.reserved.load(Ordering::Relaxed);
        if (raw as i64) < 0 {
            0
        } else {
            raw
        }
    }

    /// Raw access to the memory table, for tests and diagnostic tools
    /// (e.g. corrupting a `tree_id` to exercise [`Self::check_invariants`]).
    /// Not part of the allocation API.
    #[doc(hidden)]
    pub fn table(&self) -> &MemoryTable {
        &self.table
    }

    /// Release the block-buffer *wavefront*; see
    /// `SegmentTier::trim` for the protocol and the §6.11 motivation.
    /// Must not run concurrently with allocation (host-side maintenance
    /// point, like a stream synchronization on the GPU).
    pub fn trim(&self) -> u64 {
        self.segments.trim(&self.ctx(), &self.blocks)
    }

    // ==================================================================
    // Invariant checking (host-side diagnostics)
    // ==================================================================

    /// The structural share of [`Self::check_invariants`]: every tier's
    /// table/tree/buffer cross-checks plus the reserved-counter audit,
    /// without the trace-ledger pass or the auto-dump (the pool runs
    /// those once across all instances).
    pub(crate) fn structural_errors(&self) -> Vec<String> {
        self.structural_errors_where(&|_| true)
    }

    /// [`Self::structural_errors`] restricted to segments `owned` says
    /// belong to this instance. The pool passes its routing table here:
    /// each instance audits exactly the segments currently homed on it
    /// (including adopted ones), and flags any unowned segment that
    /// still lingers in one of its trees — the footprint of a donation
    /// that skipped the quiesce handshake.
    pub(crate) fn structural_errors_where(&self, owned: &dyn Fn(u64) -> bool) -> Vec<String> {
        let ctx = self.ctx();
        let mut errors: Vec<String> = Vec::new();
        // Invariant 4 first: collects each segment's cached blocks for
        // the per-block ownership accounting in the walk.
        let buffered = self.blocks.check_buffers(&ctx, owned, &mut errors);
        let computed_reserved =
            self.segments.check(&ctx, &self.blocks, &buffered, owned, &mut errors);
        // Invariant 5: the reserved counter matches the table. Checked on
        // the raw counter, not the saturating accessor — a wrapped value
        // is itself the violation being reported.
        let reserved = self.reserved.load(Ordering::Acquire);
        if computed_reserved != reserved {
            let wrapped = if (reserved as i64) < 0 { " (wrapped below zero)" } else { "" };
            errors.push(format!(
                "reserved accounting mismatch: counter says {reserved} bytes{wrapped}, table \
                 implies {computed_reserved}"
            ));
        }
        errors
    }

    /// Walk the segment tree, block trees, memory table, and per-SM block
    /// buffers and verify the cross-structure invariants of paper §4–5:
    ///
    /// 1. each segment has exactly one owner — `tree_id` is `TREE_FREE`
    ///    iff the segment is in the segment tree, and a segment in a block
    ///    tree is formatted for exactly that class;
    /// 2. freed segments are drained — a `TREE_FREE` segment's ring holds
    ///    every block of its previous format, with no live slices and no
    ///    whole-block bits outstanding;
    /// 3. every block of a formatted segment is accounted for exactly
    ///    once: waiting in the ring, handed out wholesale, cached in a
    ///    per-SM buffer, or carrying live slices;
    /// 4. every buffered block belongs to a segment whose `tree_id`
    ///    matches the buffer's class;
    /// 5. the `reserved` counter equals the byte total implied by live
    ///    slices, whole blocks, and large allocations.
    ///
    /// Each tier checks its own share: invariant 4 in
    /// `BlockTier::check_buffers`, 1/2 and the segment walk in
    /// `SegmentTier::check`, per-block ownership and the double-free
    /// audit in `BlockTier::check_formatted` /
    /// `SliceTier::check_block`.
    ///
    /// Like [`Gallatin::trim`], this must only run while the allocator is
    /// quiescent (a host-side maintenance point between kernels). All
    /// violations are collected before returning, so one corruption
    /// reports its full blast radius in a single `Err`.
    pub fn check_invariants(&self) -> Result<(), String> {
        let mut errors = self.structural_errors();
        // Lifecycle-ledger leak check: when a trace sink is installed on
        // this (host) thread with its teardown leak check armed, any
        // allocation the trace saw malloc'd but never freed is a
        // violation, reported with its full provenance.
        ledger_errors(&mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            // Every invariant failure leaves a replayable artifact behind
            // when a trace was being captured.
            if let Some(path) = trace::auto_dump("invariant_failure") {
                errors.push(format!("trace auto-dumped to {}", path.display()));
            }
            Err(errors.join("\n"))
        }
    }

    // ==================================================================
    // Size routing
    // ==================================================================

    /// Allocate a whole block (mid-size requests).
    fn block_malloc(&self, class: usize, sm_id: u32) -> DevicePtr {
        let ctx = self.ctx();
        let Some(handle) = self.blocks.get(&ctx, class, sm_id, &self.segments) else {
            return DevicePtr::NULL;
        };
        let seg = handle.segment(self.geo.max_blocks);
        let block = handle.block(self.geo.max_blocks);
        self.table.seg(seg).set_whole_block(block);
        self.reserved.fetch_add(self.geo.block_size(class), Ordering::Relaxed);
        let off = self.geo.offset_of(seg, block, 0, class);
        trace::emit(|| trace::TraceEvent::Malloc {
            size: self.geo.block_size(class),
            tier: trace::AllocTier::Block,
            ptr: off,
        });
        DevicePtr(off)
    }

    /// Allocate `n` contiguous segments (requests above the largest
    /// block).
    fn large_malloc(&self, size: u64) -> DevicePtr {
        let n = self.geo.segments_for(size);
        match self.segments.claim_back(&self.ctx(), n) {
            Some(start) => {
                self.reserved.fetch_add(n * self.geo.segment_bytes, Ordering::Relaxed);
                let off = start * self.geo.segment_bytes;
                trace::emit(|| trace::TraceEvent::Malloc {
                    size: n * self.geo.segment_bytes,
                    tier: trace::AllocTier::Large,
                    ptr: off,
                });
                DevicePtr(off)
            }
            None => DevicePtr::NULL,
        }
    }

    pub(crate) fn malloc_routed(&self, sm_id: u32, size: u64) -> DevicePtr {
        if size > self.geo.heap_bytes {
            self.metrics.count_malloc(false);
            return DevicePtr::NULL;
        }
        // Zero-size requests are served as the minimum slice (see the
        // `DeviceAllocator::malloc` contract).
        let size = size.max(1);
        let ptr = if let Some(class) = self.geo.slice_class(size) {
            let mut out = DevicePtr::NULL;
            self.slices.malloc_group(
                &self.ctx(),
                sm_id,
                class,
                &[0u32],
                |_, p| out = p,
                &self.blocks,
                &self.segments,
            );
            out
        } else if let Some(class) = self.geo.block_class(size) {
            self.block_malloc(class, sm_id)
        } else {
            self.large_malloc(size)
        };
        self.metrics.count_malloc(!ptr.is_null());
        ptr
    }

    pub(crate) fn free_routed(&self, ptr: DevicePtr) {
        self.metrics.count_free();
        let off = ptr.0;
        assert!(off < self.geo.heap_bytes, "free of foreign pointer {off}");
        let ctx = self.ctx();
        let seg = self.geo.segment_of(off);
        let meta = self.table.seg(seg);
        let id = meta.ldcv_tree_id();
        // The Free event records the bytes *this path* releases; the
        // trace Ledger cross-checks it against the paired Malloc, so a
        // misrouted free (wrong tier, wrong class) surfaces as a typed
        // size-mismatch anomaly instead of silent accounting drift. Each
        // branch emits before the region becomes reusable by others.
        if (id as usize) < self.geo.num_classes {
            let class = id as usize;
            let block = self.geo.block_of(off, class);
            let is_block_start = self.geo.slice_of(off, class) == 0;
            if is_block_start && meta.is_whole_block(block) && meta.clear_whole_block(block) {
                trace::emit(|| trace::TraceEvent::Free {
                    ptr: off,
                    size: self.geo.block_size(class),
                });
                self.reserved.fetch_sub(self.geo.block_size(class), Ordering::Relaxed);
                self.blocks.free_block(
                    &ctx,
                    BlockHandle::new(seg, block, self.geo.max_blocks),
                    class,
                    &self.segments,
                );
                return;
            }
            trace::emit(|| trace::TraceEvent::Free { ptr: off, size: self.geo.slice_size(class) });
            self.slices.free_one(&ctx, seg, class, off, &self.blocks, &self.segments);
        } else if id == LARGE_BODY {
            trace::emit(|| trace::TraceEvent::Free { ptr: off, size: 0 });
            panic!("free of interior pointer into a large allocation (segment {seg})");
        } else if id >= LARGE_BASE && id != TREE_FREE {
            match self.table.unmark_large(seg) {
                Some(n) => {
                    trace::emit(|| trace::TraceEvent::Free {
                        ptr: off,
                        size: n * self.geo.segment_bytes,
                    });
                    self.reserved.fetch_sub(n * self.geo.segment_bytes, Ordering::Relaxed);
                    self.segments.tree.insert_range(seg, n);
                }
                // Raced large free: the run length is gone, size unknown.
                None => trace::emit(|| trace::TraceEvent::Free { ptr: off, size: 0 }),
            }
        } else {
            trace::emit(|| trace::TraceEvent::Free { ptr: off, size: 0 });
            panic!("free into an unformatted segment {seg} (double free?)");
        }
    }
}

impl DeviceAllocator for Gallatin {
    fn name(&self) -> &str {
        "Gallatin"
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr {
        self.malloc_routed(ctx.sm_id(), size)
    }

    fn free(&self, _ctx: &LaneCtx, ptr: DevicePtr) {
        self.free_routed(ptr);
    }

    /// Warp-collective free with opportunistic coalescing: slice frees
    /// targeting the same block are grouped so one `fetch_add(k)` returns
    /// all of them (paper §6.5). Whole-block and large frees take the
    /// scalar path.
    fn warp_free(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) {
        debug_assert_eq!(ptrs.len(), warp.active as usize);
        let ctx = self.ctx();
        // (block handle raw, count) groups; ≤32 entries, fixed scratch.
        let mut groups = [(u64::MAX, 0u32); gpu_sim::WARP_SIZE];
        let mut classes = [0usize; gpu_sim::WARP_SIZE];
        let mut n_groups = 0usize;
        for lane in warp.lanes() {
            let ptr = ptrs[lane];
            if ptr.is_null() {
                continue;
            }
            self.metrics.count_free();
            let off = ptr.0;
            assert!(off < self.geo.heap_bytes, "free of foreign pointer {off}");
            let seg = self.geo.segment_of(off);
            let meta = self.table.seg(seg);
            let id = meta.ldcv_tree_id();
            // As in `free_routed`: each branch records the bytes it
            // releases so the Ledger can cross-check against the malloc.
            if (id as usize) < self.geo.num_classes {
                let class = id as usize;
                let block = self.geo.block_of(off, class);
                let is_block_start = self.geo.slice_of(off, class) == 0;
                if is_block_start && meta.is_whole_block(block) && meta.clear_whole_block(block) {
                    trace::emit_lane(lane as u32, || trace::TraceEvent::Free {
                        ptr: off,
                        size: self.geo.block_size(class),
                    });
                    self.reserved.fetch_sub(self.geo.block_size(class), Ordering::Relaxed);
                    self.blocks.free_block(
                        &ctx,
                        BlockHandle::new(seg, block, self.geo.max_blocks),
                        class,
                        &self.segments,
                    );
                    continue;
                }
                trace::emit_lane(lane as u32, || trace::TraceEvent::Free {
                    ptr: off,
                    size: self.geo.slice_size(class),
                });
                // Coalesce: ballot-equivalent grouping by block.
                let key = BlockHandle::new(seg, block, self.geo.max_blocks).0;
                match groups[..n_groups].iter().position(|&(k, _)| k == key) {
                    Some(i) => groups[i].1 += 1,
                    None => {
                        groups[n_groups] = (key, 1);
                        classes[n_groups] = class;
                        n_groups += 1;
                    }
                }
            } else if id == LARGE_BODY {
                trace::emit_lane(lane as u32, || trace::TraceEvent::Free { ptr: off, size: 0 });
                panic!("free of interior pointer into a large allocation (segment {seg})");
            } else if id >= LARGE_BASE && id != TREE_FREE {
                match self.table.unmark_large(seg) {
                    Some(n) => {
                        trace::emit_lane(lane as u32, || trace::TraceEvent::Free {
                            ptr: off,
                            size: n * self.geo.segment_bytes,
                        });
                        self.reserved.fetch_sub(n * self.geo.segment_bytes, Ordering::Relaxed);
                        self.segments.tree.insert_range(seg, n);
                    }
                    None => {
                        trace::emit_lane(lane as u32, || trace::TraceEvent::Free {
                            ptr: off,
                            size: 0,
                        });
                    }
                }
            } else {
                trace::emit_lane(lane as u32, || trace::TraceEvent::Free { ptr: off, size: 0 });
                panic!("free into an unformatted segment {seg} (double free?)");
            }
        }
        for (i, &(key, count)) in groups[..n_groups].iter().enumerate() {
            let handle = BlockHandle(key);
            let seg = handle.segment(self.geo.max_blocks);
            let block = handle.block(self.geo.max_blocks);
            self.slices.free_n(&ctx, seg, classes[i], block, count, &self.blocks, &self.segments);
        }
    }

    /// Warp-collective allocation with opportunistic coalescing
    /// (Algorithm 3): lanes requesting the same slice class are grouped by
    /// ballot; each group's leader issues one atomic for the whole group.
    fn warp_malloc(&self, warp: &WarpCtx, sizes: &[Option<u64>], out: &mut [DevicePtr]) {
        debug_assert_eq!(sizes.len(), warp.active as usize);
        debug_assert_eq!(out.len(), warp.active as usize);
        for p in out.iter_mut() {
            *p = DevicePtr::NULL;
        }
        // Group lanes by slice class (cg::coalesced_threads + ballot).
        // Fixed-size scratch keeps this path allocation-free.
        let mut keys = [None::<usize>; gpu_sim::WARP_SIZE];
        for lane in warp.lanes() {
            // max(1): zero-size requests coalesce into the smallest class.
            keys[lane] = sizes[lane].and_then(|sz| self.geo.slice_class(sz.max(1)));
        }
        let mut lanes_buf = [0u32; gpu_sim::WARP_SIZE];
        for class in 0..self.geo.num_classes {
            let mut n = 0usize;
            for lane in warp.lanes() {
                if keys[lane] == Some(class) {
                    lanes_buf[n] = lane as u32;
                    n += 1;
                }
            }
            if n == 0 {
                continue;
            }
            let served = self.slices.malloc_group(
                &self.ctx(),
                warp.sm_id,
                class,
                &lanes_buf[..n],
                |lane, p| {
                    out[lane as usize] = p;
                },
                &self.blocks,
                &self.segments,
            );
            // Unserved lanes (exhaustion) keep NULL.
            for _ in 0..served {
                self.metrics.count_malloc(true);
            }
            for _ in served..n {
                self.metrics.count_malloc(false);
            }
        }
        // Non-slice requests fall through to the scalar paths.
        for lane in warp.lanes() {
            if keys[lane].is_none() {
                if let Some(size) = sizes[lane] {
                    out[lane] = self.malloc_routed(warp.sm_id, size);
                }
            }
        }
    }

    fn reset(&self) {
        self.reset_local();
        self.table.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.geo.heap_bytes
    }

    fn max_native_size(&self) -> u64 {
        // Any size up to the whole heap, by design.
        self.geo.heap_bytes
    }

    fn metrics(&self) -> Option<&Metrics> {
        Some(&self.metrics)
    }

    fn check_invariants(&self) -> Result<(), String> {
        Gallatin::check_invariants(self)
    }

    fn stats(&self) -> AllocStats {
        AllocStats { heap_bytes: self.geo.heap_bytes, reserved_bytes: self.reserved_bytes() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::{launch_warps, DeviceConfig};

    fn tiny() -> Gallatin {
        Gallatin::new(GallatinConfig::small_test(1 << 20)) // 16 segments
    }

    fn with_lane<R>(f: impl FnOnce(&LaneCtx) -> R) -> R {
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
        f(&warp.lane(0))
    }

    #[test]
    fn slice_allocations_are_distinct_and_in_bounds() {
        let g = tiny();
        with_lane(|l| {
            let mut ptrs = Vec::new();
            for _ in 0..500 {
                let p = g.malloc(l, 16);
                assert!(!p.is_null());
                assert!(p.0 + 16 <= g.heap_bytes());
                ptrs.push(p.0);
            }
            ptrs.sort_unstable();
            ptrs.dedup();
            assert_eq!(ptrs.len(), 500);
            for &p in &ptrs {
                g.free(l, DevicePtr(p));
            }
        });
    }

    #[test]
    fn size_zero_allocates_and_oversize_fails_cleanly() {
        let g = tiny();
        with_lane(|l| {
            // malloc(0) returns a valid unique pointer (the contract in
            // `DeviceAllocator::malloc`): it is a minimum-slice request.
            let a = g.malloc(l, 0);
            let b = g.malloc(l, 0);
            assert!(!a.is_null() && !b.is_null());
            assert_ne!(a.0, b.0, "zero-size allocations must be unique");
            g.free(l, a);
            g.free(l, b);
            assert!(g.malloc(l, g.heap_bytes() + 1).is_null());
            g.check_invariants().unwrap();
        });
    }

    #[test]
    fn large_allocations_come_from_the_back() {
        let g = tiny();
        with_lane(|l| {
            let seg_bytes = g.geometry().segment_bytes;
            let p = g.malloc(l, 3 * seg_bytes); // 3 contiguous segments
            assert!(!p.is_null());
            assert_eq!(p.0 % seg_bytes, 0);
            assert_eq!(g.geometry().segment_of(p.0), 13, "claims from the back");
            let small = g.malloc(l, 16);
            assert_eq!(g.geometry().segment_of(small.0), 0, "small from the front");
            g.free(l, p);
            assert_eq!(g.free_segments(), 15); // one held by the slice segment
            g.free(l, small);
        });
    }

    #[test]
    fn whole_heap_allocation_succeeds_when_empty() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, g.heap_bytes());
            assert!(!p.is_null());
            assert_eq!(p.0, 0);
            assert!(g.malloc(l, 16).is_null(), "nothing left");
            g.free(l, p);
            assert!(!g.malloc(l, 16).is_null());
        });
    }

    #[test]
    fn payload_stamps_survive() {
        let g = tiny();
        with_lane(|l| {
            let ptrs: Vec<_> = (0..200)
                .map(|i| {
                    let p = g.malloc(l, 64);
                    g.memory().write_stamp(p, 0xabc0 + i);
                    p
                })
                .collect();
            for (i, &p) in ptrs.iter().enumerate() {
                assert_eq!(g.memory().read_stamp(p), 0xabc0 + i as u64);
                g.free(l, p);
            }
        });
    }

    #[test]
    fn mixed_warp_requests_route_correctly() {
        let g = tiny();
        let warp = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 8 };
        let sizes = vec![
            Some(16u64),
            Some(16),
            Some(256),
            None,
            Some(1024),           // block path
            Some((2 * 64) << 10), // large path (2 segments)
            Some(16),
            Some(32),
        ];
        let mut out = vec![DevicePtr::NULL; 8];
        g.warp_malloc(&warp, &sizes, &mut out);
        for (i, p) in out.iter().enumerate() {
            if sizes[i].is_some() {
                assert!(!p.is_null(), "lane {i} failed");
            } else {
                assert!(p.is_null());
            }
        }
        g.warp_free(&warp, &out);
        assert_eq!(g.stats().reserved_bytes, 0);
    }

    #[test]
    fn concurrent_malloc_free_storm_no_overlap() {
        let g = std::sync::Arc::new(Gallatin::new(GallatinConfig::small_test(2 << 20)));
        let threads = 2048u64;
        launch_warps(DeviceConfig::with_sms(8), threads, |warp| {
            let n = warp.active as usize;
            let sizes: Vec<Option<u64>> =
                (0..n).map(|l| Some(16 << ((warp.base_tid as usize + l) % 4))).collect();
            let mut out = vec![DevicePtr::NULL; n];
            for _round in 0..10 {
                g.warp_malloc(warp, &sizes, &mut out);
                for (l, p) in out.iter().enumerate() {
                    if !p.is_null() {
                        g.memory().write_stamp(*p, warp.base_tid + l as u64);
                    }
                }
                for (l, p) in out.iter().enumerate() {
                    if !p.is_null() {
                        assert_eq!(
                            g.memory().read_stamp(*p),
                            warp.base_tid + l as u64,
                            "payload clobbered: overlapping allocation"
                        );
                    }
                }
                g.warp_free(warp, &out);
            }
        });
        assert_eq!(g.stats().reserved_bytes, 0);
        g.check_invariants().expect("invariants violated after storm");
    }

    #[test]
    fn invariants_hold_through_the_allocation_lifecycle() {
        let g = tiny();
        g.check_invariants().expect("fresh allocator");
        with_lane(|l| {
            // Live allocations across all three pipelines.
            let slices: Vec<_> = (0..10).map(|i| g.malloc(l, 16 << (i % 5))).collect();
            let block = g.malloc(l, 1024);
            let large = g.malloc(l, 2 * (64 << 10));
            g.check_invariants().expect("live allocations");
            for &p in &slices {
                g.free(l, p);
            }
            g.free(l, block);
            g.free(l, large);
            g.check_invariants().expect("after frees");
        });
        g.trim();
        g.check_invariants().expect("after trim");
        g.reset();
        g.check_invariants().expect("after reset");
    }

    #[test]
    fn invariant_checker_flags_reserved_drift() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 16);
            g.reserved.fetch_add(1, Ordering::Relaxed);
            let err = g.check_invariants().unwrap_err();
            assert!(err.contains("reserved accounting mismatch"), "unexpected report: {err}");
            g.reserved.fetch_sub(1, Ordering::Relaxed);
            g.free(l, p);
            g.check_invariants().expect("healthy after undoing the drift");
        });
    }

    #[test]
    fn reserved_stat_never_reports_a_wrapped_value() {
        let g = tiny();
        // Simulate the read-side transient: a free's fetch_sub observed
        // before the matching malloc's fetch_add drives the raw counter
        // below zero (~2^64 as a u64).
        g.reserved.fetch_sub(4096, Ordering::Relaxed);
        assert_eq!(g.stats().reserved_bytes, 0, "wrapped counter must saturate to 0");
        assert_eq!(g.reserved_bytes(), 0);
        g.reserved.fetch_add(4096, Ordering::Relaxed);
        assert_eq!(g.stats().reserved_bytes, 0);
        // Ordinary values pass through untouched.
        with_lane(|l| {
            let p = g.malloc(l, 16);
            assert!(g.stats().reserved_bytes > 0);
            g.free(l, p);
            assert_eq!(g.stats().reserved_bytes, 0);
        });
        g.check_invariants().expect("healthy after the transient was undone");
    }

    #[test]
    fn reset_restores_full_capacity() {
        let g = tiny();
        with_lane(|l| {
            for _ in 0..100 {
                g.malloc(l, 64);
            }
            let p = g.malloc(l, (4 * 64) << 10);
            assert!(!p.is_null());
        });
        g.reset();
        assert_eq!(g.free_segments(), 16);
        assert_eq!(g.stats().reserved_bytes, 0);
        with_lane(|l| {
            let p = g.malloc(l, g.heap_bytes());
            assert!(!p.is_null(), "whole heap available after reset");
        });
    }

    #[test]
    #[should_panic(expected = "interior pointer")]
    fn interior_large_free_panics() {
        let g = tiny();
        with_lane(|l| {
            let p = g.malloc(l, 2 * (64 << 10));
            g.free(l, DevicePtr(p.0 + (64 << 10)));
        });
    }
}
