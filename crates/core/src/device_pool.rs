//! A hierarchical pool-of-pools spanning a multi-device topology.
//!
//! [`crate::pool::GallatinPool`] shards one device's heap across `n`
//! Gallatin instances; a [`DevicePool`] lifts the same design one level
//! up: `d` per-device pools over a [`Topology`] of `d` arenas joined by
//! an interconnect with asymmetric local/peer cost. Every routing idea
//! repeats at the new scale, which is the point — the pool was designed
//! so its mechanisms (affinity placement, ownership-routed frees,
//! quiesce-gated re-homing) compose instead of needing a rewrite:
//!
//! * **Placement** is SM-affine twice over: a warp on SM `s` allocates
//!   from device `s % d` (matching [`Topology::affinity_device`]), and
//!   within that device's pool from instance `s % n`.
//! * **Spill is strictly layered**: the home device's pool runs its full
//!   in-device walk (home instance → adopt-before-spill → sibling
//!   instances) and only a whole-device denial sends the request across
//!   the interconnect to the next device — the last resort, charged to
//!   the home device in [`DevicePool::cross_spill_count`] only when a
//!   peer actually serves it.
//! * **Frees route by segment home**: pointers are global offsets into
//!   the one topology reservation, `ptr / segment_bytes` names the
//!   segment, and [`DevicePool`]'s `seg_home` table names the owning
//!   *device* (whose pool's `seg_owner` then names the instance). The
//!   two-level route stays correct across cross-device donation because
//!   donation updates both tables before the new owner can allocate.
//! * **Elastic donation crosses devices** ([`DevicePool::donate_across`])
//!   with the exact quiesce protocol of `crate::elastic`: only segments
//!   the shared table shows quiescent-free move, so no live pointer ever
//!   changes owner and the `(device, instance, ptr)` ledger pairing
//!   survives. Bytes are never copied — on real hardware the donated
//!   segment's pages stay resident on the donor GPU and the recipient
//!   serves them as mapped peer memory, which the traffic counters then
//!   make visible.
//!
//! Every access the pool serves is classified local/peer against the
//! issuing SM's affinity device ([`Topology::classify_access`]) into the
//! pool's own [`Metrics`] — host-side accounting only, never a scheduler
//! preemption point, so a 1-device `DevicePool` replays a standalone
//! `GallatinPool` bit-identically (instance metrics, traces, counters).

use crate::config::GallatinConfig;
use crate::gallatin::ledger_errors;
use crate::pool::{GallatinPool, PoolStats, UNOWNED};
use crate::table::MemoryTable;
use gpu_sim::{
    trace, AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, InterconnectCost, LaneCtx,
    Metrics, Topology, WarpCtx, WARP_SIZE,
};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// `d` per-device [`GallatinPool`]s over one [`Topology`] reservation
/// and one shared memory table, with SM→device affinity, device-homed
/// free routing, cross-device spill as the last resort, and
/// quiesce-gated cross-device segment donation.
pub struct DevicePool {
    topo: Topology,
    pools: Vec<GallatinPool>,
    /// The shared per-segment metadata table (every pool's every
    /// instance holds the same `Arc`); quiesce checks read it directly.
    table: Arc<MemoryTable>,
    /// Bytes per segment (global-offset → segment routing).
    segment_bytes: u64,
    /// Total segments across the whole topology.
    num_segments: u64,
    /// Segments per device at construction (reset restores this).
    segs_per_device: u64,
    /// Device-level routing table: the device whose pool answers for
    /// each segment. Differs from the *physical* device
    /// (`ptr / device_stride`) only after cross-device donation.
    seg_home: Vec<AtomicU32>,
    /// Allocations device `d`'s pool denied wholesale and a peer device
    /// absorbed (charged to the home device, only on actual placement).
    cross_spills: Vec<AtomicU64>,
    /// Segments re-homed device-to-device so far.
    cross_donations: AtomicU64,
    /// Pool-of-pools traffic counters: every served access classified
    /// local/peer against the issuing SM's affinity device.
    metrics: Metrics,
}

/// Point-in-time snapshot of the whole topology's occupancy, pressure,
/// and interconnect traffic — what the E23 scaling experiment reads.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TopoStats {
    /// Total bytes across every device.
    pub heap_bytes: u64,
    /// Total bytes reserved across every device.
    pub reserved_bytes: u64,
    /// In-device spills summed over every device's pool.
    pub in_device_spills: u64,
    /// Whole-device denials a peer device absorbed.
    pub cross_spills: u64,
    /// Segments re-homed device-to-device.
    pub cross_donations: u64,
    /// Accesses served by the issuing SM's own device.
    pub local_accesses: u64,
    /// Accesses that crossed the interconnect.
    pub peer_accesses: u64,
    /// One [`PoolStats`] per device, in device order.
    pub devices: Vec<PoolStats>,
}

impl TopoStats {
    /// Fraction of classified accesses that crossed the interconnect.
    pub fn peer_share(&self) -> f64 {
        let total = self.local_accesses + self.peer_accesses;
        if total == 0 {
            0.0
        } else {
            self.peer_accesses as f64 / total as f64
        }
    }
}

impl DevicePool {
    /// Build `devices` pools of `width` instances each, every instance
    /// configured by `cfg` (so `cfg.heap_bytes` is the *per-instance*
    /// shard; the topology manages `devices × width` times that), with
    /// the default interconnect tariff.
    pub fn new(devices: u32, width: usize, cfg: GallatinConfig) -> Self {
        Self::with_cost(devices, width, cfg, InterconnectCost::default())
    }

    /// Build with an explicit interconnect tariff.
    pub fn with_cost(
        devices: u32,
        width: usize,
        cfg: GallatinConfig,
        cost: InterconnectCost,
    ) -> Self {
        assert!(devices > 0, "a topology needs at least one device");
        assert!(width > 0, "a device pool needs at least one instance");
        let stride = cfg.geometry().heap_bytes;
        let device_bytes = stride.checked_mul(width as u64).expect("device size overflow");
        let total = device_bytes.checked_mul(devices as u64).expect("topology size overflow");
        let full = GallatinConfig { heap_bytes: total, ..cfg };
        let geo = full.geometry();
        let topo = Topology::with_cost(devices, device_bytes, cost);
        let table = Arc::new(MemoryTable::new(geo));
        let segs_per_device = geo.num_segments / devices as u64;
        let pools = (0..devices as u64)
            .map(|d| {
                GallatinPool::with_shared_parts(
                    width,
                    full,
                    topo.memory().clone_view(),
                    Arc::clone(&table),
                    d * segs_per_device,
                    segs_per_device,
                )
            })
            .collect();
        DevicePool {
            topo,
            pools,
            table,
            segment_bytes: geo.segment_bytes,
            num_segments: geo.num_segments,
            segs_per_device,
            seg_home: (0..geo.num_segments)
                .map(|s| AtomicU32::new((s / segs_per_device) as u32))
                .collect(),
            cross_spills: (0..devices).map(|_| AtomicU64::new(0)).collect(),
            cross_donations: AtomicU64::new(0),
            metrics: Metrics::new(),
        }
    }

    /// Number of devices.
    pub fn devices(&self) -> u32 {
        self.pools.len() as u32
    }

    /// Instances per device.
    pub fn width(&self) -> usize {
        self.pools[0].num_instances()
    }

    /// The per-instance nominal heap size (the largest servable request,
    /// same bound as a standalone pool of the same `cfg`).
    pub fn stride(&self) -> u64 {
        self.pools[0].stride()
    }

    /// Device `d`'s pool, for per-device introspection.
    pub fn pool(&self, d: usize) -> &GallatinPool {
        &self.pools[d]
    }

    /// The underlying topology (windows, stride, interconnect tariff).
    pub fn topology(&self) -> &Topology {
        &self.topo
    }

    /// Allocations whose home device `d` denied wholesale and a peer
    /// absorbed.
    pub fn cross_spill_count(&self, d: usize) -> u64 {
        self.cross_spills[d].load(Ordering::Relaxed)
    }

    /// Total cross-device spills across all home devices.
    pub fn total_cross_spills(&self) -> u64 {
        self.cross_spills.iter().map(|c| c.load(Ordering::Relaxed)).sum()
    }

    /// Segments re-homed device-to-device so far.
    pub fn cross_donated_segments(&self) -> u64 {
        self.cross_donations.load(Ordering::Relaxed)
    }

    /// The device whose pool currently answers for `seg`.
    pub fn home_of_segment(&self, seg: u64) -> usize {
        self.seg_home[seg as usize].load(Ordering::Acquire) as usize
    }

    /// Snapshot occupancy, pressure, and interconnect traffic.
    pub fn topo_stats(&self) -> TopoStats {
        let devices: Vec<PoolStats> = self.pools.iter().map(|p| p.pool_stats()).collect();
        let m = self.metrics.snapshot();
        TopoStats {
            heap_bytes: self.heap_bytes(),
            reserved_bytes: devices.iter().map(|s| s.reserved_bytes).sum(),
            in_device_spills: devices.iter().map(|s| s.spills).sum(),
            cross_spills: self.total_cross_spills(),
            cross_donations: self.cross_donated_segments(),
            local_accesses: m.local_accesses,
            peer_accesses: m.peer_accesses,
            devices,
        }
    }

    /// The home device for a warp on `sm_id`.
    #[inline]
    fn home(&self, sm_id: u32) -> usize {
        sm_id as usize % self.pools.len()
    }

    /// Device-level routing of a pool pointer, via `seg_home`.
    #[inline]
    fn home_of(&self, ptr: DevicePtr) -> usize {
        let seg = ptr.0 / self.segment_bytes;
        assert!(seg < self.num_segments, "free of foreign pointer {}", ptr.0);
        self.seg_home[seg as usize].load(Ordering::Acquire) as usize
    }

    /// Re-home up to `max` quiescent free segments from device `from`'s
    /// pool to device `to`'s, spreading them round-robin over the
    /// recipient's instances. Parked (shrunk) segments move first, then
    /// instance-free ones. Returns the number donated; a segment that
    /// fails the quiesce check bounces back and the donation aborts with
    /// an error naming the partial progress — never a torn state.
    ///
    /// Bytes never move: the recipient serves the donated segment as
    /// peer memory, which the local/peer counters then show.
    pub fn donate_across(&self, from: usize, to: usize, max: u64) -> Result<u64, String> {
        if from == to {
            return Err("cross-device donation requires two distinct devices".to_string());
        }
        let nd = self.pools.len();
        if from >= nd || to >= nd {
            return Err(format!("donation between out-of-range devices {from} -> {to}"));
        }
        let donor = &self.pools[from];
        let recipient = &self.pools[to];
        let width = recipient.num_instances();
        let mut moved = 0u64;
        while moved < max {
            // Claim-unreachable: withdraw from the donor's parked list
            // first (already instance-free), then from its instances.
            let src = if let Some(seg) = donor.pool_free.claim_first_ge(0) {
                donor.pool_free_len.fetch_sub(1, Ordering::Relaxed);
                (None, seg)
            } else {
                let mut found = None;
                for i in 0..donor.num_instances() {
                    if let Some(seg) = donor.instance(i).withdraw_free_segment() {
                        found = Some((Some(i), seg));
                        break;
                    }
                }
                match found {
                    Some(x) => x,
                    None => break,
                }
            };
            let (src_inst, seg) = src;
            // Quiesce-check on the shared metadata — the protocol step,
            // not an optimization: a failing segment bounces back to
            // exactly where it came from.
            if !self.table.seg(seg).is_quiescent_free() {
                match src_inst {
                    Some(i) => donor.instance(i).adopt_segment(seg),
                    None => {
                        donor.pool_free.insert(seg);
                        donor.pool_free_len.fetch_add(1, Ordering::Relaxed);
                    }
                }
                self.cross_donations.fetch_add(moved, Ordering::Relaxed);
                return Err(format!(
                    "segment {seg} failed the quiesce check mid-donation \
                     ({moved} segment(s) already moved across devices)"
                ));
            }
            // Re-home: responsibility and routing first (device table,
            // then instance table), publish into the recipient's tree
            // last — a free targeting the segment must route to the new
            // owner from the instant it can hand out pointers.
            let dst_inst = (moved as usize) % width;
            donor.seg_owner[seg as usize].store(UNOWNED, Ordering::Release);
            donor.resp_len.fetch_sub(1, Ordering::Relaxed);
            recipient.seg_owner[seg as usize].store(dst_inst as u32, Ordering::Release);
            recipient.resp_len.fetch_add(1, Ordering::Relaxed);
            self.seg_home[seg as usize].store(to as u32, Ordering::Release);
            trace::with_device(to as u32, || {
                trace::emit(|| trace::TraceEvent::SegmentDonate {
                    from: from as u32,
                    to: to as u32,
                    seg,
                })
            });
            recipient.instance(dst_inst).adopt_segment(seg);
            moved += 1;
        }
        self.cross_donations.fetch_add(moved, Ordering::Relaxed);
        Ok(moved)
    }

    /// The device-level share of the invariant check: every segment's
    /// home device exists and its pool actually answers for the segment
    /// (an instance owns it or it is parked there), no other device's
    /// pool also claims it, and each pool's responsibility count matches
    /// the routing table.
    fn home_audit(&self, errors: &mut Vec<String>) {
        let nd = self.pools.len();
        let mut resp_by_home = vec![0u64; nd];
        for seg in 0..self.num_segments {
            let h = self.seg_home[seg as usize].load(Ordering::Acquire) as usize;
            if h >= nd {
                errors.push(format!("segment {seg} is homed on nonexistent device {h}"));
                continue;
            }
            resp_by_home[h] += 1;
            for (d, pool) in self.pools.iter().enumerate() {
                let claimed = pool.seg_owner[seg as usize].load(Ordering::Acquire) != UNOWNED
                    || pool.pool_free.contains(seg);
                if d == h && !claimed {
                    errors.push(format!(
                        "segment {seg} is homed on device {d} but its pool does not answer \
                         for it (no owning instance, not parked)"
                    ));
                }
                if d != h && claimed {
                    errors.push(format!(
                        "segment {seg} is homed on device {h} but device {d}'s pool also \
                         claims it"
                    ));
                }
            }
        }
        for (d, pool) in self.pools.iter().enumerate() {
            let resp = pool.resp_len.load(Ordering::Relaxed);
            if resp != resp_by_home[d] {
                errors.push(format!(
                    "device {d} answers for {resp} segments but the home table routes \
                     {} there",
                    resp_by_home[d]
                ));
            }
        }
    }
}

impl DeviceAllocator for DevicePool {
    fn name(&self) -> &str {
        "DevicePool"
    }

    fn memory(&self) -> &DeviceMemory {
        self.topo.memory()
    }

    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr {
        let nd = self.pools.len();
        let hd = self.home(ctx.sm_id());
        if size > self.stride() {
            // Unservable anywhere: one denial, charged by the home
            // device's pool — exactly what a standalone pool counts.
            return trace::with_device(hd as u32, || self.pools[hd].malloc(ctx, size));
        }
        for k in 0..nd {
            let d = (hd + k) % nd;
            let p = trace::with_device(d as u32, || self.pools[d].malloc(ctx, size));
            if !p.is_null() {
                if k > 0 {
                    self.cross_spills[hd].fetch_add(1, Ordering::Relaxed);
                }
                self.topo.classify_access(ctx.sm_id(), p, &self.metrics);
                return p;
            }
        }
        DevicePtr::NULL
    }

    fn free(&self, ctx: &LaneCtx, ptr: DevicePtr) {
        let d = self.home_of(ptr);
        self.topo.classify_access(ctx.sm_id(), ptr, &self.metrics);
        trace::with_device(d as u32, || self.pools[d].free(ctx, ptr));
    }

    /// Warp-collective allocation, layered like the scalar path: the
    /// whole warp goes to its home device's pool (which runs its own
    /// in-device home/spill walk as coalesced groups), then only the
    /// lanes that whole device denied retry across the interconnect.
    fn warp_malloc(&self, warp: &WarpCtx, sizes: &[Option<u64>], out: &mut [DevicePtr]) {
        debug_assert_eq!(sizes.len(), warp.active as usize);
        debug_assert_eq!(out.len(), warp.active as usize);
        let nd = self.pools.len();
        let hd = self.home(warp.sm_id);
        trace::with_device(hd as u32, || self.pools[hd].warp_malloc(warp, sizes, out));
        if nd > 1 {
            let active = warp.active as usize;
            // Oversize lanes were already denied (and counted once) by
            // the home pool; only servable unserved lanes cross over.
            let mut rest = [None::<u64>; WARP_SIZE];
            let mut unserved = 0u64;
            for lane in warp.lanes() {
                if out[lane].is_null() {
                    if let Some(sz) = sizes[lane] {
                        if sz <= self.stride() {
                            rest[lane] = Some(sz);
                            unserved += 1;
                        }
                    }
                }
            }
            let mut sub = [DevicePtr::NULL; WARP_SIZE];
            for k in 1..nd {
                if unserved == 0 {
                    break;
                }
                let d = (hd + k) % nd;
                trace::with_device(d as u32, || {
                    self.pools[d].warp_malloc(warp, &rest[..active], &mut sub[..active])
                });
                let mut served = 0u64;
                for lane in warp.lanes() {
                    if !sub[lane].is_null() {
                        out[lane] = sub[lane];
                        sub[lane] = DevicePtr::NULL;
                        rest[lane] = None;
                        served += 1;
                    }
                }
                if served > 0 {
                    // Charged only on actual peer placement; a walk every
                    // device denies is a failed malloc, not a spill.
                    self.cross_spills[hd].fetch_add(served, Ordering::Relaxed);
                    unserved -= served;
                }
            }
        }
        for lane in warp.lanes() {
            if !out[lane].is_null() {
                self.topo.classify_access(warp.sm_id, out[lane], &self.metrics);
            }
        }
    }

    /// Warp-collective free with per-device regrouping (then per-instance
    /// regrouping inside each pool), so coalescing survives both levels
    /// of sharding.
    fn warp_free(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) {
        debug_assert_eq!(ptrs.len(), warp.active as usize);
        for lane in warp.lanes() {
            if !ptrs[lane].is_null() {
                self.topo.classify_access(warp.sm_id, ptrs[lane], &self.metrics);
            }
        }
        let nd = self.pools.len();
        if nd == 1 {
            return trace::with_device(0, || self.pools[0].warp_free(warp, ptrs));
        }
        let active = warp.active as usize;
        for (d, pool) in self.pools.iter().enumerate() {
            let mut local = [DevicePtr::NULL; WARP_SIZE];
            let mut any = false;
            for lane in warp.lanes() {
                let p = ptrs[lane];
                if !p.is_null() && self.home_of(p) == d {
                    local[lane] = p;
                    any = true;
                }
            }
            if any {
                trace::with_device(d as u32, || pool.warp_free(warp, &local[..active]));
            }
        }
    }

    fn reset(&self) {
        for pool in &self.pools {
            pool.reset_local_pool();
        }
        // The table spans every device: reset it exactly once.
        self.table.reset();
        for (s, h) in self.seg_home.iter().enumerate() {
            h.store((s as u64 / self.segs_per_device) as u32, Ordering::Relaxed);
        }
        for c in &self.cross_spills {
            c.store(0, Ordering::Relaxed);
        }
        self.cross_donations.store(0, Ordering::Relaxed);
        self.metrics.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.pools.iter().map(|p| p.heap_bytes()).sum()
    }

    fn supports_size(&self, size: u64) -> bool {
        size <= self.stride()
    }

    fn max_native_size(&self) -> u64 {
        self.stride()
    }

    fn metrics(&self) -> Option<&Metrics> {
        // The topology-level counters (local/peer traffic). Per-instance
        // allocator metrics stay on `pool(d).instance(i)`.
        Some(&self.metrics)
    }

    fn device_count(&self) -> u32 {
        self.devices()
    }

    fn device_of(&self, ptr: DevicePtr) -> u32 {
        self.topo.device_of(ptr)
    }

    fn affinity_device(&self, sm: u32) -> u32 {
        self.topo.affinity_device(sm)
    }

    /// Verify every device pool's structural and ownership invariants
    /// (each error prefixed with its device), the device-level home
    /// audit, plus one topology-wide lifecycle-ledger pass — the ledger
    /// pairs per `(device, instance, ptr)`, so a free routed to the
    /// wrong device shows up as an unmatched free *and* a leak.
    fn check_invariants(&self) -> Result<(), String> {
        let mut errors: Vec<String> = Vec::new();
        for (d, pool) in self.pools.iter().enumerate() {
            for e in pool.local_errors() {
                errors.push(format!("device {d}: {e}"));
            }
        }
        self.home_audit(&mut errors);
        ledger_errors(&mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            if let Some(path) = trace::auto_dump("device_pool_invariant_failure") {
                errors.push(format!("trace auto-dumped to {}", path.display()));
            }
            Err(errors.join("\n"))
        }
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            heap_bytes: self.heap_bytes(),
            reserved_bytes: self.pools.iter().map(|p| p.stats().reserved_bytes).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::WarpCtx;

    fn cfg() -> GallatinConfig {
        GallatinConfig::small_test(1 << 20) // 16 segments per instance
    }

    fn topo_pool(devices: u32, width: usize) -> DevicePool {
        DevicePool::new(devices, width, cfg())
    }

    fn warp_on(sm_id: u32, active: u32) -> WarpCtx {
        WarpCtx { warp_id: sm_id as u64, sm_id, base_tid: (sm_id as u64) << 32, active }
    }

    #[test]
    fn affinity_places_on_the_sm_home_device() {
        let t = topo_pool(2, 2);
        let stride = t.topology().device_stride();
        // SM 0 and 2 home on device 0, SM 1 and 3 on device 1.
        for sm in 0..4u32 {
            let p = t.malloc(&warp_on(sm, 1).lane(0), 64);
            assert!(!p.is_null());
            assert_eq!(p.device_of(stride), sm % 2, "SM {sm} must allocate on its device");
            assert_eq!(t.device_of(p), t.affinity_device(sm));
            t.free(&warp_on(sm, 1).lane(0), p);
        }
        let s = t.topo_stats();
        assert_eq!((s.cross_spills, s.peer_accesses), (0, 0), "all-affine traffic stays local");
        assert_eq!(s.local_accesses, 8, "4 mallocs + 4 frees, all local");
        assert_eq!(t.stats().reserved_bytes, 0);
        t.check_invariants().expect("clean after affine traffic");
    }

    #[test]
    fn whole_device_denial_spills_across_the_interconnect() {
        let t = topo_pool(2, 2);
        let seg = t.pool(0).instance(0).geometry().segment_bytes;
        let l0 = warp_on(0, 1);
        // Exhaust device 0 wholesale: 2 instances × 16 segments.
        let held: Vec<_> = (0..32).map(|_| t.malloc(&l0.lane(0), seg)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        assert_eq!(t.total_cross_spills(), 0, "in-device walk absorbed everything so far");
        assert!(t.pool(0).total_spills() > 0, "the in-device spill walk ran first");
        // The 33rd crosses to device 1 — charged to home device 0, and
        // the access is classified peer.
        let crossed = t.malloc(&l0.lane(0), seg);
        assert!(!crossed.is_null());
        assert_eq!(t.device_of(crossed), 1, "served by the peer device");
        assert_eq!(t.cross_spill_count(0), 1);
        assert_eq!(t.metrics().unwrap().snapshot().peer_accesses, 1);
        // Frees route home by segment ownership regardless of SM.
        t.free(&warp_on(3, 1).lane(0), crossed);
        for q in held {
            t.free(&warp_on(2, 1).lane(0), q);
        }
        assert_eq!(t.stats().reserved_bytes, 0);
        t.check_invariants().expect("clean after cross-device spill + routed frees");
    }

    #[test]
    fn cross_device_donation_rehomes_and_routing_follows() {
        let t = topo_pool(2, 2);
        assert_eq!(t.donate_across(0, 1, 4), Ok(4));
        assert_eq!(t.cross_donated_segments(), 4);
        t.check_invariants().expect("clean after cross-device donation");
        // Device 1 now answers for 36 segments; device 0 for 28.
        let s = t.topo_stats();
        let owned: Vec<u64> = s
            .devices
            .iter()
            .map(|d| d.instances.iter().map(|i| i.owned_segments).sum::<u64>())
            .collect();
        assert_eq!(owned, vec![28, 36], "responsibility moved without copying bytes");
        // Device 1 can hold 36 segment claims with no cross-device spill;
        // the 4 donated ones are physically on device 0, so those
        // allocations classify as peer accesses.
        let seg = t.pool(0).instance(0).geometry().segment_bytes;
        let l1 = warp_on(1, 1);
        let held: Vec<_> = (0..36).map(|_| t.malloc(&l1.lane(0), seg)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        assert_eq!(t.total_cross_spills(), 0, "donated headroom absorbed the pressure");
        let donated: Vec<_> = held.iter().filter(|q| t.device_of(**q) == 0).collect();
        assert_eq!(donated.len(), 4, "exactly the donated segments are peer memory");
        assert_eq!(t.metrics().unwrap().snapshot().peer_accesses, 4);
        // Frees of donated-segment pointers route to device 1 (the
        // owner), not device 0 (the physical host).
        for q in held {
            t.free(&warp_on(5, 1).lane(0), q);
        }
        assert_eq!(t.stats().reserved_bytes, 0);
        t.check_invariants().expect("clean after routed frees of donated segments");
    }

    #[test]
    fn donation_bounces_when_the_quiesce_check_fails() {
        use crate::table::TREE_FREE;
        use std::sync::atomic::Ordering;
        let t = topo_pool(2, 1);
        // Plant a torn state on device 0's first segment.
        t.pool(0).instance(0).table().seg(0).tree_id.store(0, Ordering::SeqCst);
        let err = t.donate_across(0, 1, 16).unwrap_err();
        assert!(err.contains("quiesce"), "unexpected error: {err}");
        assert_eq!(t.cross_donated_segments(), 0);
        // Repair and retry: the full span crosses.
        t.pool(0).instance(0).table().seg(0).tree_id.store(TREE_FREE, Ordering::SeqCst);
        assert_eq!(t.donate_across(0, 1, 16), Ok(16));
        t.check_invariants().expect("clean after the repaired donation");
    }

    #[test]
    fn oversize_requests_are_denied_once_and_walk_nothing() {
        let t = topo_pool(2, 2);
        assert!(!t.supports_size(t.stride() + 1));
        assert_eq!(t.max_native_size(), t.stride());
        assert!(t.malloc(&warp_on(0, 1).lane(0), t.stride() + 1).is_null());
        assert_eq!(t.pool(0).oversize_denials(), 1, "home device counts the one denial");
        assert_eq!(t.pool(1).oversize_denials(), 0, "peers are never consulted");
        let w = warp_on(0, 32);
        let sizes = vec![Some(t.stride() + 1); 32];
        let mut out = vec![DevicePtr(7); 32];
        t.warp_malloc(&w, &sizes, &mut out);
        assert!(out.iter().all(|q| q.is_null()));
        assert_eq!(t.pool(0).oversize_denials(), 33);
        assert_eq!(t.pool(1).oversize_denials(), 0);
        assert_eq!(t.total_cross_spills(), 0, "an unservable size is not a spill");
    }

    #[test]
    fn warp_collectives_regroup_across_devices() {
        let t = topo_pool(2, 1);
        let w0 = warp_on(0, 32);
        let w1 = warp_on(1, 32);
        let sizes = vec![Some(16u64); 32];
        let mut a = vec![DevicePtr::NULL; 32];
        let mut b = vec![DevicePtr::NULL; 32];
        t.warp_malloc(&w0, &sizes, &mut a);
        t.warp_malloc(&w1, &sizes, &mut b);
        assert!(a.iter().all(|q| !q.is_null() && t.device_of(*q) == 0));
        assert!(b.iter().all(|q| !q.is_null() && t.device_of(*q) == 1));
        // Interleave both devices' pointers in one collective free: each
        // device's pool receives its half as one group.
        let mixed: Vec<DevicePtr> = (0..32).map(|l| if l % 2 == 0 { a[l] } else { b[l] }).collect();
        let rest: Vec<DevicePtr> = (0..32).map(|l| if l % 2 == 0 { b[l] } else { a[l] }).collect();
        t.warp_free(&w0, &mixed);
        t.warp_free(&w1, &rest);
        assert_eq!(t.stats().reserved_bytes, 0);
        t.check_invariants().expect("clean after interleaved cross-device frees");
    }

    #[test]
    fn reset_restores_the_initial_topology() {
        let t = topo_pool(2, 2);
        let seg = t.pool(0).instance(0).geometry().segment_bytes;
        let l0 = warp_on(0, 1);
        for _ in 0..33 {
            assert!(!t.malloc(&l0.lane(0), seg).is_null());
        }
        assert_eq!(t.total_cross_spills(), 1);
        assert_eq!(t.donate_across(1, 0, 2), Ok(2));
        t.reset();
        let s = t.topo_stats();
        assert_eq!((s.reserved_bytes, s.cross_spills, s.cross_donations), (0, 0, 0));
        assert_eq!((s.local_accesses, s.peer_accesses), (0, 0));
        for d in 0..2 {
            assert!(s.devices[d].instances.iter().all(|i| i.owned_segments == 16));
        }
        t.check_invariants().expect("clean after reset");
    }

    #[test]
    #[should_panic(expected = "foreign pointer")]
    fn foreign_pointer_free_panics() {
        let t = topo_pool(2, 1);
        t.free(&warp_on(0, 1).lane(0), DevicePtr(t.heap_bytes() + 64));
    }

    #[test]
    fn invariant_check_names_the_corrupt_device() {
        use std::sync::atomic::Ordering;
        let t = topo_pool(2, 1);
        // Segment 17 is device 1's: claim its tree_id without removing
        // it from the segment tree or formatting it.
        t.pool(1).instance(0).table().seg(17).tree_id.store(0, Ordering::SeqCst);
        let err = t.check_invariants().unwrap_err();
        assert!(err.contains("device 1: instance 0: segment 17"), "unexpected report: {err}");
    }

    #[test]
    fn single_device_pool_matches_a_standalone_pool_bit_for_bit() {
        // The refactor's parity gate: DevicePool(1, n, cfg) must replay
        // GallatinPool(n, cfg) exactly — same placement, same counters,
        // same per-instance metrics — because the topology layer adds
        // only host-side accounting (never a preemption point).
        let one = DevicePool::new(1, 2, cfg());
        let flat = GallatinPool::new(2, cfg());
        let seg = flat.instance(0).geometry().segment_bytes;
        let drive = |a: &dyn DeviceAllocator| {
            let mut held = Vec::new();
            for sm in 0..4u32 {
                for i in 0..5u64 {
                    let p = a.malloc(&warp_on(sm, 1).lane(0), 16 << (i % 3));
                    assert!(!p.is_null());
                    held.push((sm, p));
                }
            }
            // Force the in-device spill walk on both.
            for _ in 0..17 {
                let p = a.malloc(&warp_on(0, 1).lane(0), seg);
                assert!(!p.is_null());
                held.push((0, p));
            }
            for (sm, p) in held {
                a.free(&warp_on(sm, 1).lane(0), p);
            }
        };
        drive(&one);
        drive(&flat);
        for i in 0..2 {
            assert_eq!(
                one.pool(0).instance(i).metrics().unwrap().snapshot(),
                flat.instance(i).metrics().unwrap().snapshot(),
                "instance {i} metrics must be bit-identical"
            );
        }
        assert_eq!(one.pool(0).total_spills(), flat.total_spills());
        assert_eq!(one.pool(0).pool_stats(), flat.pool_stats());
        assert_eq!(one.total_cross_spills(), 0, "one device has no peers to spill to");
        assert_eq!(one.metrics().unwrap().snapshot().peer_accesses, 0);
        one.check_invariants().expect("clean");
        flat.check_invariants().expect("clean");
    }
}
