//! # gallatin: a general-purpose GPU memory manager, in Rust
//!
//! A from-scratch reproduction of *Gallatin: A General-Purpose GPU Memory
//! Manager* (McCoy & Pandey, PPoPP 2024), running on the [`gpu_sim`]
//! SIMT substrate instead of a physical GPU.
//!
//! Gallatin manages a contiguous heap with three nested granularities:
//!
//! * **Segments** (16 MB default) — tracked by a concurrent van Emde Boas
//!   tree ([`veb::VebTree`]); small allocations claim segments from the
//!   front of memory, and arbitrarily large allocations claim contiguous
//!   runs of segments from the back. This ordering is what lets Gallatin
//!   serve *any* allocation size from a single heap.
//! * **Blocks** — a segment attached to a size class is split into blocks
//!   (64 KB–16 MB), tracked by one block tree per class and recycled
//!   through a per-segment ring queue.
//! * **Slices** (16 B–4096 B) — each block holds 4096 slices handed out by
//!   a single `fetch_add`; same-size requests within a warp are coalesced
//!   so one atomic can serve up to 32 threads.
//!
//! ## Quick start
//!
//! ```
//! use gallatin::{Gallatin, GallatinConfig};
//! use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
//!
//! let alloc = Gallatin::new(GallatinConfig::small_test(1 << 20));
//! launch_warps(DeviceConfig::with_sms(8), 256, |warp| {
//!     let sizes = vec![Some(64u64); warp.active as usize];
//!     let mut out = vec![DevicePtr::NULL; warp.active as usize];
//!     alloc.warp_malloc(warp, &sizes, &mut out);
//!     // ... use the allocations ...
//!     alloc.warp_free(warp, &out);
//! });
//! ```

#![warn(missing_docs)]

mod buffer;
mod compact;
mod config;
mod device_pool;
mod elastic;
mod gallatin;
pub mod global;
mod index;
mod pool;
mod ring;
mod table;
mod tiers;

pub use buffer::BlockBuffer;
pub use compact::Relocation;
pub use config::{GallatinConfig, Geometry};
pub use device_pool::{DevicePool, TopoStats};
pub use gallatin::Gallatin;
pub use index::{SearchStructure, SegmentIndex};
pub use pool::{GallatinPool, InstanceStats, PoolStats};
pub use ring::BlockRing;
pub use table::{
    BlockHandle, MemoryTable, SegmentMeta, DRAIN_SPIN_LIMIT, LARGE_BASE, LARGE_BODY,
    SLICE_COUNT_MASK, SLICE_GEN_SHIFT, TREE_FREE,
};
