//! Elastic pool operations: segment donation, shrink, and grow.
//!
//! A [`crate::pool::GallatinPool`] starts with fixed disjoint shards,
//! but memory pressure is rarely uniform — a hot instance exhausts its
//! shard while a cold sibling sits on free segments. The paper's
//! two-phase segment reclamation (§4.4) already defines the state this
//! module needs: a segment the reclaim protocol published back to a
//! segment tree is *quiescent free* — no live slices, no wholesale
//! blocks, every block home in the ring and published, no straggler
//! mid-push ([`crate::table::SegmentMeta::is_quiescent_free`]). Such a
//! segment can be re-homed without copying a byte, because the pool's
//! instances share one arena and one memory table; ownership is only
//! tree membership plus a row in the pool's routing table.
//!
//! **Donation** (`donate`) moves quiescent free segments from a cold
//! instance straight to a hot one, in three steps per segment:
//!
//! 1. *claim-unreachable* — withdraw the segment's bit from the donor's
//!    segment tree, so no donor-side malloc can claim it;
//! 2. *quiesce-check* — verify the shared metadata still shows the
//!    reclaimed state (the same predicate phase 2 of `try_reclaim`
//!    publishes). A failure bounces the segment back to the donor and
//!    aborts the donation — never corrupts;
//! 3. *re-home* — update `seg_owner` (so frees route to the new owner
//!    *before* it can hand out pointers), emit a `SegmentDonate` trace
//!    event, then insert the bit into the recipient's tree.
//!
//! Only free segments move, so no live allocation ever changes owner
//! mid-lifecycle: the trace ledger's `(instance, ptr)` pairing survives
//! any interleaving of donations with traffic.
//!
//! **Shrink** (`shrink_instance` / `shrink_to`) runs the same
//! withdraw-and-quiesce steps but parks the segment on the pool-level
//! free list (`seg_owner` = unowned) — memory returned to the pool,
//! reported as headroom and re-claimable by **grow** (or by the malloc
//! path's adopt-before-spill, which prefers adopting returned headroom
//! over spilling to a sibling).

use crate::config::GallatinConfig;
use crate::gallatin::Gallatin;
use crate::pool::{GallatinPool, UNOWNED};
use crate::table::MemoryTable;
use crate::tiers::{BlockTier, SegmentTier, SliceTier};
use gpu_sim::{trace, DeviceMemory, Metrics};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

impl Gallatin {
    /// Build an instance over a shared arena view and a shared memory
    /// table, owning only segments `[first_seg, first_seg+num_segs)` of
    /// the table's universe. Pointers are *global* offsets into the
    /// arena — [`crate::pool::GallatinPool`] routes them by segment
    /// ownership, and a donated segment's metadata needs no translation
    /// because every instance reads the same table.
    pub(crate) fn with_shared_table(
        cfg: GallatinConfig,
        mem: DeviceMemory,
        table: Arc<MemoryTable>,
        first_seg: u64,
        num_segs: u64,
    ) -> Self {
        let geo = cfg.geometry();
        assert!(
            mem.len() as u64 >= geo.heap_bytes,
            "device memory of {} bytes cannot back a {}-byte heap",
            mem.len(),
            geo.heap_bytes
        );
        assert!(first_seg + num_segs <= geo.num_segments, "owned span exceeds the universe");
        assert_eq!(
            table.geometry().num_segments,
            geo.num_segments,
            "shared table laid out for a different universe"
        );
        let segments =
            SegmentTier::with_span(cfg.index_kind(), geo.num_segments, first_seg, num_segs);
        let blocks = BlockTier::new(&cfg, geo.num_segments, geo.num_classes);
        Gallatin {
            geo,
            mem,
            segments,
            blocks,
            slices: SliceTier,
            table,
            metrics: Metrics::new(),
            randomize_probes: cfg.randomize_probe_starts,
            reserved: AtomicU64::new(0),
            span: (first_seg, num_segs),
        }
    }

    /// The instance-local share of a reset: drain the buffer wavefront,
    /// restore the segment tree to the instance's *initial* span, clear
    /// the block trees and counters. Does NOT touch the memory table —
    /// it is shared in pool mode, so the pool resets it exactly once.
    pub(crate) fn reset_local(&self) {
        for b in &self.blocks.buffers {
            b.drain();
        }
        self.segments.tree.clear();
        self.segments.tree.insert_range(self.span.0, self.span.1);
        for t in &self.blocks.trees {
            t.clear();
        }
        self.metrics.reset();
        self.reserved.store(0, Ordering::Relaxed);
    }

    /// Withdraw one free segment from this instance's segment tree (the
    /// claim-unreachable step of donation/shrink): once the bit is
    /// claimed, no malloc on this instance can reach the segment.
    pub(crate) fn withdraw_free_segment(&self) -> Option<u64> {
        self.segments.tree.claim_first_ge(0)
    }

    /// Hand a (quiescent free) segment to this instance: inserting the
    /// bit is the publish — the very next malloc may claim and format
    /// it. The caller must already have routed the segment here.
    pub(crate) fn adopt_segment(&self, seg: u64) {
        self.segments.tree.insert(seg);
    }
}

impl GallatinPool {
    /// Re-home up to `max` quiescent free segments from instance `from`
    /// to instance `to`. Returns the number donated (possibly 0 when
    /// the donor has nothing free). A segment that fails the quiesce
    /// check is bounced back to the donor and the donation aborts with
    /// an error — partial progress is reported in the error string and
    /// already counted.
    ///
    /// Host-side operation, but safe to run concurrently with device
    /// traffic: every step is an atomic handoff (tree claim → routing
    /// store → tree insert) and only free segments move.
    pub fn donate(&self, from: usize, to: usize, max: u64) -> Result<u64, String> {
        if from == to {
            return Err("donation requires two distinct instances".to_string());
        }
        let n = self.num_instances();
        if from >= n || to >= n {
            return Err(format!("donation between out-of-range instances {from} -> {to}"));
        }
        let mut moved = 0u64;
        while moved < max {
            // Claim-unreachable: withdraw the bit so no donor-side malloc
            // can find the segment any more.
            let Some(seg) = self.instance(from).withdraw_free_segment() else { break };
            // Quiesce-check on the shared metadata. Membership in the
            // donor's tree should already imply this, but the check is
            // the protocol, not an optimization: a segment that fails it
            // bounces back — never crosses instances in a torn state.
            if !self.table.seg(seg).is_quiescent_free() {
                self.instance(from).adopt_segment(seg);
                self.donations.fetch_add(moved, Ordering::Relaxed);
                return Err(format!(
                    "segment {seg} failed the quiesce check mid-donation \
                     ({moved} segment(s) already moved)"
                ));
            }
            // Route first, then publish: a free targeting this segment
            // must reach the recipient from the instant the recipient
            // can hand out pointers from it.
            self.seg_owner[seg as usize].store(to as u32, Ordering::Release);
            trace::emit(|| trace::TraceEvent::SegmentDonate {
                from: from as u32,
                to: to as u32,
                seg,
            });
            self.instance(to).adopt_segment(seg);
            moved += 1;
        }
        self.donations.fetch_add(moved, Ordering::Relaxed);
        Ok(moved)
    }

    /// Withdraw up to `max` quiescent free segments from instance `i`
    /// and park them on the pool-level free list (memory returned to
    /// the pool). Returns the number returned. Call
    /// [`GallatinPool::trim`] first to release the buffered wavefront
    /// if the instance should give up everything it can.
    pub fn shrink_instance(&self, i: usize, max: u64) -> u64 {
        let mut count = 0u64;
        while count < max {
            let Some(seg) = self.instance(i).withdraw_free_segment() else { break };
            if !self.table.seg(seg).is_quiescent_free() {
                // Same bounce as donation: never park a torn segment.
                self.instance(i).adopt_segment(seg);
                break;
            }
            self.seg_owner[seg as usize].store(UNOWNED, Ordering::Release);
            self.pool_free.insert(seg);
            self.pool_free_len.fetch_add(1, Ordering::Relaxed);
            count += 1;
        }
        self.returned.fetch_add(count, Ordering::Relaxed);
        count
    }

    /// Release whole free segments round-robin across instances until
    /// the instance-owned footprint is at most `target_bytes` (or no
    /// instance can give anything more). Returns the number of segments
    /// released to the pool free list by this call — best effort: live
    /// allocations pin their segments.
    pub fn shrink_to(&self, target_bytes: u64) -> u64 {
        let mut released = 0u64;
        loop {
            // Instance-owned = responsible minus parked (NOT the table
            // universe: in device-pool mode the universe spans every
            // device, while responsibility is this pool's alone).
            let owned =
                self.resp_len.load(Ordering::Relaxed) - self.pool_free_len.load(Ordering::Relaxed);
            let owned_bytes = owned * self.segment_bytes;
            if owned_bytes <= target_bytes {
                return released;
            }
            let need = (owned_bytes - target_bytes).div_ceil(self.segment_bytes);
            let mut progress = 0u64;
            for i in 0..self.num_instances() {
                if progress >= need {
                    break;
                }
                progress += self.shrink_instance(i, need - progress);
            }
            released += progress;
            if progress == 0 {
                return released;
            }
        }
    }

    /// Adopt up to `max` segments from the pool-level free list into
    /// instance `i` (the inverse of shrink). Returns the number
    /// adopted. The malloc path calls this automatically when a home
    /// instance is exhausted while the pool holds returned headroom.
    pub fn grow(&self, i: usize, max: u64) -> u64 {
        let mut count = 0u64;
        while count < max {
            let Some(seg) = self.pool_free.claim_first_ge(0) else { break };
            self.pool_free_len.fetch_sub(1, Ordering::Relaxed);
            self.seg_owner[seg as usize].store(i as u32, Ordering::Release);
            self.instance(i).adopt_segment(seg);
            count += 1;
        }
        self.adopted.fetch_add(count, Ordering::Relaxed);
        count
    }

    /// The pool share of the invariant check: the routing table, the
    /// pool free list, and the shared table must tell one story —
    /// parked ⇒ unowned and quiescent free, and the responsibility
    /// balance holds: instance-owned plus parked segments equal exactly
    /// what this pool is responsible for ([`GallatinPool::resp_len`]).
    /// Segments that are unowned *and* unparked are foreign (another
    /// device's, in device-pool mode) and legitimately skipped — the
    /// balance check is what keeps a dropped segment loud anyway: losing
    /// one from both the routing table and the free list leaves
    /// `owned + parked` one short of the responsibility count.
    pub(crate) fn ownership_audit(&self, errors: &mut Vec<String>) {
        let n = self.num_instances() as u32;
        let mut owned = 0u64;
        let mut parked_count = 0u64;
        for seg in 0..self.num_segments {
            let o = self.seg_owner[seg as usize].load(Ordering::Acquire);
            let parked = self.pool_free.contains(seg);
            if o == UNOWNED {
                if parked {
                    parked_count += 1;
                    if !self.table.seg(seg).is_quiescent_free() {
                        errors.push(format!(
                            "segment {seg} is on the pool free list but not quiescent-free"
                        ));
                    }
                }
                // Unowned and unparked: foreign to this pool.
            } else {
                owned += 1;
                if o >= n {
                    errors.push(format!("segment {seg} is routed to nonexistent instance {o}"));
                }
                if parked {
                    errors.push(format!(
                        "segment {seg} is owned by instance {o} but also on the pool free list"
                    ));
                }
            }
        }
        let resp = self.resp_len.load(Ordering::Relaxed);
        if owned + parked_count != resp {
            errors.push(format!(
                "responsibility leak: instances own {owned} + {parked_count} parked \
                 != {resp} segments this pool answers for"
            ));
        }
        let len = self.pool_free_len.load(Ordering::Relaxed);
        if len != parked_count {
            errors.push(format!(
                "pool free list length counter says {len}, the free list holds {parked_count}"
            ));
        }
    }

    /// Test-only sabotage: re-home a *formatted* segment from `from` to
    /// `to` without the claim-unreachable or quiesce steps — exactly
    /// the corruption a buggy donation would plant. Returns the segment
    /// moved, or `None` if the donor holds no formatted segment. The
    /// planted state must be caught by `check_invariants` (the donor
    /// still holds the segment in a block tree it no longer owns; the
    /// recipient sees it simultaneously free and formatted).
    #[doc(hidden)]
    pub fn debug_donate_skip_quiesce(&self, from: usize, to: usize) -> Option<u64> {
        let num_classes = self.instance(from).geometry().num_classes;
        for seg in 0..self.num_segments {
            if self.seg_owner[seg as usize].load(Ordering::Acquire) != from as u32 {
                continue;
            }
            if (self.table.seg(seg).ldcv_tree_id() as usize) < num_classes {
                self.seg_owner[seg as usize].store(to as u32, Ordering::Release);
                self.instance(to).adopt_segment(seg);
                return Some(seg);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use crate::config::GallatinConfig;
    use crate::pool::GallatinPool;
    use crate::table::TREE_FREE;
    use gpu_sim::{DeviceAllocator, WarpCtx};
    use std::sync::atomic::Ordering;

    fn pool(n: usize) -> GallatinPool {
        GallatinPool::new(n, GallatinConfig::small_test(1 << 20)) // 16 segments each
    }

    fn warp_on(sm_id: u32, active: u32) -> WarpCtx {
        WarpCtx { warp_id: sm_id as u64, sm_id, base_tid: (sm_id as u64) << 32, active }
    }

    #[test]
    fn donation_rehomes_free_segments_and_routing_follows() {
        let p = pool(2);
        assert_eq!(p.donate(0, 1, 4), Ok(4));
        assert_eq!(p.donated_segments(), 4);
        let s = p.pool_stats();
        assert_eq!(s.instances[0].owned_segments, 12);
        assert_eq!(s.instances[1].owned_segments, 20);
        p.check_invariants().expect("clean after donation");
        // Instance 1 can now hold 20 segment-sized allocations at home.
        let l1 = warp_on(1, 1);
        let seg = p.instance(1).geometry().segment_bytes;
        let held: Vec<_> = (0..20).map(|_| p.malloc(&l1.lane(0), seg)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        assert_eq!(p.spill_count(1), 0, "all 20 served at home after the donation");
        // Frees of pointers in donated segments route to the new owner.
        for q in held {
            p.free(&warp_on(7, 1).lane(0), q);
        }
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after routed frees of donated segments");
    }

    #[test]
    fn donation_bounces_when_the_quiesce_check_fails() {
        let p = pool(2);
        // Plant a torn state: segment 0 claims to be formatted while
        // still sitting in instance 0's segment tree.
        p.instance(0).table().seg(0).tree_id.store(0, Ordering::SeqCst);
        let err = p.donate(0, 1, 16).unwrap_err();
        assert!(err.contains("quiesce"), "unexpected error: {err}");
        // The segment bounced back to the donor: nothing crossed over.
        assert_eq!(p.pool_stats().instances[0].owned_segments, 16);
        assert_eq!(p.donated_segments(), 0);
        // Undoing the corruption lets the full donation through.
        p.instance(0).table().seg(0).tree_id.store(TREE_FREE, Ordering::SeqCst);
        assert_eq!(p.donate(0, 1, 16), Ok(16));
        p.check_invariants().expect("clean after the repaired donation");
    }

    #[test]
    fn donation_skipping_quiesce_is_caught_by_the_invariant_check() {
        let p = pool(2);
        // Live traffic pins a formatted segment on instance 0.
        let l0 = warp_on(0, 1);
        let live = p.malloc(&l0.lane(0), 16);
        assert!(!live.is_null());
        p.check_invariants().expect("healthy before the planted corruption");
        let seg = p.debug_donate_skip_quiesce(0, 1).expect("a formatted segment to steal");
        let err = p.check_invariants().unwrap_err();
        assert!(err.contains(&format!("segment {seg}")), "unexpected report: {err}");
        assert!(
            err.contains("not owned by this instance")
                || err.contains("simultaneously free and formatted"),
            "unexpected report: {err}"
        );
    }

    #[test]
    fn shrink_returns_segments_and_malloc_adopts_them_back() {
        let p = pool(2);
        assert_eq!(p.shrink_instance(1, 10), 10);
        assert_eq!(p.returned_segments(), 10);
        assert_eq!(p.pool_free_segments(), 10);
        p.check_invariants().expect("clean after shrink");
        // Instance 0's home pressure adopts from the pool free list
        // before spilling: 20 claims = 16 original + 4 adopted, 0 spills.
        let l0 = warp_on(0, 1);
        let seg = p.instance(0).geometry().segment_bytes;
        let held: Vec<_> = (0..20).map(|_| p.malloc(&l0.lane(0), seg)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        assert_eq!(p.spill_count(0), 0, "adoption absorbs the pressure, no spills");
        assert_eq!(p.adopted_segments(), 4);
        assert_eq!(p.pool_free_segments(), 6);
        for q in held {
            p.free(&l0.lane(0), q);
        }
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after adopted traffic");
    }

    #[test]
    fn shrink_to_releases_down_to_the_target_and_is_pinned_by_live_data() {
        let p = pool(2);
        let seg_bytes = p.instance(0).geometry().segment_bytes;
        let total = p.heap_bytes();
        assert_eq!(p.shrink_to(total - 6 * seg_bytes), 6);
        assert_eq!(p.pool_free_segments(), 6);
        assert_eq!(p.shrink_to(total - 6 * seg_bytes), 0, "idempotent at the target");
        p.check_invariants().expect("clean after shrink_to");
        // Live allocations pin their segments: shrinking to zero only
        // releases what is actually free.
        let l0 = warp_on(0, 1);
        let held: Vec<_> = (0..10).map(|_| p.malloc(&l0.lane(0), seg_bytes)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        assert_eq!(p.shrink_to(0), 16, "only the free segments could be released");
        assert_eq!(p.pool_free_segments(), 22);
        p.check_invariants().expect("clean with live data after best-effort shrink");
        for q in held {
            p.free(&l0.lane(0), q);
        }
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after frees");
        let s = p.pool_stats();
        assert_eq!(s.returned_segments, 22);
        assert_eq!(s.pool_free_bytes(seg_bytes), 22 * seg_bytes);
    }

    #[test]
    fn donation_conserves_segments_and_reset_restores_the_shards() {
        let p = pool(4);
        assert_eq!(p.donate(0, 3, 2), Ok(2));
        assert_eq!(p.shrink_instance(1, 3), 3);
        assert_eq!(p.grow(2, 1), 1);
        let s = p.pool_stats();
        let owned: u64 = s.instances.iter().map(|i| i.owned_segments).sum();
        assert_eq!(owned + s.pool_free_segments, 64, "segments are conserved");
        p.check_invariants().expect("clean after a donate/shrink/grow mix");
        p.reset();
        let s = p.pool_stats();
        assert!(s.instances.iter().all(|i| i.owned_segments == 16));
        assert_eq!(s.pool_free_segments, 0);
        assert_eq!((s.donated_segments, s.returned_segments, s.adopted_segments), (0, 0, 0));
        p.check_invariants().expect("clean after reset");
    }
}
