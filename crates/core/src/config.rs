//! Configuration and memory geometry.
//!
//! Gallatin partitions its heap three ways (paper §4):
//!
//! * **segments** — large fixed regions (16 MB by default), tracked by the
//!   segment tree;
//! * **blocks** — a segment formatted for one size class splits into
//!   `segment/block_size` blocks, tracked by that class's block tree;
//! * **slices** — each block holds `slices_per_block` equal slices
//!   (4096 by default), handed out by a counter.
//!
//! The published defaults (16 B–4096 B slices, 4096 slices/block, 16 MB
//! segments) imply block sizes 64 KB–16 MB and at most 256 blocks per
//! segment. Everything is configurable so tests can run tiny heaps; the
//! invariants between the knobs are enforced in [`GallatinConfig::geometry`].

/// Tunable parameters of a Gallatin instance.
#[derive(Clone, Copy, Debug)]
pub struct GallatinConfig {
    /// Total managed heap in bytes; must be a multiple of `segment_bytes`.
    pub heap_bytes: u64,
    /// Segment size in bytes (power of two). Paper default: 16 MB.
    pub segment_bytes: u64,
    /// Smallest slice size in bytes (power of two ≥ 8). Paper default: 16.
    pub min_slice: u64,
    /// Largest slice size in bytes (power of two). Paper default: 4096.
    pub max_slice: u64,
    /// Slices per block (power of two). Paper default: 4096.
    pub slices_per_block: u64,
    /// Streaming multiprocessors — sizes the per-SM block buffers.
    pub num_sms: u32,
    /// Minimum block-buffer slots per size class (paper: capped at 4).
    pub min_buffer_slots: u32,
    /// Search structure backing the segment and block indexes: the
    /// paper's vEB tree, or a flat linear-scan bitmap for ablations.
    pub search: crate::index::SearchStructure,
    /// Start segment- and block-tree probes at an SM-hashed position
    /// instead of index 0 (the paper's block-selection randomization,
    /// §4.3), so concurrent SMs fan out across different tree words
    /// instead of CAS-hammering the front. The hash maps SM 0 to start
    /// 0, so single-SM workloads keep the legacy front-first placement.
    /// Wraparound search preserves the "find any free" contract either
    /// way. Default: on. Turn off to ablate (see EXPERIMENTS.md).
    pub randomize_probe_starts: bool,
    /// Use word-parallel (wide) leaf scans in vEB successor searches:
    /// a bounded streaming scan of the leaf bitmap runs before the
    /// summary climb, trading dependent per-level loads for contiguous
    /// prefetchable ones (`veb::wide`). Results and atomic-op counts
    /// are identical either way — this is a pure wall-clock knob,
    /// A/B'd in E21. Ignored when `search` is `FlatScan` (the flat
    /// baseline always scans wide: it has no hierarchy). Default: on.
    pub wide_veb_scans: bool,
}

impl Default for GallatinConfig {
    /// The paper's published configuration at a 1 GB heap (the heap size
    /// is per-experiment; the A40 runs used 2–8 GB).
    fn default() -> Self {
        GallatinConfig {
            heap_bytes: 1 << 30,
            segment_bytes: 16 << 20,
            min_slice: 16,
            max_slice: 4096,
            slices_per_block: 4096,
            num_sms: 128,
            min_buffer_slots: 4,
            search: crate::index::SearchStructure::Veb,
            randomize_probe_starts: true,
            wide_veb_scans: true,
        }
    }
}

impl GallatinConfig {
    /// A dense configuration for small heaps (tens of MB): 1 MB segments
    /// with 256-slice blocks, keeping the full 16 B–4096 B slice range.
    /// The default 16 MB segments dedicate one segment per active slice
    /// class (the wavefront), which dominates heaps of only a few
    /// segments; the paper's §6.13 notes Gallatin "can be easily
    /// specialized" by exactly this kind of reconfiguration.
    pub fn dense(heap_bytes: u64) -> Self {
        GallatinConfig {
            heap_bytes,
            segment_bytes: 1 << 20,
            min_slice: 16,
            max_slice: 4096,
            slices_per_block: 256,
            num_sms: 128,
            min_buffer_slots: 4,
            search: crate::index::SearchStructure::Veb,
            randomize_probe_starts: true,
            wide_veb_scans: true,
        }
    }

    /// A small configuration for unit tests: 64 KB segments, 16–256 B
    /// slices, 64 slices per block (blocks 1–16 KB).
    pub fn small_test(heap_bytes: u64) -> Self {
        GallatinConfig {
            heap_bytes,
            segment_bytes: 64 << 10,
            min_slice: 16,
            max_slice: 256,
            slices_per_block: 64,
            num_sms: 8,
            min_buffer_slots: 2,
            search: crate::index::SearchStructure::Veb,
            randomize_probe_starts: true,
            wide_veb_scans: true,
        }
    }

    /// The search structure the indexes should actually be built with:
    /// `search` with the `wide_veb_scans` knob applied (a plain `Veb`
    /// request is upgraded to `VebWide` when the knob is on; `FlatScan`
    /// and an explicit `VebWide` pass through).
    pub fn index_kind(&self) -> crate::index::SearchStructure {
        use crate::index::SearchStructure;
        match (self.search, self.wide_veb_scans) {
            (SearchStructure::Veb, true) => SearchStructure::VebWide,
            (kind, _) => kind,
        }
    }

    /// Validate and derive the full geometry.
    ///
    /// # Panics
    /// Panics with a descriptive message on any inconsistent combination.
    pub fn geometry(&self) -> Geometry {
        assert!(self.segment_bytes.is_power_of_two(), "segment_bytes must be a power of two");
        assert!(
            self.min_slice.is_power_of_two() && self.min_slice >= 8,
            "min_slice must be a power of two ≥ 8"
        );
        assert!(
            self.max_slice.is_power_of_two() && self.max_slice >= self.min_slice,
            "max_slice must be a power of two ≥ min_slice"
        );
        assert!(self.slices_per_block.is_power_of_two(), "slices_per_block must be a power of two");
        assert!(
            self.slices_per_block <= crate::table::SLICE_COUNT_MASK as u64,
            "slices_per_block ({}) must fit the claim word's count field (≤ {})",
            self.slices_per_block,
            crate::table::SLICE_COUNT_MASK
        );
        assert!(
            self.max_slice * self.slices_per_block <= self.segment_bytes,
            "largest block ({} B) exceeds segment ({} B)",
            self.max_slice * self.slices_per_block,
            self.segment_bytes
        );
        assert!(
            self.heap_bytes >= self.segment_bytes
                && self.heap_bytes.is_multiple_of(self.segment_bytes),
            "heap_bytes must be a positive multiple of segment_bytes"
        );
        assert!(self.num_sms > 0 && self.min_buffer_slots > 0);

        let num_classes =
            (self.max_slice.trailing_zeros() - self.min_slice.trailing_zeros() + 1) as usize;
        Geometry {
            heap_bytes: self.heap_bytes,
            segment_bytes: self.segment_bytes,
            num_segments: self.heap_bytes / self.segment_bytes,
            min_slice: self.min_slice,
            slices_per_block: self.slices_per_block,
            num_classes,
            max_blocks: self.segment_bytes / (self.min_slice * self.slices_per_block),
        }
    }
}

/// Derived memory geometry shared by all of Gallatin's components.
#[derive(Clone, Copy, Debug)]
pub struct Geometry {
    /// Total managed heap in bytes.
    pub heap_bytes: u64,
    /// Segment size in bytes.
    pub segment_bytes: u64,
    /// Number of segments (`heap_bytes / segment_bytes`).
    pub num_segments: u64,
    /// Smallest slice size in bytes.
    pub min_slice: u64,
    /// Slices per block.
    pub slices_per_block: u64,
    /// Number of slice size classes == number of block trees.
    pub num_classes: usize,
    /// Blocks per segment at the smallest class (ring capacity).
    pub max_blocks: u64,
}

impl Geometry {
    /// Slice size of class `c`.
    #[inline]
    pub fn slice_size(&self, c: usize) -> u64 {
        debug_assert!(c < self.num_classes);
        self.min_slice << c
    }

    /// Block size of class `c` (`slice_size * slices_per_block`).
    #[inline]
    pub fn block_size(&self, c: usize) -> u64 {
        self.slice_size(c) * self.slices_per_block
    }

    /// Blocks per segment when formatted for class `c`.
    #[inline]
    pub fn blocks_per_segment(&self, c: usize) -> u64 {
        self.segment_bytes / self.block_size(c)
    }

    /// Largest slice size.
    #[inline]
    pub fn max_slice(&self) -> u64 {
        self.slice_size(self.num_classes - 1)
    }

    /// Slice class serving a request of `size` bytes, if the request fits
    /// the slice pipeline (`size ≤ max_slice`). Sizes round up to the next
    /// power of two, clamped to `min_slice`.
    #[inline]
    pub fn slice_class(&self, size: u64) -> Option<usize> {
        if size == 0 || size > self.max_slice() {
            return None;
        }
        let rounded = size.next_power_of_two().max(self.min_slice);
        Some((rounded.trailing_zeros() - self.min_slice.trailing_zeros()) as usize)
    }

    /// Block class whose block size is the smallest that can hold a
    /// mid-size request (`max_slice < size ≤ largest block`). Requests
    /// above the largest block go to the segment pipeline, even when they
    /// are smaller than a segment (possible in configurations where the
    /// largest block is smaller than a segment).
    #[inline]
    pub fn block_class(&self, size: u64) -> Option<usize> {
        if size == 0 || size > self.block_size(self.num_classes - 1) {
            return None;
        }
        let rounded = size.next_power_of_two().max(self.block_size(0));
        let c = (rounded.trailing_zeros() - self.block_size(0).trailing_zeros()) as usize;
        debug_assert!(c < self.num_classes);
        Some(c)
    }

    /// Number of contiguous segments for a large request
    /// (`size > segment_bytes`).
    #[inline]
    pub fn segments_for(&self, size: u64) -> u64 {
        size.div_ceil(self.segment_bytes)
    }

    /// Segment containing byte offset `off`.
    #[inline]
    pub fn segment_of(&self, off: u64) -> u64 {
        off / self.segment_bytes
    }

    /// Block index within its segment of byte offset `off`, for class `c`.
    #[inline]
    pub fn block_of(&self, off: u64, c: usize) -> u64 {
        (off % self.segment_bytes) / self.block_size(c)
    }

    /// Slice index within its block of byte offset `off`, for class `c`.
    #[inline]
    pub fn slice_of(&self, off: u64, c: usize) -> u64 {
        (off % self.block_size(c)) / self.slice_size(c)
    }

    /// Byte offset of `(segment, block, slice)` for class `c`.
    #[inline]
    pub fn offset_of(&self, seg: u64, block: u64, slice: u64, c: usize) -> u64 {
        seg * self.segment_bytes + block * self.block_size(c) + slice * self.slice_size(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_geometry_matches_paper() {
        let g = GallatinConfig::default().geometry();
        assert_eq!(g.num_classes, 9); // 16, 32, …, 4096
        assert_eq!(g.slice_size(0), 16);
        assert_eq!(g.slice_size(8), 4096);
        assert_eq!(g.block_size(0), 64 << 10); // 64 KB
        assert_eq!(g.block_size(8), 16 << 20); // 16 MB
        assert_eq!(g.max_blocks, 256);
        assert_eq!(g.blocks_per_segment(0), 256);
        assert_eq!(g.blocks_per_segment(8), 1);
        assert_eq!(g.num_segments, 64); // 1 GB / 16 MB
    }

    #[test]
    fn slice_class_rounds_up() {
        let g = GallatinConfig::default().geometry();
        assert_eq!(g.slice_class(1), Some(0));
        assert_eq!(g.slice_class(16), Some(0));
        assert_eq!(g.slice_class(17), Some(1));
        assert_eq!(g.slice_class(32), Some(1));
        assert_eq!(g.slice_class(4096), Some(8));
        assert_eq!(g.slice_class(4097), None);
        assert_eq!(g.slice_class(0), None);
    }

    #[test]
    fn block_class_covers_mid_sizes() {
        let g = GallatinConfig::default().geometry();
        assert_eq!(g.block_class(8192), Some(0)); // rounds to 64 KB block
        assert_eq!(g.block_class(64 << 10), Some(0));
        assert_eq!(g.block_class((64 << 10) + 1), Some(1));
        assert_eq!(g.block_class(16 << 20), Some(8));
        assert_eq!(g.block_class((16 << 20) + 1), None);
    }

    #[test]
    fn segments_for_large_requests() {
        let g = GallatinConfig::default().geometry();
        assert_eq!(g.segments_for((16 << 20) + 1), 2);
        assert_eq!(g.segments_for(32 << 20), 2);
        assert_eq!(g.segments_for(100 << 20), 7);
    }

    #[test]
    fn offset_mapping_roundtrips() {
        let g = GallatinConfig::small_test(1 << 20).geometry();
        for c in 0..g.num_classes {
            for seg in 0..g.num_segments.min(4) {
                for block in 0..g.blocks_per_segment(c).min(4) {
                    for slice in [0, 1, g.slices_per_block - 1] {
                        let off = g.offset_of(seg, block, slice, c);
                        assert_eq!(g.segment_of(off), seg);
                        assert_eq!(g.block_of(off, c), block);
                        assert_eq!(g.slice_of(off, c), slice);
                    }
                }
            }
        }
    }

    #[test]
    fn small_test_config_is_consistent() {
        let g = GallatinConfig::small_test(1 << 20).geometry();
        assert_eq!(g.num_classes, 5); // 16..256
        assert_eq!(g.block_size(0), 1024);
        assert_eq!(g.block_size(4), 16 << 10);
        assert_eq!(g.max_blocks, 64);
        assert_eq!(g.num_segments, 16);
    }

    #[test]
    #[should_panic(expected = "largest block")]
    fn oversized_block_rejected() {
        let cfg = GallatinConfig { max_slice: 8192, ..GallatinConfig::default() };
        cfg.geometry();
    }

    #[test]
    #[should_panic(expected = "multiple of segment_bytes")]
    fn misaligned_heap_rejected() {
        let cfg = GallatinConfig { heap_bytes: (16 << 20) + 1, ..GallatinConfig::default() };
        cfg.geometry();
    }
}
