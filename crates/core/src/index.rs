//! The membership index behind the segment and block trees.
//!
//! Gallatin's contribution is using a concurrent vEB tree here; the
//! ablation benchmarks (DESIGN.md E14) need the same allocator running on
//! a flat linear-scan bitset to quantify what the tree buys. This enum
//! gives both structures one face; [`crate::GallatinConfig::search`]
//! selects the implementation.

use veb::{FlatBitset, VebTree};

/// Which search structure backs the segment/block indexes.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub enum SearchStructure {
    /// The paper's concurrent van Emde Boas tree.
    #[default]
    Veb,
    /// The vEB tree with word-parallel leaf scans in front of the
    /// summary climb (`veb::wide`; selected by
    /// `GallatinConfig::wide_veb_scans`, E21 A/B). Identical results,
    /// different load pattern.
    VebWide,
    /// Single-level bitmap with linear word scans (ablation baseline).
    FlatScan,
}

/// A concurrent set over segment ids, vEB-backed or flat.
pub enum SegmentIndex {
    /// Backed by the concurrent vEB tree (narrow or wide search path).
    Veb(VebTree),
    /// Backed by the flat linear-scan bitset.
    Flat(FlatBitset),
}

impl SegmentIndex {
    /// An empty index over `{0, …, universe−1}`.
    pub fn new(kind: SearchStructure, universe: u64) -> Self {
        match kind {
            SearchStructure::Veb => SegmentIndex::Veb(VebTree::new(universe)),
            SearchStructure::VebWide => SegmentIndex::Veb(VebTree::new_wide(universe)),
            SearchStructure::FlatScan => SegmentIndex::Flat(FlatBitset::new(universe)),
        }
    }

    /// A full index (every id present).
    pub fn new_full(kind: SearchStructure, universe: u64) -> Self {
        let s = Self::new(kind, universe);
        s.fill();
        s
    }

    /// Add `x`; returns whether it was absent.
    #[inline]
    pub fn insert(&self, x: u64) -> bool {
        match self {
            SegmentIndex::Veb(t) => t.insert(x),
            SegmentIndex::Flat(s) => s.insert(x),
        }
    }

    /// Atomically remove `x` if present (exclusive).
    #[inline]
    pub fn claim_exact(&self, x: u64) -> bool {
        match self {
            SegmentIndex::Veb(t) => t.claim_exact(x),
            SegmentIndex::Flat(s) => s.claim_exact(x),
        }
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, x: u64) -> bool {
        match self {
            SegmentIndex::Veb(t) => t.contains(x),
            SegmentIndex::Flat(s) => s.contains(x),
        }
    }

    /// Minimum member ≥ `x`.
    #[inline]
    pub fn successor(&self, x: u64) -> Option<u64> {
        match self {
            SegmentIndex::Veb(t) => t.successor(x),
            SegmentIndex::Flat(s) => s.successor(x),
        }
    }

    /// Find-and-claim the first member ≥ `x`.
    #[inline]
    pub fn claim_first_ge(&self, x: u64) -> Option<u64> {
        match self {
            SegmentIndex::Veb(t) => t.claim_first_ge(x),
            SegmentIndex::Flat(s) => s.claim_first_ge(x),
        }
    }

    /// Minimum member ≥ `start`, wrapping to the front when nothing lies
    /// at or above the hint (probe-start randomization, paper §4.3).
    #[inline]
    pub fn find_first_from(&self, start: u64) -> Option<u64> {
        match self {
            SegmentIndex::Veb(t) => t.find_first_from(start),
            SegmentIndex::Flat(s) => s.find_first_from(start),
        }
    }

    /// Find-and-claim scanning from `start` with wraparound.
    #[inline]
    pub fn claim_first_from(&self, start: u64) -> Option<u64> {
        match self {
            SegmentIndex::Veb(t) => t.claim_first_from(start),
            SegmentIndex::Flat(s) => s.claim_first_from(start),
        }
    }

    /// Claim `n` contiguous members scanning from the back.
    #[inline]
    pub fn claim_contiguous_from_back(&self, n: u64) -> Option<u64> {
        match self {
            SegmentIndex::Veb(t) => t.claim_contiguous_from_back(n),
            SegmentIndex::Flat(s) => s.claim_contiguous_from_back(n),
        }
    }

    /// Insert the contiguous members `[x, x+n)`.
    #[inline]
    pub fn insert_range(&self, x: u64, n: u64) {
        match self {
            SegmentIndex::Veb(t) => t.insert_range(x, n),
            SegmentIndex::Flat(s) => s.insert_range(x, n),
        }
    }

    /// Exact membership count (leaf scan).
    pub fn count(&self) -> u64 {
        match self {
            SegmentIndex::Veb(t) => t.count(),
            SegmentIndex::Flat(s) => s.count(),
        }
    }

    /// Set every member. Reset-time only.
    pub fn fill(&self) {
        match self {
            SegmentIndex::Veb(t) => t.fill(),
            SegmentIndex::Flat(s) => s.fill(),
        }
    }

    /// Remove every member. Reset-time only.
    pub fn clear(&self) {
        match self {
            SegmentIndex::Veb(t) => t.clear(),
            SegmentIndex::Flat(s) => s.clear(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn both_backends_expose_identical_behaviour() {
        for kind in [SearchStructure::Veb, SearchStructure::VebWide, SearchStructure::FlatScan] {
            let s = SegmentIndex::new_full(kind, 200);
            assert_eq!(s.count(), 200);
            assert_eq!(s.claim_first_ge(0), Some(0));
            assert_eq!(s.successor(0), Some(1));
            assert_eq!(s.find_first_from(199), Some(199));
            assert_eq!(s.claim_first_from(199), Some(199));
            assert_eq!(s.find_first_from(199), Some(1)); // wraps
            assert_eq!(s.claim_first_from(199), Some(1)); // wraps
            s.insert(199);
            s.insert(1);
            assert_eq!(s.claim_contiguous_from_back(3), Some(197));
            assert!(!s.contains(197));
            assert!(s.contains(196));
            assert!(!s.claim_exact(197));
            s.insert_range(197, 3);
            assert!(s.claim_exact(197));
            s.clear();
            assert_eq!(s.count(), 0);
            assert!(s.insert(5));
            assert_eq!(s.claim_first_ge(0), Some(5));
        }
    }

    #[test]
    fn default_is_veb() {
        assert_eq!(SearchStructure::default(), SearchStructure::Veb);
    }
}
