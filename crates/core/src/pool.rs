//! A sharded pool of Gallatin instances over one shared arena.
//!
//! The paper's allocator is a single shared heap; under extreme SM
//! counts even its coalesced atomics contend on the shared trees. A
//! [`GallatinPool`] shards the heap into `n` full [`Gallatin`]
//! instances. Every instance sees the *whole* arena and the *shared*
//! [`MemoryTable`] (one metadata row per segment, pool-wide), but its
//! segment tree starts with only its own shard of segments — so
//! steady-state traffic from different SM groups touches different
//! trees, rings, and claim words, while a segment can be *re-homed*
//! without copying anything: ownership is just tree membership plus one
//! row in the pool's routing table (see `crate::elastic`).
//!
//! * **Placement** is SM-affine: a warp on SM `s` allocates from its
//!   *home* instance `s % n`.
//! * **Overflow spills**: when the home instance is exhausted, the
//!   request walks the siblings (`home+1, home+2, …` mod `n`) and the
//!   spill is charged to the home instance — *only* when a sibling
//!   actually serves it; a walk that every sibling denies is not a
//!   spill. If the pool-level free list has headroom, the home adopts a
//!   returned segment and retries before spilling at all.
//! * **Frees route by segment ownership**: pointers are global offsets
//!   into the one arena, so `ptr / segment_bytes` names the segment and
//!   [`GallatinPool::seg_owner`] names the owning instance — any lane
//!   on any SM can free any pool pointer, and the route stays correct
//!   across donations because donation updates the same table.
//!
//! Requests larger than one instance's nominal shard (`stride`) are
//! denied up front — before touching any instance's trees — counting
//! each denial in [`GallatinPool::oversize_denials`].
//!
//! Trace events are stamped with the owning instance
//! ([`trace::with_instance`]), so one sink captures a pool run and the
//! lifecycle [`trace::Ledger`] pairs mallocs with frees per
//! `(instance, ptr)` — cross-instance routing bugs surface as
//! unmatched frees instead of silent corruption. Donations only move
//! *quiescent free* segments, so no live pointer ever changes owner
//! mid-lifecycle and the pairing survives elasticity.

use crate::config::GallatinConfig;
use crate::gallatin::{ledger_errors, Gallatin};
use crate::index::SegmentIndex;
use crate::table::MemoryTable;
use gpu_sim::{
    trace, AllocStats, DeviceAllocator, DeviceMemory, DevicePtr, LaneCtx, Metrics, WarpCtx,
    WARP_SIZE,
};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// `seg_owner` value for a segment parked on the pool-level free list
/// (owned by no instance).
pub(crate) const UNOWNED: u32 = u32::MAX;

/// `n` Gallatin instances over one arena and one shared memory table,
/// with SM-affine placement, ownership-routed frees, and elastic
/// segment migration (`crate::elastic`).
pub struct GallatinPool {
    /// The parent arena (`n * stride` bytes); [`DeviceAllocator::memory`]
    /// returns this so pool pointers index it directly.
    mem: DeviceMemory,
    instances: Vec<Gallatin>,
    /// The shared per-segment metadata table (every instance holds the
    /// same `Arc`); the elastic quiesce checks read it directly.
    pub(crate) table: Arc<MemoryTable>,
    /// Per-instance nominal heap in bytes (the initial shard size and
    /// the pool's max servable request).
    stride: u64,
    /// Bytes per segment (global-offset → segment routing).
    pub(crate) segment_bytes: u64,
    /// Total segments in the *universe* this pool's table spans. Equal
    /// to the pool's own segments for a standalone pool; larger when the
    /// pool is one device of a `crate::device_pool::DevicePool` (whose
    /// table covers every device).
    pub(crate) num_segments: u64,
    /// First segment of this pool's initial span within the universe
    /// (0 for a standalone pool).
    first_seg: u64,
    /// Segments per instance at construction (reset restores this).
    segs_per_instance: u64,
    /// Segments this pool is *responsible* for: owned by an instance or
    /// parked on its free list. Initially `segs_per_instance × n`; moves
    /// only when a segment is re-homed across pools (device-level
    /// donation). The ownership audit balances against this so a
    /// responsibility leak (a segment no pool accounts for) stays loud
    /// even though foreign segments are legitimately unowned.
    pub(crate) resp_len: AtomicU64,
    /// The routing table: owning instance per segment, or [`UNOWNED`]
    /// for segments parked on the pool free list. Donation and shrink
    /// update this *before* the new owner can touch the segment.
    pub(crate) seg_owner: Vec<AtomicU32>,
    /// Pool-level free list: whole segments returned by `shrink`,
    /// claimable by any instance (`grow`, or the malloc path's
    /// adopt-before-spill).
    pub(crate) pool_free: SegmentIndex,
    /// Approximate occupancy of `pool_free` (cheap gate for the malloc
    /// hot path; exact only at quiescent points).
    pub(crate) pool_free_len: AtomicU64,
    /// Allocations instance `i` could not serve locally and a sibling
    /// absorbed (charged to the *home*, only on successful placement).
    spills: Vec<AtomicU64>,
    /// Requests larger than `stride`, denied before touching any
    /// instance (no sibling could have served them either).
    oversize_denials: AtomicU64,
    /// Segments re-homed instance-to-instance (elastic donation).
    pub(crate) donations: AtomicU64,
    /// Segments returned to the pool free list by shrink.
    pub(crate) returned: AtomicU64,
    /// Segments adopted out of the pool free list by grow.
    pub(crate) adopted: AtomicU64,
}

/// Point-in-time occupancy snapshot of one pool instance, as reported
/// by [`GallatinPool::pool_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct InstanceStats {
    /// Bytes of this instance's nominal partition (the pool stride).
    pub heap_bytes: u64,
    /// Bytes reserved by live allocations (size-class rounded).
    pub reserved_bytes: u64,
    /// Segments still unclaimed in the instance's segment tree.
    pub free_segments: u64,
    /// Segments currently homed on this instance (initial shard, minus
    /// donations/returns, plus adoptions).
    pub owned_segments: u64,
    /// Allocations homed here that a sibling had to absorb.
    pub spills: u64,
}

/// Point-in-time snapshot of the whole pool's occupancy and pressure —
/// the signal a host-side admission controller reads to decide whether
/// to keep admitting traffic: per-instance headroom (a hot instance
/// near capacity predicts spills), the spill and oversize-denial
/// counters (already-visible pressure), the elasticity counters
/// (donated / returned / adopted segments and the pool-level free
/// list), and the aggregate reservation.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct PoolStats {
    /// Total bytes across all partitions.
    pub heap_bytes: u64,
    /// Total bytes reserved across all instances.
    pub reserved_bytes: u64,
    /// Total spills across all home instances.
    pub spills: u64,
    /// Requests denied up front for exceeding the stride.
    pub oversize_denials: u64,
    /// Segments re-homed instance-to-instance (elastic donation).
    pub donated_segments: u64,
    /// Segments returned to the pool-level free list (shrink).
    pub returned_segments: u64,
    /// Segments adopted out of the pool-level free list (grow /
    /// adopt-before-spill).
    pub adopted_segments: u64,
    /// Segments currently parked on the pool-level free list.
    pub pool_free_segments: u64,
    /// One entry per instance, in instance order.
    pub instances: Vec<InstanceStats>,
}

impl PoolStats {
    /// Unreserved bytes across the pool (an upper bound on what further
    /// admissions could possibly reserve; per-instance headroom is the
    /// binding constraint for sizes near the stride).
    pub fn headroom_bytes(&self) -> u64 {
        self.heap_bytes - self.reserved_bytes.min(self.heap_bytes)
    }

    /// Bytes parked on the pool-level free list — memory the pool has
    /// withdrawn from every instance (e.g. [`GallatinPool::shrink_to`])
    /// and could hand back to the host or to a future hot instance.
    pub fn pool_free_bytes(&self, segment_bytes: u64) -> u64 {
        self.pool_free_segments * segment_bytes
    }
}

impl GallatinPool {
    /// Build `n` instances, each configured by `cfg` (so `cfg.heap_bytes`
    /// is the *per-instance* shard; the pool manages `n` times that).
    pub fn new(n: usize, cfg: GallatinConfig) -> Self {
        assert!(n > 0, "a pool needs at least one instance");
        let stride = cfg.geometry().heap_bytes;
        let total = stride.checked_mul(n as u64).expect("pool size overflow");
        // One full-universe geometry: every instance sees every segment,
        // ownership is expressed through tree membership + `seg_owner`.
        let full = GallatinConfig { heap_bytes: total, ..cfg };
        let geo = full.geometry();
        let mem = DeviceMemory::new(total as usize);
        let table = Arc::new(MemoryTable::new(geo));
        Self::with_shared_parts(n, full, mem, table, 0, geo.num_segments)
    }

    /// Build `n` instances over an *existing* arena view and table,
    /// owning only segments `[first_seg, first_seg+num_segs)` of the
    /// table's universe — one device's pool within a
    /// `crate::device_pool::DevicePool`. `full` describes the whole
    /// universe (`full.heap_bytes` spans every device); pointers stay
    /// global offsets into `mem`. A standalone pool is the degenerate
    /// case: `first_seg == 0`, `num_segs` = the whole universe.
    pub(crate) fn with_shared_parts(
        n: usize,
        full: GallatinConfig,
        mem: DeviceMemory,
        table: Arc<MemoryTable>,
        first_seg: u64,
        num_segs: u64,
    ) -> Self {
        assert!(n > 0, "a pool needs at least one instance");
        let geo = full.geometry();
        assert!(first_seg + num_segs <= geo.num_segments, "pool span exceeds the universe");
        assert!(
            num_segs.is_multiple_of(n as u64) && num_segs > 0,
            "{num_segs} segments do not shard evenly over {n} instances"
        );
        let per = num_segs / n as u64;
        let stride = per * geo.segment_bytes;
        let instances = (0..n as u64)
            .map(|i| {
                Gallatin::with_shared_table(
                    full,
                    mem.clone_view(),
                    Arc::clone(&table),
                    first_seg + i * per,
                    per,
                )
            })
            .collect();
        let in_span = |s: u64| s >= first_seg && s < first_seg + num_segs;
        GallatinPool {
            mem,
            instances,
            table,
            stride,
            segment_bytes: geo.segment_bytes,
            num_segments: geo.num_segments,
            first_seg,
            segs_per_instance: per,
            resp_len: AtomicU64::new(num_segs),
            seg_owner: (0..geo.num_segments)
                .map(|s| {
                    AtomicU32::new(if in_span(s) {
                        ((s - first_seg) / per) as u32
                    } else {
                        UNOWNED
                    })
                })
                .collect(),
            pool_free: SegmentIndex::new(full.index_kind(), geo.num_segments),
            pool_free_len: AtomicU64::new(0),
            spills: (0..n).map(|_| AtomicU64::new(0)).collect(),
            oversize_denials: AtomicU64::new(0),
            donations: AtomicU64::new(0),
            returned: AtomicU64::new(0),
            adopted: AtomicU64::new(0),
        }
    }

    /// Number of instances in the pool.
    pub fn num_instances(&self) -> usize {
        self.instances.len()
    }

    /// The per-instance nominal heap size in bytes (the initial shard
    /// and the largest servable request).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Instance `i`, for per-instance metrics and diagnostics.
    pub fn instance(&self, i: usize) -> &Gallatin {
        &self.instances[i]
    }

    /// Allocations whose home was instance `i` but that a sibling served.
    pub fn spill_count(&self, i: usize) -> u64 {
        self.spills[i].load(Ordering::Relaxed)
    }

    /// Total spills across all home instances.
    pub fn total_spills(&self) -> u64 {
        self.spills.iter().map(|s| s.load(Ordering::Relaxed)).sum()
    }

    /// Requests denied up front because they exceeded the stride.
    pub fn oversize_denials(&self) -> u64 {
        self.oversize_denials.load(Ordering::Relaxed)
    }

    /// Segments re-homed instance-to-instance so far (elastic donation).
    pub fn donated_segments(&self) -> u64 {
        self.donations.load(Ordering::Relaxed)
    }

    /// Segments returned to the pool-level free list so far.
    pub fn returned_segments(&self) -> u64 {
        self.returned.load(Ordering::Relaxed)
    }

    /// Segments adopted out of the pool-level free list so far.
    pub fn adopted_segments(&self) -> u64 {
        self.adopted.load(Ordering::Relaxed)
    }

    /// Segments currently parked on the pool-level free list.
    pub fn pool_free_segments(&self) -> u64 {
        self.pool_free.count()
    }

    /// The instance that currently owns `seg`, or `None` if the segment
    /// is parked on the pool free list.
    pub fn owner_of_segment(&self, seg: u64) -> Option<usize> {
        match self.seg_owner[seg as usize].load(Ordering::Acquire) {
            UNOWNED => None,
            o => Some(o as usize),
        }
    }

    /// Snapshot the pool's occupancy and pressure counters (see
    /// [`PoolStats`]). Relaxed reads: the snapshot is advisory, exact
    /// only when the pool is quiescent.
    pub fn pool_stats(&self) -> PoolStats {
        let mut owned = vec![0u64; self.instances.len()];
        for o in &self.seg_owner {
            let i = o.load(Ordering::Relaxed);
            if i != UNOWNED {
                owned[i as usize] += 1;
            }
        }
        let instances: Vec<InstanceStats> = self
            .instances
            .iter()
            .enumerate()
            .map(|(i, g)| InstanceStats {
                heap_bytes: self.stride,
                reserved_bytes: g.reserved_bytes(),
                free_segments: g.free_segments(),
                owned_segments: owned[i],
                spills: self.spill_count(i),
            })
            .collect();
        PoolStats {
            heap_bytes: self.heap_bytes(),
            reserved_bytes: instances.iter().map(|s| s.reserved_bytes).sum(),
            spills: self.total_spills(),
            oversize_denials: self.oversize_denials(),
            donated_segments: self.donated_segments(),
            returned_segments: self.returned_segments(),
            adopted_segments: self.adopted_segments(),
            pool_free_segments: self.pool_free_segments(),
            instances,
        }
    }

    /// The home instance for a warp running on `sm_id`.
    #[inline]
    pub(crate) fn home(&self, sm_id: u32) -> usize {
        sm_id as usize % self.instances.len()
    }

    /// Owning instance of a pool pointer (global offset), via the
    /// segment routing table.
    #[inline]
    pub(crate) fn owner_of(&self, ptr: DevicePtr) -> usize {
        let seg = ptr.0 / self.segment_bytes;
        assert!(seg < self.num_segments, "free of foreign pointer {}", ptr.0);
        let o = self.seg_owner[seg as usize].load(Ordering::Acquire);
        assert!(o != UNOWNED, "free of foreign pointer {} (segment {seg} is unowned)", ptr.0);
        o as usize
    }

    /// Release every instance's block-buffer wavefront (see
    /// [`Gallatin::trim`]); returns the total blocks reclaimed.
    pub fn trim(&self) -> u64 {
        self.instances.iter().map(|g| g.trim()).sum()
    }

    /// The pool-local share of a reset: every instance's local reset,
    /// the routing table and free list back to the initial span, and the
    /// counters cleared. Does NOT touch the memory table — shared in
    /// device-pool mode, where the owner resets it exactly once.
    pub(crate) fn reset_local_pool(&self) {
        for inst in &self.instances {
            inst.reset_local();
        }
        let span =
            self.first_seg..self.first_seg + self.segs_per_instance * self.instances.len() as u64;
        for (s, o) in self.seg_owner.iter().enumerate() {
            let s = s as u64;
            let owner = if span.contains(&s) {
                ((s - self.first_seg) / self.segs_per_instance) as u32
            } else {
                UNOWNED
            };
            o.store(owner, Ordering::Relaxed);
        }
        self.resp_len.store(span.end - span.start, Ordering::Relaxed);
        self.pool_free.clear();
        self.pool_free_len.store(0, Ordering::Relaxed);
        for s in &self.spills {
            s.store(0, Ordering::Relaxed);
        }
        self.oversize_denials.store(0, Ordering::Relaxed);
        self.donations.store(0, Ordering::Relaxed);
        self.returned.store(0, Ordering::Relaxed);
        self.adopted.store(0, Ordering::Relaxed);
    }

    /// Structural and ownership errors of this pool alone — everything
    /// [`DeviceAllocator::check_invariants`] checks except the trace
    /// ledger, which a `DevicePool` runs exactly once pool-of-pools-wide.
    pub(crate) fn local_errors(&self) -> Vec<String> {
        let mut errors: Vec<String> = Vec::new();
        for (i, inst) in self.instances.iter().enumerate() {
            let mine = |s: u64| self.seg_owner[s as usize].load(Ordering::Acquire) == i as u32;
            for e in inst.structural_errors_where(&mine) {
                errors.push(format!("instance {i}: {e}"));
            }
        }
        self.ownership_audit(&mut errors);
        errors
    }
}

impl DeviceAllocator for GallatinPool {
    fn name(&self) -> &str {
        "GallatinPool"
    }

    fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr {
        // Nothing larger than the stride fits in *any* instance: deny
        // before touching a tree — the home used to run a full (and
        // guaranteed-futile) malloc for these, paying CAS traffic for a
        // request the pool could never serve.
        if size > self.stride {
            self.oversize_denials.fetch_add(1, Ordering::Relaxed);
            return DevicePtr::NULL;
        }
        let n = self.instances.len();
        let home = self.home(ctx.sm_id());
        for k in 0..n {
            let i = (home + k) % n;
            let mut p = trace::with_instance(i as u32, || self.instances[i].malloc(ctx, size));
            if p.is_null() && k == 0 && self.pool_free_len.load(Ordering::Relaxed) > 0 {
                // Home exhausted but the pool holds returned headroom:
                // adopt before spilling, so elasticity absorbs pressure
                // the fixed shards used to push onto siblings.
                let need = size.div_ceil(self.segment_bytes).max(1);
                if self.grow(i, need) > 0 {
                    p = trace::with_instance(i as u32, || self.instances[i].malloc(ctx, size));
                }
            }
            if !p.is_null() {
                if k > 0 {
                    self.spills[home].fetch_add(1, Ordering::Relaxed);
                }
                return p;
            }
        }
        DevicePtr::NULL
    }

    fn free(&self, ctx: &LaneCtx, ptr: DevicePtr) {
        let i = self.owner_of(ptr);
        trace::with_instance(i as u32, || self.instances[i].free(ctx, ptr));
    }

    /// Warp-collective allocation: the whole warp goes to its home
    /// instance first (keeping the coalesced group intact — one batched
    /// claim per class), then only the unserved lanes walk the siblings.
    fn warp_malloc(&self, warp: &WarpCtx, sizes: &[Option<u64>], out: &mut [DevicePtr]) {
        debug_assert_eq!(sizes.len(), warp.active as usize);
        debug_assert_eq!(out.len(), warp.active as usize);
        let n = self.instances.len();
        let home = self.home(warp.sm_id);
        // Oversize lanes are denied before the home call (their request
        // never reaches any instance — see `malloc`); the rest of the
        // warp proceeds as one coalesced group.
        let active = warp.active as usize;
        let mut eligible = [None::<u64>; WARP_SIZE];
        let mut oversize = 0u64;
        for lane in warp.lanes() {
            match sizes[lane] {
                Some(sz) if sz > self.stride => oversize += 1,
                sz => eligible[lane] = sz,
            }
        }
        if oversize > 0 {
            self.oversize_denials.fetch_add(oversize, Ordering::Relaxed);
            if eligible[..active].iter().all(Option::is_none) {
                // The whole warp was oversize: nothing to launch.
                out.iter_mut().for_each(|p| *p = DevicePtr::NULL);
                return;
            }
        }
        trace::with_instance(home as u32, || {
            self.instances[home].warp_malloc(warp, &eligible[..active], out)
        });
        if n == 1 {
            return;
        }
        // Spill pass: lanes the home exhausted retry on each sibling as a
        // (smaller) coalesced group.
        let mut rest = [None::<u64>; WARP_SIZE];
        let mut unserved = 0u64;
        for lane in warp.lanes() {
            if out[lane].is_null() {
                if let Some(sz) = eligible[lane] {
                    rest[lane] = Some(sz);
                    unserved += 1;
                }
            }
        }
        if unserved == 0 {
            return;
        }
        let mut sub = [DevicePtr::NULL; WARP_SIZE];
        for k in 1..n {
            let i = (home + k) % n;
            trace::with_instance(i as u32, || {
                self.instances[i].warp_malloc(warp, &rest[..active], &mut sub[..active])
            });
            let mut served = 0u64;
            for lane in warp.lanes() {
                if !sub[lane].is_null() {
                    out[lane] = sub[lane];
                    sub[lane] = DevicePtr::NULL;
                    rest[lane] = None;
                    served += 1;
                }
            }
            if served > 0 {
                // Charged only here — on actual sibling placement; a walk
                // every sibling denies never touches the counter.
                self.spills[home].fetch_add(served, Ordering::Relaxed);
                unserved -= served;
            }
            if unserved == 0 {
                break;
            }
        }
    }

    /// Warp-collective free with per-instance regrouping: the warp's
    /// pointers are split by owning instance (segment routing table) and
    /// each instance receives one lane-aligned collective free, so the
    /// per-block `fetch_add` coalescing inside each instance survives the
    /// sharding.
    fn warp_free(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) {
        debug_assert_eq!(ptrs.len(), warp.active as usize);
        let active = warp.active as usize;
        for (i, inst) in self.instances.iter().enumerate() {
            let mut local = [DevicePtr::NULL; WARP_SIZE];
            let mut any = false;
            for lane in warp.lanes() {
                let p = ptrs[lane];
                if p.is_null() {
                    continue;
                }
                if self.owner_of(p) == i {
                    local[lane] = p;
                    any = true;
                }
            }
            if any {
                trace::with_instance(i as u32, || inst.warp_free(warp, &local[..active]));
            }
        }
    }

    fn reset(&self) {
        self.reset_local_pool();
        // The table is shared across instances: reset it once, not per
        // instance. (A DevicePool shares it across *pools* too and calls
        // `reset_local_pool` per device plus one table reset of its own.)
        self.table.reset();
    }

    fn heap_bytes(&self) -> u64 {
        self.stride * self.instances.len() as u64
    }

    fn supports_size(&self, size: u64) -> bool {
        // Sharding trades the single heap's "any size" property for
        // isolation: nothing larger than one instance's shard fits.
        size <= self.stride
    }

    fn max_native_size(&self) -> u64 {
        self.stride
    }

    fn metrics(&self) -> Option<&Metrics> {
        // No pooled counter: per-instance metrics are the point (the E18
        // benchmark reads `instance(i).metrics()` individually).
        None
    }

    /// Verify every instance's structural invariants over exactly the
    /// segments it currently owns (each error prefixed with the owning
    /// instance), the pool-level ownership audit (routing table vs free
    /// list vs quiescence), plus one pool-wide lifecycle-ledger pass —
    /// the ledger pairs per `(instance, ptr)`, so a free routed to the
    /// wrong instance shows up as an unmatched free *and* a leak.
    fn check_invariants(&self) -> Result<(), String> {
        let mut errors = self.local_errors();
        ledger_errors(&mut errors);
        if errors.is_empty() {
            Ok(())
        } else {
            if let Some(path) = trace::auto_dump("pool_invariant_failure") {
                errors.push(format!("trace auto-dumped to {}", path.display()));
            }
            Err(errors.join("\n"))
        }
    }

    fn stats(&self) -> AllocStats {
        AllocStats {
            heap_bytes: self.heap_bytes(),
            reserved_bytes: self.instances.iter().map(|g| g.reserved_bytes()).sum(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(n: usize) -> GallatinPool {
        GallatinPool::new(n, GallatinConfig::small_test(1 << 20)) // 16 segments each
    }

    fn warp_on(sm_id: u32, active: u32) -> WarpCtx {
        WarpCtx { warp_id: sm_id as u64, sm_id, base_tid: (sm_id as u64) << 32, active }
    }

    #[test]
    fn sm_affinity_places_on_the_home_instance() {
        let p = pool(2);
        let a = p.malloc(&warp_on(0, 1).lane(0), 16);
        let b = p.malloc(&warp_on(1, 1).lane(0), 16);
        assert!(!a.is_null() && !b.is_null());
        assert!(a.0 < p.stride(), "SM 0 allocates from instance 0");
        assert!(b.0 >= p.stride(), "SM 1 allocates from instance 1");
        p.free(&warp_on(5, 1).lane(0), a); // any lane may free
        p.free(&warp_on(0, 1).lane(0), b);
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after cross-instance frees");
    }

    #[test]
    fn exhausted_home_spills_to_a_sibling_and_counts_it() {
        let p = pool(2);
        let l0 = warp_on(0, 1);
        // Exhaust instance 0 wholesale: 16 segment-sized allocations.
        let seg = p.instance(0).geometry().segment_bytes;
        let held: Vec<_> = (0..16).map(|_| p.malloc(&l0.lane(0), seg)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        assert!(held.iter().all(|q| q.0 < p.stride()), "all from home");
        assert_eq!(p.spill_count(0), 0);
        // The 17th spills to instance 1 and is charged to home 0.
        let spilled = p.malloc(&l0.lane(0), seg);
        assert!(!spilled.is_null());
        assert!(spilled.0 >= p.stride(), "served by the sibling");
        assert_eq!(p.spill_count(0), 1);
        assert_eq!(p.spill_count(1), 0);
        // Frees route home by ownership regardless of the freeing SM.
        p.free(&warp_on(1, 1).lane(0), spilled);
        for q in held {
            p.free(&warp_on(3, 1).lane(0), q);
        }
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after spill + routed frees");
    }

    #[test]
    fn spills_are_charged_only_on_successful_sibling_placement() {
        // The PR 5 pressure case: 24 segment-sized claims against a
        // 16-segment home. Exactly the 8 overflow claims are spills…
        let p = pool(2);
        let l0 = warp_on(0, 1);
        let seg = p.instance(0).geometry().segment_bytes;
        let held: Vec<_> = (0..24).map(|_| p.malloc(&l0.lane(0), seg)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        assert_eq!(p.spill_count(0), 8, "24 claims vs a 16-segment home: 8 spills");
        // …filling the sibling's remainder keeps charging placements…
        let rest: Vec<_> = (0..8).map(|_| p.malloc(&l0.lane(0), seg)).collect();
        assert!(rest.iter().all(|q| !q.is_null()));
        assert_eq!(p.spill_count(0), 16);
        // …but pushing past total pool capacity adds zero further spills:
        // a walk every sibling denies is a failed malloc, not a spill.
        for _ in 0..5 {
            assert!(p.malloc(&l0.lane(0), seg).is_null());
        }
        assert_eq!(p.spill_count(0), 16, "denied walks must not be charged as spills");
        assert_eq!(p.total_spills(), 16);
        for q in held.into_iter().chain(rest) {
            p.free(&l0.lane(0), q);
        }
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after capacity stress");
    }

    #[test]
    fn oversized_requests_fail_without_walking_siblings() {
        let p = pool(4);
        assert!(!p.supports_size(p.stride() + 1));
        assert_eq!(p.max_native_size(), p.stride());
        assert_eq!(p.heap_bytes(), 4 * p.stride());
        // The denial must be decided before any instance is consulted:
        // zero atomic traffic (no CAS, no RMW, not even a counted failed
        // malloc) on every instance, scalar and collective path alike.
        let before: Vec<_> = (0..4).map(|i| p.instance(i).metrics().unwrap().snapshot()).collect();
        let q = p.malloc(&warp_on(2, 1).lane(0), p.stride() + 1);
        assert!(q.is_null());
        let w = warp_on(2, 32);
        let sizes = vec![Some(p.stride() + 1); 32];
        let mut out = vec![DevicePtr(7); 32];
        p.warp_malloc(&w, &sizes, &mut out);
        assert!(out.iter().all(|q| q.is_null()), "oversize lanes must come back NULL");
        for i in 0..4 {
            let after = p.instance(i).metrics().unwrap().snapshot();
            assert_eq!(after, before[i], "instance {i} saw traffic for an unservable size");
        }
        assert_eq!(p.total_spills(), 0, "an unservable size is not a spill");
        assert_eq!(p.oversize_denials(), 33, "1 scalar + 32 collective lanes");
        assert_eq!(p.pool_stats().oversize_denials, 33);
        p.reset();
        assert_eq!(p.oversize_denials(), 0, "reset clears the denial counter");
    }

    #[test]
    fn mixed_warp_serves_eligible_lanes_and_denies_oversize_ones() {
        let p = pool(2);
        let w = warp_on(0, 32);
        // Even lanes ask for a servable size, odd lanes for an impossible
        // one: the eligible half must still be served as one group.
        let sizes: Vec<Option<u64>> =
            (0..32).map(|l| Some(if l % 2 == 0 { 64 } else { p.stride() + 1 })).collect();
        let mut out = vec![DevicePtr::NULL; 32];
        p.warp_malloc(&w, &sizes, &mut out);
        for lane in 0..32 {
            if lane % 2 == 0 {
                assert!(!out[lane].is_null(), "eligible lane {lane} must be served");
            } else {
                assert!(out[lane].is_null(), "oversize lane {lane} must be denied");
            }
        }
        assert_eq!(p.oversize_denials(), 16);
        p.warp_free(&w, &out);
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after mixed warp");
    }

    #[test]
    fn pool_stats_snapshot_tracks_reservation_and_pressure() {
        let p = pool(2);
        let idle = p.pool_stats();
        assert_eq!(idle.heap_bytes, 2 * p.stride());
        assert_eq!(idle.reserved_bytes, 0);
        assert_eq!(idle.headroom_bytes(), idle.heap_bytes);
        assert_eq!(idle.instances.len(), 2);
        assert_eq!(idle.instances[0].owned_segments, 16);
        assert_eq!(idle.pool_free_segments, 0);
        let seg = p.instance(0).geometry().segment_bytes;
        // Fill home 0 and force one spill: the snapshot must show the
        // reservation split across instances and the spill pressure.
        let held: Vec<_> = (0..17).map(|_| p.malloc(&warp_on(0, 1).lane(0), seg)).collect();
        assert!(held.iter().all(|q| !q.is_null()));
        let s = p.pool_stats();
        assert_eq!(s.reserved_bytes, 17 * seg);
        assert_eq!(s.instances[0].reserved_bytes, 16 * seg);
        assert_eq!(s.instances[1].reserved_bytes, seg);
        assert_eq!(s.instances[0].free_segments, 0);
        assert_eq!(s.instances[1].free_segments, 15);
        assert_eq!((s.spills, s.instances[0].spills, s.instances[1].spills), (1, 1, 0));
        assert_eq!(s.headroom_bytes(), s.heap_bytes - 17 * seg);
        for q in held {
            p.free(&warp_on(0, 1).lane(0), q);
        }
        assert_eq!(p.pool_stats().reserved_bytes, 0);
    }

    #[test]
    fn warp_collectives_split_by_owning_instance() {
        let p = pool(2);
        let w0 = warp_on(0, 32);
        let w1 = warp_on(1, 32);
        let sizes = vec![Some(16u64); 32];
        let mut a = vec![DevicePtr::NULL; 32];
        let mut b = vec![DevicePtr::NULL; 32];
        p.warp_malloc(&w0, &sizes, &mut a);
        p.warp_malloc(&w1, &sizes, &mut b);
        assert!(a.iter().all(|q| !q.is_null() && q.0 < p.stride()));
        assert!(b.iter().all(|q| !q.is_null() && q.0 >= p.stride()));
        // Interleave the two instances' pointers in one warp free: each
        // instance receives its half as one coalesced group.
        let mixed: Vec<DevicePtr> = (0..32).map(|l| if l % 2 == 0 { a[l] } else { b[l] }).collect();
        let rest: Vec<DevicePtr> = (0..32).map(|l| if l % 2 == 0 { b[l] } else { a[l] }).collect();
        p.warp_free(&w0, &mixed);
        p.warp_free(&w1, &rest);
        assert_eq!(p.stats().reserved_bytes, 0);
        p.check_invariants().expect("clean after interleaved collective frees");
    }

    #[test]
    fn reset_restores_every_instance_and_spill_counter() {
        let p = pool(2);
        let l0 = warp_on(0, 1);
        let seg = p.instance(0).geometry().segment_bytes;
        for _ in 0..17 {
            assert!(!p.malloc(&l0.lane(0), seg).is_null());
        }
        assert_eq!(p.spill_count(0), 1);
        p.reset();
        assert_eq!(p.total_spills(), 0);
        assert_eq!(p.stats().reserved_bytes, 0);
        for i in 0..2 {
            assert_eq!(p.instance(i).free_segments(), 16);
            assert_eq!(p.pool_stats().instances[i].owned_segments, 16);
        }
        p.check_invariants().expect("clean after reset");
    }

    #[test]
    #[should_panic(expected = "foreign pointer")]
    fn foreign_pointer_free_panics() {
        let p = pool(2);
        p.free(&warp_on(0, 1).lane(0), DevicePtr(p.heap_bytes() + 64));
    }

    #[test]
    fn pool_invariant_check_names_the_corrupt_instance() {
        let p = pool(2);
        // Segment 19 is instance 1's (segments 16..32): claim its tree_id
        // without removing it from the segment tree or formatting it.
        p.instance(1).table().seg(19).tree_id.store(0, Ordering::SeqCst);
        let err = p.check_invariants().unwrap_err();
        assert!(err.contains("instance 1: segment 19"), "unexpected report: {err}");
    }
}
