//! The constant-size per-segment block ring queue.
//!
//! Paper §4.2: "Blocks are allocated and returned to the segment using a
//! constant-size per-segment ring queue." The queue hands out block ids
//! (`0..blocks_per_segment`) and receives them back when all of a block's
//! slices have been freed, enabling block reuse inside a live segment.
//!
//! This is a bounded MPMC queue in the classic Vyukov style: each cell
//! carries a sequence number that encodes whether it is ready for the next
//! enqueue or the next dequeue, so both operations are a single CAS on the
//! ticket counter plus one store in the common case. Capacity is fixed at
//! construction (`max_blocks`, 256 in the paper's configuration).
//!
//! ## Occupancy
//!
//! Gallatin's segment-reclamation protocol needs a "ring is full again"
//! observation: a segment may only be recycled once every popped block has
//! been pushed back (see `crate::table`). Occupancy is therefore **derived
//! from the ticket counters**, never kept in a side counter:
//!
//! ```text
//! len() = (enqueue_pos - dequeue_pos) - pushes_in_flight
//! ```
//!
//! * `dequeue_pos` advances at a pop's CAS win — the instant the block
//!   leaves home — so a block held by a straggler is *never* counted;
//! * `enqueue_pos` advances at a push's CAS win, *before* the cell is
//!   published, so `push_in_flight` (incremented before the ticket CAS,
//!   decremented after the cell's value and sequence stores) compensates:
//!   a push is only counted once its cell is fully published.
//!
//! Consequently `len()` can transiently *under*-report (which only delays
//! reclamation) but can never over-report or wrap: `len() == n` is a
//! proof that `n` blocks are home with their cells fully published and no
//! ring mutation in flight on them. An earlier revision kept a separate
//! `len: AtomicU64` updated *after* each queue op; a pop's `fetch_sub`
//! racing a push's trailing `fetch_add` could then momentarily drive the
//! counter through zero to ~2^64, spuriously satisfying every fullness
//! check downstream. The derived form makes that interleaving
//! unrepresentable.
//!
//! The pop CAS-win → cell-recycle window and the push CAS-win → publish
//! window are the *straggler windows* of the reclamation protocol; both
//! cross a [`gpu_sim::preempt_point`] so the deterministic scheduler (and
//! its fault injector, see `gpu_sim::sched::FaultPlan`) can park a warp
//! exactly there.

use gpu_sim::{preempt_point, trace, PreemptPoint};
use std::sync::atomic::{AtomicU64, Ordering};

/// Bounded MPMC queue of block ids with derived, non-wrapping occupancy.
pub struct BlockRing {
    cells: Box<[Cell]>,
    /// Capacity mask (capacity is a power of two).
    mask: u64,
    enqueue_pos: AtomicU64,
    dequeue_pos: AtomicU64,
    /// Pushes between their ticket CAS and their cell publish. Always
    /// incremented *before* the CAS attempt (and rolled back on CAS
    /// failure) so no observer can count a ticket whose cell is still
    /// unpublished.
    push_in_flight: AtomicU64,
    /// Owner tag for trace attribution (the segment id, set once at table
    /// construction; `u64::MAX` for standalone rings). Written before any
    /// concurrency starts and loaded only inside trace-emit closures, so
    /// it costs nothing when tracing is off.
    tag: AtomicU64,
}

struct Cell {
    seq: AtomicU64,
    value: AtomicU64,
}

/// A quiescent view of a ring's contents (see [`BlockRing::snapshot`]).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct RingSnapshot {
    /// The ids of fully published cells, front to back.
    pub ids: Vec<u64>,
    /// Ticket positions in `[dequeue_pos, enqueue_pos)` whose cell was
    /// *not* published (an operation in flight, or a torn/phantom ticket).
    /// Nonzero at a quiescent point means the ring is corrupt: a hole can
    /// mask a vanished block, so invariant checkers must treat it as an
    /// error rather than skipping the cell.
    pub skipped: u64,
}

impl BlockRing {
    /// An empty ring with capacity for `capacity` block ids (rounded up to
    /// a power of two).
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0);
        let cap = capacity.next_power_of_two();
        let cells = (0..cap)
            .map(|i| Cell { seq: AtomicU64::new(i), value: AtomicU64::new(0) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BlockRing {
            cells,
            mask: cap - 1,
            enqueue_pos: AtomicU64::new(0),
            dequeue_pos: AtomicU64::new(0),
            push_in_flight: AtomicU64::new(0),
            tag: AtomicU64::new(u64::MAX),
        }
    }

    /// Set the owner tag (segment id) stamped on this ring's trace
    /// events. Called once at table construction, before any launch.
    pub fn set_tag(&self, seg: u64) {
        self.tag.store(seg, Ordering::Relaxed);
    }

    /// The owner tag (segment id), or `u64::MAX` if never set.
    pub fn tag(&self) -> u64 {
        self.tag.load(Ordering::Relaxed)
    }

    /// Capacity (power of two ≥ requested).
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Current occupancy, derived from the ticket counters (see the
    /// module docs). May transiently under-report while an operation is
    /// in flight; never over-reports and never wraps. `len() == n` at any
    /// observation point proves `n` blocks are home and fully published.
    ///
    /// Load order matters: `dequeue_pos` first (so the subtraction cannot
    /// go negative — `enqueue_pos` only grows and always bounds it from
    /// above), `push_in_flight` last (so any push whose ticket we counted
    /// is either published or still represented in the in-flight count).
    #[inline]
    pub fn len(&self) -> u64 {
        // dequeue_pos stays SeqCst: the reclaim drain's `len() == n`
        // check races pop's ticket CAS in a store-buffering (Dekker)
        // shape — both sides must agree on a single total order or a
        // straggler's pop can hide from the drain (see TESTING.md,
        // "Ordering audit"). The other two legs only need to observe
        // values no older than the dequeue ticket they pair with, which
        // Acquire gives.
        let deq = self.dequeue_pos.load(Ordering::SeqCst);
        let enq = self.enqueue_pos.load(Ordering::Acquire);
        let in_flight = self.push_in_flight.load(Ordering::Acquire);
        (enq - deq).saturating_sub(in_flight)
    }

    /// Whether the ring is empty (same caveat as [`BlockRing::len`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Pushes currently between their ticket CAS and their cell publish.
    /// Diagnostic for the reclaim/format paths: occupancy that is one
    /// short with `pushes_in_flight() > 0` means a straggler is mid-push
    /// and worth a bounded wait; occupancy short with no pushes in flight
    /// means the block is still held elsewhere.
    #[inline]
    pub fn pushes_in_flight(&self) -> u64 {
        // Acquire: a diagnostic read paired with push's Release-class
        // updates; no Dekker shape here (the caller already holds the
        // segment claim when it acts on the answer).
        self.push_in_flight.load(Ordering::Acquire)
    }

    /// Enqueue a block id. Returns `false` if the queue is full (only
    /// possible through misuse: a segment never holds more ids than its
    /// block count, which is ≤ capacity) or if the target cell's pop is
    /// still recycling it (transient; callers retry).
    pub fn push(&self, value: u64) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos {
                // Announce the in-flight push *before* the ticket CAS:
                // any observer that counts the bumped enqueue_pos must
                // also see this increment (or the publish completed).
                self.push_in_flight.fetch_add(1, Ordering::SeqCst);
                // AcqRel: the CAS releases the in-flight increment above
                // to anyone who Acquire-loads the bumped ticket (len());
                // SeqCst added nothing — the drain's Dekker partner is
                // pop's ticket CAS, not this one.
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::AcqRel,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // Straggler window: ticket taken, cell not yet
                        // published. The fault injector parks warps here.
                        preempt_point(PreemptPoint::RingPush);
                        cell.value.store(value, Ordering::Relaxed);
                        cell.seq.store(pos + 1, Ordering::Release);
                        // Release: the decrement must not sink above the
                        // cell publish, or len() could count the block
                        // home before its cell is readable.
                        self.push_in_flight.fetch_sub(1, Ordering::Release);
                        // Cell published: the block is home. The tag load
                        // happens inside the closure, so with no sink this
                        // line costs one thread-local check.
                        trace::emit(|| trace::TraceEvent::RingPush {
                            seg: self.tag(),
                            block: value,
                        });
                        return true;
                    }
                    Err(p) => {
                        // Release (rollback): nothing was published, but
                        // the decrement still must not sink below a later
                        // retry's increment.
                        self.push_in_flight.fetch_sub(1, Ordering::Release);
                        pos = p;
                    }
                }
            } else if seq < pos {
                return false; // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue a block id, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<u64> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                // SeqCst retained: this ticket CAS is one side of the
                // store-buffering pair with the reclaim drain's len()
                // read (see TESTING.md, "Ordering audit") — weakening it
                // lets a pop and the drain each miss the other.
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::SeqCst,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = cell.value.load(Ordering::Relaxed);
                        // The block left home at the CAS win above; stamp
                        // the pop before entering the straggler window so
                        // the trace orders it ahead of whatever runs while
                        // this warp is parked.
                        trace::emit(|| trace::TraceEvent::RingPop { seg: self.tag(), block: v });
                        // Straggler window: the block left home (occupancy
                        // already reflects it) but the cell has not been
                        // recycled for the next lap. A warp parked here by
                        // the fault injector holds the popped block across
                        // whatever the other warps do next — exactly the
                        // reclaim/reformat hazard of paper Algorithm 2.
                        preempt_point(PreemptPoint::RingPop);
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        return Some(v);
                    }
                    Err(p) => pos = p,
                }
            } else if seq <= pos {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// The ring's contents plus a count of unpublished cells.
    ///
    /// Only meaningful while the ring is quiescent (no concurrent
    /// push/pop): used by the invariant checker, which runs between
    /// kernels. At a quiescent point every ticket in
    /// `[dequeue_pos, enqueue_pos)` must map to a published cell, so
    /// `skipped != 0` is itself an invariant violation (a hole would
    /// otherwise silently mask a vanished block).
    pub fn snapshot(&self) -> RingSnapshot {
        // Acquire: the checker runs at quiescent points, so these loads
        // only need to see the final published values, not a total
        // store order.
        let deq = self.dequeue_pos.load(Ordering::Acquire);
        let enq = self.enqueue_pos.load(Ordering::Acquire);
        let mut snap = RingSnapshot { ids: Vec::with_capacity((enq - deq) as usize), skipped: 0 };
        for pos in deq..enq {
            let cell = &self.cells[(pos & self.mask) as usize];
            if cell.seq.load(Ordering::Acquire) == pos + 1 {
                snap.ids.push(cell.value.load(Ordering::Acquire));
            } else {
                snap.skipped += 1;
            }
        }
        snap
    }

    /// Reinitialize to hold exactly the ids `0..count`, in order.
    ///
    /// **Not thread-safe**: callers must hold exclusive ownership of the
    /// segment (Gallatin's format path claims the segment from the segment
    /// tree and drains stragglers before calling this; the drain's
    /// `len() == prev_blocks` observation proves no push or pop is still
    /// mutating the cells — see the module docs).
    pub fn reset_full(&self, count: u64) {
        assert!(count <= self.capacity(), "segment block count exceeds ring capacity");
        for (i, cell) in self.cells.iter().enumerate() {
            let i = i as u64;
            if i < count {
                cell.value.store(i, Ordering::Relaxed);
                cell.seq.store(i + 1, Ordering::Relaxed);
            } else {
                cell.seq.store(i, Ordering::Relaxed);
            }
        }
        self.dequeue_pos.store(0, Ordering::Relaxed);
        self.push_in_flight.store(0, Ordering::Relaxed);
        self.enqueue_pos.store(count, Ordering::Release);
    }

    /// Reinitialize to empty. Same exclusivity requirement as
    /// [`BlockRing::reset_full`].
    pub fn reset_empty(&self) {
        for (i, cell) in self.cells.iter().enumerate() {
            cell.seq.store(i as u64, Ordering::Relaxed);
        }
        self.dequeue_pos.store(0, Ordering::Relaxed);
        self.push_in_flight.store(0, Ordering::Relaxed);
        self.enqueue_pos.store(0, Ordering::Release);
    }

    /// Corrupt the ring by taking an enqueue ticket without publishing a
    /// cell — the footprint of a torn push. Test-only: negative coverage
    /// for the invariant checker's occupancy-drift and snapshot-hole
    /// detection.
    #[doc(hidden)]
    pub fn debug_inject_phantom_push(&self) {
        self.enqueue_pos.fetch_add(1, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::sched::{explore_schedules, run_tasks, run_tasks_faulted, FaultPlan};
    use std::collections::HashSet;

    #[test]
    fn fifo_order_single_threaded() {
        let r = BlockRing::new(8);
        assert!(r.is_empty());
        for i in 0..8 {
            assert!(r.push(i));
        }
        assert_eq!(r.len(), 8);
        assert!(!r.push(99), "full ring must reject");
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn reset_full_preloads_ids() {
        let r = BlockRing::new(16);
        r.reset_full(10);
        assert_eq!(r.len(), 10);
        let mut seen = Vec::new();
        while let Some(v) = r.pop() {
            seen.push(v);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        // Reusable after drain.
        assert!(r.push(3));
        assert_eq!(r.pop(), Some(3));
    }

    #[test]
    fn reset_empty_discards_contents() {
        let r = BlockRing::new(8);
        r.push(1);
        r.push(2);
        r.reset_empty();
        assert_eq!(r.pop(), None);
        assert!(r.push(7));
        assert_eq!(r.pop(), Some(7));
    }

    #[test]
    fn snapshot_reflects_contents_without_consuming() {
        let r = BlockRing::new(8);
        r.reset_full(5);
        r.pop();
        r.push(0);
        let snap = r.snapshot();
        assert_eq!(snap.ids, vec![1, 2, 3, 4, 0]);
        assert_eq!(snap.skipped, 0, "quiescent ring has no holes");
        assert_eq!(r.len(), 5, "snapshot must not consume");
        assert_eq!(r.pop(), Some(1));
    }

    #[test]
    fn snapshot_reports_phantom_ticket_as_hole() {
        let r = BlockRing::new(8);
        r.reset_full(4);
        r.debug_inject_phantom_push();
        let snap = r.snapshot();
        assert_eq!(snap.ids, vec![0, 1, 2, 3], "published cells still visible");
        assert_eq!(snap.skipped, 1, "the torn ticket must be reported, not skipped");
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(BlockRing::new(5).capacity(), 8);
        assert_eq!(BlockRing::new(256).capacity(), 256);
    }

    #[test]
    fn wraparound_many_cycles() {
        let r = BlockRing::new(4);
        for round in 0..100u64 {
            assert!(r.push(round));
            assert_eq!(r.pop(), Some(round));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_push_pop_conserves_ids() {
        let r = BlockRing::new(256);
        r.reset_full(256);
        // 8 threads cycle pop→push; afterwards all 256 ids are present
        // exactly once.
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        if let Some(v) = r.pop() {
                            assert!(v < 256);
                            // A push that wraps onto a cell whose pop is
                            // still in flight reports "full" transiently;
                            // retry until the cell's sequence is published.
                            while !r.push(v) {
                                std::hint::spin_loop();
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(r.len(), 256);
        let mut seen = HashSet::new();
        while let Some(v) = r.pop() {
            assert!(seen.insert(v), "duplicate id {v}");
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn concurrent_producers_consumers() {
        let ring = BlockRing::new(64);
        let r = &ring;
        let produced: u64 = 4 * 5_000;
        let consumed = &std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        let v = t * 5_000 + i;
                        while !r.push(v) {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for _ in 0..4 {
                s.spawn(move || loop {
                    if r.pop().is_some() {
                        let n = consumed.fetch_add(1, Ordering::Relaxed) + 1;
                        if n >= produced {
                            break;
                        }
                    } else if consumed.load(Ordering::Relaxed) >= produced {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert!(r.is_empty());
    }

    /// Regression for the `len` underflow (ISSUE 2): the retired design
    /// kept occupancy in a side `AtomicU64` updated *after* each queue op,
    /// so on a near-empty ring a completed pop's `fetch_sub` could land
    /// before the racing push's trailing `fetch_add` and wrap the counter
    /// to ~2^64, spuriously passing every `len() >= n` fullness check. An
    /// observer task here watches occupancy at every preemption point
    /// while two workers cycle pop→push through the instrumented
    /// straggler windows; with the derived occupancy the bound
    /// `len() <= blocks` holds on every interleaving, while the side
    /// counter violated it for many seeds.
    #[test]
    fn occupancy_never_overreports_across_schedules() {
        let result = explore_schedules(0..64, |seed| {
            let r = BlockRing::new(4);
            r.reset_full(2); // near-empty: underflow territory
            run_tasks(seed, 3, |i| {
                if i < 2 {
                    for _ in 0..6 {
                        if let Some(v) = r.pop() {
                            while !r.push(v) {
                                gpu_sim::spin_hint();
                            }
                        }
                    }
                } else {
                    for _ in 0..32 {
                        let l = r.len();
                        assert!(l <= 2, "occupancy over-reports under seed {seed}: len() = {l}");
                        gpu_sim::spin_hint();
                    }
                }
            });
            assert_eq!(r.len(), 2, "both blocks home after quiescence (seed {seed})");
        });
        if let Err(failure) = result {
            panic!("{failure}");
        }
    }

    /// A warp parked mid-push (ticket taken, cell unpublished) must not be
    /// counted by `len()`: the fullness observation the reclaim protocol
    /// consumes has to wait for the publish.
    #[test]
    fn parked_push_is_not_counted_as_occupancy() {
        let r = BlockRing::new(4);
        r.reset_full(2);
        let observed_full_early = std::sync::atomic::AtomicU64::new(0);
        // Park the first warp crossing the push window for 8 turns.
        run_tasks_faulted(
            9,
            2,
            Some(FaultPlan::park(gpu_sim::PreemptPoint::RingPush, 1, 8)),
            |i| {
                if i == 0 {
                    let v = r.pop().expect("preloaded");
                    assert!(r.push(v));
                } else {
                    for _ in 0..12 {
                        if r.len() == 2 && r.pushes_in_flight() > 0 {
                            observed_full_early.fetch_add(1, Ordering::Relaxed);
                        }
                        gpu_sim::spin_hint();
                    }
                }
            },
        );
        assert_eq!(
            observed_full_early.load(Ordering::Relaxed),
            0,
            "an unpublished push must never be counted as a home block"
        );
        assert_eq!(r.len(), 2);
    }
}
