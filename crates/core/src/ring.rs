//! The constant-size per-segment block ring queue.
//!
//! Paper §4.2: "Blocks are allocated and returned to the segment using a
//! constant-size per-segment ring queue." The queue hands out block ids
//! (`0..blocks_per_segment`) and receives them back when all of a block's
//! slices have been freed, enabling block reuse inside a live segment.
//!
//! This is a bounded MPMC queue in the classic Vyukov style: each cell
//! carries a sequence number that encodes whether it is ready for the next
//! enqueue or the next dequeue, so both operations are a single CAS on the
//! ticket counter plus one store in the common case. Capacity is fixed at
//! construction (`max_blocks`, 256 in the paper's configuration).
//!
//! A separate `len` counter is maintained (relaxed increments/decrements
//! around the queue ops) because Gallatin's segment-reclamation protocol
//! needs a "ring is full again" observation: a segment may only be
//! recycled once every popped block has been pushed back (see
//! `crate::table`).

use std::sync::atomic::{AtomicU64, Ordering};

/// Bounded MPMC queue of block ids with an occupancy counter.
pub struct BlockRing {
    cells: Box<[Cell]>,
    /// Capacity mask (capacity is a power of two).
    mask: u64,
    enqueue_pos: AtomicU64,
    dequeue_pos: AtomicU64,
    /// Number of ids currently enqueued (may transiently lag the queue by
    /// the width of an in-flight operation).
    len: AtomicU64,
}

struct Cell {
    seq: AtomicU64,
    value: AtomicU64,
}

impl BlockRing {
    /// An empty ring with capacity for `capacity` block ids (rounded up to
    /// a power of two).
    pub fn new(capacity: u64) -> Self {
        assert!(capacity > 0);
        let cap = capacity.next_power_of_two();
        let cells = (0..cap)
            .map(|i| Cell { seq: AtomicU64::new(i), value: AtomicU64::new(0) })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BlockRing {
            cells,
            mask: cap - 1,
            enqueue_pos: AtomicU64::new(0),
            dequeue_pos: AtomicU64::new(0),
            len: AtomicU64::new(0),
        }
    }

    /// Capacity (power of two ≥ requested).
    #[inline]
    pub fn capacity(&self) -> u64 {
        self.mask + 1
    }

    /// Current occupancy. Exact when the queue is quiescent; used by the
    /// reclamation protocol, which tolerates transient undercounts (they
    /// only delay reclamation, never corrupt it — see `crate::table`).
    #[inline]
    pub fn len(&self) -> u64 {
        self.len.load(Ordering::Acquire)
    }

    /// Whether the ring is empty (same caveat as [`BlockRing::len`]).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Enqueue a block id. Returns `false` if the queue is full (only
    /// possible through misuse: a segment never holds more ids than its
    /// block count, which is ≤ capacity).
    pub fn push(&self, value: u64) -> bool {
        let mut pos = self.enqueue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos {
                match self.enqueue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        cell.value.store(value, Ordering::Relaxed);
                        cell.seq.store(pos + 1, Ordering::Release);
                        self.len.fetch_add(1, Ordering::AcqRel);
                        return true;
                    }
                    Err(p) => pos = p,
                }
            } else if seq < pos {
                return false; // full
            } else {
                pos = self.enqueue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// Dequeue a block id, or `None` if the queue is empty.
    pub fn pop(&self) -> Option<u64> {
        let mut pos = self.dequeue_pos.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[(pos & self.mask) as usize];
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == pos + 1 {
                match self.dequeue_pos.compare_exchange_weak(
                    pos,
                    pos + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        let v = cell.value.load(Ordering::Relaxed);
                        cell.seq.store(pos + self.mask + 1, Ordering::Release);
                        self.len.fetch_sub(1, Ordering::AcqRel);
                        return Some(v);
                    }
                    Err(p) => pos = p,
                }
            } else if seq <= pos {
                return None; // empty
            } else {
                pos = self.dequeue_pos.load(Ordering::Relaxed);
            }
        }
    }

    /// The ids currently enqueued, front to back.
    ///
    /// Only meaningful while the ring is quiescent (no concurrent
    /// push/pop): used by the invariant checker, which runs between
    /// kernels. Cells with an in-flight operation are skipped.
    pub fn snapshot(&self) -> Vec<u64> {
        let deq = self.dequeue_pos.load(Ordering::Acquire);
        let enq = self.enqueue_pos.load(Ordering::Acquire);
        let mut out = Vec::with_capacity((enq - deq) as usize);
        for pos in deq..enq {
            let cell = &self.cells[(pos & self.mask) as usize];
            if cell.seq.load(Ordering::Acquire) == pos + 1 {
                out.push(cell.value.load(Ordering::Acquire));
            }
        }
        out
    }

    /// Reinitialize to hold exactly the ids `0..count`, in order.
    ///
    /// **Not thread-safe**: callers must hold exclusive ownership of the
    /// segment (Gallatin's format path claims the segment from the segment
    /// tree and drains stragglers before calling this).
    pub fn reset_full(&self, count: u64) {
        assert!(count <= self.capacity(), "segment block count exceeds ring capacity");
        for (i, cell) in self.cells.iter().enumerate() {
            let i = i as u64;
            if i < count {
                cell.value.store(i, Ordering::Relaxed);
                cell.seq.store(i + 1, Ordering::Relaxed);
            } else {
                cell.seq.store(i, Ordering::Relaxed);
            }
        }
        self.enqueue_pos.store(count, Ordering::Relaxed);
        self.dequeue_pos.store(0, Ordering::Relaxed);
        self.len.store(count, Ordering::Release);
    }

    /// Reinitialize to empty. Same exclusivity requirement as
    /// [`BlockRing::reset_full`].
    pub fn reset_empty(&self) {
        for (i, cell) in self.cells.iter().enumerate() {
            cell.seq.store(i as u64, Ordering::Relaxed);
        }
        self.enqueue_pos.store(0, Ordering::Relaxed);
        self.dequeue_pos.store(0, Ordering::Relaxed);
        self.len.store(0, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn fifo_order_single_threaded() {
        let r = BlockRing::new(8);
        assert!(r.is_empty());
        for i in 0..8 {
            assert!(r.push(i));
        }
        assert_eq!(r.len(), 8);
        assert!(!r.push(99), "full ring must reject");
        for i in 0..8 {
            assert_eq!(r.pop(), Some(i));
        }
        assert_eq!(r.pop(), None);
    }

    #[test]
    fn reset_full_preloads_ids() {
        let r = BlockRing::new(16);
        r.reset_full(10);
        assert_eq!(r.len(), 10);
        let mut seen = Vec::new();
        while let Some(v) = r.pop() {
            seen.push(v);
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
        // Reusable after drain.
        assert!(r.push(3));
        assert_eq!(r.pop(), Some(3));
    }

    #[test]
    fn reset_empty_discards_contents() {
        let r = BlockRing::new(8);
        r.push(1);
        r.push(2);
        r.reset_empty();
        assert_eq!(r.pop(), None);
        assert!(r.push(7));
        assert_eq!(r.pop(), Some(7));
    }

    #[test]
    fn snapshot_reflects_contents_without_consuming() {
        let r = BlockRing::new(8);
        r.reset_full(5);
        r.pop();
        r.push(0);
        assert_eq!(r.snapshot(), vec![1, 2, 3, 4, 0]);
        assert_eq!(r.len(), 5, "snapshot must not consume");
        assert_eq!(r.pop(), Some(1));
    }

    #[test]
    fn capacity_rounds_to_power_of_two() {
        assert_eq!(BlockRing::new(5).capacity(), 8);
        assert_eq!(BlockRing::new(256).capacity(), 256);
    }

    #[test]
    fn wraparound_many_cycles() {
        let r = BlockRing::new(4);
        for round in 0..100u64 {
            assert!(r.push(round));
            assert_eq!(r.pop(), Some(round));
        }
        assert!(r.is_empty());
    }

    #[test]
    fn concurrent_push_pop_conserves_ids() {
        let r = BlockRing::new(256);
        r.reset_full(256);
        // 8 threads cycle pop→push; afterwards all 256 ids are present
        // exactly once.
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        if let Some(v) = r.pop() {
                            assert!(v < 256);
                            // A push that wraps onto a cell whose pop is
                            // still in flight reports "full" transiently;
                            // retry until the cell's sequence is published.
                            while !r.push(v) {
                                std::hint::spin_loop();
                            }
                        }
                    }
                });
            }
        });
        assert_eq!(r.len(), 256);
        let mut seen = HashSet::new();
        while let Some(v) = r.pop() {
            assert!(seen.insert(v), "duplicate id {v}");
        }
        assert_eq!(seen.len(), 256);
    }

    #[test]
    fn concurrent_producers_consumers() {
        let ring = BlockRing::new(64);
        let r = &ring;
        let produced: u64 = 4 * 5_000;
        let consumed = &std::sync::atomic::AtomicU64::new(0);
        std::thread::scope(|s| {
            for t in 0..4u64 {
                s.spawn(move || {
                    for i in 0..5_000u64 {
                        let v = t * 5_000 + i;
                        while !r.push(v) {
                            std::hint::spin_loop();
                        }
                    }
                });
            }
            for _ in 0..4 {
                s.spawn(move || loop {
                    if r.pop().is_some() {
                        let n = consumed.fetch_add(1, Ordering::Relaxed) + 1;
                        if n >= produced {
                            break;
                        }
                    } else if consumed.load(Ordering::Relaxed) >= produced {
                        break;
                    } else {
                        std::hint::spin_loop();
                    }
                });
            }
        });
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert!(r.is_empty());
    }
}
