//! Kernel launches: executing N logical GPU threads as warps on a CPU
//! thread pool.
//!
//! A launch of `n` threads is split into `ceil(n / 32)` warps. Each warp
//! is executed as a unit by one pool worker (rayon's work-stealing pool),
//! which preserves the property the allocators care about: all 32 lanes of
//! a warp are visible to each other at a collective operation, while
//! different warps run genuinely concurrently and contend on atomics.
//!
//! SM residency is modeled by striping warps across `num_sms` streaming
//! multiprocessors (`sm_id = warp_id % num_sms`), which is how a real grid
//! fills a GPU in the steady state and gives Gallatin's per-SM block
//! buffers the intended access pattern.

use crate::metrics::with_metrics_stripe;
use crate::sched::{self, FaultPlan};
use crate::trace;
use crate::warp::{LaneCtx, WarpCtx, WARP_SIZE};
use rayon::prelude::*;

/// How a launch's warps are executed.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ExecMode {
    /// Warps run concurrently on the work-stealing CPU thread pool;
    /// interleavings are real races and depend on OS timing. This is
    /// the throughput mode and the default.
    Pool,
    /// Warps run serialized under the deterministic coordinator
    /// ([`crate::sched`]), context-switching only at preemption points,
    /// with the interleaving fully determined by `seed`.
    Deterministic {
        /// Schedule seed: same seed ⇒ identical interleaving.
        seed: u64,
    },
}

/// Static description of the simulated device.
#[derive(Clone, Copy, Debug)]
pub struct DeviceConfig {
    /// Number of streaming multiprocessors. The paper's A40 has 84 SMs but
    /// describes the block-buffer sizing with a 128-SM example; 128 is the
    /// default here and everything is configurable.
    pub num_sms: u32,
    /// Warp execution mode (free-running pool vs deterministic replay).
    pub mode: ExecMode,
    /// Injected schedule fault, honored only under
    /// [`ExecMode::Deterministic`]: parks the warp making the plan's nth
    /// crossing of its preemption point (see [`sched::FaultPlan`]).
    /// Ignored in pool mode, where the OS already preempts arbitrarily.
    pub fault: Option<FaultPlan>,
}

impl Default for DeviceConfig {
    fn default() -> Self {
        DeviceConfig { num_sms: 128, mode: ExecMode::Pool, fault: None }
    }
}

impl DeviceConfig {
    /// A device with the given SM count.
    pub fn with_sms(num_sms: u32) -> Self {
        assert!(num_sms > 0, "device needs at least one SM");
        DeviceConfig { num_sms, ..Default::default() }
    }

    /// A device whose launches replay the deterministic schedule drawn
    /// from `seed` (see [`crate::sched`]). Same seed ⇒ same
    /// interleaving ⇒ identical metrics and outcome.
    pub fn deterministic(seed: u64) -> Self {
        DeviceConfig { mode: ExecMode::Deterministic { seed }, ..Default::default() }
    }

    /// This configuration with the deterministic mode enabled.
    pub fn seeded(mut self, seed: u64) -> Self {
        self.mode = ExecMode::Deterministic { seed };
        self
    }

    /// This configuration with a schedule fault injected (deterministic
    /// mode only; the `(seed, fault)` pair replays exactly).
    pub fn with_fault(mut self, fault: FaultPlan) -> Self {
        self.fault = Some(fault);
        self
    }
}

/// Launch `total_threads` logical threads as warp-collective work:
/// `kernel` is invoked once per warp and drives all of that warp's lanes.
///
/// This is the launch form used when the kernel needs warp collectives
/// (e.g. coalesced allocation); per-thread kernels can use [`launch`].
///
/// ```
/// use gpu_sim::{launch_warps, DeviceConfig};
/// use std::sync::atomic::{AtomicU64, Ordering};
///
/// let total = AtomicU64::new(0);
/// launch_warps(DeviceConfig::default(), 1000, |warp| {
///     total.fetch_add(warp.active as u64, Ordering::Relaxed);
/// });
/// assert_eq!(total.load(Ordering::Relaxed), 1000);
/// ```
pub fn launch_warps<F>(cfg: DeviceConfig, total_threads: u64, kernel: F)
where
    F: Fn(&WarpCtx) + Sync,
{
    launch_warps_counted(cfg, total_threads, kernel);
}

/// [`launch_warps`] that also reports the launch's duration in
/// *schedule steps*: under [`ExecMode::Deterministic`] this is the
/// coordinator's turn-grant count (one per preemption-point crossing,
/// plus one final grant per warp) — a deterministic function of
/// `(seed, kernel)` that the serving layer uses as simulated kernel
/// service time. Pool mode has no schedule clock and reports 0.
pub fn launch_warps_counted<F>(cfg: DeviceConfig, total_threads: u64, kernel: F) -> u64
where
    F: Fn(&WarpCtx) + Sync,
{
    if total_threads == 0 {
        return 0;
    }
    let n_warps = total_threads.div_ceil(WARP_SIZE as u64);
    // The launching thread's trace sink (if any) is propagated to every
    // warp, which runs on a pool worker with its own thread-locals.
    let sink = trace::current_sink();
    let run_warp = |warp_id: u64| {
        let base_tid = warp_id * WARP_SIZE as u64;
        let active = (total_threads - base_tid).min(WARP_SIZE as u64) as u32;
        let warp =
            WarpCtx { warp_id, sm_id: (warp_id % cfg.num_sms as u64) as u32, base_tid, active };
        // Metric bumps made by this warp land in its SM's counter
        // stripe (see `metrics`): telemetry writes then contend only
        // within an SM, like the per-SM block buffers they instrument.
        with_metrics_stripe(warp.sm_id, || {
            trace::in_warp(sink.clone(), warp.sm_id, warp.warp_id, || kernel(&warp))
        });
    };
    match cfg.mode {
        ExecMode::Pool => {
            (0..n_warps).into_par_iter().for_each(run_warp);
            0
        }
        ExecMode::Deterministic { seed } => {
            sched::run_tasks_faulted(seed, n_warps, cfg.fault, run_warp)
        }
    }
}

/// Launch `total_threads` logical threads with a per-thread kernel.
///
/// Lanes of a warp run sequentially inside one pool task (as if fully
/// divergent), warps run concurrently. Use [`launch_warps`] when the
/// kernel wants warp collectives.
pub fn launch<F>(cfg: DeviceConfig, total_threads: u64, kernel: F)
where
    F: Fn(&LaneCtx) + Sync,
{
    launch_warps(cfg, total_threads, |warp| {
        for lane in warp.lanes() {
            kernel(&warp.lane(lane));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn launch_runs_every_thread_once() {
        let n = 100_000u64;
        let sum = AtomicU64::new(0);
        launch(DeviceConfig::default(), n, |t| {
            sum.fetch_add(t.global_tid() + 1, Ordering::Relaxed);
        });
        assert_eq!(sum.load(Ordering::Relaxed), n * (n + 1) / 2);
    }

    #[test]
    fn launch_zero_threads_is_noop() {
        launch(DeviceConfig::default(), 0, |_| panic!("should not run"));
    }

    #[test]
    fn tail_warp_is_partial() {
        let counted = AtomicU64::new(0);
        launch_warps(DeviceConfig::default(), 70, |w| {
            if w.warp_id == 2 {
                assert_eq!(w.active, 6);
            } else {
                assert_eq!(w.active, 32);
            }
            counted.fetch_add(w.active as u64, Ordering::Relaxed);
        });
        assert_eq!(counted.load(Ordering::Relaxed), 70);
    }

    #[test]
    fn sm_ids_stripe_across_device() {
        let cfg = DeviceConfig::with_sms(4);
        launch_warps(cfg, 32 * 8, |w| {
            assert_eq!(w.sm_id, (w.warp_id % 4) as u32);
        });
    }

    #[test]
    fn counted_launch_reports_schedule_steps() {
        use crate::sched::{preempt_point, PreemptPoint};
        // 2 warps, each crossing one preemption point: 2 × (1 yield +
        // 1 finishing grant) = 4 steps, identical across replays.
        let cfg = DeviceConfig::with_sms(2).seeded(11);
        let run = || {
            launch_warps_counted(cfg, 64, |_| {
                preempt_point(PreemptPoint::Rmw);
            })
        };
        assert_eq!(run(), 4);
        assert_eq!(run(), 4, "same seed replays the same schedule length");
        // Pool mode has no schedule clock.
        assert_eq!(launch_warps_counted(DeviceConfig::default(), 64, |_| {}), 0);
    }

    #[test]
    fn warps_execute_concurrently_and_contend() {
        // Not a strict concurrency proof, just exercises the parallel path
        // with enough warps to occupy the pool.
        let ctr = AtomicU64::new(0);
        launch_warps(DeviceConfig::default(), 32 * 1024, |_| {
            ctr.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(ctr.load(Ordering::Relaxed), 1024);
    }
}
