//! Deterministic warp scheduling: replayable interleavings for
//! concurrency testing.
//!
//! The pool mode in [`mod@crate::launch`] runs warps on a work-stealing
//! thread pool, so racy interleavings depend on OS timing and cannot be
//! reproduced. This module provides the alternative execution engine
//! behind `ExecMode::Deterministic`: all warps of a launch run under one
//! coordinator that serializes execution and context-switches only at
//! *preemption points* — each atomic RMW / CAS / lock acquisition
//! (observed at the existing [`crate::Metrics`] counting sites), each
//! warp collective, each volatile (`ldcv`) load, and each spin-wait
//! iteration. Which warp runs after each preemption point is drawn from
//! a seeded PRNG, so a launch with `DeviceConfig::deterministic(seed)`
//! replays the *exact same* interleaving for the same seed, and a seed
//! sweep ([`explore_schedules`]) turns "hope the pool races" into an
//! enumerable, one-line-reproducible search over schedules.
//!
//! # How preemption points are observed
//!
//! Instrumented call sites (in `metrics.rs`, `warp.rs`, `mem.rs`, and
//! spin loops in the allocators) call [`preempt_point`], which forwards
//! to the [`SimHooks`] installed for the current thread. Pool mode
//! installs no hooks, making the call a cheap no-op — both modes share
//! one instrumented code path. Deterministic mode installs hooks that
//! hand the warp's turn back to the coordinator.
//!
//! # Liveness contract
//!
//! Serialized execution means a warp that blocks *outside* a preemption
//! point (e.g. on a mutex held by a parked warp) deadlocks the
//! coordinator. The workspace's rule: no instrumented site may sit
//! inside a critical section, and every unbounded spin-wait loop must
//! call [`spin_hint`] (the lock-based baselines count their lock
//! acquisition *before* acquiring, and hold no lock across any hook).

use std::cell::RefCell;
use std::panic::AssertUnwindSafe;
use std::sync::{Arc, Condvar, Mutex};

/// Environment variable consulted by [`explore_schedules`]: when set,
/// the sweep collapses to exactly that one seed — the reproduction
/// workflow for a failure reported by a previous sweep.
pub const SCHED_SEED_ENV: &str = "GALLATIN_SCHED_SEED";

/// Kind of preemption point being crossed (see [`preempt_point`]).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PreemptPoint {
    /// An atomic read-modify-write on shared metadata.
    Rmw,
    /// A compare-and-swap attempt.
    Cas,
    /// A lock acquisition (lock-based baselines).
    Lock,
    /// A warp collective (ballot / coalesced-group formation).
    Collective,
    /// A volatile load that bypasses caches (`ldcv`).
    VolatileLoad,
    /// One iteration of a spin-wait loop.
    Spin,
    /// A block-ring pop between its ticket CAS win and the cell recycle:
    /// the popped block is claimed but the popper has not yet moved on.
    /// Parking a warp here (see [`FaultPlan`]) makes it a *straggler*
    /// holding a block across whatever the other warps do — the exact
    /// hazard window of the segment-reclamation protocol.
    RingPop,
    /// A block-ring push between its ticket CAS win and the cell publish:
    /// the ticket is taken but the block is not yet observably home.
    RingPush,
}

/// Execution hooks crossed at every preemption point.
///
/// Both launch modes drive the same instrumented call sites; they differ
/// only in the hooks installed: pool mode installs none (free-running),
/// deterministic mode installs a yield to the coordinator. Tests can
/// install custom hooks (e.g. counters) via [`with_hooks`].
pub trait SimHooks: Send + Sync {
    /// Called at each preemption point crossed by the current thread.
    fn preempt(&self, point: PreemptPoint);
}

thread_local! {
    static CURRENT_HOOKS: RefCell<Option<Arc<dyn SimHooks>>> = const { RefCell::new(None) };
    static CURRENT_SEED: RefCell<Option<u64>> = const { RefCell::new(None) };
}

/// The schedule seed of the deterministic run the current thread is part
/// of, if any. Set for the duration of every task spawned by
/// [`run_tasks`]; `None` on pool-mode and host threads. Diagnostic
/// timeouts (e.g. the segment-drain bound in `gallatin-core`) include it
/// so a stall report is immediately reproducible with
/// `GALLATIN_SCHED_SEED=<seed>`.
pub fn current_sched_seed() -> Option<u64> {
    CURRENT_SEED.with(|c| *c.borrow())
}

/// Install `seed` as the current thread's schedule seed for the duration
/// of `f` (restoring the previous value afterwards, also on panic).
fn with_seed<R>(seed: u64, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<u64>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_SEED.with(|c| *c.borrow_mut() = self.0);
        }
    }
    let prev = CURRENT_SEED.with(|c| c.borrow_mut().replace(seed));
    let _restore = Restore(prev);
    f()
}

/// Install `hooks` as the current thread's [`SimHooks`] for the duration
/// of `f` (restoring the previous hooks afterwards, also on panic).
pub fn with_hooks<R>(hooks: Arc<dyn SimHooks>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<dyn SimHooks>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_HOOKS.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT_HOOKS.with(|c| c.borrow_mut().replace(hooks));
    let _restore = Restore(prev);
    f()
}

/// Cross a preemption point: forwards to the installed [`SimHooks`], or
/// does nothing when none are installed (pool mode's free-running path).
#[inline]
pub fn preempt_point(point: PreemptPoint) {
    CURRENT_HOOKS.with(|c| {
        // Clone out of the RefCell so re-entrant hooks cannot alias the
        // borrow; the Arc clone is the slow path (hooks installed) only.
        let hooks = c.borrow().clone();
        if let Some(h) = hooks {
            h.preempt(point);
        }
    });
}

/// Preemption point for spin-wait loops. Under the deterministic
/// scheduler a bare `std::hint::spin_loop()` would monopolize the one
/// running turn forever (the peer that must make progress is parked);
/// spin loops call this instead/in addition, which yields the turn.
#[inline]
pub fn spin_hint() {
    preempt_point(PreemptPoint::Spin);
    std::hint::spin_loop();
}

/// SplitMix64: small, seedable, and good enough mixing for schedule
/// choice. Kept private to the scheduler so the stream only advances on
/// scheduling decisions (one draw per preemption).
struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn new(seed: u64) -> Self {
        SplitMix64 { state: seed }
    }

    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum TurnState {
    /// Waiting for the coordinator to hand over the turn.
    Parked,
    /// Owns the turn and is executing.
    Running,
    /// Gave the turn back at a preemption point.
    Yielded,
    /// Task function returned; the thread is done.
    Finished,
}

/// One task's turn-taking gate. The coordinator and the task thread
/// hand a single logical token back and forth through `state`.
/// `last_point` records which preemption point the task yielded at, so
/// the coordinator's fault injector can recognize its trigger window.
struct Gate {
    state: Mutex<(TurnState, Option<PreemptPoint>)>,
    cv: Condvar,
}

impl Gate {
    fn new() -> Self {
        Gate { state: Mutex::new((TurnState::Parked, None)), cv: Condvar::new() }
    }

    /// Coordinator side: grant the turn and block until the task yields
    /// it back (or finishes). Returns `(finished, yield_point)`.
    fn grant_turn(&self) -> (bool, Option<PreemptPoint>) {
        let mut st = self.state.lock().unwrap();
        debug_assert!(matches!(st.0, TurnState::Parked | TurnState::Yielded));
        st.0 = TurnState::Running;
        self.cv.notify_all();
        while st.0 == TurnState::Running {
            st = self.cv.wait(st).unwrap();
        }
        (st.0 == TurnState::Finished, st.1)
    }

    /// Task side: give the turn back and block until granted again.
    fn yield_turn(&self, point: PreemptPoint) {
        let mut st = self.state.lock().unwrap();
        *st = (TurnState::Yielded, Some(point));
        self.cv.notify_all();
        while st.0 != TurnState::Running {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Task side: block until the coordinator grants the first turn.
    fn await_first_turn(&self) {
        let mut st = self.state.lock().unwrap();
        while st.0 != TurnState::Running {
            st = self.cv.wait(st).unwrap();
        }
    }

    /// Task side: mark the task finished and wake the coordinator.
    fn finish(&self) {
        let mut st = self.state.lock().unwrap();
        st.0 = TurnState::Finished;
        self.cv.notify_all();
    }
}

/// The deterministic-mode [`SimHooks`]: every preemption point yields
/// the turn back to the coordinator.
struct YieldHooks {
    gate: Arc<Gate>,
}

impl SimHooks for YieldHooks {
    fn preempt(&self, point: PreemptPoint) {
        self.gate.yield_turn(point);
    }
}

/// A targeted schedule fault for [`run_tasks_faulted`]: the `nth` time
/// any task yields at `point` (1-based, counted across all tasks), that
/// task is *parked* — withheld from scheduling — for the next
/// `park_turns` turn grants, forcing every other warp to run through the
/// window the victim is frozen in.
///
/// This is how `explore_schedules` drives the reclamation races
/// deterministically: park a warp at [`PreemptPoint::RingPop`] and it
/// becomes a straggler holding a popped block across a whole
/// reclaim + reformat cycle; park one at [`PreemptPoint::RingPush`] and
/// its block is in the not-yet-observably-home limbo the ring's
/// occupancy accounting must not count.
///
/// The injector never deadlocks the run: if the victim becomes the only
/// runnable task, it is released early.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FaultPlan {
    /// The preemption point whose crossings trigger the fault.
    pub point: PreemptPoint,
    /// Which crossing of `point` (1-based, across all tasks) parks its
    /// task.
    pub nth: u64,
    /// How many turn grants the victim sits out.
    pub park_turns: u64,
}

impl FaultPlan {
    /// Park the task making the `nth` crossing of `point` for
    /// `park_turns` turns.
    pub fn park(point: PreemptPoint, nth: u64, park_turns: u64) -> Self {
        assert!(nth >= 1, "crossings are counted from 1");
        FaultPlan { point, nth, park_turns }
    }
}

/// Run `n_tasks` tasks to completion under the deterministic
/// coordinator. `task(i)` is invoked once per task index, on its own OS
/// thread, with yield-to-coordinator hooks installed; exactly one task
/// executes at any instant, and the successor after each preemption
/// point is drawn from a PRNG seeded with `seed`.
///
/// Panics in tasks propagate: the coordinator releases every remaining
/// task (so their threads exit their scope) and re-raises the first
/// panic, which keeps `std::thread::scope` from aborting the process.
///
/// Returns the schedule length: the number of turn grants the
/// coordinator issued. This is the run's duration in *schedule steps* —
/// a deterministic function of `(seed, workload)`, one step per
/// preemption-point crossing (plus one final grant per task) — and is
/// what the serving layer uses as simulated service time.
pub fn run_tasks<F>(seed: u64, n_tasks: u64, task: F) -> u64
where
    F: Fn(u64) + Sync,
{
    run_tasks_faulted(seed, n_tasks, None, task)
}

/// [`run_tasks`] with an optional injected schedule fault: when `fault`
/// is `Some`, the task making the plan's `nth` crossing of its
/// preemption point is parked for `park_turns` turn grants (see
/// [`FaultPlan`]). Scheduling stays fully deterministic — the fault is
/// part of the schedule, so the same `(seed, fault)` pair replays the
/// identical interleaving. Returns the schedule length in turn grants
/// (see [`run_tasks`]).
pub fn run_tasks_faulted<F>(seed: u64, n_tasks: u64, fault: Option<FaultPlan>, task: F) -> u64
where
    F: Fn(u64) + Sync,
{
    if n_tasks == 0 {
        return 0;
    }
    let gates: Vec<Arc<Gate>> = (0..n_tasks).map(|_| Arc::new(Gate::new())).collect();
    let mut rng = SplitMix64::new(seed);
    let task = &task;

    std::thread::scope(|scope| {
        for (i, gate) in gates.iter().enumerate() {
            let gate = Arc::clone(gate);
            scope.spawn(move || {
                gate.await_first_turn();
                let hooks: Arc<dyn SimHooks> = Arc::new(YieldHooks { gate: Arc::clone(&gate) });
                // Catch panics so the gate still reports Finished and the
                // coordinator can unwind cleanly instead of deadlocking.
                let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
                    with_seed(seed, || with_hooks(hooks, || task(i as u64)))
                }));
                gate.finish();
                if let Err(payload) = result {
                    std::panic::resume_unwind(payload);
                }
            });
        }

        // Runnable task list; swap-remove keeps selection O(1) and the
        // evolution of this list is itself deterministic. At most one
        // task is parked by the fault injector at a time; it rejoins
        // after `park_turns` grants (or immediately if it is the only
        // unfinished task left, preserving liveness).
        let mut runnable: Vec<usize> = (0..n_tasks as usize).collect();
        let mut crossings = 0u64;
        let mut fault_armed = fault.is_some();
        let mut parked: Option<(usize, u64)> = None;
        let mut steps = 0u64;
        while !runnable.is_empty() || parked.is_some() {
            if runnable.is_empty() {
                // Only the victim is left: release it or the run hangs.
                let (idx, _) = parked.take().expect("loop invariant");
                runnable.push(idx);
            }
            let pick = (rng.next() % runnable.len() as u64) as usize;
            let idx = runnable[pick];
            let (finished, point) = gates[idx].grant_turn();
            steps += 1;
            if let Some((victim, ref mut remaining)) = parked {
                *remaining = remaining.saturating_sub(1);
                if *remaining == 0 {
                    runnable.push(victim);
                    parked = None;
                }
            }
            if finished {
                runnable.swap_remove(pick);
                continue;
            }
            if fault_armed {
                let plan = fault.expect("armed implies a plan");
                if point == Some(plan.point) {
                    crossings += 1;
                    if crossings == plan.nth && plan.park_turns > 0 {
                        fault_armed = false;
                        runnable.swap_remove(pick);
                        parked = Some((idx, plan.park_turns));
                    }
                }
            }
        }
        steps
    })
}

/// Outcome of an [`explore_schedules`] sweep that found a failure.
#[derive(Debug)]
pub struct ScheduleFailure {
    /// The first seed whose schedule failed.
    pub seed: u64,
    /// The panic message of the failing run.
    pub message: String,
}

impl std::fmt::Display for ScheduleFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "schedule with seed {} failed (reproduce with {}={}; capture a trace of the \
             failing schedule with {}={} repro trace): {}",
            self.seed, SCHED_SEED_ENV, self.seed, SCHED_SEED_ENV, self.seed, self.message
        )
    }
}

/// Sweep deterministic schedules: run `scenario(seed)` for every seed,
/// stopping at and reporting the first failing seed. `scenario` is
/// expected to build fresh state and launch with
/// `DeviceConfig::deterministic(seed)` (or otherwise key its schedule on
/// the seed) so each iteration explores a different interleaving.
///
/// If the [`SCHED_SEED_ENV`] environment variable is set, only that seed
/// runs — the one-line reproduction workflow:
///
/// ```text
/// GALLATIN_SCHED_SEED=42 cargo test -p gallatin reclaim
/// ```
///
/// Returns the number of seeds that ran clean, or the first failure.
pub fn explore_schedules<I, F>(seeds: I, scenario: F) -> Result<u64, ScheduleFailure>
where
    I: IntoIterator<Item = u64>,
    F: Fn(u64),
{
    let override_seed = std::env::var(SCHED_SEED_ENV).ok().map(|s| {
        s.trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{SCHED_SEED_ENV} must be a u64, got {s:?}"))
    });
    let seeds: Vec<u64> = match override_seed {
        Some(s) => vec![s],
        None => seeds.into_iter().collect(),
    };
    let mut ran = 0u64;
    for seed in seeds {
        let outcome = std::panic::catch_unwind(AssertUnwindSafe(|| scenario(seed)));
        match outcome {
            Ok(()) => ran += 1,
            Err(payload) => {
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                return Err(ScheduleFailure { seed, message });
            }
        }
    }
    Ok(ran)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicU64, Ordering};

    #[test]
    fn all_tasks_run_to_completion() {
        let hits = AtomicU64::new(0);
        run_tasks(1, 8, |i| {
            hits.fetch_add(1 << i, Ordering::Relaxed);
            preempt_point(PreemptPoint::Rmw);
            hits.fetch_add(1 << (i + 8), Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 0xFFFF);
    }

    #[test]
    fn same_seed_same_interleaving() {
        // Record the observable order of critical-section entries; two
        // runs with one seed must match exactly, a different seed is
        // allowed (and with 16 tasks, essentially certain) to differ.
        fn trace(seed: u64) -> Vec<u64> {
            let order = Mutex::new(Vec::new());
            run_tasks(seed, 16, |i| {
                for step in 0..4u64 {
                    order.lock().unwrap().push(i * 10 + step);
                    preempt_point(PreemptPoint::Cas);
                }
            });
            order.into_inner().unwrap()
        }
        let a = trace(7);
        let b = trace(7);
        let c = trace(8);
        assert_eq!(a, b, "same seed must replay the same schedule");
        assert_ne!(a, c, "different seeds should explore different schedules");
    }

    #[test]
    fn serialized_execution_has_no_overlap() {
        // With deterministic scheduling exactly one task runs at a time:
        // a non-atomic read-modify-write on a shared cell, with a yield
        // in the middle, must still never lose an update *between*
        // preemption points (the turn is exclusive).
        let cell = Mutex::new(0u64);
        run_tasks(3, 8, |_| {
            for _ in 0..10 {
                let v = *cell.lock().unwrap();
                // No preemption between read and write: the turn covers
                // this whole section.
                *cell.lock().unwrap() = v + 1;
                preempt_point(PreemptPoint::Rmw);
            }
        });
        assert_eq!(*cell.lock().unwrap(), 80);
    }

    #[test]
    fn spin_hint_yields_instead_of_monopolizing() {
        // Task 0 spins until task 1 stores a flag; without the yield in
        // spin_hint this would deadlock the coordinator.
        let flag = AtomicU64::new(0);
        run_tasks(11, 2, |i| {
            if i == 0 {
                while flag.load(Ordering::Acquire) == 0 {
                    spin_hint();
                }
            } else {
                flag.store(1, Ordering::Release);
            }
        });
        assert_eq!(flag.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn schedule_length_counts_turn_grants_deterministically() {
        // Each task yields 3 times then finishes on its 4th grant, so
        // the schedule length is exact — and replays per seed.
        let body = |_i: u64| {
            for _ in 0..3 {
                preempt_point(PreemptPoint::Rmw);
            }
        };
        let steps = run_tasks(9, 4, body);
        assert_eq!(steps, 4 * (3 + 1));
        assert_eq!(run_tasks(9, 4, body), steps, "same seed, same schedule length");
        assert_eq!(run_tasks(0, 0, body), 0, "empty launch takes no steps");
    }

    #[test]
    fn task_panic_propagates() {
        let result = std::panic::catch_unwind(|| {
            run_tasks(5, 4, |i| {
                preempt_point(PreemptPoint::Rmw);
                assert!(i != 2, "task 2 fails");
            });
        });
        assert!(result.is_err(), "panic in a task must propagate to the launch");
    }

    #[test]
    fn explore_reports_first_failing_seed() {
        let result = explore_schedules(0..100, |seed| {
            assert!(seed < 42, "boom at {seed}");
        });
        let failure = result.unwrap_err();
        assert_eq!(failure.seed, 42);
        assert!(failure.message.contains("boom at 42"));
        assert!(failure.to_string().contains("GALLATIN_SCHED_SEED=42"));

        assert_eq!(explore_schedules(0..10, |_| {}).unwrap(), 10);
    }

    #[test]
    fn custom_hooks_observe_preemption_points() {
        struct Counter(AtomicU64);
        impl SimHooks for Counter {
            fn preempt(&self, _p: PreemptPoint) {
                self.0.fetch_add(1, Ordering::Relaxed);
            }
        }
        let hooks = Arc::new(Counter(AtomicU64::new(0)));
        with_hooks(hooks.clone(), || {
            preempt_point(PreemptPoint::Rmw);
            preempt_point(PreemptPoint::Collective);
        });
        // Outside with_hooks the call is a no-op again.
        preempt_point(PreemptPoint::Rmw);
        assert_eq!(hooks.0.load(Ordering::Relaxed), 2);
    }
}
