//! Lightweight instrumentation counters.
//!
//! The ablation experiments (DESIGN.md E14) need to *show* why coalescing
//! wins: Gallatin issues one atomic RMW per coalesced group where a
//! conventional allocator issues one per thread. Every allocator in this
//! workspace owns a [`Metrics`] and bumps it on its contended operations;
//! counts are relaxed (they are statistics, not synchronization).
//!
//! The counting sites double as the scheduler's *preemption points*: a
//! `count_rmw`/`count_cas`/`count_lock` call marks "this thread just
//! touched contended shared state", which is exactly where interleavings
//! matter, so each forwards to [`crate::sched::preempt_point`]. Under
//! the free-running pool mode that is a no-op; under
//! `ExecMode::Deterministic` it yields the warp's turn to the
//! coordinator (see [`crate::sched`]).

use crate::sched::{preempt_point, PreemptPoint};
use std::sync::atomic::{AtomicU64, Ordering};

/// Relaxed operation counters for one allocator instance.
#[derive(Default, Debug)]
pub struct Metrics {
    /// Atomic read-modify-write instructions issued on shared metadata
    /// (fetch_add, swap, or, and — the GPU `atomicAdd`/`atomicOr`/... set).
    pub atomic_rmw: AtomicU64,
    /// Compare-and-swap attempts (successful or not).
    pub cas_attempts: AtomicU64,
    /// CAS attempts that failed and were retried.
    pub cas_failures: AtomicU64,
    /// Times a lock was taken (only nonzero for lock-based baselines,
    /// e.g. the CUDA-heap model).
    pub lock_acquires: AtomicU64,
    /// Requests that were satisfied as part of a coalesced group led by
    /// another lane (i.e. without issuing their own atomic).
    pub coalesced_requests: AtomicU64,
    /// Allocation requests observed.
    pub mallocs: AtomicU64,
    /// Free requests observed.
    pub frees: AtomicU64,
    /// Allocation requests that returned null (out of memory / unsupported).
    pub failed_mallocs: AtomicU64,
    /// Segment-reclamation attempts (the class→free transition was
    /// started: the segment was claimed out of its block tree).
    pub reclaim_attempts: AtomicU64,
    /// Reclamation attempts that aborted at the quiesce re-verify (a
    /// popper slipped in before FREE was published; the segment stayed
    /// formatted).
    pub reclaim_aborts: AtomicU64,
    /// Spin iterations spent in format-time straggler drains (each one is
    /// a bounded wait for an in-flight block to come home).
    pub drain_spins: AtomicU64,
    /// Blocks bounced home by Algorithm 2's `ldcv` staleness re-check: a
    /// popper found the segment reclaimed under it and pushed its block
    /// back.
    pub straggler_bounces: AtomicU64,
}

impl Metrics {
    /// New zeroed counter set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one atomic RMW on shared metadata. Preemption point.
    #[inline]
    pub fn count_rmw(&self) {
        self.atomic_rmw.fetch_add(1, Ordering::Relaxed);
        preempt_point(PreemptPoint::Rmw);
    }

    /// Record one CAS attempt and whether it succeeded. Preemption point.
    #[inline]
    pub fn count_cas(&self, success: bool) {
        self.cas_attempts.fetch_add(1, Ordering::Relaxed);
        if !success {
            self.cas_failures.fetch_add(1, Ordering::Relaxed);
        }
        preempt_point(PreemptPoint::Cas);
    }

    /// Record one lock acquisition. Preemption point — and therefore
    /// must be called *before* acquiring (never while holding) the lock,
    /// or the deterministic scheduler can park the holder.
    #[inline]
    pub fn count_lock(&self) {
        self.lock_acquires.fetch_add(1, Ordering::Relaxed);
        preempt_point(PreemptPoint::Lock);
    }

    /// Record `followers` requests served by another lane's atomic.
    #[inline]
    pub fn count_coalesced(&self, followers: u64) {
        self.coalesced_requests.fetch_add(followers, Ordering::Relaxed);
    }

    /// Record one allocation request and whether it succeeded.
    #[inline]
    pub fn count_malloc(&self, ok: bool) {
        self.mallocs.fetch_add(1, Ordering::Relaxed);
        if !ok {
            self.failed_mallocs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one free request.
    #[inline]
    pub fn count_free(&self) {
        self.frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the start of a segment-reclamation attempt.
    #[inline]
    pub fn count_reclaim_attempt(&self) {
        self.reclaim_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a reclamation attempt aborted at the quiesce re-verify.
    #[inline]
    pub fn count_reclaim_abort(&self) {
        self.reclaim_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` spin iterations waiting out a format-time drain.
    #[inline]
    pub fn count_drain_spins(&self, n: u64) {
        self.drain_spins.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one block bounced home by the `ldcv` staleness re-check.
    #[inline]
    pub fn count_straggler_bounce(&self) {
        self.straggler_bounces.fetch_add(1, Ordering::Relaxed);
    }

    /// Reset all counters to zero.
    pub fn reset(&self) {
        self.atomic_rmw.store(0, Ordering::Relaxed);
        self.cas_attempts.store(0, Ordering::Relaxed);
        self.cas_failures.store(0, Ordering::Relaxed);
        self.lock_acquires.store(0, Ordering::Relaxed);
        self.coalesced_requests.store(0, Ordering::Relaxed);
        self.mallocs.store(0, Ordering::Relaxed);
        self.frees.store(0, Ordering::Relaxed);
        self.failed_mallocs.store(0, Ordering::Relaxed);
        self.reclaim_attempts.store(0, Ordering::Relaxed);
        self.reclaim_aborts.store(0, Ordering::Relaxed);
        self.drain_spins.store(0, Ordering::Relaxed);
        self.straggler_bounces.store(0, Ordering::Relaxed);
    }

    /// Snapshot into a plain struct for reporting.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            atomic_rmw: self.atomic_rmw.load(Ordering::Relaxed),
            cas_attempts: self.cas_attempts.load(Ordering::Relaxed),
            cas_failures: self.cas_failures.load(Ordering::Relaxed),
            lock_acquires: self.lock_acquires.load(Ordering::Relaxed),
            coalesced_requests: self.coalesced_requests.load(Ordering::Relaxed),
            mallocs: self.mallocs.load(Ordering::Relaxed),
            frees: self.frees.load(Ordering::Relaxed),
            failed_mallocs: self.failed_mallocs.load(Ordering::Relaxed),
            reclaim_attempts: self.reclaim_attempts.load(Ordering::Relaxed),
            reclaim_aborts: self.reclaim_aborts.load(Ordering::Relaxed),
            drain_spins: self.drain_spins.load(Ordering::Relaxed),
            straggler_bounces: self.straggler_bounces.load(Ordering::Relaxed),
        }
    }
}

/// Plain-value snapshot of [`Metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Atomic RMW instructions issued on shared metadata.
    pub atomic_rmw: u64,
    /// Compare-and-swap attempts.
    pub cas_attempts: u64,
    /// CAS attempts that failed.
    pub cas_failures: u64,
    /// Lock acquisitions (lock-based designs only).
    pub lock_acquires: u64,
    /// Requests served by another lane's coalesced atomic.
    pub coalesced_requests: u64,
    /// Allocation requests observed.
    pub mallocs: u64,
    /// Free requests observed.
    pub frees: u64,
    /// Allocation requests that returned null.
    pub failed_mallocs: u64,
    /// Segment-reclamation attempts started.
    pub reclaim_attempts: u64,
    /// Reclamation attempts aborted at the quiesce re-verify.
    pub reclaim_aborts: u64,
    /// Spin iterations spent in format-time straggler drains.
    pub drain_spins: u64,
    /// Blocks bounced home by the `ldcv` staleness re-check.
    pub straggler_bounces: u64,
}

impl MetricsSnapshot {
    /// Atomic operations per allocation — the ablation's headline number.
    pub fn rmw_per_malloc(&self) -> f64 {
        if self.mallocs == 0 {
            0.0
        } else {
            (self.atomic_rmw + self.cas_attempts) as f64 / self.mallocs as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = Metrics::new();
        m.count_rmw();
        m.count_rmw();
        m.count_cas(true);
        m.count_cas(false);
        m.count_lock();
        m.count_coalesced(3);
        m.count_malloc(true);
        m.count_malloc(false);
        m.count_free();
        m.count_reclaim_attempt();
        m.count_reclaim_attempt();
        m.count_reclaim_abort();
        m.count_drain_spins(5);
        m.count_straggler_bounce();
        let s = m.snapshot();
        assert_eq!(s.atomic_rmw, 2);
        assert_eq!(s.cas_attempts, 2);
        assert_eq!(s.cas_failures, 1);
        assert_eq!(s.lock_acquires, 1);
        assert_eq!(s.coalesced_requests, 3);
        assert_eq!(s.mallocs, 2);
        assert_eq!(s.failed_mallocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.reclaim_attempts, 2);
        assert_eq!(s.reclaim_aborts, 1);
        assert_eq!(s.drain_spins, 5);
        assert_eq!(s.straggler_bounces, 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn rmw_per_malloc_handles_zero() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.rmw_per_malloc(), 0.0);
        let s =
            MetricsSnapshot { atomic_rmw: 10, cas_attempts: 2, mallocs: 4, ..Default::default() };
        assert_eq!(s.rmw_per_malloc(), 3.0);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        m.count_rmw();
                    }
                });
            }
        });
        assert_eq!(m.snapshot().atomic_rmw, 40_000);
    }
}
