//! Lightweight instrumentation counters.
//!
//! The ablation experiments (DESIGN.md E14) need to *show* why coalescing
//! wins: Gallatin issues one atomic RMW per coalesced group where a
//! conventional allocator issues one per thread. Every allocator in this
//! workspace owns a [`Metrics`] and bumps it on its contended operations;
//! counts are relaxed (they are statistics, not synchronization).
//!
//! Ordering audit (E21): this module was reviewed alongside the core
//! allocator's SeqCst diet and deliberately has nothing left to relax —
//! every counter bump is already `Relaxed` and the striping removes the
//! cross-SM cache-line traffic a global counter would add. Per-stripe
//! sums are only combined in [`Metrics::snapshot`], on the host, between
//! kernels, so no stronger ordering is ever needed here.
//!
//! The counters are *striped*: each SM writes to its own
//! cache-line-padded cell group (stripe chosen by SM id, mirroring the
//! per-SM block buffers in `core`), and [`Metrics::snapshot`] aggregates
//! across stripes on read. A single global `AtomicU64` per counter would
//! itself be the most contended object in the simulator — every lane of
//! every allocator bumps it on every operation — and would perturb the
//! very scaling curves the harness exists to measure. The stripe in
//! effect for a thread is set by the launch machinery
//! ([`with_metrics_stripe`]); threads outside a launch (host-side setup,
//! unit tests) fall back to stripe 0, which is correct because every
//! accessor sums all stripes.
//!
//! The counting sites double as the scheduler's *preemption points*: a
//! `count_rmw`/`count_cas`/`count_lock` call marks "this thread just
//! touched contended shared state", which is exactly where interleavings
//! matter, so each forwards to [`crate::sched::preempt_point`]. Under
//! the free-running pool mode that is a no-op; under
//! `ExecMode::Deterministic` it yields the warp's turn to the
//! coordinator (see [`crate::sched`]).

use crate::sched::{preempt_point, PreemptPoint};
use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of counter stripes. A power of two so the SM id maps to a
/// stripe with a mask; 16 stripes keep the struct at 2 KiB while cutting
/// worst-case writer contention per cell by the device's SM count / 16.
const STRIPES: usize = 16;

thread_local! {
    /// Stripe index the current thread's bumps land in. Installed per
    /// warp by the launch machinery; 0 for host threads.
    static CURRENT_STRIPE: Cell<usize> = const { Cell::new(0) };
}

/// Run `f` with this thread's metric bumps attributed to the stripe for
/// `sm_id`. Used by `launch_warps` so each warp writes the cell group of
/// its SM; restores the previous stripe on exit (also on unwind, so a
/// panicking kernel does not leak its stripe into the harness thread).
pub fn with_metrics_stripe<R>(sm_id: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_STRIPE.with(|c| c.set(self.0));
        }
    }
    let _restore = CURRENT_STRIPE.with(|c| {
        let prev = c.get();
        c.set(sm_id as usize & (STRIPES - 1));
        Restore(prev)
    });
    f()
}

/// One stripe's counter cells, padded to cache lines so stripes never
/// share a line (14 × 8 = 112 bytes of counters, aligned up to 128).
/// Counters of the *same* stripe may share a line — by construction they
/// are only bumped by warps of the same SMs.
#[repr(align(128))]
#[derive(Debug, Default)]
struct Stripe {
    atomic_rmw: AtomicU64,
    cas_attempts: AtomicU64,
    cas_failures: AtomicU64,
    lock_acquires: AtomicU64,
    coalesced_requests: AtomicU64,
    mallocs: AtomicU64,
    frees: AtomicU64,
    failed_mallocs: AtomicU64,
    reclaim_attempts: AtomicU64,
    reclaim_aborts: AtomicU64,
    drain_spins: AtomicU64,
    straggler_bounces: AtomicU64,
    local_accesses: AtomicU64,
    peer_accesses: AtomicU64,
}

impl Stripe {
    /// Every cell of this stripe. `reset` iterates this list, so a
    /// counter added to the struct but forgotten here fails the
    /// `counters_accumulate_and_reset` round-trip test immediately —
    /// there is no way for reset coverage to silently drift.
    fn cells(&self) -> [&AtomicU64; 14] {
        [
            &self.atomic_rmw,
            &self.cas_attempts,
            &self.cas_failures,
            &self.lock_acquires,
            &self.coalesced_requests,
            &self.mallocs,
            &self.frees,
            &self.failed_mallocs,
            &self.reclaim_attempts,
            &self.reclaim_aborts,
            &self.drain_spins,
            &self.straggler_bounces,
            &self.local_accesses,
            &self.peer_accesses,
        ]
    }
}

/// Relaxed operation counters for one allocator instance, striped by SM.
#[derive(Debug)]
pub struct Metrics {
    stripes: [Stripe; STRIPES],
}

impl Default for Metrics {
    fn default() -> Self {
        Self::new()
    }
}

impl Metrics {
    /// New zeroed counter set. The only constructor; `Default`
    /// delegates here.
    pub fn new() -> Self {
        Metrics { stripes: std::array::from_fn(|_| Stripe::default()) }
    }

    /// The stripe the current thread writes to.
    #[inline]
    fn stripe(&self) -> &Stripe {
        &self.stripes[CURRENT_STRIPE.with(|c| c.get())]
    }

    /// Sum one cell across all stripes.
    #[inline]
    fn sum(&self, cell: impl Fn(&Stripe) -> &AtomicU64) -> u64 {
        self.stripes.iter().map(|s| cell(s).load(Ordering::Relaxed)).sum()
    }

    /// Record one atomic RMW on shared metadata. Preemption point.
    #[inline]
    pub fn count_rmw(&self) {
        self.stripe().atomic_rmw.fetch_add(1, Ordering::Relaxed);
        preempt_point(PreemptPoint::Rmw);
    }

    /// Record one CAS attempt and whether it succeeded. Preemption point.
    #[inline]
    pub fn count_cas(&self, success: bool) {
        let stripe = self.stripe();
        stripe.cas_attempts.fetch_add(1, Ordering::Relaxed);
        if !success {
            stripe.cas_failures.fetch_add(1, Ordering::Relaxed);
        }
        preempt_point(PreemptPoint::Cas);
    }

    /// Record one lock acquisition. Preemption point — and therefore
    /// must be called *before* acquiring (never while holding) the lock,
    /// or the deterministic scheduler can park the holder.
    #[inline]
    pub fn count_lock(&self) {
        self.stripe().lock_acquires.fetch_add(1, Ordering::Relaxed);
        preempt_point(PreemptPoint::Lock);
    }

    /// Record `followers` requests served by another lane's atomic.
    #[inline]
    pub fn count_coalesced(&self, followers: u64) {
        self.stripe().coalesced_requests.fetch_add(followers, Ordering::Relaxed);
    }

    /// Record one allocation request and whether it succeeded.
    #[inline]
    pub fn count_malloc(&self, ok: bool) {
        let stripe = self.stripe();
        stripe.mallocs.fetch_add(1, Ordering::Relaxed);
        if !ok {
            stripe.failed_mallocs.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Record one free request.
    #[inline]
    pub fn count_free(&self) {
        self.stripe().frees.fetch_add(1, Ordering::Relaxed);
    }

    /// Record the start of a segment-reclamation attempt.
    #[inline]
    pub fn count_reclaim_attempt(&self) {
        self.stripe().reclaim_attempts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record a reclamation attempt aborted at the quiesce re-verify.
    #[inline]
    pub fn count_reclaim_abort(&self) {
        self.stripe().reclaim_aborts.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` spin iterations waiting out a format-time drain.
    #[inline]
    pub fn count_drain_spins(&self, n: u64) {
        self.stripe().drain_spins.fetch_add(n, Ordering::Relaxed);
    }

    /// Record one block bounced home by the `ldcv` staleness re-check.
    #[inline]
    pub fn count_straggler_bounce(&self) {
        self.stripe().straggler_bounces.fetch_add(1, Ordering::Relaxed);
    }

    /// Record one memory access served by the issuing SM's own device.
    /// NOT a preemption point: topology accounting must not perturb the
    /// deterministic schedule, so single-device replays stay bit-identical
    /// whether or not traffic classification is enabled.
    #[inline]
    pub fn count_local_access(&self) {
        self.stripe().local_accesses.fetch_add(1, Ordering::Relaxed);
    }

    /// Record `n` memory accesses crossing the interconnect to a peer
    /// device. NOT a preemption point (see [`Self::count_local_access`]).
    #[inline]
    pub fn count_peer_access(&self, n: u64) {
        self.stripe().peer_accesses.fetch_add(n, Ordering::Relaxed);
    }

    /// Reset all counters in all stripes to zero.
    pub fn reset(&self) {
        for stripe in &self.stripes {
            for cell in stripe.cells() {
                cell.store(0, Ordering::Relaxed);
            }
        }
    }

    /// Snapshot into a plain struct for reporting: each counter is the
    /// sum of its cell across all stripes.
    pub fn snapshot(&self) -> MetricsSnapshot {
        MetricsSnapshot {
            atomic_rmw: self.sum(|s| &s.atomic_rmw),
            cas_attempts: self.sum(|s| &s.cas_attempts),
            cas_failures: self.sum(|s| &s.cas_failures),
            lock_acquires: self.sum(|s| &s.lock_acquires),
            coalesced_requests: self.sum(|s| &s.coalesced_requests),
            mallocs: self.sum(|s| &s.mallocs),
            frees: self.sum(|s| &s.frees),
            failed_mallocs: self.sum(|s| &s.failed_mallocs),
            reclaim_attempts: self.sum(|s| &s.reclaim_attempts),
            reclaim_aborts: self.sum(|s| &s.reclaim_aborts),
            drain_spins: self.sum(|s| &s.drain_spins),
            straggler_bounces: self.sum(|s| &s.straggler_bounces),
            local_accesses: self.sum(|s| &s.local_accesses),
            peer_accesses: self.sum(|s| &s.peer_accesses),
        }
    }
}

/// Plain-value snapshot of [`Metrics`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct MetricsSnapshot {
    /// Atomic RMW instructions issued on shared metadata.
    pub atomic_rmw: u64,
    /// Compare-and-swap attempts.
    pub cas_attempts: u64,
    /// CAS attempts that failed.
    pub cas_failures: u64,
    /// Lock acquisitions (lock-based designs only).
    pub lock_acquires: u64,
    /// Requests served by another lane's coalesced atomic.
    pub coalesced_requests: u64,
    /// Allocation requests observed.
    pub mallocs: u64,
    /// Free requests observed.
    pub frees: u64,
    /// Allocation requests that returned null.
    pub failed_mallocs: u64,
    /// Segment-reclamation attempts started.
    pub reclaim_attempts: u64,
    /// Reclamation attempts aborted at the quiesce re-verify.
    pub reclaim_aborts: u64,
    /// Spin iterations spent in format-time straggler drains.
    pub drain_spins: u64,
    /// Blocks bounced home by the `ldcv` staleness re-check.
    pub straggler_bounces: u64,
    /// Memory accesses served by the issuing SM's own device.
    pub local_accesses: u64,
    /// Memory accesses that crossed the interconnect to a peer device.
    pub peer_accesses: u64,
}

impl MetricsSnapshot {
    /// Atomic operations per allocation — the ablation's headline number.
    pub fn rmw_per_malloc(&self) -> f64 {
        if self.mallocs == 0 {
            0.0
        } else {
            (self.atomic_rmw + self.cas_attempts) as f64 / self.mallocs as f64
        }
    }

    /// Fraction of classified memory accesses that crossed the
    /// interconnect — the E23 locality headline. 0.0 when no accesses
    /// were classified (single-device runs never classify).
    pub fn peer_share(&self) -> f64 {
        let total = self.local_accesses + self.peer_accesses;
        if total == 0 {
            0.0
        } else {
            self.peer_accesses as f64 / total as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        let m = Metrics::new();
        m.count_rmw();
        m.count_rmw();
        m.count_cas(true);
        m.count_cas(false);
        m.count_lock();
        m.count_coalesced(3);
        m.count_malloc(true);
        m.count_malloc(false);
        m.count_free();
        m.count_reclaim_attempt();
        m.count_reclaim_attempt();
        m.count_reclaim_abort();
        m.count_drain_spins(5);
        m.count_straggler_bounce();
        m.count_local_access();
        m.count_local_access();
        m.count_peer_access(2);
        let s = m.snapshot();
        assert_eq!(s.atomic_rmw, 2);
        assert_eq!(s.cas_attempts, 2);
        assert_eq!(s.cas_failures, 1);
        assert_eq!(s.lock_acquires, 1);
        assert_eq!(s.coalesced_requests, 3);
        assert_eq!(s.mallocs, 2);
        assert_eq!(s.failed_mallocs, 1);
        assert_eq!(s.frees, 1);
        assert_eq!(s.reclaim_attempts, 2);
        assert_eq!(s.reclaim_aborts, 1);
        assert_eq!(s.drain_spins, 5);
        assert_eq!(s.straggler_bounces, 1);
        assert_eq!(s.local_accesses, 2);
        assert_eq!(s.peer_accesses, 2);
        assert_eq!(s.peer_share(), 0.5);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn rmw_per_malloc_handles_zero() {
        let s = MetricsSnapshot::default();
        assert_eq!(s.rmw_per_malloc(), 0.0);
        let s =
            MetricsSnapshot { atomic_rmw: 10, cas_attempts: 2, mallocs: 4, ..Default::default() };
        assert_eq!(s.rmw_per_malloc(), 3.0);
    }

    #[test]
    fn concurrent_counting_is_lossless() {
        let m = Metrics::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        m.count_rmw();
                    }
                });
            }
        });
        assert_eq!(m.snapshot().atomic_rmw, 40_000);
    }

    #[test]
    fn bumps_from_distinct_stripes_aggregate() {
        // Concurrent bumps attributed to different SMs land in different
        // stripes; the snapshot must sum them all. Covers the mixed case
        // (striped writers + an unstriped host thread) and a reset of
        // every stripe, not just stripe 0.
        let m = Metrics::new();
        std::thread::scope(|s| {
            for sm in 0..32u32 {
                let m = &m;
                s.spawn(move || {
                    with_metrics_stripe(sm, || {
                        for _ in 0..1_000 {
                            m.count_rmw();
                        }
                        m.count_cas(sm % 2 == 0);
                        m.count_malloc(true);
                    });
                });
            }
        });
        m.count_free(); // host thread, stripe 0
        let s = m.snapshot();
        assert_eq!(s.atomic_rmw, 32_000);
        assert_eq!(s.cas_attempts, 32);
        assert_eq!(s.cas_failures, 16);
        assert_eq!(s.mallocs, 32);
        assert_eq!(s.frees, 1);
        m.reset();
        assert_eq!(m.snapshot(), MetricsSnapshot::default());
    }

    #[test]
    fn stripe_is_restored_on_exit() {
        let m = Metrics::new();
        with_metrics_stripe(7, || {
            with_metrics_stripe(3, || m.count_rmw());
            m.count_rmw();
        });
        m.count_rmw();
        // All three bumps are visible regardless of which stripe each
        // landed in.
        assert_eq!(m.snapshot().atomic_rmw, 3);
    }
}
