//! Allocation-lifecycle tracing: replayable, exportable event streams.
//!
//! The aggregate counters in [`crate::metrics`] say *how much* contended
//! work an allocator did; they cannot say *in what order*. Gallatin's
//! behaviour — and every bug class the deterministic scheduler exists to
//! catch — is defined by the order of atomic events: segment grabs, block
//! ring pushes/pops, batched slice-claim CAS loops, reclaim phases. This
//! module records that order as a stream of typed [`TraceEvent`]s, each
//! stamped with `(step, sm, warp, lane)`:
//!
//! * **step** — a global emission ticket (unique, monotonically drawn at
//!   each event). Under [`crate::launch::ExecMode::Deterministic`] exactly
//!   one warp runs at any instant, so the step order *is* the schedule
//!   order and a fixed `GALLATIN_SCHED_SEED` reproduces a byte-identical
//!   trace. Under pool mode steps still totally order the events, but the
//!   order is whatever the OS raced.
//! * **sm / warp / lane** — where the event happened, installed per warp
//!   by the launch machinery (see [`in_warp`]); host-side emissions carry
//!   `(0, 0)` and [`LANE_NONE`].
//!
//! # Cost model
//!
//! Recording is **off unless a sink is installed** for the current thread
//! ([`with_sink`]); the disabled path is a single thread-local check and
//! the event payload is built inside a closure that never runs, so
//! tracing adds *zero* atomic operations and zero preemption points to an
//! untraced run — schedules and the E16 atomic-count gate are unaffected.
//! Enabled, events land in per-SM cache-line-padded stripes (mirroring
//! [`crate::metrics`]) so tracing warps contend only within an SM. The
//! whole subsystem can additionally be compiled out with
//! `--no-default-features` (the `trace` feature), which turns every emit
//! site into a literally empty inline function.
//!
//! # Artifacts
//!
//! * [`chrome_trace_json`] renders a record slice as Chrome
//!   `trace_event` JSON (open in `chrome://tracing` or
//!   <https://ui.perfetto.dev>): `ts` = step, `pid` = SM, `tid` = warp,
//!   event fields in `args`.
//! * [`Ledger`] is the post-mortem analysis: it pairs mallocs with frees
//!   to report leaks, double frees, cross-warp free traffic, a free
//!   latency histogram (in schedule steps), and a live-bytes timeline.
//! * [`auto_dump`] writes the current sink's trace to
//!   `$GALLATIN_TRACE_DIR` (default `target/traces`) with a
//!   seed-stamped, deterministic filename — invoked by `gallatin-core`
//!   when an invariant check fails, so every failing seed leaves a
//!   self-contained, diffable artifact behind.

use std::cell::{Cell, RefCell};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Environment variable naming the directory [`auto_dump`] writes traces
/// to. Defaults to `target/traces` (relative to the process working
/// directory) when unset.
pub const TRACE_DIR_ENV: &str = "GALLATIN_TRACE_DIR";

/// Environment variable that, when set (to anything), asks the allocator
/// to [`auto_dump`] a trace whenever a segment-reclaim attempt aborts at
/// its quiesce re-verify. Off by default: aborts are a legitimate outcome
/// under contention, not an error, so unconditional dumping would bury
/// the interesting traces.
pub const TRACE_ABORT_DUMP_ENV: &str = "GALLATIN_TRACE_DUMP_ON_ABORT";

/// Lane stamp for events emitted outside any particular lane (warp-level
/// protocol steps, host-side calls).
pub const LANE_NONE: u32 = u32::MAX;

/// Number of event stripes; SM ids map onto stripes with a mask, exactly
/// as in [`crate::metrics`].
const STRIPES: usize = 16;

/// Default per-stripe event capacity. Generous for every workload in this
/// workspace; overflow is counted, never silently discarded (see
/// [`TraceSink::dropped`]).
const DEFAULT_STRIPE_CAPACITY: usize = 1 << 20;

/// Which allocation pipeline served a request (paper Figure 3 routing).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum AllocTier {
    /// Slice pipeline: coalesced sub-block allocations (Algorithm 3).
    Slice,
    /// Block pipeline: whole-block allocations (Algorithm 2).
    Block,
    /// Segment pipeline: multi-segment large allocations (Algorithm 1).
    Large,
}

impl AllocTier {
    /// Stable lowercase label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            AllocTier::Slice => "slice",
            AllocTier::Block => "block",
            AllocTier::Large => "large",
        }
    }

    /// Inverse of [`AllocTier::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "slice" => Some(AllocTier::Slice),
            "block" => Some(AllocTier::Block),
            "large" => Some(AllocTier::Large),
            _ => None,
        }
    }
}

/// Phase of a segment-reclamation attempt (the two-phase verify described
/// in `gallatin-core`'s table module).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReclaimPhase {
    /// Phase 1 entered: the segment was removed from its block tree.
    Attempt,
    /// The quiesce re-verify failed; the segment stays formatted.
    Abort,
    /// The segment was handed back to the segment tree.
    Publish,
}

impl ReclaimPhase {
    /// Stable lowercase label used in exported traces.
    pub fn label(self) -> &'static str {
        match self {
            ReclaimPhase::Attempt => "attempt",
            ReclaimPhase::Abort => "abort",
            ReclaimPhase::Publish => "publish",
        }
    }

    /// Inverse of [`ReclaimPhase::label`].
    pub fn from_label(s: &str) -> Option<Self> {
        match s {
            "attempt" => Some(ReclaimPhase::Attempt),
            "abort" => Some(ReclaimPhase::Abort),
            "publish" => Some(ReclaimPhase::Publish),
            _ => None,
        }
    }
}

/// One typed allocator event. Payload fields are plain integers so
/// records are `Copy`-cheap and export losslessly.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum TraceEvent {
    /// A successful allocation: `ptr` is the device offset handed out.
    Malloc {
        /// Bytes reserved (size-class rounded).
        size: u64,
        /// Which pipeline served the request.
        tier: AllocTier,
        /// Device offset of the allocation.
        ptr: u64,
    },
    /// A free request entering the allocator.
    Free {
        /// Device offset being returned.
        ptr: u64,
        /// Bytes the allocator recorded as released (size-class rounded,
        /// matching the paired `Malloc`). `0` means unknown — hand-built
        /// records, legacy traces, or a free the allocator could not
        /// size (e.g. a raced large free) — and skips the [`Ledger`]'s
        /// malloc/free size cross-check.
        size: u64,
    },
    /// A segment was claimed from the segment tree for a block class.
    SegmentGrab {
        /// Segment id.
        seg: u64,
        /// Destination slice class.
        class: u32,
    },
    /// A segment finished formatting (ring rebuilt, counters zeroed).
    SegmentReformat {
        /// Segment id.
        seg: u64,
        /// Class the segment now serves.
        class: u32,
        /// Spin iterations the straggler drain took.
        drain_spins: u64,
    },
    /// A segment-reclamation attempt crossed a protocol phase.
    SegmentReclaim {
        /// Segment id.
        seg: u64,
        /// Class the segment was formatted for.
        class: u32,
        /// Which phase was crossed.
        phase: ReclaimPhase,
    },
    /// A block was pushed home onto its segment's ring (cell published).
    RingPush {
        /// Segment id (the ring's tag).
        seg: u64,
        /// Block id pushed.
        block: u64,
    },
    /// A block was popped from its segment's ring (ticket CAS won).
    RingPop {
        /// Segment id (the ring's tag).
        seg: u64,
        /// Block id popped.
        block: u64,
    },
    /// A batched slice claim resolved (Algorithm 3's one-RMW group
    /// reservation).
    ClaimCas {
        /// Segment id.
        seg: u64,
        /// Block index within the segment.
        block: u64,
        /// CAS attempts issued (0: resolved without a CAS — stale
        /// generation or exhausted block).
        attempts: u32,
        /// Claim-word generation the caller held.
        gen: u32,
        /// Slices reserved (0: stale generation or block exhausted).
        taken: u32,
    },
    /// A coalesced same-class group was served by one leader atomic.
    CoalesceGroup {
        /// Slice class.
        class: u32,
        /// Lanes served by the single claim.
        lanes: u32,
    },
    /// A block entered an empty per-SM buffer slot.
    BufferInstall {
        /// Slot index within the class's buffer.
        slot: u32,
        /// Raw block handle installed.
        block: u64,
    },
    /// An exhausted buffered block was swapped for a fresh one.
    BufferReplace {
        /// Slot index within the class's buffer.
        slot: u32,
        /// Raw block handle evicted.
        old: u64,
        /// Raw block handle installed.
        new: u64,
    },
    /// A quiescent free segment was re-homed from one pool instance to
    /// another (elastic `GallatinPool::donate`). Emitted after the
    /// routing table switched the owner and before the recipient can
    /// claim the segment.
    SegmentDonate {
        /// Donor instance.
        from: u32,
        /// Recipient instance.
        to: u32,
        /// Segment id (global across the pool).
        seg: u64,
    },
}

impl TraceEvent {
    /// Stable event name used in exported traces.
    pub fn name(&self) -> &'static str {
        match self {
            TraceEvent::Malloc { .. } => "malloc",
            TraceEvent::Free { .. } => "free",
            TraceEvent::SegmentGrab { .. } => "segment_grab",
            TraceEvent::SegmentReformat { .. } => "segment_reformat",
            TraceEvent::SegmentReclaim { .. } => "segment_reclaim",
            TraceEvent::RingPush { .. } => "ring_push",
            TraceEvent::RingPop { .. } => "ring_pop",
            TraceEvent::ClaimCas { .. } => "claim_cas",
            TraceEvent::CoalesceGroup { .. } => "coalesce_group",
            TraceEvent::BufferInstall { .. } => "buffer_install",
            TraceEvent::BufferReplace { .. } => "buffer_replace",
            TraceEvent::SegmentDonate { .. } => "segment_donate",
        }
    }
}

/// One recorded event with its `(step, sm, warp, lane)` stamp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global emission ticket; totally orders the trace.
    pub step: u64,
    /// SM the emitting warp was resident on.
    pub sm: u32,
    /// Warp id of the emitter.
    pub warp: u64,
    /// Lane within the warp, or [`LANE_NONE`] for warp-/host-level events.
    pub lane: u32,
    /// Device the event belongs to. `0` on a single-device topology; a
    /// multi-device pool wraps each routed call in [`with_device`] so
    /// topology-mode traces and ledger anomalies name the owning device.
    /// Generalizes `instance` the same way `instance` generalized the
    /// pre-pool single-allocator stamp: the full scope of an event is
    /// `(device, instance)`.
    pub device: u32,
    /// Allocator instance the event belongs to. `0` for a standalone
    /// allocator; a `GallatinPool` wraps each instance's calls in
    /// [`with_instance`] so pool-mode traces and ledger anomalies name
    /// the owning instance.
    pub instance: u32,
    /// The event payload.
    pub event: TraceEvent,
}

/// One stripe's event buffer, padded so stripes never share a cache line
/// (the mutex word and the Vec header fit well inside 128 bytes).
#[repr(align(128))]
struct TraceStripe {
    buf: Mutex<Vec<TraceRecord>>,
    dropped: AtomicU64,
}

/// A bounded, striped event sink. Install one for the current thread with
/// [`with_sink`]; launches propagate it to every warp (see [`in_warp`]).
pub struct TraceSink {
    stripes: Vec<TraceStripe>,
    step: AtomicU64,
    capacity: usize,
    leak_check: AtomicBool,
}

impl Default for TraceSink {
    fn default() -> Self {
        Self::new()
    }
}

impl TraceSink {
    /// A sink with the default per-stripe capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_STRIPE_CAPACITY)
    }

    /// A sink holding at most `per_stripe` records per stripe; overflow
    /// increments the drop counter instead of growing without bound.
    pub fn with_capacity(per_stripe: usize) -> Self {
        assert!(per_stripe > 0);
        TraceSink {
            stripes: (0..STRIPES)
                .map(|_| TraceStripe { buf: Mutex::new(Vec::new()), dropped: AtomicU64::new(0) })
                .collect(),
            step: AtomicU64::new(0),
            capacity: per_stripe,
            leak_check: AtomicBool::new(false),
        }
    }

    /// Arm the teardown leak check: with this set, the allocator's
    /// invariant checker treats any allocation still live in the ledger
    /// as a violation (see `Gallatin::check_invariants`). Arm it only at
    /// a point where every allocation is expected to have been freed.
    pub fn set_leak_check(&self, on: bool) {
        self.leak_check.store(on, Ordering::Release);
    }

    /// Whether the teardown leak check is armed.
    pub fn leak_check_enabled(&self) -> bool {
        self.leak_check.load(Ordering::Acquire)
    }

    /// Record one event with the given stamp. Draws the next step ticket;
    /// called by [`emit_lane`] — instrumented code does not use this
    /// directly.
    pub fn record(
        &self,
        sm: u32,
        warp: u64,
        lane: u32,
        device: u32,
        instance: u32,
        event: TraceEvent,
    ) {
        let step = self.step.fetch_add(1, Ordering::Relaxed);
        let stripe = &self.stripes[sm as usize & (STRIPES - 1)];
        let mut buf = stripe.buf.lock().unwrap();
        if buf.len() < self.capacity {
            buf.push(TraceRecord { step, sm, warp, lane, device, instance, event });
        } else {
            stripe.dropped.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Events dropped to the capacity bound, across all stripes. A
    /// nonzero value means the trace is a prefix, not the full run —
    /// analyses should refuse or warn.
    pub fn dropped(&self) -> u64 {
        self.stripes.iter().map(|s| s.dropped.load(Ordering::Relaxed)).sum()
    }

    /// Records currently held, across all stripes.
    pub fn len(&self) -> usize {
        self.stripes.iter().map(|s| s.buf.lock().unwrap().len()).sum()
    }

    /// Whether no events have been recorded.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merge all stripes into one stream ordered by step. Steps are
    /// unique (one ticket per event), so the order — and any export built
    /// from it — is independent of stripe layout and deterministic
    /// whenever the emission order was.
    pub fn snapshot(&self) -> Vec<TraceRecord> {
        let mut out: Vec<TraceRecord> = Vec::with_capacity(self.len());
        for s in &self.stripes {
            out.extend(s.buf.lock().unwrap().iter().copied());
        }
        out.sort_by_key(|r| r.step);
        out
    }

    /// Discard all records and drop counts; the step counter keeps
    /// advancing so step values never repeat within one sink.
    pub fn clear(&self) {
        for s in &self.stripes {
            s.buf.lock().unwrap().clear();
            s.dropped.store(0, Ordering::Relaxed);
        }
    }
}

thread_local! {
    /// Sink receiving this thread's emissions; `None` (the default) makes
    /// every emit a no-op.
    static CURRENT_SINK: RefCell<Option<Arc<TraceSink>>> = const { RefCell::new(None) };
    /// `(sm, warp)` stamp for this thread's emissions. Installed per warp
    /// by the launch machinery; `(0, 0)` on host threads.
    static CURRENT_CTX: Cell<(u32, u64)> = const { Cell::new((0, 0)) };
    /// Allocator-instance stamp for this thread's emissions. `0` (the
    /// default) for standalone allocators; a pool scopes each routed call
    /// with [`with_instance`].
    static CURRENT_INSTANCE: Cell<u32> = const { Cell::new(0) };
    /// Device stamp for this thread's emissions. `0` (the default) on a
    /// single-device topology; a multi-device pool scopes each routed
    /// call with [`with_device`].
    static CURRENT_DEVICE: Cell<u32> = const { Cell::new(0) };
}

/// Stamp every event emitted during `f` with device `id` (restored
/// afterwards, also on panic). Used by a multi-device pool to scope each
/// routed malloc/free to the device serving it; nested scopes restore
/// the outer id — the exact mirror of [`with_instance`] one level up.
pub fn with_device<R>(id: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_DEVICE.with(|c| c.set(self.0));
        }
    }
    let _restore = CURRENT_DEVICE.with(|c| {
        let prev = c.get();
        c.set(id);
        Restore(prev)
    });
    f()
}

/// The device stamp currently installed for this thread.
pub fn current_device() -> u32 {
    CURRENT_DEVICE.with(|c| c.get())
}

/// Stamp every event emitted during `f` with allocator instance `id`
/// (restored afterwards, also on panic). Used by `GallatinPool` to scope
/// each routed malloc/free to the instance serving it; nested scopes
/// restore the outer id.
pub fn with_instance<R>(id: u32, f: impl FnOnce() -> R) -> R {
    struct Restore(u32);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_INSTANCE.with(|c| c.set(self.0));
        }
    }
    let _restore = CURRENT_INSTANCE.with(|c| {
        let prev = c.get();
        c.set(id);
        Restore(prev)
    });
    f()
}

/// The allocator-instance stamp currently installed for this thread.
pub fn current_instance() -> u32 {
    CURRENT_INSTANCE.with(|c| c.get())
}

/// Install `sink` as the current thread's trace sink for the duration of
/// `f` (restoring the previous sink afterwards, also on panic). Launches
/// started inside `f` propagate the sink to every warp they run.
pub fn with_sink<R>(sink: Arc<TraceSink>, f: impl FnOnce() -> R) -> R {
    struct Restore(Option<Arc<TraceSink>>);
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_SINK.with(|c| *c.borrow_mut() = self.0.take());
        }
    }
    let prev = CURRENT_SINK.with(|c| c.borrow_mut().replace(sink));
    let _restore = Restore(prev);
    f()
}

/// The sink installed for the current thread, if any.
pub fn current_sink() -> Option<Arc<TraceSink>> {
    CURRENT_SINK.with(|c| c.borrow().clone())
}

/// Whether tracing support is compiled in (the `trace` feature, on by
/// default). When `false`, emits are no-ops and sinks never fill, so
/// downstream trace-driven diagnostics (ledger leak checks, auto-dumps)
/// should be skipped rather than reporting from an empty trace.
pub const fn compiled_in() -> bool {
    cfg!(feature = "trace")
}

/// Run `f` with `sink` (when present) and the `(sm, warp)` stamp
/// installed for the current thread — the launch machinery wraps each
/// warp's kernel invocation in this so emissions are attributed to the
/// warp that made them. With no sink the call is just `f()`.
pub fn in_warp<R>(sink: Option<Arc<TraceSink>>, sm: u32, warp: u64, f: impl FnOnce() -> R) -> R {
    let Some(sink) = sink else { return f() };
    struct Restore((u32, u64));
    impl Drop for Restore {
        fn drop(&mut self) {
            CURRENT_CTX.with(|c| c.set(self.0));
        }
    }
    let _restore = CURRENT_CTX.with(|c| {
        let prev = c.get();
        c.set((sm, warp));
        Restore(prev)
    });
    with_sink(sink, f)
}

/// Emit an event from the current thread, attributed to `lane`. The
/// closure builds the payload only when a sink is installed: the disabled
/// path is one thread-local check — no atomics, no allocation, and no
/// preemption point, so tracing can never perturb a schedule.
#[inline]
pub fn emit_lane(lane: u32, event: impl FnOnce() -> TraceEvent) {
    #[cfg(feature = "trace")]
    CURRENT_SINK.with(|c| {
        // Clone out of the RefCell so a re-entrant borrow (e.g. an
        // analysis pass emitting while iterating) cannot alias.
        let sink = c.borrow().clone();
        if let Some(sink) = sink {
            let (sm, warp) = CURRENT_CTX.with(|ctx| ctx.get());
            let device = CURRENT_DEVICE.with(|d| d.get());
            let instance = CURRENT_INSTANCE.with(|i| i.get());
            sink.record(sm, warp, lane, device, instance, event());
        }
    });
    #[cfg(not(feature = "trace"))]
    let _ = (lane, event);
}

/// [`emit_lane`] for warp-level (or host-side) events with no specific
/// lane.
#[inline]
pub fn emit(event: impl FnOnce() -> TraceEvent) {
    emit_lane(LANE_NONE, event);
}

// =====================================================================
// Chrome trace_event export
// =====================================================================

/// Render records as Chrome `trace_event` JSON (the "JSON Array Format"
/// wrapped in an object), loadable by `chrome://tracing` and Perfetto:
/// instant events with `ts` = step, `pid` = SM, `tid` = warp, and the
/// typed payload (plus the lane) in `args`.
///
/// The rendering is a pure function of the record list — same records,
/// same bytes — which is what makes "byte-identical trace under a fixed
/// seed" a testable property.
pub fn chrome_trace_json(records: &[TraceRecord]) -> String {
    let mut out = String::with_capacity(128 * records.len() + 64);
    out.push_str("{\"displayTimeUnit\": \"ns\", \"traceEvents\": [\n");
    for (i, r) in records.iter().enumerate() {
        out.push_str(&format!(
            "{{\"name\": \"{}\", \"ph\": \"i\", \"s\": \"t\", \"ts\": {}, \"pid\": {}, \
             \"tid\": {}, \"args\": {{{}}}}}",
            r.event.name(),
            r.step,
            r.sm,
            r.warp,
            event_args(r)
        ));
        out.push_str(if i + 1 == records.len() { "\n" } else { ",\n" });
    }
    out.push_str("]}\n");
    out
}

/// The `args` object body for one record: the lane first, then — only
/// for topology-mode records (nonzero device) — the owning device, then
/// — only for pool-mode records (nonzero instance) — the owning
/// allocator instance, then the event's payload fields in declaration
/// order. Omitting `"device"` for device 0 and `"instance"` for
/// instance 0 keeps single-device, single-instance exports
/// byte-identical to those of earlier trace versions (and to any run
/// without a pool), which the fixed-seed determinism tests assert.
fn event_args(r: &TraceRecord) -> String {
    let mut lane = format!("\"lane\": {}", r.lane);
    if r.device != 0 {
        lane.push_str(&format!(", \"device\": {}", r.device));
    }
    if r.instance != 0 {
        lane.push_str(&format!(", \"instance\": {}", r.instance));
    }
    let rest = match r.event {
        TraceEvent::Malloc { size, tier, ptr } => {
            format!("\"size\": {size}, \"tier\": \"{}\", \"ptr\": {ptr}", tier.label())
        }
        TraceEvent::Free { ptr, size } => format!("\"ptr\": {ptr}, \"size\": {size}"),
        TraceEvent::SegmentGrab { seg, class } => format!("\"seg\": {seg}, \"class\": {class}"),
        TraceEvent::SegmentReformat { seg, class, drain_spins } => {
            format!("\"seg\": {seg}, \"class\": {class}, \"drain_spins\": {drain_spins}")
        }
        TraceEvent::SegmentReclaim { seg, class, phase } => {
            format!("\"seg\": {seg}, \"class\": {class}, \"phase\": \"{}\"", phase.label())
        }
        TraceEvent::RingPush { seg, block } => format!("\"seg\": {seg}, \"block\": {block}"),
        TraceEvent::RingPop { seg, block } => format!("\"seg\": {seg}, \"block\": {block}"),
        TraceEvent::ClaimCas { seg, block, attempts, gen, taken } => format!(
            "\"seg\": {seg}, \"block\": {block}, \"attempts\": {attempts}, \"gen\": {gen}, \
             \"taken\": {taken}"
        ),
        TraceEvent::CoalesceGroup { class, lanes } => {
            format!("\"class\": {class}, \"lanes\": {lanes}")
        }
        TraceEvent::BufferInstall { slot, block } => {
            format!("\"slot\": {slot}, \"block\": {block}")
        }
        TraceEvent::BufferReplace { slot, old, new } => {
            format!("\"slot\": {slot}, \"old\": {old}, \"new\": {new}")
        }
        TraceEvent::SegmentDonate { from, to, seg } => {
            format!("\"from\": {from}, \"to\": {to}, \"seg\": {seg}")
        }
    };
    format!("{lane}, {rest}")
}

// =====================================================================
// Lifecycle ledger (analysis lives in `crate::ledger`; re-exported here
// so `trace::Ledger` paths keep working)
// =====================================================================

pub use crate::ledger::{
    FreeAnomaly, FreeAnomalyKind, Ledger, LedgerOutcome, LiveAlloc, LATENCY_BUCKETS,
};

// =====================================================================
// Auto-dump
// =====================================================================

/// Write the current thread's sink as a Chrome trace to
/// `$GALLATIN_TRACE_DIR` (default `target/traces`), named
/// `trace_<label>_seed_<seed>.json` (seed from the active deterministic
/// schedule, `none` in pool mode) so reruns of the same failing seed
/// overwrite rather than accumulate. Returns the path written, or `None`
/// when no sink is installed or the write failed (diagnostics must never
/// turn into a second failure).
pub fn auto_dump(label: &str) -> Option<PathBuf> {
    let sink = current_sink()?;
    let records = sink.snapshot();
    let dir = std::env::var(TRACE_DIR_ENV).unwrap_or_else(|_| "target/traces".to_string());
    let seed = match crate::sched::current_sched_seed() {
        Some(s) => s.to_string(),
        None => "none".to_string(),
    };
    let path = PathBuf::from(dir).join(format!("trace_{label}_seed_{seed}.json"));
    std::fs::create_dir_all(path.parent()?).ok()?;
    std::fs::write(&path, chrome_trace_json(&records)).ok()?;
    Some(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(step: u64, warp: u64, event: TraceEvent) -> TraceRecord {
        TraceRecord { step, sm: 0, warp, lane: 0, device: 0, instance: 0, event }
    }

    #[test]
    fn emit_without_sink_is_a_noop_and_builds_no_payload() {
        let built = std::cell::Cell::new(false);
        emit(|| {
            built.set(true);
            TraceEvent::Free { ptr: 1, size: 0 }
        });
        assert!(!built.get(), "payload closure must not run without a sink");
    }

    // Exercises the live emit path, which compiles to nothing without
    // the `trace` feature.
    #[cfg(feature = "trace")]
    #[test]
    fn sink_records_in_step_order_across_stripes() {
        let sink = Arc::new(TraceSink::new());
        with_sink(sink.clone(), || {
            for i in 0..20u64 {
                // Rotate the SM stamp so records land in many stripes.
                in_warp(current_sink(), (i % 5) as u32, i, || {
                    emit_lane(i as u32, || TraceEvent::Free { ptr: i, size: 0 });
                });
            }
        });
        let snap = sink.snapshot();
        assert_eq!(snap.len(), 20);
        for (i, r) in snap.iter().enumerate() {
            assert_eq!(r.step, i as u64, "snapshot must be step-ordered");
            assert_eq!(r.event, TraceEvent::Free { ptr: i as u64, size: 0 });
            assert_eq!(r.sm, (i % 5) as u32);
        }
        // Outside with_sink, emission stops.
        emit(|| TraceEvent::Free { ptr: 99, size: 0 });
        assert_eq!(sink.len(), 20);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn capacity_overflow_is_counted_not_silent() {
        let sink = Arc::new(TraceSink::with_capacity(4));
        with_sink(sink.clone(), || {
            for i in 0..10u64 {
                emit(|| TraceEvent::Free { ptr: i, size: 0 });
            }
        });
        assert_eq!(sink.len(), 4, "one stripe (sm 0), capacity 4");
        assert_eq!(sink.dropped(), 6);
        sink.clear();
        assert!(sink.is_empty());
        assert_eq!(sink.dropped(), 0);
    }

    #[cfg(feature = "trace")]
    #[test]
    fn with_instance_stamps_and_restores() {
        let sink = Arc::new(TraceSink::new());
        with_sink(sink.clone(), || {
            emit(|| TraceEvent::Free { ptr: 0, size: 0 });
            with_instance(3, || {
                assert_eq!(current_instance(), 3);
                emit(|| TraceEvent::Free { ptr: 1, size: 0 });
                with_instance(1, || emit(|| TraceEvent::Free { ptr: 2, size: 0 }));
                // Nested scope restored the outer instance.
                emit(|| TraceEvent::Free { ptr: 3, size: 0 });
            });
            assert_eq!(current_instance(), 0);
            emit(|| TraceEvent::Free { ptr: 4, size: 0 });
        });
        let stamps: Vec<u32> = sink.snapshot().iter().map(|r| r.instance).collect();
        assert_eq!(stamps, vec![0, 3, 1, 3, 0]);
    }

    #[test]
    fn instance_tag_exports_only_when_nonzero() {
        let r0 = rec(0, 0, TraceEvent::Free { ptr: 7, size: 0 });
        let r1 = TraceRecord { instance: 2, ..r0 };
        let single = chrome_trace_json(&[r0]);
        assert!(
            !single.contains("instance"),
            "instance-0 exports must stay byte-identical to pre-pool traces: {single}"
        );
        let pooled = chrome_trace_json(&[r1]);
        assert!(pooled.contains("\"lane\": 0, \"instance\": 2"), "export: {pooled}");
    }

    #[test]
    fn device_tag_exports_only_when_nonzero() {
        let r0 = rec(0, 0, TraceEvent::Free { ptr: 7, size: 0 });
        let single = chrome_trace_json(&[r0]);
        assert!(
            !single.contains("device"),
            "device-0 exports must stay byte-identical to pre-topology traces: {single}"
        );
        // Device alone, instance alone, and both together each render in
        // the fixed lane → device → instance order.
        let dev = chrome_trace_json(&[TraceRecord { device: 1, ..r0 }]);
        assert!(dev.contains("\"lane\": 0, \"device\": 1, \"ptr\""), "export: {dev}");
        let both = chrome_trace_json(&[TraceRecord { device: 1, instance: 2, ..r0 }]);
        assert!(both.contains("\"lane\": 0, \"device\": 1, \"instance\": 2"), "export: {both}");
    }

    #[cfg(feature = "trace")]
    #[test]
    fn with_device_stamps_and_restores() {
        let sink = Arc::new(TraceSink::new());
        with_sink(sink.clone(), || {
            emit(|| TraceEvent::Free { ptr: 0, size: 0 });
            with_device(2, || {
                assert_eq!(current_device(), 2);
                emit(|| TraceEvent::Free { ptr: 1, size: 0 });
                // Instance scopes nest inside device scopes: the full
                // stamp is (device, instance).
                with_instance(5, || emit(|| TraceEvent::Free { ptr: 2, size: 0 }));
                with_device(1, || emit(|| TraceEvent::Free { ptr: 3, size: 0 }));
                emit(|| TraceEvent::Free { ptr: 4, size: 0 });
            });
            assert_eq!(current_device(), 0);
        });
        let stamps: Vec<(u32, u32)> =
            sink.snapshot().iter().map(|r| (r.device, r.instance)).collect();
        assert_eq!(stamps, vec![(0, 0), (2, 0), (2, 5), (1, 0), (2, 0)]);
    }

    #[test]
    fn chrome_export_is_deterministic_and_structured() {
        let records = vec![
            rec(0, 0, TraceEvent::Malloc { size: 16, tier: AllocTier::Slice, ptr: 64 }),
            rec(1, 0, TraceEvent::ClaimCas { seg: 0, block: 1, attempts: 1, gen: 2, taken: 3 }),
            rec(2, 1, TraceEvent::SegmentReclaim { seg: 4, class: 0, phase: ReclaimPhase::Abort }),
        ];
        let a = chrome_trace_json(&records);
        let b = chrome_trace_json(&records);
        assert_eq!(a, b, "export must be a pure function of the records");
        assert!(a.contains("\"traceEvents\""));
        assert!(a.contains("\"name\": \"malloc\""));
        assert!(a.contains("\"tier\": \"slice\""));
        assert!(a.contains("\"phase\": \"abort\""));
        assert!(a.contains("\"ts\": 1"));
        // Crude structural check: brackets balance.
        let balance = |open: char, close: char| {
            a.chars().filter(|&c| c == open).count() == a.chars().filter(|&c| c == close).count()
        };
        assert!(balance('{', '}') && balance('[', ']'));
        assert!(chrome_trace_json(&[]).contains("\"traceEvents\": [\n]"));
    }

    #[test]
    fn labels_roundtrip() {
        for t in [AllocTier::Slice, AllocTier::Block, AllocTier::Large] {
            assert_eq!(AllocTier::from_label(t.label()), Some(t));
        }
        for p in [ReclaimPhase::Attempt, ReclaimPhase::Abort, ReclaimPhase::Publish] {
            assert_eq!(ReclaimPhase::from_label(p.label()), Some(p));
        }
        assert_eq!(AllocTier::from_label("bogus"), None);
        assert_eq!(ReclaimPhase::from_label("bogus"), None);
    }

    #[test]
    fn leak_check_flag_toggles() {
        let sink = TraceSink::new();
        assert!(!sink.leak_check_enabled());
        sink.set_leak_check(true);
        assert!(sink.leak_check_enabled());
    }
}
