//! A virtual clock counting *schedule steps*, the simulator's time unit.
//!
//! Wall clock is meaningless inside gpu-sim: a deterministic launch runs
//! serialized on host threads, so elapsed nanoseconds measure the host,
//! not the modeled device. The unit that *is* meaningful — and exactly
//! reproducible per `GALLATIN_SCHED_SEED` — is the scheduler's turn
//! grant: one step per preemption-point crossing (see
//! [`crate::sched::run_tasks`]). [`StepClock`] keeps a monotone cursor
//! in that unit so a host-side layer (e.g. the bench crate's serving
//! front end) can stamp requests on arrival, advance by each kernel
//! launch's reported step count ([`crate::launch_warps_counted`]), and
//! measure queueing + service delay as step deltas that replay
//! identically for identical seeds.

/// A monotone virtual clock in schedule steps.
///
/// ```
/// use gpu_sim::clock::StepClock;
///
/// let mut clock = StepClock::new();
/// let arrived = clock.now();            // stamp a request
/// clock.advance(40);                    // a kernel launch took 40 steps
/// assert_eq!(clock.now() - arrived, 40, "queueing+service delay in steps");
/// ```
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct StepClock {
    now: u64,
}

impl StepClock {
    /// A clock at step 0.
    pub fn new() -> Self {
        StepClock { now: 0 }
    }

    /// The current step.
    #[inline]
    pub fn now(&self) -> u64 {
        self.now
    }

    /// Advance by `steps` and return the new time.
    pub fn advance(&mut self, steps: u64) -> u64 {
        self.now = self.now.checked_add(steps).expect("step clock overflow");
        self.now
    }

    /// Move forward to `step` if it is in the future (idle skip to the
    /// next event); a past `step` leaves the clock unchanged — the clock
    /// never runs backwards.
    pub fn advance_to(&mut self, step: u64) -> u64 {
        self.now = self.now.max(step);
        self.now
    }
}

/// A value stamped with the step it was observed at — the arrival /
/// completion bookkeeping unit of an open-loop driver.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Stamped<T> {
    /// Step the value was stamped at.
    pub at: u64,
    /// The stamped value.
    pub item: T,
}

impl<T> Stamped<T> {
    /// Stamp `item` with the clock's current step.
    pub fn now(clock: &StepClock, item: T) -> Self {
        Stamped { at: clock.now(), item }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotone() {
        let mut c = StepClock::new();
        assert_eq!(c.now(), 0);
        assert_eq!(c.advance(7), 7);
        assert_eq!(c.advance_to(5), 7, "advance_to never rewinds");
        assert_eq!(c.advance_to(30), 30);
        assert_eq!(c.advance(0), 30);
    }

    #[test]
    fn stamps_carry_the_observation_step() {
        let mut c = StepClock::new();
        c.advance(12);
        let s = Stamped::now(&c, "req");
        c.advance(8);
        assert_eq!((s.at, c.now() - s.at), (12, 8));
    }

    #[test]
    #[should_panic(expected = "step clock overflow")]
    fn overflow_is_loud() {
        let mut c = StepClock::new();
        c.advance(u64::MAX);
        c.advance(1);
    }
}
