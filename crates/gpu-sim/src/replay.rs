//! Replay scripts: a recorded trace reduced to a re-issuable workload.
//!
//! A [`ReplayScript`] is the workload half of a [`crate::trace`] capture:
//! per-warp sequences of malloc/free operations that any harness can
//! re-issue against any [`crate::alloc_api::DeviceAllocator`]. Converting
//! a trace to a script ([`ReplayScript::from_trace`]) keeps the three
//! things that determine allocator behaviour — request sizes, lifetimes
//! (which earlier allocation each free targets), and SM placement (the
//! warp each operation runs on, which fixes `sm_id = warp_id % num_sms`)
//! — and drops everything schedule-dependent (steps, pointers).
//!
//! Pointers do not survive the round trip by design: a replayed run is
//! free to place allocations elsewhere. Frees therefore reference the
//! *slot* of the malloc they close — the per-warp index of that
//! allocation — so the script replays the same lifetime structure no
//! matter what addresses the target allocator hands out.
//!
//! ## Text format (`gallatin-replay-v1`)
//!
//! One line per operation, whitespace-separated, `#` starts a comment:
//!
//! ```text
//! # gallatin-replay-v1 sms=8 warps=32
//! m <warp> <lane> <slot> <size>
//! f <warp> <lane> <slot>
//! ```
//!
//! The header line is mandatory and fixes the device width (`sms`) and
//! warp count (`warps`). `m` allocates `size` bytes into per-warp slot
//! `slot` from `lane`; `f` frees the pointer held by slot `slot`. Slots
//! are assigned in malloc order within a warp (the `slot` field is
//! redundant but explicit, so scripts are greppable and hand-editable);
//! lines of different warps may be interleaved freely — per-warp order is
//! what matters, matching the execution model where warps are
//! independently scheduled.

use crate::trace::{TraceEvent, TraceRecord, LANE_NONE};
use std::collections::HashMap;

/// One scripted operation within a warp.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReplayOp {
    /// Allocate `size` bytes from `lane`, storing the pointer in the
    /// warp's `slot`.
    Malloc {
        /// Issuing lane, `0..32`.
        lane: u32,
        /// Per-warp pointer slot this allocation occupies.
        slot: u32,
        /// Request size in bytes.
        size: u64,
    },
    /// Free the pointer in `slot` from `lane`.
    Free {
        /// Issuing lane, `0..32`.
        lane: u32,
        /// Per-warp pointer slot to free.
        slot: u32,
    },
}

/// The operation sequence of one warp.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct WarpScript {
    /// Operations in program order for this warp.
    pub ops: Vec<ReplayOp>,
}

/// A complete replayable workload: one script per warp plus the device
/// width that fixes each warp's SM placement.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ReplayScript {
    /// Streaming multiprocessors of the device the workload targets
    /// (`sm_id = warp_id % num_sms`, as in [`crate::launch()`]).
    pub num_sms: u32,
    /// Per-warp scripts; index is the warp id.
    pub warps: Vec<WarpScript>,
}

/// What [`ReplayScript::from_trace`] kept and what it had to bend.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ConversionStats {
    /// Malloc events converted.
    pub mallocs: u64,
    /// Free events converted.
    pub frees: u64,
    /// Frees issued by a different warp than the allocating one in the
    /// original trace. Scripts are per-warp programs with no cross-warp
    /// synchronization, so these are reassigned to the allocating warp
    /// (preserving the lifetime, moving the issuer).
    pub reassigned_frees: u64,
    /// Free events whose pointer no trace malloc produced (or that freed
    /// it twice); they cannot be expressed as a slot reference and are
    /// dropped from the script.
    pub dropped_frees: u64,
}

/// `LANE_NONE` (scalar/leader-only events) canonicalizes to lane 0.
fn canonical_lane(lane: u32) -> u32 {
    if lane == LANE_NONE {
        0
    } else {
        lane
    }
}

impl ReplayScript {
    /// Reduce a step-ordered trace (as returned by
    /// [`crate::trace::TraceSink::snapshot`]) to a replay script for a
    /// `num_sms`-wide device. Non-lifecycle events are ignored; pairing
    /// is per `(device, instance, ptr)` exactly like
    /// [`crate::ledger::Ledger`].
    pub fn from_trace(records: &[TraceRecord], num_sms: u32) -> (ReplayScript, ConversionStats) {
        let mut warps: Vec<WarpScript> = Vec::new();
        let mut slots_taken: Vec<u32> = Vec::new();
        let mut by_ptr: HashMap<(u32, u32, u64), (usize, u32)> = HashMap::new();
        let mut stats = ConversionStats::default();
        let warp_at = |warps: &mut Vec<WarpScript>, slots: &mut Vec<u32>, w: usize| {
            if warps.len() <= w {
                warps.resize_with(w + 1, WarpScript::default);
                slots.resize(w + 1, 0);
            }
        };
        for r in records {
            match r.event {
                TraceEvent::Malloc { size, ptr, .. } => {
                    let w = r.warp as usize;
                    warp_at(&mut warps, &mut slots_taken, w);
                    let slot = slots_taken[w];
                    slots_taken[w] += 1;
                    warps[w].ops.push(ReplayOp::Malloc {
                        lane: canonical_lane(r.lane),
                        slot,
                        size,
                    });
                    // A ptr re-allocated while mapped means its free was
                    // never traced; the newer incarnation wins, the older
                    // slot is simply never freed (mirrors Ledger's leak).
                    by_ptr.insert((r.device, r.instance, ptr), (w, slot));
                    stats.mallocs += 1;
                }
                TraceEvent::Free { ptr, .. } => {
                    // The freeing warp stays in the script even when its
                    // op is reassigned: it occupied an SM in the original
                    // launch, and the warp count preserves the striping.
                    warp_at(&mut warps, &mut slots_taken, r.warp as usize);
                    match by_ptr.remove(&(r.device, r.instance, ptr)) {
                        Some((w, slot)) => {
                            if w as u64 != r.warp {
                                stats.reassigned_frees += 1;
                            }
                            warps[w]
                                .ops
                                .push(ReplayOp::Free { lane: canonical_lane(r.lane), slot });
                            stats.frees += 1;
                        }
                        None => stats.dropped_frees += 1,
                    }
                }
                _ => {}
            }
        }
        (ReplayScript { num_sms, warps }, stats)
    }

    /// Number of warps the script drives.
    pub fn num_warps(&self) -> u64 {
        self.warps.len() as u64
    }

    /// Total operations across all warps.
    pub fn total_ops(&self) -> u64 {
        self.warps.iter().map(|w| w.ops.len() as u64).sum()
    }

    /// Structural validation: lanes in range, every free references a
    /// slot an earlier malloc of the same warp filled, and no slot is
    /// freed twice or malloc'd twice. Returns the number of slots still
    /// live at script end (intentional leaks, or a truncated capture).
    pub fn validate(&self) -> Result<u64, String> {
        let mut live_at_end = 0u64;
        for (w, ws) in self.warps.iter().enumerate() {
            let mut filled: Vec<bool> = Vec::new();
            let mut live: Vec<bool> = Vec::new();
            for op in &ws.ops {
                match *op {
                    ReplayOp::Malloc { lane, slot, .. } => {
                        if lane >= 32 {
                            return Err(format!("warp {w}: malloc lane {lane} out of range"));
                        }
                        let s = slot as usize;
                        if s >= filled.len() {
                            filled.resize(s + 1, false);
                            live.resize(s + 1, false);
                        }
                        if filled[s] {
                            return Err(format!("warp {w}: slot {slot} malloc'd twice"));
                        }
                        filled[s] = true;
                        live[s] = true;
                    }
                    ReplayOp::Free { lane, slot } => {
                        if lane >= 32 {
                            return Err(format!("warp {w}: free lane {lane} out of range"));
                        }
                        let s = slot as usize;
                        if s >= live.len() || !filled[s] {
                            return Err(format!("warp {w}: free of never-filled slot {slot}"));
                        }
                        if !live[s] {
                            return Err(format!("warp {w}: slot {slot} freed twice"));
                        }
                        live[s] = false;
                    }
                }
            }
            live_at_end += live.iter().filter(|&&l| l).count() as u64;
        }
        Ok(live_at_end)
    }

    /// Render as `gallatin-replay-v1` text (see the module docs). Warps
    /// are emitted in id order, each warp's ops in program order, so the
    /// output is deterministic and diffable.
    pub fn render(&self) -> String {
        let mut out =
            format!("# gallatin-replay-v1 sms={} warps={}\n", self.num_sms, self.warps.len());
        for (w, ws) in self.warps.iter().enumerate() {
            for op in &ws.ops {
                match *op {
                    ReplayOp::Malloc { lane, slot, size } => {
                        out.push_str(&format!("m {w} {lane} {slot} {size}\n"));
                    }
                    ReplayOp::Free { lane, slot } => {
                        out.push_str(&format!("f {w} {lane} {slot}\n"));
                    }
                }
            }
        }
        out
    }

    /// Parse `gallatin-replay-v1` text. Inverse of
    /// [`ReplayScript::render`]; tolerates blank lines, comments, and
    /// interleaved warps.
    pub fn parse(text: &str) -> Result<ReplayScript, String> {
        let mut lines = text.lines().enumerate();
        let header = loop {
            match lines.next() {
                Some((_, l)) if l.trim().is_empty() => continue,
                Some((_, l)) => break l.trim(),
                None => return Err("empty replay script".to_string()),
            }
        };
        let rest = header
            .strip_prefix("# gallatin-replay-v1")
            .ok_or_else(|| format!("bad header {header:?}: expected `# gallatin-replay-v1 ...`"))?;
        let mut num_sms: Option<u32> = None;
        let mut num_warps: Option<usize> = None;
        for kv in rest.split_whitespace() {
            match kv.split_once('=') {
                Some(("sms", v)) => {
                    num_sms = Some(v.parse().map_err(|_| format!("bad sms value {v:?}"))?)
                }
                Some(("warps", v)) => {
                    num_warps = Some(v.parse().map_err(|_| format!("bad warps value {v:?}"))?)
                }
                _ => return Err(format!("unknown header field {kv:?}")),
            }
        }
        let num_sms = num_sms.ok_or("header missing sms=")?;
        let num_warps = num_warps.ok_or("header missing warps=")?;
        if num_sms == 0 {
            return Err("sms must be positive".to_string());
        }
        let mut warps = vec![WarpScript::default(); num_warps];
        for (no, line) in lines {
            let line = line.split('#').next().unwrap_or("").trim();
            if line.is_empty() {
                continue;
            }
            let mut f = line.split_whitespace();
            let kind = f.next().unwrap();
            let mut field = |name: &str| -> Result<u64, String> {
                f.next()
                    .ok_or_else(|| format!("line {}: missing {name}", no + 1))?
                    .parse::<u64>()
                    .map_err(|_| format!("line {}: bad {name}", no + 1))
            };
            let warp = field("warp")? as usize;
            if warp >= num_warps {
                return Err(format!("line {}: warp {warp} >= header warps={num_warps}", no + 1));
            }
            let lane = field("lane")? as u32;
            let slot = field("slot")? as u32;
            let op = match kind {
                "m" => ReplayOp::Malloc { lane, slot, size: field("size")? },
                "f" => ReplayOp::Free { lane, slot },
                other => return Err(format!("line {}: unknown op {other:?}", no + 1)),
            };
            if f.next().is_some() {
                return Err(format!("line {}: trailing fields", no + 1));
            }
            warps[warp].ops.push(op);
        }
        Ok(ReplayScript { num_sms, warps })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AllocTier;

    fn rec(step: u64, warp: u64, lane: u32, instance: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { step, sm: (warp % 4) as u32, warp, lane, device: 0, instance, event }
    }

    fn m(step: u64, warp: u64, lane: u32, ptr: u64, size: u64) -> TraceRecord {
        rec(step, warp, lane, 0, TraceEvent::Malloc { size, tier: AllocTier::Slice, ptr })
    }

    #[test]
    fn conversion_pairs_frees_to_slots() {
        let records = vec![
            m(0, 0, 0, 100, 16),
            m(1, 0, 1, 200, 32),
            m(2, 1, 0, 300, 64),
            rec(3, 0, 0, 0, TraceEvent::Free { ptr: 200, size: 0 }),
            rec(4, 1, LANE_NONE, 0, TraceEvent::Free { ptr: 300, size: 0 }),
            rec(5, 0, 0, 0, TraceEvent::Free { ptr: 100, size: 0 }),
        ];
        let (script, stats) = ReplayScript::from_trace(&records, 4);
        assert_eq!(stats, ConversionStats { mallocs: 3, frees: 3, ..Default::default() });
        assert_eq!(script.num_warps(), 2);
        assert_eq!(script.total_ops(), 6);
        assert_eq!(
            script.warps[0].ops,
            vec![
                ReplayOp::Malloc { lane: 0, slot: 0, size: 16 },
                ReplayOp::Malloc { lane: 1, slot: 1, size: 32 },
                ReplayOp::Free { lane: 0, slot: 1 },
                ReplayOp::Free { lane: 0, slot: 0 },
            ]
        );
        // LANE_NONE canonicalizes to lane 0.
        assert_eq!(script.warps[1].ops[1], ReplayOp::Free { lane: 0, slot: 0 });
        assert_eq!(script.validate(), Ok(0));
    }

    #[test]
    fn cross_warp_frees_are_reassigned_to_the_allocating_warp() {
        let records = vec![
            m(0, 0, 0, 100, 16),
            // Warp 1 frees warp 0's allocation: scripts have no cross-warp
            // channel, so the free moves to warp 0's program.
            rec(1, 1, 0, 0, TraceEvent::Free { ptr: 100, size: 0 }),
        ];
        let (script, stats) = ReplayScript::from_trace(&records, 4);
        assert_eq!(stats.reassigned_frees, 1);
        assert_eq!(script.warps[0].ops.len(), 2);
        assert!(script.warps[1].ops.is_empty());
        assert_eq!(script.validate(), Ok(0));
    }

    #[test]
    fn unmatched_frees_are_dropped_and_counted() {
        let records = vec![
            m(0, 0, 0, 100, 16),
            rec(1, 0, 0, 0, TraceEvent::Free { ptr: 100, size: 0 }),
            rec(2, 0, 0, 0, TraceEvent::Free { ptr: 100, size: 0 }), // double free
            rec(3, 0, 0, 0, TraceEvent::Free { ptr: 999, size: 0 }), // never allocated
            // Same local offset, different instance: pairing is per
            // (instance, ptr), so this one is also unmatched.
            rec(4, 0, 0, 7, TraceEvent::Free { ptr: 100, size: 0 }),
        ];
        let (script, stats) = ReplayScript::from_trace(&records, 4);
        assert_eq!(stats.frees, 1);
        assert_eq!(stats.dropped_frees, 3);
        assert_eq!(script.total_ops(), 2);
    }

    #[test]
    fn text_format_round_trips() {
        let records = vec![
            m(0, 0, 3, 100, 16),
            m(1, 2, 0, 300, 1024),
            rec(2, 0, 3, 0, TraceEvent::Free { ptr: 100, size: 0 }),
        ];
        let (script, _) = ReplayScript::from_trace(&records, 8);
        let text = script.render();
        assert!(text.starts_with("# gallatin-replay-v1 sms=8 warps=3\n"), "{text}");
        assert_eq!(ReplayScript::parse(&text), Ok(script.clone()));
        // Comments, blank lines, and interleaving are tolerated.
        let shuffled =
            "\n# gallatin-replay-v1 sms=8 warps=3\nm 2 0 0 1024 # big\n\nm 0 3 0 16\nf 0 3 0\n";
        assert_eq!(ReplayScript::parse(shuffled), Ok(script));
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(ReplayScript::parse("").is_err());
        assert!(ReplayScript::parse("m 0 0 0 16\n").is_err(), "missing header");
        assert!(ReplayScript::parse("# gallatin-replay-v1 sms=4\n").is_err(), "missing warps");
        assert!(ReplayScript::parse("# gallatin-replay-v1 sms=0 warps=1\n").is_err());
        let hdr = "# gallatin-replay-v1 sms=4 warps=1\n";
        assert!(ReplayScript::parse(&format!("{hdr}m 1 0 0 16\n")).is_err(), "warp out of range");
        assert!(ReplayScript::parse(&format!("{hdr}m 0 0 0\n")).is_err(), "missing size");
        assert!(ReplayScript::parse(&format!("{hdr}x 0 0 0\n")).is_err(), "unknown op");
        assert!(ReplayScript::parse(&format!("{hdr}f 0 0 0 9\n")).is_err(), "trailing field");
        assert!(ReplayScript::parse(&format!("{hdr}m 0 zero 0 16\n")).is_err(), "bad number");
    }

    #[test]
    fn validate_flags_bad_lifetimes() {
        let ok = ReplayScript {
            num_sms: 1,
            warps: vec![WarpScript { ops: vec![ReplayOp::Malloc { lane: 0, slot: 0, size: 16 }] }],
        };
        assert_eq!(ok.validate(), Ok(1), "one slot intentionally live at end");
        let double = ReplayScript {
            num_sms: 1,
            warps: vec![WarpScript {
                ops: vec![
                    ReplayOp::Malloc { lane: 0, slot: 0, size: 16 },
                    ReplayOp::Free { lane: 0, slot: 0 },
                    ReplayOp::Free { lane: 0, slot: 0 },
                ],
            }],
        };
        assert!(double.validate().unwrap_err().contains("freed twice"));
        let unfilled = ReplayScript {
            num_sms: 1,
            warps: vec![WarpScript { ops: vec![ReplayOp::Free { lane: 0, slot: 3 }] }],
        };
        assert!(unfilled.validate().unwrap_err().contains("never-filled"));
        let lane = ReplayScript {
            num_sms: 1,
            warps: vec![WarpScript { ops: vec![ReplayOp::Malloc { lane: 40, slot: 0, size: 16 }] }],
        };
        assert!(lane.validate().unwrap_err().contains("out of range"));
    }
}
