//! Device memory: one contiguous arena standing in for GPU DRAM.
//!
//! All of the allocators in this workspace hand out [`DevicePtr`]s, which
//! are byte offsets into a [`DeviceMemory`] arena. Using offsets instead of
//! host pointers keeps the paper's pointer arithmetic intact: Gallatin
//! locates the segment, block and slice of an allocation by integer
//! division on the offset (paper §5), and the benchmark's correctness
//! checks write/read payloads through the arena.
//!
//! # Access discipline
//!
//! Two kinds of access are offered:
//!
//! * **Atomic views** ([`DeviceMemory::atomic_u32`] /
//!   [`DeviceMemory::atomic_u64`]): used for all allocator *metadata*
//!   (counters, bitmaps, queue slots). These are real `std::sync::atomic`
//!   objects aliasing the arena, so concurrent metadata access is fully
//!   defined behaviour.
//! * **Payload copies** ([`DeviceMemory::write_bytes`] /
//!   [`DeviceMemory::read_bytes`]): plain `memcpy`-style access used by
//!   benchmark kernels for allocation payloads. The required discipline is
//!   the same as on a GPU: a payload range must be accessed by its owner
//!   only between `malloc` and `free`. The allocator property tests verify
//!   ownership is exclusive (no double allocation), which is what makes
//!   this discipline sound.

use std::alloc::{alloc_zeroed, dealloc, handle_alloc_error, Layout};
use std::ptr::NonNull;
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

/// Arena alignment. 16 bytes satisfies every atomic type and — critically
/// — keeps `alloc_zeroed` on the `calloc` fast path: for alignments above
/// the platform minimum (16 on x86-64 Linux) the allocator falls back to
/// `posix_memalign` + an explicit memset, which makes a multi-GiB arena
/// fully resident at construction instead of lazily zero-paged.
const ARENA_ALIGN: usize = 16;

/// A device pointer: a byte offset into a [`DeviceMemory`] arena.
///
/// `DevicePtr::NULL` plays the role of `nullptr` returned by a failed
/// device `malloc`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct DevicePtr(pub u64);

impl DevicePtr {
    /// The null device pointer (allocation failure).
    pub const NULL: DevicePtr = DevicePtr(u64::MAX);

    /// Whether this pointer is null.
    #[inline]
    pub fn is_null(self) -> bool {
        self == Self::NULL
    }

    /// Offset arithmetic, mirroring `ptr + bytes` in device code.
    #[inline]
    pub fn offset(self, bytes: u64) -> DevicePtr {
        debug_assert!(!self.is_null());
        DevicePtr(self.0 + bytes)
    }

    /// The device holding this pointer's bytes, on a topology whose
    /// per-device arenas are `device_stride` bytes each (devices are
    /// carved contiguously from one reservation, so the device id is the
    /// quotient — the same integer-division routing Gallatin uses for
    /// segment ids, lifted one level up).
    #[inline]
    pub fn device_of(self, device_stride: u64) -> u32 {
        debug_assert!(!self.is_null());
        debug_assert!(device_stride > 0);
        (self.0 / device_stride) as u32
    }

    /// This pointer's byte offset within its device's arena (the
    /// remainder of the device-id division).
    #[inline]
    pub fn local_offset(self, device_stride: u64) -> u64 {
        debug_assert!(!self.is_null());
        debug_assert!(device_stride > 0);
        self.0 % device_stride
    }
}

/// The backing host allocation for one or more [`DeviceMemory`] views.
///
/// Owned behind an `Arc` so [`DeviceMemory::split`] can hand out disjoint
/// windows over the same physical bytes; the allocation is freed when the
/// last view drops.
struct Arena {
    base: NonNull<u8>,
    len: usize,
}

// SAFETY: the arena is plain memory; all concurrent access goes through
// atomics or follows the exclusive-ownership payload discipline documented
// on `DeviceMemory`.
unsafe impl Send for Arena {}
unsafe impl Sync for Arena {}

impl Drop for Arena {
    fn drop(&mut self) {
        let layout = Layout::from_size_align(self.len, ARENA_ALIGN).expect("arena layout");
        // SAFETY: allocated with the identical layout in `DeviceMemory::new`.
        unsafe { dealloc(self.base.as_ptr(), layout) };
    }
}

/// A contiguous, zero-initialized arena standing in for GPU DRAM.
///
/// The arena is allocated once (the paper's Gallatin similarly grabs its
/// whole heap with a single `cudaMalloc` at init) and freed when the last
/// view of it drops. A `DeviceMemory` is a *window* `[off, off+len)` into
/// the shared arena: [`DeviceMemory::split`] partitions one arena into
/// disjoint sub-views (one per `GallatinPool` instance) whose offsets all
/// start at zero, exactly like per-device heap partitions carved from one
/// reservation.
pub struct DeviceMemory {
    arena: Arc<Arena>,
    off: usize,
    len: usize,
}

impl DeviceMemory {
    /// Allocate a zeroed arena of `len` bytes (rounded up to the arena
    /// alignment).
    ///
    /// # Panics
    /// Panics if `len == 0` or if the host allocation fails.
    pub fn new(len: usize) -> Self {
        assert!(len > 0, "device memory must be non-empty");
        let len = len.next_multiple_of(ARENA_ALIGN);
        let layout = Layout::from_size_align(len, ARENA_ALIGN).expect("arena layout");
        // SAFETY: layout has non-zero size.
        let raw = unsafe { alloc_zeroed(layout) };
        let Some(base) = NonNull::new(raw) else { handle_alloc_error(layout) };
        DeviceMemory { arena: Arc::new(Arena { base, len }), off: 0, len }
    }

    /// Partition this view into `n` equal, disjoint sub-views sharing the
    /// same backing arena. Offset 0 of part `i` aliases offset
    /// `i * (len / n)` of `self`; the parent view remains usable for
    /// whole-arena access (stamps, debugging) alongside the parts.
    ///
    /// # Panics
    /// Panics if `n == 0`, if `len` is not divisible by `n`, or if the
    /// partition size would break the arena alignment.
    pub fn split(&self, n: usize) -> Vec<DeviceMemory> {
        assert!(n > 0, "cannot split device memory into zero parts");
        assert!(
            self.len.is_multiple_of(n),
            "arena of {} bytes does not split evenly into {n} parts",
            self.len
        );
        let part = self.len / n;
        assert!(
            part.is_multiple_of(ARENA_ALIGN),
            "partition size {part} breaks {ARENA_ALIGN}-byte arena alignment"
        );
        (0..n)
            .map(|i| DeviceMemory {
                arena: Arc::clone(&self.arena),
                off: self.off + i * part,
                len: part,
            })
            .collect()
    }

    /// A second view of the same window, sharing the backing arena.
    /// Used where several owners need whole-range access to one heap
    /// (e.g. every `GallatinPool` instance holds a full-arena view so a
    /// donated segment's bytes stay reachable from its new home).
    pub fn clone_view(&self) -> DeviceMemory {
        DeviceMemory { arena: Arc::clone(&self.arena), off: self.off, len: self.len }
    }

    /// Host pointer to byte offset `off` of this view.
    #[inline]
    fn ptr(&self, off: usize) -> *mut u8 {
        // SAFETY: callers bounds-check `off` against `self.len` first, and
        // `self.off + self.len` never exceeds the arena length.
        unsafe { self.arena.base.as_ptr().add(self.off + off) }
    }

    /// Total size of this view in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the arena is empty (never true; arenas are non-empty).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn check(&self, off: u64, bytes: usize, align: usize) {
        let off = off as usize;
        assert!(
            off.is_multiple_of(align),
            "device access at offset {off} misaligned for {align}-byte access"
        );
        assert!(
            off.checked_add(bytes).is_some_and(|end| end <= self.len),
            "device access [{off}, {off}+{bytes}) out of bounds (arena {} bytes)",
            self.len
        );
    }

    /// An atomic 32-bit view of the word at byte offset `off`.
    ///
    /// Models a CUDA atomic on a 32-bit machine word (paper §4.3: "one
    /// atomic operation on a 32-bit machine word is employed for malloc
    /// and free").
    #[inline]
    pub fn atomic_u32(&self, off: u64) -> &AtomicU32 {
        self.check(off, 4, 4);
        // SAFETY: in-bounds, aligned, and AtomicU32 has no invalid bit
        // patterns; aliasing with other atomic views is fine.
        unsafe { &*(self.ptr(off as usize) as *const AtomicU32) }
    }

    /// An atomic 64-bit view of the word at byte offset `off`.
    #[inline]
    pub fn atomic_u64(&self, off: u64) -> &AtomicU64 {
        self.check(off, 8, 8);
        // SAFETY: see atomic_u32.
        unsafe { &*(self.ptr(off as usize) as *const AtomicU64) }
    }

    /// Relaxed atomic load of a u32 — the common "just read the word" in
    /// device code.
    #[inline]
    pub fn load_u32(&self, off: u64) -> u32 {
        self.atomic_u32(off).load(Ordering::Relaxed)
    }

    /// Relaxed atomic store of a u32.
    #[inline]
    pub fn store_u32(&self, off: u64, v: u32) {
        self.atomic_u32(off).store(v, Ordering::Relaxed)
    }

    /// Acquire load of a u32, modeling the CUDA `ld.cv` ("load, cache
    /// volatile") intrinsic Gallatin uses to re-read possibly-stale global
    /// metadata (paper Algorithm 2).
    ///
    /// Scheduler preemption point: the whole point of `ld.cv` is that
    /// the value may have changed under the reader, so the deterministic
    /// scheduler gets a chance to interleave a writer right before it.
    #[inline]
    pub fn ldcv_u32(&self, off: u64) -> u32 {
        crate::sched::preempt_point(crate::sched::PreemptPoint::VolatileLoad);
        self.atomic_u32(off).load(Ordering::Acquire)
    }

    /// Relaxed atomic load of a u64.
    #[inline]
    pub fn load_u64(&self, off: u64) -> u64 {
        self.atomic_u64(off).load(Ordering::Relaxed)
    }

    /// Relaxed atomic store of a u64.
    #[inline]
    pub fn store_u64(&self, off: u64, v: u64) {
        self.atomic_u64(off).store(v, Ordering::Relaxed)
    }

    /// Copy `data` into the arena at `ptr` (payload write).
    ///
    /// See the module docs for the ownership discipline that makes
    /// concurrent payload access sound.
    #[inline]
    pub fn write_bytes(&self, ptr: DevicePtr, data: &[u8]) {
        self.check(ptr.0, data.len(), 1);
        // SAFETY: bounds-checked; exclusive ownership of live payload
        // ranges is the documented access discipline.
        unsafe {
            std::ptr::copy_nonoverlapping(data.as_ptr(), self.ptr(ptr.0 as usize), data.len());
        }
    }

    /// Copy `out.len()` bytes out of the arena at `ptr` (payload read).
    #[inline]
    pub fn read_bytes(&self, ptr: DevicePtr, out: &mut [u8]) {
        self.check(ptr.0, out.len(), 1);
        // SAFETY: see write_bytes.
        unsafe {
            std::ptr::copy_nonoverlapping(self.ptr(ptr.0 as usize), out.as_mut_ptr(), out.len());
        }
    }

    /// Write a little-endian u64 payload stamp at `ptr` — the benchmark's
    /// "write to the allocation and check it" correctness pattern.
    #[inline]
    pub fn write_stamp(&self, ptr: DevicePtr, stamp: u64) {
        self.write_bytes(ptr, &stamp.to_le_bytes());
    }

    /// Read back a little-endian u64 payload stamp from `ptr`.
    #[inline]
    pub fn read_stamp(&self, ptr: DevicePtr) -> u64 {
        let mut buf = [0u8; 8];
        self.read_bytes(ptr, &mut buf);
        u64::from_le_bytes(buf)
    }

    /// Zero a byte range (used by allocator `reset` implementations).
    pub fn zero_range(&self, off: u64, bytes: usize) {
        self.check(off, bytes, 1);
        // SAFETY: bounds-checked; callers only reset quiescent arenas.
        unsafe {
            std::ptr::write_bytes(self.ptr(off as usize), 0, bytes);
        }
    }
}

impl std::fmt::Debug for DeviceMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DeviceMemory").field("off", &self.off).field("len", &self.len).finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::Ordering;

    #[test]
    fn arena_is_zeroed() {
        let mem = DeviceMemory::new(4096);
        for off in (0..4096).step_by(8) {
            assert_eq!(mem.load_u64(off), 0);
        }
    }

    #[test]
    fn null_pointer_identity() {
        assert!(DevicePtr::NULL.is_null());
        assert!(!DevicePtr(0).is_null());
        assert_eq!(DevicePtr(16).offset(8), DevicePtr(24));
    }

    #[test]
    fn device_routing_is_quotient_and_remainder() {
        let stride = 1 << 20;
        assert_eq!(DevicePtr(0).device_of(stride), 0);
        assert_eq!(DevicePtr(stride - 1).device_of(stride), 0);
        assert_eq!(DevicePtr(stride).device_of(stride), 1);
        assert_eq!(DevicePtr(3 * stride + 17).device_of(stride), 3);
        assert_eq!(DevicePtr(3 * stride + 17).local_offset(stride), 17);
        assert_eq!(DevicePtr(stride - 1).local_offset(stride), stride - 1);
    }

    #[test]
    fn atomic_views_alias_payload_bytes() {
        let mem = DeviceMemory::new(64);
        mem.atomic_u64(0).store(0x1122_3344_5566_7788, Ordering::Relaxed);
        let mut buf = [0u8; 8];
        mem.read_bytes(DevicePtr(0), &mut buf);
        assert_eq!(u64::from_le_bytes(buf), 0x1122_3344_5566_7788);
    }

    #[test]
    fn stamps_roundtrip() {
        let mem = DeviceMemory::new(128);
        mem.write_stamp(DevicePtr(32), 0xdead_beef);
        assert_eq!(mem.read_stamp(DevicePtr(32)), 0xdead_beef);
        assert_eq!(mem.read_stamp(DevicePtr(40)), 0);
    }

    #[test]
    fn len_rounds_up_to_alignment() {
        let mem = DeviceMemory::new(1);
        assert_eq!(mem.len(), 16);
        assert!(!mem.is_empty());
    }

    #[test]
    fn huge_arena_is_lazily_paged() {
        // Guards the calloc fast path: a large zeroed arena must be
        // cheap to construct (no eager memset of every page). 4 GiB
        // would take seconds to memset; lazy mapping is ~instant.
        let t0 = std::time::Instant::now();
        let mem = DeviceMemory::new(4 << 30);
        assert!(
            t0.elapsed() < std::time::Duration::from_millis(500),
            "arena construction took {:?} — alloc_zeroed fell off the lazy path",
            t0.elapsed()
        );
        assert_eq!(mem.load_u64((4 << 30) - 8), 0);
    }

    #[test]
    fn concurrent_fetch_add_sums() {
        let mem = DeviceMemory::new(64);
        std::thread::scope(|s| {
            for _ in 0..8 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        mem.atomic_u32(0).fetch_add(1, Ordering::Relaxed);
                    }
                });
            }
        });
        assert_eq!(mem.load_u32(0), 8000);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn out_of_bounds_access_panics() {
        let mem = DeviceMemory::new(64);
        mem.load_u64(64);
    }

    #[test]
    #[should_panic(expected = "misaligned")]
    fn misaligned_atomic_panics() {
        let mem = DeviceMemory::new(64);
        mem.load_u32(2);
    }

    #[test]
    fn split_parts_are_disjoint_windows_over_the_parent() {
        let mem = DeviceMemory::new(256);
        let parts = mem.split(4);
        assert_eq!(parts.len(), 4);
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.len(), 64);
            // Offset 0 of part i aliases offset i * 64 of the parent.
            p.store_u64(0, 0x1000 + i as u64);
            assert_eq!(mem.load_u64(i as u64 * 64), 0x1000 + i as u64);
        }
        // Writes through one part never show up in a sibling.
        for (i, p) in parts.iter().enumerate() {
            assert_eq!(p.load_u64(0), 0x1000 + i as u64);
        }
    }

    #[test]
    fn split_parts_outlive_the_parent_view() {
        let parts = {
            let mem = DeviceMemory::new(128);
            mem.store_u32(64, 7);
            mem.split(2)
        };
        // The parent view is gone but the shared arena is still alive.
        assert_eq!(parts[1].load_u32(0), 7);
        parts[0].store_u32(0, 9);
        assert_eq!(parts[0].load_u32(0), 9);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn split_part_bounds_are_enforced() {
        let mem = DeviceMemory::new(128);
        let parts = mem.split(2);
        parts[0].load_u64(64);
    }

    #[test]
    #[should_panic(expected = "does not split evenly")]
    fn uneven_split_panics() {
        let mem = DeviceMemory::new(128);
        let _ = mem.split(3);
    }

    #[test]
    fn zero_range_clears() {
        let mem = DeviceMemory::new(64);
        mem.store_u64(8, u64::MAX);
        mem.zero_range(8, 8);
        assert_eq!(mem.load_u64(8), 0);
    }
}
