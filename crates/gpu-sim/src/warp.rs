//! Warps, lanes, and cooperative-groups collectives.
//!
//! A warp is the GPU's unit of lockstep execution: 32 lanes that can
//! exchange values without touching memory. Gallatin's headline trick —
//! opportunistic request coalescing (paper §4.3, Algorithm 3) — is built
//! on the CUDA cooperative-groups API: `coalesced_threads()` groups the
//! currently-active lanes, `ballot` finds lanes making the same request,
//! an elected leader performs one atomic on behalf of the group, and the
//! result is distributed with broadcast + exclusive scan.
//!
//! The simulator executes a warp as a unit (one closure invocation per
//! warp; see [`mod@crate::launch`]), so the collectives here have exact lane
//! visibility and are implemented as plain slice operations. That matches
//! hardware semantics: from inside the warp, the collective is a
//! synchronous, all-lanes-visible primitive.

use crate::sched::{preempt_point, PreemptPoint};

/// Number of lanes in a warp, fixed at the CUDA value.
pub const WARP_SIZE: usize = 32;

/// Execution context of one warp.
///
/// `active` is the number of live lanes (the last warp of a launch may be
/// partial, like a partially-full warp at the tail of a CUDA grid).
#[derive(Clone, Copy, Debug)]
pub struct WarpCtx {
    /// Global warp index within the launch.
    pub warp_id: u64,
    /// Streaming multiprocessor this warp is resident on. Gallatin's block
    /// buffers are indexed by SM (paper §4.3 "Faster access to blocks").
    pub sm_id: u32,
    /// Global thread id of lane 0.
    pub base_tid: u64,
    /// Number of active lanes, `1..=WARP_SIZE`.
    pub active: u32,
}

impl WarpCtx {
    /// Iterator over active lane indices.
    #[inline]
    pub fn lanes(&self) -> impl Iterator<Item = usize> {
        0..self.active as usize
    }

    /// Per-lane context for scalar (non-collective) calls.
    #[inline]
    pub fn lane(&self, lane: usize) -> LaneCtx<'_> {
        debug_assert!(lane < self.active as usize);
        LaneCtx { warp: self, lane: lane as u32 }
    }

    /// `__ballot_sync`: a bitmask of active lanes whose predicate is true.
    ///
    /// `preds` must have one entry per active lane.
    ///
    /// Like the hardware instruction this is a warp-synchronizing
    /// operation, so it is a scheduler preemption point.
    #[inline]
    pub fn ballot(&self, preds: &[bool]) -> u32 {
        debug_assert_eq!(preds.len(), self.active as usize);
        preempt_point(PreemptPoint::Collective);
        let mut mask = 0u32;
        for (lane, &p) in preds.iter().enumerate() {
            if p {
                mask |= 1 << lane;
            }
        }
        mask
    }

    /// The leader of a coalesced group: the lowest set lane in `mask`
    /// (CUDA's `coalesced_group::thread_rank() == 0` convention).
    #[inline]
    pub fn leader(mask: u32) -> u32 {
        debug_assert!(mask != 0, "leader of empty group");
        mask.trailing_zeros()
    }

    /// Exclusive prefix rank of `lane` within the coalesced group `mask` —
    /// CUDA's `coalesced_group::thread_rank()`. Gallatin uses this as the
    /// `exclusiveScan(1)` in Algorithm 3 to give each lane a distinct
    /// slice index from the leader's single `atomicAdd`.
    #[inline]
    pub fn rank_in(mask: u32, lane: u32) -> u32 {
        debug_assert!(mask & (1 << lane) != 0, "lane not in group");
        (mask & ((1u32 << lane) - 1)).count_ones()
    }

    /// `coalesced_threads()` + grouping by request key: partitions the
    /// active lanes that made a request (`keys[lane] = Some(k)`) into
    /// groups of equal `k`, each with its lane mask.
    ///
    /// Returns `(key, mask)` pairs in order of first occurrence. Lanes with
    /// `None` made no request and join no group, exactly like inactive
    /// lanes in a coalesced group.
    pub fn coalesce_by<K: Eq + Copy>(&self, keys: &[Option<K>]) -> Vec<(K, u32)> {
        debug_assert_eq!(keys.len(), self.active as usize);
        // Group formation synchronizes the warp: preemption point.
        preempt_point(PreemptPoint::Collective);
        let mut groups: Vec<(K, u32)> = Vec::new();
        for (lane, key) in keys.iter().enumerate() {
            let Some(k) = key else { continue };
            match groups.iter_mut().find(|(gk, _)| gk == k) {
                Some((_, mask)) => *mask |= 1 << lane,
                None => groups.push((*k, 1 << lane)),
            }
        }
        groups
    }

    /// Lanes set in `mask`, in ascending order.
    #[inline]
    pub fn group_lanes(mask: u32) -> impl Iterator<Item = u32> {
        (0..WARP_SIZE as u32).filter(move |l| mask & (1 << l) != 0)
    }
}

/// Execution context of a single lane (thread) inside a warp.
#[derive(Clone, Copy, Debug)]
pub struct LaneCtx<'a> {
    /// The warp this lane belongs to.
    pub warp: &'a WarpCtx,
    /// Lane index, `0..warp.active`.
    pub lane: u32,
}

impl LaneCtx<'_> {
    /// Global thread id of this lane within the launch.
    #[inline]
    pub fn global_tid(&self) -> u64 {
        self.warp.base_tid + self.lane as u64
    }

    /// SM the lane executes on.
    #[inline]
    pub fn sm_id(&self) -> u32 {
        self.warp.sm_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn warp(active: u32) -> WarpCtx {
        WarpCtx { warp_id: 7, sm_id: 3, base_tid: 7 * 32, active }
    }

    #[test]
    fn ballot_sets_matching_lanes() {
        let w = warp(4);
        let mask = w.ballot(&[true, false, true, true]);
        assert_eq!(mask, 0b1101);
    }

    #[test]
    fn leader_is_lowest_lane() {
        assert_eq!(WarpCtx::leader(0b1101), 0);
        assert_eq!(WarpCtx::leader(0b1100), 2);
    }

    #[test]
    fn rank_counts_lower_set_lanes() {
        let mask = 0b1011_0100u32;
        assert_eq!(WarpCtx::rank_in(mask, 2), 0);
        assert_eq!(WarpCtx::rank_in(mask, 4), 1);
        assert_eq!(WarpCtx::rank_in(mask, 5), 2);
        assert_eq!(WarpCtx::rank_in(mask, 7), 3);
    }

    #[test]
    fn coalesce_groups_equal_keys() {
        let w = warp(6);
        let keys = [Some(16u64), Some(32), None, Some(16), Some(32), Some(16)];
        let groups = w.coalesce_by(&keys);
        assert_eq!(groups.len(), 2);
        assert_eq!(groups[0], (16, 0b101001));
        assert_eq!(groups[1], (32, 0b010010));
    }

    #[test]
    fn coalesce_all_none_is_empty() {
        let w = warp(3);
        let groups = w.coalesce_by::<u64>(&[None, None, None]);
        assert!(groups.is_empty());
    }

    #[test]
    fn group_lanes_enumerates_mask() {
        let lanes: Vec<u32> = WarpCtx::group_lanes(0b1010).collect();
        assert_eq!(lanes, vec![1, 3]);
    }

    #[test]
    fn lane_ctx_global_tid() {
        let w = warp(32);
        assert_eq!(w.lane(5).global_tid(), 7 * 32 + 5);
        assert_eq!(w.lane(5).sm_id(), 3);
    }

    #[test]
    fn ranks_partition_group() {
        // Every lane in a group gets a unique rank 0..count.
        let mask = 0b1111_0110_1001u32;
        let mut ranks: Vec<u32> =
            WarpCtx::group_lanes(mask).map(|l| WarpCtx::rank_in(mask, l)).collect();
        ranks.sort_unstable();
        let expect: Vec<u32> = (0..mask.count_ones()).collect();
        assert_eq!(ranks, expect);
    }
}
