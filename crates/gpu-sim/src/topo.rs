//! Multi-device topology: N device arenas joined by an interconnect.
//!
//! The rest of the workspace grew up on one implicit device — one
//! [`DeviceMemory`] arena, pointers that are plain offsets, a trace
//! `instance` field. A production deployment (ROADMAP item 4) spans
//! several GPUs whose memories are distinct but mutually reachable over
//! an interconnect with asymmetric cost: an access served by the issuing
//! SM's own device is cheap, one that crosses to a peer is not (the
//! MGSim/MGMark model). This module makes that explicit:
//!
//! * [`Topology`] — one contiguous reservation carved into N equal
//!   per-device windows. Pointers stay *global* offsets into the parent
//!   arena, so every existing allocator keeps working unchanged; the
//!   device holding a pointer is recovered by integer division
//!   ([`DevicePtr::device_of`]), the same derivation Gallatin uses for
//!   segment ids one level down.
//! * [`InterconnectCost`] — the per-access step tariff. The default is
//!   `{local: 0, peer: 40}`: local accesses charge nothing (keeping
//!   single-device step counts bit-identical to the pre-topology
//!   simulator), peer accesses charge roughly the local/remote latency
//!   ratio NVLink-class fabrics exhibit.
//! * [`Topology::classify_access`] — the accounting hook: given the
//!   issuing SM and the pointer touched, bump the local/peer counters on
//!   a [`Metrics`] and return the step cost to charge on a
//!   [`crate::clock::StepClock`]. Deliberately *not* a scheduler
//!   preemption point: traffic accounting must never perturb the
//!   deterministic schedule (see `crate::metrics::Metrics::count_local_access`).
//!
//! SM→device affinity is static and round-robin (`sm % devices`),
//! mirroring how the launch machinery assigns SM ids to warps; the
//! topology-aware pool uses the same mapping for placement so "the SM's
//! own device" and "where affinity placed the allocation" agree.

use crate::mem::{DeviceMemory, DevicePtr};
use crate::metrics::Metrics;

/// Per-access step tariff of the interconnect.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct InterconnectCost {
    /// Steps charged for an access served by the issuing SM's device.
    /// 0 by default so single-device topologies add no cost at all.
    pub local_steps: u64,
    /// Steps charged for an access that crosses to a peer device.
    pub peer_steps: u64,
}

impl Default for InterconnectCost {
    fn default() -> Self {
        // ~40:1 remote:local, the order of magnitude NVLink-class
        // fabrics show for fine-grained peer access.
        InterconnectCost { local_steps: 0, peer_steps: 40 }
    }
}

impl InterconnectCost {
    /// A free interconnect: peer access costs the same as local (both 0).
    /// Useful for isolating routing behaviour from latency modeling.
    pub fn free() -> Self {
        InterconnectCost { local_steps: 0, peer_steps: 0 }
    }
}

/// N device arenas carved from one reservation, plus the interconnect
/// joining them.
///
/// ```
/// use gpu_sim::topo::Topology;
/// use gpu_sim::DevicePtr;
///
/// let topo = Topology::new(4, 16 << 20);
/// assert_eq!(topo.devices(), 4);
/// assert_eq!(topo.device_stride(), 16 << 20);
/// // A pointer in the second window belongs to device 1.
/// assert_eq!(topo.device_of(DevicePtr(topo.device_stride() + 8)), 1);
/// // SM 5 on a 4-device topology has affinity to device 1.
/// assert_eq!(topo.affinity_device(5), 1);
/// ```
#[derive(Debug)]
pub struct Topology {
    mem: DeviceMemory,
    windows: Vec<DeviceMemory>,
    device_stride: u64,
    cost: InterconnectCost,
}

impl Topology {
    /// A topology of `devices` arenas of `bytes_per_device` each, with
    /// the default interconnect tariff.
    ///
    /// # Panics
    /// Panics if `devices == 0` or `bytes_per_device == 0`.
    pub fn new(devices: u32, bytes_per_device: u64) -> Self {
        Self::with_cost(devices, bytes_per_device, InterconnectCost::default())
    }

    /// A topology with an explicit interconnect tariff.
    pub fn with_cost(devices: u32, bytes_per_device: u64, cost: InterconnectCost) -> Self {
        assert!(devices > 0, "a topology needs at least one device");
        assert!(bytes_per_device > 0, "devices need non-empty arenas");
        let total = bytes_per_device.checked_mul(devices as u64).expect("topology size overflow");
        let mem = DeviceMemory::new(total as usize);
        let windows = mem.split(devices as usize);
        Topology { mem, windows, device_stride: bytes_per_device, cost }
    }

    /// Number of devices.
    #[inline]
    pub fn devices(&self) -> u32 {
        self.windows.len() as u32
    }

    /// Bytes per device window — the pointer-routing divisor.
    #[inline]
    pub fn device_stride(&self) -> u64 {
        self.device_stride
    }

    /// The interconnect tariff.
    #[inline]
    pub fn cost(&self) -> InterconnectCost {
        self.cost
    }

    /// The whole reservation: every device's bytes, global offsets. This
    /// is the view a topology-spanning allocator hands pointers into.
    #[inline]
    pub fn memory(&self) -> &DeviceMemory {
        &self.mem
    }

    /// Device `d`'s window (local offsets starting at 0).
    ///
    /// # Panics
    /// Panics if `d` is out of range.
    #[inline]
    pub fn window(&self, d: u32) -> &DeviceMemory {
        &self.windows[d as usize]
    }

    /// The device whose arena holds `ptr`'s bytes.
    ///
    /// # Panics
    /// Panics (debug) if `ptr` is null; panics if `ptr` is beyond the
    /// reservation.
    #[inline]
    pub fn device_of(&self, ptr: DevicePtr) -> u32 {
        let d = ptr.device_of(self.device_stride);
        assert!(
            (d as usize) < self.windows.len(),
            "pointer {} beyond the {}-device reservation",
            ptr.0,
            self.windows.len()
        );
        d
    }

    /// Static SM→device affinity: round-robin over devices, matching the
    /// launch machinery's SM assignment so consecutive SMs spread evenly.
    #[inline]
    pub fn affinity_device(&self, sm: u32) -> u32 {
        sm % self.devices()
    }

    /// Steps an access from `sm` to `ptr` costs on this topology.
    #[inline]
    pub fn access_steps(&self, sm: u32, ptr: DevicePtr) -> u64 {
        if self.device_of(ptr) == self.affinity_device(sm) {
            self.cost.local_steps
        } else {
            self.cost.peer_steps
        }
    }

    /// Account one access from `sm` to `ptr`: bump the local or peer
    /// counter on `metrics` and return the step cost for the caller to
    /// charge on its [`crate::clock::StepClock`]. Not a preemption point.
    #[inline]
    pub fn classify_access(&self, sm: u32, ptr: DevicePtr, metrics: &Metrics) -> u64 {
        if self.device_of(ptr) == self.affinity_device(sm) {
            metrics.count_local_access();
            self.cost.local_steps
        } else {
            metrics.count_peer_access(1);
            self.cost.peer_steps
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn windows_partition_the_reservation() {
        let topo = Topology::new(4, 1 << 20);
        assert_eq!(topo.devices(), 4);
        assert_eq!(topo.memory().len(), 4 << 20);
        for d in 0..4 {
            assert_eq!(topo.window(d).len(), 1 << 20);
            // Offset 0 of window d aliases global offset d * stride.
            topo.window(d).store_u64(0, 100 + d as u64);
            assert_eq!(topo.memory().load_u64(d as u64 * (1 << 20)), 100 + d as u64);
        }
    }

    #[test]
    fn pointer_routing_and_affinity() {
        let topo = Topology::new(2, 1 << 16);
        assert_eq!(topo.device_of(DevicePtr(0)), 0);
        assert_eq!(topo.device_of(DevicePtr(1 << 16)), 1);
        assert_eq!(topo.affinity_device(0), 0);
        assert_eq!(topo.affinity_device(1), 1);
        assert_eq!(topo.affinity_device(2), 0);
        // Single device: every SM maps to device 0, everything is local.
        let one = Topology::new(1, 1 << 16);
        assert_eq!(one.affinity_device(13), 0);
        assert_eq!(one.access_steps(13, DevicePtr(64)), 0);
    }

    #[test]
    #[should_panic(expected = "beyond the 2-device reservation")]
    fn out_of_reservation_pointer_is_loud() {
        let topo = Topology::new(2, 1 << 16);
        topo.device_of(DevicePtr(2 << 16));
    }

    #[test]
    fn classify_access_counts_and_charges() {
        let topo =
            Topology::with_cost(2, 1 << 16, InterconnectCost { local_steps: 1, peer_steps: 40 });
        let m = Metrics::new();
        // SM 0 → device 0 pointer: local.
        assert_eq!(topo.classify_access(0, DevicePtr(8), &m), 1);
        // SM 0 → device 1 pointer: peer.
        assert_eq!(topo.classify_access(0, DevicePtr((1 << 16) + 8), &m), 40);
        // SM 1 → device 1 pointer: local again.
        assert_eq!(topo.classify_access(1, DevicePtr((1 << 16) + 8), &m), 1);
        let s = m.snapshot();
        assert_eq!((s.local_accesses, s.peer_accesses), (2, 1));
        assert!((s.peer_share() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn default_tariff_keeps_local_free() {
        let c = InterconnectCost::default();
        assert_eq!(c.local_steps, 0, "single-device step counts must not change");
        assert!(c.peer_steps > 0);
        assert_eq!(InterconnectCost::free(), InterconnectCost { local_steps: 0, peer_steps: 0 });
    }
}
