//! # gpu-sim: a SIMT execution substrate on the CPU
//!
//! The Gallatin paper (PPoPP 2024) describes a *device-side* GPU memory
//! manager: CUDA kernels call `malloc`/`free` from inside device code, and
//! the allocator's performance comes from how it structures atomic
//! operations on shared memory under massive parallelism.
//!
//! No GPU is available to this reproduction, so this crate provides the
//! substrate everything else runs on: a faithful *model* of the pieces of
//! the CUDA execution and memory system that the paper's algorithms
//! actually interact with:
//!
//! * [`mem::DeviceMemory`] — one contiguous "device DRAM" arena. Device
//!   pointers ([`mem::DevicePtr`]) are byte offsets into an arena, exactly
//!   as Gallatin treats pointers (§5 of the paper derives the segment id
//!   by dividing the pointer offset by the segment size).
//! * [`warp::WarpCtx`] — a warp of 32 lanes executed as a unit, with the
//!   cooperative-groups collectives the paper relies on
//!   (`coalesced_threads`, ballot, broadcast, exclusive scan, leader
//!   election).
//! * [`mod@launch`] — grid launches: N logical threads are split into warps
//!   and executed by a work-stealing CPU thread pool. Streaming
//!   multiprocessor (SM) ids are assigned to warps so per-SM structures
//!   (Gallatin's block buffers) behave as on hardware.
//! * [`alloc_api::DeviceAllocator`] — the common malloc/free interface all
//!   allocators (Gallatin and the baselines) implement, including the
//!   warp-collective entry points that make coalescing expressible.
//! * [`metrics`] — cheap relaxed counters (atomic instructions issued, CAS
//!   retries, …) used by the ablation benchmarks.
//! * [`sched`] — deterministic scheduling: launches run serialized with
//!   seeded context switches at every atomic/collective, so concurrency
//!   bugs replay from a one-line seed instead of depending on OS timing.
//!
//! ## What the simulation preserves, and what it does not
//!
//! CPU atomics (`fetch_add`, `compare_exchange`, …) have the same
//! semantics as the GPU atomics the paper uses and the same qualitative
//! cost model: contended atomic RMWs on a single cache line serialize.
//! Everything the paper's evaluation measures — throughput collapse under
//! contention, the 32× reduction from warp coalescing, lock-free retry
//! storms — is therefore visible here with the same *shape*, though not
//! the same absolute magnitude as an A40.
//!
//! What is *not* modeled: SIMT divergence penalties, memory-coalescing of
//! loads/stores, occupancy limits. None of the paper's experiments
//! measure those directly.

#![warn(missing_docs)]

pub mod alloc_api;
pub mod clock;
pub mod launch;
pub mod ledger;
pub mod mem;
pub mod metrics;
pub mod replay;
pub mod sched;
pub mod topo;
pub mod trace;
pub mod warp;

pub use alloc_api::{AllocStats, DeviceAllocator};
pub use clock::{Stamped, StepClock};
pub use launch::{launch, launch_warps, launch_warps_counted, DeviceConfig, ExecMode};
pub use mem::{DeviceMemory, DevicePtr};
pub use metrics::{with_metrics_stripe, Metrics};
pub use replay::{ConversionStats, ReplayOp, ReplayScript, WarpScript};
pub use sched::{
    current_sched_seed, explore_schedules, preempt_point, spin_hint, with_hooks, FaultPlan,
    PreemptPoint, ScheduleFailure, SimHooks,
};
pub use topo::{InterconnectCost, Topology};
pub use trace::{TraceEvent, TraceRecord, TraceSink};
pub use warp::{LaneCtx, WarpCtx, WARP_SIZE};
