//! The common device-allocator interface.
//!
//! Every allocator in this workspace — Gallatin and all survey baselines —
//! implements [`DeviceAllocator`], so the benchmark harness can run the
//! identical kernels over each of them, as the Winter et al. survey
//! testbed does with its uniform malloc/free interface.
//!
//! Two entry points exist per operation:
//!
//! * scalar ([`DeviceAllocator::malloc`] / [`DeviceAllocator::free`]) —
//!   one lane allocating on its own;
//! * warp-collective ([`DeviceAllocator::warp_malloc`] /
//!   [`DeviceAllocator::warp_free`]) — the whole warp's requests at once.
//!
//! The default collective implementations simply loop over lanes issuing
//! scalar calls, which is exactly what a non-coalescing allocator does on
//! hardware (32 independent atomic transactions). Gallatin overrides them
//! to perform the paper's opportunistic coalescing.

use crate::mem::{DeviceMemory, DevicePtr};
use crate::metrics::Metrics;
use crate::warp::{LaneCtx, WarpCtx};

/// Point-in-time occupancy statistics reported by an allocator.
#[derive(Clone, Copy, Debug, Default)]
pub struct AllocStats {
    /// Total bytes the allocator manages.
    pub heap_bytes: u64,
    /// Bytes currently reserved by live allocations, *as accounted by the
    /// allocator* (includes internal rounding to its size classes).
    ///
    /// Contract: never a wrapped value. Allocators that track this with
    /// unpaired relaxed counters (a free's subtraction can be observed
    /// before the matching allocation's addition, momentarily driving the
    /// raw counter below zero) must saturate the reading to 0 rather
    /// than surface ~2^64 here.
    pub reserved_bytes: u64,
}

/// A device-side memory allocator running on the simulated SIMT substrate.
pub trait DeviceAllocator: Send + Sync {
    /// Short display name used in benchmark tables, e.g. `"Gallatin"`,
    /// `"Ouroboros-P-VA"`.
    fn name(&self) -> &str;

    /// The arena this allocator hands pointers into.
    fn memory(&self) -> &DeviceMemory;

    /// Allocate `size` bytes from device code. Returns
    /// [`DevicePtr::NULL`] when the request cannot be satisfied.
    ///
    /// **Zero-size requests are valid**: `malloc(0)` behaves exactly like
    /// a one-byte request — it returns a unique, freeable pointer
    /// (occupying the allocator's minimum granule), matching CUDA device
    /// `malloc`. NULL therefore always means exhaustion or an unsupported
    /// size, never "you asked for nothing". Every allocator in the
    /// workspace implements this by clamping the request to one byte at
    /// its entry point.
    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr;

    /// Return an allocation obtained from [`DeviceAllocator::malloc`].
    fn free(&self, ctx: &LaneCtx, ptr: DevicePtr);

    /// Warp-collective allocation: `sizes[lane]` is `Some(size)` for each
    /// requesting lane; on return `out[lane]` holds that lane's pointer
    /// (or NULL). The default issues scalar calls lane by lane.
    fn warp_malloc(&self, warp: &WarpCtx, sizes: &[Option<u64>], out: &mut [DevicePtr]) {
        debug_assert_eq!(sizes.len(), warp.active as usize);
        debug_assert_eq!(out.len(), warp.active as usize);
        for lane in warp.lanes() {
            if let Some(size) = sizes[lane] {
                out[lane] = self.malloc(&warp.lane(lane), size);
            } else {
                out[lane] = DevicePtr::NULL;
            }
        }
    }

    /// Warp-collective free of `ptrs[lane]` (NULL entries are skipped).
    fn warp_free(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) {
        debug_assert_eq!(ptrs.len(), warp.active as usize);
        for lane in warp.lanes() {
            if !ptrs[lane].is_null() {
                self.free(&warp.lane(lane), ptrs[lane]);
            }
        }
    }

    /// Reinitialize to the freshly-constructed state. The benchmark resets
    /// allocators between rounds (paper §6.1) so every round measures
    /// cold-state behaviour; must only be called while no kernel is live.
    fn reset(&self);

    /// Total bytes under management.
    fn heap_bytes(&self) -> u64;

    /// Whether a request of `size` bytes is supported *by design* (e.g.
    /// Ouroboros natively supports nothing above its 8192-byte chunk and
    /// services bigger requests only through its CUDA-heap fallback).
    /// Zero is always supported (see [`DeviceAllocator::malloc`]).
    fn supports_size(&self, size: u64) -> bool {
        size <= self.heap_bytes()
    }

    /// The largest request the native (non-fallback) pipeline serves.
    fn max_native_size(&self) -> u64 {
        self.heap_bytes()
    }

    /// `false` for pseudo-allocators that do not actually manage memory
    /// and may double-allocate (RegEff-AW). Such allocators are shown in
    /// figures as an optimum but excluded from comparisons (paper §6.2).
    fn is_managing(&self) -> bool {
        true
    }

    /// Instrumentation counters, if the allocator keeps them.
    fn metrics(&self) -> Option<&Metrics> {
        None
    }

    /// How many devices this allocator spans. Single-device allocators
    /// (everything except the topology-aware pool-of-pools) report 1.
    fn device_count(&self) -> u32 {
        1
    }

    /// The device whose arena holds `ptr`'s bytes. On a single device
    /// this is always 0; a topology-aware allocator routes by its
    /// device stride (see [`crate::mem::DevicePtr::device_of`]).
    fn device_of(&self, ptr: DevicePtr) -> u32 {
        debug_assert!(!ptr.is_null());
        0
    }

    /// The device an allocation issued from `sm` is preferentially
    /// placed on (SM→device affinity). 0 on a single device.
    fn affinity_device(&self, sm: u32) -> u32 {
        let _ = sm;
        0
    }

    /// Verify the allocator's internal cross-structure invariants,
    /// returning every violation found. Must only be called while the
    /// allocator is quiescent (no kernel live) — like
    /// [`DeviceAllocator::reset`], it is a host-side maintenance point.
    /// Allocators without introspection pass vacuously; tests call this
    /// after every concurrency scenario so a silent corruption (leaked
    /// block, stale table entry, bad accounting) fails loudly.
    ///
    /// Quiescence is also what makes *occupancy drift* detectable: with
    /// no operation in flight, any queue/ring whose derived occupancy
    /// disagrees with its enumerated contents — or that reports a cell
    /// claimed by a ticket but never published — is corrupt, not merely
    /// mid-update, and implementations are expected to report it as an
    /// error rather than skip over it.
    fn check_invariants(&self) -> Result<(), String> {
        Ok(())
    }

    /// Occupancy statistics.
    fn stats(&self) -> AllocStats {
        AllocStats { heap_bytes: self.heap_bytes(), reserved_bytes: 0 }
    }
}

/// Blanket impl so `Arc<A>`/`Box<A>`/`&A` can be used wherever a
/// `DeviceAllocator` is expected.
impl<T: DeviceAllocator + ?Sized> DeviceAllocator for &T {
    fn name(&self) -> &str {
        (**self).name()
    }
    fn memory(&self) -> &DeviceMemory {
        (**self).memory()
    }
    fn malloc(&self, ctx: &LaneCtx, size: u64) -> DevicePtr {
        (**self).malloc(ctx, size)
    }
    fn free(&self, ctx: &LaneCtx, ptr: DevicePtr) {
        (**self).free(ctx, ptr)
    }
    fn warp_malloc(&self, warp: &WarpCtx, sizes: &[Option<u64>], out: &mut [DevicePtr]) {
        (**self).warp_malloc(warp, sizes, out)
    }
    fn warp_free(&self, warp: &WarpCtx, ptrs: &[DevicePtr]) {
        (**self).warp_free(warp, ptrs)
    }
    fn reset(&self) {
        (**self).reset()
    }
    fn heap_bytes(&self) -> u64 {
        (**self).heap_bytes()
    }
    fn supports_size(&self, size: u64) -> bool {
        (**self).supports_size(size)
    }
    fn max_native_size(&self) -> u64 {
        (**self).max_native_size()
    }
    fn is_managing(&self) -> bool {
        (**self).is_managing()
    }
    fn metrics(&self) -> Option<&Metrics> {
        (**self).metrics()
    }
    fn device_count(&self) -> u32 {
        (**self).device_count()
    }
    fn device_of(&self, ptr: DevicePtr) -> u32 {
        (**self).device_of(ptr)
    }
    fn affinity_device(&self, sm: u32) -> u32 {
        (**self).affinity_device(sm)
    }
    fn check_invariants(&self) -> Result<(), String> {
        (**self).check_invariants()
    }
    fn stats(&self) -> AllocStats {
        (**self).stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::launch::{launch_warps, DeviceConfig};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// A trivial bump allocator used to exercise the trait defaults.
    struct Bump {
        mem: DeviceMemory,
        next: AtomicU64,
    }

    impl Bump {
        fn new(len: usize) -> Self {
            Bump { mem: DeviceMemory::new(len), next: AtomicU64::new(0) }
        }
    }

    impl DeviceAllocator for Bump {
        fn name(&self) -> &str {
            "Bump"
        }
        fn memory(&self) -> &DeviceMemory {
            &self.mem
        }
        fn malloc(&self, _ctx: &LaneCtx, size: u64) -> DevicePtr {
            let size = size.next_multiple_of(8);
            let off = self.next.fetch_add(size, Ordering::Relaxed);
            if off + size <= self.mem.len() as u64 {
                DevicePtr(off)
            } else {
                DevicePtr::NULL
            }
        }
        fn free(&self, _ctx: &LaneCtx, _ptr: DevicePtr) {}
        fn reset(&self) {
            self.next.store(0, Ordering::Relaxed);
        }
        fn heap_bytes(&self) -> u64 {
            self.mem.len() as u64
        }
    }

    #[test]
    fn default_warp_malloc_services_all_lanes() {
        let a = Bump::new(1 << 20);
        launch_warps(DeviceConfig::default(), 64, |warp| {
            let sizes = vec![Some(16u64); warp.active as usize];
            let mut out = vec![DevicePtr::NULL; warp.active as usize];
            a.warp_malloc(warp, &sizes, &mut out);
            for p in &out {
                assert!(!p.is_null());
            }
            a.warp_free(warp, &out);
        });
    }

    #[test]
    fn bump_returns_disjoint_ranges() {
        let a = Bump::new(1 << 16);
        let ptrs = std::sync::Mutex::new(Vec::new());
        launch_warps(DeviceConfig::default(), 128, |warp| {
            for lane in warp.lanes() {
                let p = a.malloc(&warp.lane(lane), 32);
                assert!(!p.is_null());
                ptrs.lock().unwrap().push(p.0);
            }
        });
        let mut v = ptrs.into_inner().unwrap();
        v.sort_unstable();
        v.dedup();
        assert_eq!(v.len(), 128);
    }

    #[test]
    fn exhaustion_returns_null() {
        let a = Bump::new(64);
        launch_warps(DeviceConfig::default(), 1, |warp| {
            let l = warp.lane(0);
            assert!(!a.malloc(&l, 64).is_null());
            assert!(a.malloc(&l, 64).is_null());
            a.reset();
            assert!(!a.malloc(&l, 64).is_null());
        });
    }

    #[test]
    fn trait_object_dispatch_works() {
        let a = Bump::new(1 << 12);
        let dyn_ref: &dyn DeviceAllocator = &a;
        assert_eq!(dyn_ref.name(), "Bump");
        assert!(dyn_ref.is_managing());
        assert!(dyn_ref.metrics().is_none());
        assert!(dyn_ref.supports_size(8));
        assert!(dyn_ref.supports_size(0), "zero-size requests are part of the contract");
        assert!(!dyn_ref.supports_size(dyn_ref.heap_bytes() + 1));
        // Topology defaults: a plain allocator is one device, everything
        // local to device 0.
        assert_eq!(dyn_ref.device_count(), 1);
        assert_eq!(dyn_ref.device_of(DevicePtr(64)), 0);
        assert_eq!(dyn_ref.affinity_device(31), 0);
    }
}
