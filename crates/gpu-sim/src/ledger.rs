//! Post-mortem lifecycle ledger: malloc/free pairing over a trace.
//!
//! Split out of [`crate::trace`] (which records the raw event stream)
//! so recording and analysis evolve independently. The ledger pairs
//! `Malloc` events with `Free` events to report leaks, double frees,
//! cross-warp free traffic, a free-latency histogram (in schedule
//! steps), and a live-bytes timeline. Pointers are paired per device and
//! allocator instance: in pool mode two instances legitimately hand out
//! the same local offset (and on a multi-device topology two devices'
//! pools may do the same), so the pairing key is
//! `(device, instance, ptr)` and every anomaly names the device and
//! instance it belongs to.

use crate::trace::{TraceEvent, TraceRecord};

/// An allocation that was never freed, as seen by the [`Ledger`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct LiveAlloc {
    /// Device offset of the allocation.
    pub ptr: u64,
    /// Bytes reserved.
    pub size: u64,
    /// Step of the originating `Malloc` event.
    pub step: u64,
    /// SM that allocated it.
    pub sm: u32,
    /// Warp that allocated it.
    pub warp: u64,
    /// Lane that allocated it (or [`crate::trace::LANE_NONE`]).
    pub lane: u32,
    /// Device that served it (0 on a single-device topology).
    pub device: u32,
    /// Allocator instance that served it (0 outside pool mode).
    pub instance: u32,
}

/// What kind of unmatched free a [`FreeAnomaly`] is. The two are
/// different bugs: a double free names an allocation whose lifetime
/// ended twice (a races-on-free or replayed-free defect), an
/// unknown-pointer free names a pointer this instance never handed out
/// (a routing or cross-instance defect in pool mode).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FreeAnomalyKind {
    /// The `(device, instance, ptr)` key was allocated and already freed.
    DoubleFree,
    /// The `(device, instance, ptr)` key was never allocated in this
    /// trace.
    UnknownPtr,
}

/// A `Free` event with no matching live allocation: a double free, or a
/// free of a pointer the trace never saw allocated.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct FreeAnomaly {
    /// Which of the two anomaly classes this free falls into.
    pub kind: FreeAnomalyKind,
    /// Device offset freed.
    pub ptr: u64,
    /// Step of the offending `Free` event.
    pub step: u64,
    /// SM that issued it.
    pub sm: u32,
    /// Warp that issued it.
    pub warp: u64,
    /// Lane that issued it (or [`crate::trace::LANE_NONE`]).
    pub lane: u32,
    /// Device the free was routed to (0 on a single-device topology).
    pub device: u32,
    /// Allocator instance the free was routed to (0 outside pool mode).
    pub instance: u32,
}

/// A paired free whose recorded size disagrees with its malloc: the
/// allocation's lifetime is intact (one malloc, one free, same
/// `(instance, ptr)`), but the allocator's own accounting of how many
/// bytes came back differs from how many went out — a size-class
/// routing or reservation-accounting defect. Distinct from
/// [`FreeAnomaly`], which names frees with no pairing at all.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct SizeMismatch {
    /// Device offset of the allocation.
    pub ptr: u64,
    /// Bytes the `Malloc` event recorded.
    pub malloc_size: u64,
    /// Bytes the `Free` event recorded.
    pub free_size: u64,
    /// Step of the originating `Malloc` event.
    pub malloc_step: u64,
    /// Step of the disagreeing `Free` event.
    pub step: u64,
    /// Device (0 on a single-device topology).
    pub device: u32,
    /// Allocator instance (0 outside pool mode).
    pub instance: u32,
}

/// Number of log₂ buckets in the free-latency histogram (bucket `i`
/// counts frees whose malloc→free step delta `d` has `⌊log₂(d+1)⌋ = i`,
/// with the last bucket absorbing the tail).
pub const LATENCY_BUCKETS: usize = 32;

/// Post-mortem lifecycle analysis of a trace: malloc/free pairing, leak
/// and double-free detection, cross-warp free traffic, free latency in
/// schedule steps, and a live-bytes (occupancy) timeline.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Ledger {
    /// Allocations still live at the end of the trace — leaks, if the
    /// trace covers the full lifetime of the workload.
    pub live: Vec<LiveAlloc>,
    /// Frees with no live allocation to pair with.
    pub double_frees: Vec<FreeAnomaly>,
    /// Paired frees whose recorded size disagrees with their malloc.
    pub size_mismatches: Vec<SizeMismatch>,
    /// Total `Malloc` events seen.
    pub mallocs: u64,
    /// Total `Free` events seen.
    pub frees: u64,
    /// Frees issued by a different warp than the one that allocated.
    pub cross_warp_frees: u64,
    /// Free latency histogram: bucket `i` counts paired frees with
    /// `⌊log₂(steps + 1)⌋ = i` between malloc and free.
    pub latency_hist: [u64; LATENCY_BUCKETS],
    /// `(step, live_bytes)` after every malloc/free, in step order — the
    /// occupancy timeline a fragmentation analysis plots.
    pub timeline: Vec<(u64, u64)>,
    /// Maximum of the timeline.
    pub peak_live_bytes: u64,
    /// Sum of all `Malloc` event sizes (allocator-rounded bytes).
    pub total_alloc_bytes: u64,
}

/// The schedule-independent projection of a [`Ledger`]: counters that
/// must agree between a recorded run and any faithful replay of it, no
/// matter how the two schedules interleaved. Step-dependent figures
/// (peak occupancy, latency histogram, cross-warp traffic) deliberately
/// stay out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LedgerOutcome {
    /// Total `Malloc` events.
    pub mallocs: u64,
    /// Total `Free` events.
    pub frees: u64,
    /// Allocations never freed.
    pub leaks: u64,
    /// Frees of an already-freed pointer.
    pub double_frees: u64,
    /// Frees of a never-allocated pointer.
    pub unknown_frees: u64,
    /// Paired frees whose recorded size disagreed with their malloc.
    pub size_mismatches: u64,
    /// Sum of allocator-rounded request bytes.
    pub alloc_bytes: u64,
}

impl Ledger {
    /// Build the ledger from a step-ordered record slice (as returned by
    /// [`crate::trace::TraceSink::snapshot`]). Non-lifecycle events are
    /// ignored. Pairing is per `(device, instance, ptr)`.
    pub fn build(records: &[TraceRecord]) -> Ledger {
        use std::collections::{HashMap, HashSet};
        // Insertion-ordered live list + index map: reports come out in
        // allocation order, never hash order, keeping output diffable.
        let mut live: Vec<Option<LiveAlloc>> = Vec::new();
        let mut by_ptr: HashMap<(u32, u32, u64), usize> = HashMap::new();
        // Everything ever allocated, so an unmatched free can be classed
        // as a double free (seen before) vs a free of an unknown pointer.
        let mut ever: HashSet<(u32, u32, u64)> = HashSet::new();
        let mut ledger = Ledger {
            live: Vec::new(),
            double_frees: Vec::new(),
            size_mismatches: Vec::new(),
            mallocs: 0,
            frees: 0,
            cross_warp_frees: 0,
            latency_hist: [0; LATENCY_BUCKETS],
            timeline: Vec::new(),
            peak_live_bytes: 0,
            total_alloc_bytes: 0,
        };
        let mut live_bytes = 0u64;
        for r in records {
            match r.event {
                TraceEvent::Malloc { size, ptr, .. } => {
                    ledger.mallocs += 1;
                    let alloc = LiveAlloc {
                        ptr,
                        size,
                        step: r.step,
                        sm: r.sm,
                        warp: r.warp,
                        lane: r.lane,
                        device: r.device,
                        instance: r.instance,
                    };
                    // A ptr re-allocated while the ledger thinks it is
                    // live means its free was lost (or the allocator
                    // handed the region out twice); keep the newer
                    // incarnation live, the older one stays leaked.
                    by_ptr.insert((r.device, r.instance, ptr), live.len());
                    ever.insert((r.device, r.instance, ptr));
                    live.push(Some(alloc));
                    live_bytes += size;
                    ledger.total_alloc_bytes += size;
                }
                TraceEvent::Free { ptr, size } => {
                    ledger.frees += 1;
                    match by_ptr.remove(&(r.device, r.instance, ptr)).and_then(|i| live[i].take()) {
                        Some(alloc) => {
                            // A free whose recorded size disagrees with its
                            // malloc is an accounting defect in the
                            // allocator; surface it as a typed anomaly
                            // instead of clamping the timeline (the old
                            // `saturating_sub` silently absorbed exactly
                            // this class of bug). The timeline subtracts
                            // the *malloc* size, which is what was added,
                            // so occupancy never underflows.
                            if size != 0 && size != alloc.size {
                                ledger.size_mismatches.push(SizeMismatch {
                                    ptr,
                                    malloc_size: alloc.size,
                                    free_size: size,
                                    malloc_step: alloc.step,
                                    step: r.step,
                                    device: r.device,
                                    instance: r.instance,
                                });
                            }
                            live_bytes -= alloc.size;
                            if alloc.warp != r.warp {
                                ledger.cross_warp_frees += 1;
                            }
                            let delta = r.step - alloc.step;
                            let bucket = (u64::BITS - (delta + 1).leading_zeros() - 1) as usize;
                            ledger.latency_hist[bucket.min(LATENCY_BUCKETS - 1)] += 1;
                        }
                        None => ledger.double_frees.push(FreeAnomaly {
                            kind: if ever.contains(&(r.device, r.instance, ptr)) {
                                FreeAnomalyKind::DoubleFree
                            } else {
                                FreeAnomalyKind::UnknownPtr
                            },
                            ptr,
                            step: r.step,
                            sm: r.sm,
                            warp: r.warp,
                            lane: r.lane,
                            device: r.device,
                            instance: r.instance,
                        }),
                    }
                }
                _ => continue,
            }
            ledger.peak_live_bytes = ledger.peak_live_bytes.max(live_bytes);
            ledger.timeline.push((r.step, live_bytes));
        }
        ledger.live = live.into_iter().flatten().collect();
        ledger
    }

    /// Human-readable summary; deterministic for a deterministic trace.
    /// Lines for instance-0 records are identical to pre-pool reports;
    /// pool-mode anomalies name their owning instance.
    pub fn report(&self) -> String {
        let mut out = format!(
            "lifecycle ledger: {} malloc(s), {} free(s), {} live at end, peak {} bytes live\n",
            self.mallocs,
            self.frees,
            self.live.len(),
            self.peak_live_bytes
        );
        for l in &self.live {
            out.push_str(&format!(
                "  leak: ptr {} ({} B) allocated at step {} (sm {} warp {} lane {}{}{})\n",
                l.ptr,
                l.size,
                l.step,
                l.sm,
                l.warp,
                l.lane,
                device_suffix(l.device),
                instance_suffix(l.instance)
            ));
        }
        for d in &self.double_frees {
            out.push_str(&format!(
                "  {}: ptr {} at step {} (sm {} warp {} lane {}{}{})\n",
                match d.kind {
                    FreeAnomalyKind::DoubleFree => "double free",
                    FreeAnomalyKind::UnknownPtr => "unknown-ptr free",
                },
                d.ptr,
                d.step,
                d.sm,
                d.warp,
                d.lane,
                device_suffix(d.device),
                instance_suffix(d.instance)
            ));
        }
        for m in &self.size_mismatches {
            out.push_str(&format!(
                "  size mismatch: ptr {} malloc'd {} B at step {}, freed as {} B at step {}{}{}\n",
                m.ptr,
                m.malloc_size,
                m.malloc_step,
                m.free_size,
                m.step,
                device_suffix(m.device),
                instance_suffix(m.instance)
            ));
        }
        let paired = self.frees - self.double_frees.len() as u64;
        out.push_str(&format!("  cross-warp frees: {} of {paired}\n", self.cross_warp_frees));
        out.push_str("  free latency (log2 step buckets): ");
        let last = self.latency_hist.iter().rposition(|&c| c > 0).map(|i| i + 1).unwrap_or(0);
        if last == 0 {
            out.push_str("(no paired frees)");
        } else {
            let cells: Vec<String> = self.latency_hist[..last]
                .iter()
                .enumerate()
                .map(|(i, c)| format!("{i}:{c}"))
                .collect();
            out.push_str(&cells.join(" "));
        }
        out.push('\n');
        out
    }

    /// The replay-equivalence projection (see [`LedgerOutcome`]).
    pub fn outcome(&self) -> LedgerOutcome {
        let kind_count =
            |k: FreeAnomalyKind| self.double_frees.iter().filter(|d| d.kind == k).count() as u64;
        LedgerOutcome {
            mallocs: self.mallocs,
            frees: self.frees,
            leaks: self.live.len() as u64,
            double_frees: kind_count(FreeAnomalyKind::DoubleFree),
            unknown_frees: kind_count(FreeAnomalyKind::UnknownPtr),
            size_mismatches: self.size_mismatches.len() as u64,
            alloc_bytes: self.total_alloc_bytes,
        }
    }
}

/// `" instance N"` for pool-mode records, empty for instance 0 — keeps
/// single-instance reports byte-identical to pre-pool output.
pub(crate) fn instance_suffix(instance: u32) -> String {
    if instance == 0 {
        String::new()
    } else {
        format!(" instance {instance}")
    }
}

/// `" device N"` for multi-device records, empty for device 0 — keeps
/// single-device reports byte-identical to pre-topology output.
pub(crate) fn device_suffix(device: u32) -> String {
    if device == 0 {
        String::new()
    } else {
        format!(" device {device}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::trace::AllocTier;

    fn rec(step: u64, warp: u64, instance: u32, event: TraceEvent) -> TraceRecord {
        TraceRecord { step, sm: 0, warp, lane: 0, device: 0, instance, event }
    }

    #[test]
    fn ledger_pairs_mallocs_with_frees() {
        let m = |step, warp, ptr, size| {
            rec(step, warp, 0, TraceEvent::Malloc { size, tier: AllocTier::Slice, ptr })
        };
        let records = vec![
            m(0, 0, 100, 16),
            m(1, 0, 200, 16),
            m(2, 1, 300, 64),
            rec(3, 0, 0, TraceEvent::Free { ptr: 100, size: 0 }), // same warp, delta 3
            rec(4, 2, 0, TraceEvent::Free { ptr: 300, size: 0 }), // cross warp
            rec(5, 0, 0, TraceEvent::Free { ptr: 100, size: 0 }), // double free
        ];
        let ledger = Ledger::build(&records);
        assert_eq!(ledger.mallocs, 3);
        assert_eq!(ledger.frees, 3);
        assert_eq!(ledger.live.len(), 1, "ptr 200 leaks");
        assert_eq!(ledger.live[0].ptr, 200);
        assert_eq!(ledger.live[0].step, 1);
        assert_eq!(ledger.double_frees.len(), 1);
        assert_eq!(ledger.double_frees[0].ptr, 100);
        assert_eq!(ledger.double_frees[0].kind, FreeAnomalyKind::DoubleFree);
        assert_eq!(ledger.cross_warp_frees, 1);
        assert_eq!(ledger.total_alloc_bytes, 96);
        assert_eq!(
            ledger.outcome(),
            LedgerOutcome {
                mallocs: 3,
                frees: 3,
                leaks: 1,
                double_frees: 1,
                unknown_frees: 0,
                size_mismatches: 0,
                alloc_bytes: 96,
            }
        );
        assert_eq!(ledger.peak_live_bytes, 96);
        assert_eq!(ledger.timeline.last(), Some(&(5, 16)));
        assert_eq!(ledger.latency_hist.iter().sum::<u64>(), 2);
        let report = ledger.report();
        assert!(report.contains("leak: ptr 200"), "report: {report}");
        assert!(report.contains("double free: ptr 100"), "report: {report}");
        assert!(!report.contains("instance"), "single-instance report stays pre-pool: {report}");
    }

    #[test]
    fn pairing_is_per_instance() {
        let m = |step, instance, ptr| {
            rec(step, 0, instance, TraceEvent::Malloc { size: 16, tier: AllocTier::Slice, ptr })
        };
        // Two instances hand out the same local offset; each free must
        // pair within its own instance.
        let records = vec![
            m(0, 0, 100),
            m(1, 1, 100),
            rec(2, 0, 1, TraceEvent::Free { ptr: 100, size: 0 }),
            // Instance 2 never allocated ptr 100: anomaly, not a pair.
            rec(3, 0, 2, TraceEvent::Free { ptr: 100, size: 0 }),
        ];
        let ledger = Ledger::build(&records);
        assert_eq!(ledger.live.len(), 1, "instance 0's allocation is still live");
        assert_eq!((ledger.live[0].instance, ledger.live[0].ptr), (0, 100));
        assert_eq!(ledger.double_frees.len(), 1);
        assert_eq!(ledger.double_frees[0].instance, 2);
        assert_eq!(
            ledger.double_frees[0].kind,
            FreeAnomalyKind::UnknownPtr,
            "instance 2 never allocated ptr 100, so this is not a double free"
        );
        let report = ledger.report();
        assert!(report.contains("lane 0 instance 2"), "anomaly names its instance: {report}");
    }

    #[test]
    fn pairing_is_per_device() {
        let m = |step, device, ptr| TraceRecord {
            step,
            sm: 0,
            warp: 0,
            lane: 0,
            device,
            instance: 0,
            event: TraceEvent::Malloc { size: 16, tier: AllocTier::Slice, ptr },
        };
        let f = |step, device, ptr| TraceRecord {
            step,
            sm: 0,
            warp: 0,
            lane: 0,
            device,
            instance: 0,
            event: TraceEvent::Free { ptr, size: 0 },
        };
        // Two devices' pools hand out the same instance-0 local offset;
        // each free must pair within its own device.
        let records = vec![m(0, 0, 100), m(1, 1, 100), f(2, 1, 100), f(3, 3, 100)];
        let ledger = Ledger::build(&records);
        assert_eq!(ledger.live.len(), 1, "device 0's allocation is still live");
        assert_eq!((ledger.live[0].device, ledger.live[0].ptr), (0, 100));
        assert_eq!(ledger.double_frees.len(), 1);
        assert_eq!(ledger.double_frees[0].device, 3);
        assert_eq!(
            ledger.double_frees[0].kind,
            FreeAnomalyKind::UnknownPtr,
            "device 3 never allocated ptr 100, so this is not a double free"
        );
        let report = ledger.report();
        assert!(report.contains("lane 0 device 3"), "anomaly names its device: {report}");
    }

    // Edge-case matrix: each malformed lifecycle is a *classified
    // violation*, never a panic, and the two anomaly kinds stay distinct.

    #[test]
    fn mismatched_free_size_is_a_typed_anomaly_not_a_clamp() {
        // Regression: a free recording a different size than its malloc
        // used to be silently absorbed by a `saturating_sub` clamp on the
        // occupancy timeline. It must surface as a typed anomaly, and the
        // timeline must subtract what the malloc added (no underflow, no
        // phantom residue).
        let records = vec![
            rec(0, 0, 0, TraceEvent::Malloc { size: 16, tier: AllocTier::Slice, ptr: 100 }),
            rec(1, 0, 0, TraceEvent::Free { ptr: 100, size: 64 }),
        ];
        let ledger = Ledger::build(&records);
        assert_eq!(ledger.size_mismatches.len(), 1);
        let m = ledger.size_mismatches[0];
        assert_eq!((m.ptr, m.malloc_size, m.free_size), (100, 16, 64));
        assert_eq!((m.malloc_step, m.step, m.instance), (0, 1, 0));
        assert_eq!(ledger.outcome().size_mismatches, 1);
        assert_eq!(ledger.double_frees.len(), 0, "the lifetime itself paired cleanly");
        assert_eq!(ledger.timeline, vec![(0, 16), (1, 0)], "timeline subtracts the malloc size");
        assert!(
            ledger.report().contains("size mismatch: ptr 100 malloc'd 16 B at step 0"),
            "report: {}",
            ledger.report()
        );

        // A free of unknown size (0) skips the cross-check: hand-built
        // and legacy records stay anomaly-free.
        let unknown = vec![
            rec(0, 0, 0, TraceEvent::Malloc { size: 16, tier: AllocTier::Slice, ptr: 100 }),
            rec(1, 0, 0, TraceEvent::Free { ptr: 100, size: 0 }),
        ];
        assert_eq!(Ledger::build(&unknown).outcome().size_mismatches, 0);

        // And a free recording the exact malloc size is no anomaly.
        let exact = vec![
            rec(0, 0, 0, TraceEvent::Malloc { size: 16, tier: AllocTier::Slice, ptr: 100 }),
            rec(1, 0, 0, TraceEvent::Free { ptr: 100, size: 16 }),
        ];
        assert_eq!(Ledger::build(&exact).outcome().size_mismatches, 0);
    }

    #[test]
    fn free_without_malloc_is_an_unknown_ptr_anomaly() {
        let records = vec![rec(0, 0, 0, TraceEvent::Free { ptr: 640, size: 0 })];
        let ledger = Ledger::build(&records);
        assert_eq!(ledger.frees, 1);
        assert_eq!(ledger.double_frees.len(), 1);
        assert_eq!(ledger.double_frees[0].kind, FreeAnomalyKind::UnknownPtr);
        assert_eq!(ledger.outcome().unknown_frees, 1);
        assert_eq!(ledger.outcome().double_frees, 0);
        assert!(ledger.report().contains("unknown-ptr free: ptr 640"));
    }

    #[test]
    fn replayed_double_free_is_a_double_free_anomaly() {
        let records = vec![
            rec(0, 0, 0, TraceEvent::Malloc { size: 32, tier: AllocTier::Slice, ptr: 64 }),
            rec(1, 0, 0, TraceEvent::Free { ptr: 64, size: 0 }),
            // The same free replayed: the pointer *was* allocated once,
            // so this is classed as a double free, not an unknown ptr.
            rec(2, 1, 0, TraceEvent::Free { ptr: 64, size: 0 }),
            rec(3, 1, 0, TraceEvent::Free { ptr: 64, size: 0 }),
        ];
        let ledger = Ledger::build(&records);
        assert_eq!(ledger.double_frees.len(), 2);
        assert!(ledger.double_frees.iter().all(|d| d.kind == FreeAnomalyKind::DoubleFree));
        assert_eq!(ledger.outcome().double_frees, 2);
        assert_eq!(ledger.outcome().unknown_frees, 0);
        assert!(ledger.report().contains("double free: ptr 64"));
    }

    #[test]
    fn cross_instance_ptr_collision_classifies_both_sides() {
        // Pool mode: instance 0 and 1 both hand out local offset 128.
        // Instance 0's ptr is freed twice (double free on instance 0);
        // instance 1's ptr is freed once on the *wrong* instance — an
        // unknown ptr there, and a leak on instance 1.
        let m = |step, instance| {
            rec(
                step,
                0,
                instance,
                TraceEvent::Malloc { size: 16, tier: AllocTier::Slice, ptr: 128 },
            )
        };
        let records = vec![
            m(0, 0),
            m(1, 1),
            rec(2, 0, 0, TraceEvent::Free { ptr: 128, size: 0 }),
            rec(3, 0, 0, TraceEvent::Free { ptr: 128, size: 0 }), // double free, instance 0
            rec(4, 0, 2, TraceEvent::Free { ptr: 128, size: 0 }), // unknown ptr, instance 2
        ];
        let ledger = Ledger::build(&records);
        let out = ledger.outcome();
        assert_eq!((out.double_frees, out.unknown_frees, out.leaks), (1, 1, 1));
        let double = &ledger.double_frees;
        assert_eq!((double[0].kind, double[0].instance), (FreeAnomalyKind::DoubleFree, 0));
        assert_eq!((double[1].kind, double[1].instance), (FreeAnomalyKind::UnknownPtr, 2));
        assert_eq!(ledger.live[0].instance, 1, "instance 1's allocation is the leak");
    }
}
