//! `repro` — regenerate every table and figure of the Gallatin paper.
//!
//! ```text
//! repro <subcommand> [flags]
//!
//! Subcommands (see DESIGN.md §5 for the experiment index):
//!   init            E1  — §6.4 initialization overhead
//!   single          E2/E3 — Fig 4a/4b single-size alloc + free
//!   mixed           E4/E5 — Fig 4c/4d mixed-size alloc + free
//!   scaling         E6/E7 — Fig 5 scaling with thread count
//!   variance        E8  — §6.8 latency variance
//!   warmup          E9  — §6.9 warmed-up allocators
//!   fragmentation   E10 — Fig 6a/6b fragmentation
//!   utilization     E11 — Fig 6c utilization (OOM test)
//!   graph           E12 — §6.12 dynamic graph phases
//!   expansion       E13 — §6.12 graph expansion
//!   reclaim         E15 — reclaim-protocol telemetry (attempts/aborts/bounces)
//!   ablation        E16 — deterministic atomic-count ablation (64-seed sweep)
//!   bench-smoke     E16 smoke subset, gated against results/BENCH_bench_smoke.json;
//!                   exits 1 if any atomic-op count regresses past the tolerance
//!   trace           E17 — allocation-lifecycle trace of the block-churn workload
//!                   (Chrome trace_event JSON; seed from GALLATIN_SCHED_SEED)
//!   pool            E18 — sharded-pool block churn over 1/2/4/8 instances
//!                   (per-instance atomic counts + spill rates, BENCH_pool.json)
//!   replay          E19 — trace-replay round trip: record the block churn,
//!                   convert to a gallatin-replay-v1 script, re-run it through
//!                   Gallatin and GallatinPool(2), assert lifecycle-outcome
//!                   equality (seed from GALLATIN_SCHED_SEED)
//!   serve           E20 — open-loop serving sweep: seeded arrivals (Poisson/
//!                   bursty), bounded queue, batched launches, multi-tenant
//!                   admission control; p50/p99/p999 + goodput to
//!                   BENCH_serve.json; exits 1 on any quota violation or
//!                   ledger anomaly (seed from GALLATIN_SCHED_SEED)
//!   elastic         E22 — elastic pool: hotspot donation with lifecycle
//!                   ledger, fragmentation-attack compaction A/B, and
//!                   donation latency with/without compaction, to
//!                   BENCH_elastic.json; exits 1 if the hot home absorbs no
//!                   donated segment, the ledger shows anomalies, or a
//!                   compaction row fails to strictly beat its control
//!                   (seed from GALLATIN_SCHED_SEED)
//!   topo            E23 — multi-device topology scaling over 1/2/4/8 devices:
//!                   locality-skew traffic sweep, cross-device spill cascade,
//!                   single-device parity vs GallatinPool, and a 2-device
//!                   serving cell, to BENCH_topo.json; exits 1 if the affine
//!                   cells exceed 5% peer traffic, the cascade overflow is
//!                   wrong, parity diverges, or the serve cell is dirty
//!                   (seed count from GALLATIN_TOPO_SEEDS, default 8)
//!   summary         §6.3-style speedup summary from the written CSVs
//!   all             everything above, in order
//!
//! Perf-trend lane (E21 — see TESTING.md "Perf lane"):
//!   perf            run the perf suite with repeated samples and append one
//!                   gallatin-perf-v1 line to <history>/perf_history.jsonl
//!   perf-gate       compare the latest history line against the rolling
//!                   same-host baseline band; exits 1 on gross regressions
//!   perf-report     render PERF_TREND.md + perf_trend.csv over the history
//!   perf-check      lint BENCH_*.json files/dirs (positional args, default
//!                   results/): median_ms must be a number or "untimed";
//!                   null/missing exits 1
//!
//! Flags:
//!   --threads N     logical GPU threads (default 32768)
//!   --runs N        repetitions per measurement, median reported (default 7)
//!   --heap BYTES    heap per allocator, accepts suffix K/M/G (default 1G)
//!   --sms N         simulated streaming multiprocessors (default 128)
//!   --pool N        OS worker threads (default max(8, cores))
//!   --out DIR       CSV output directory (default results)
//!   --json          also write machine-readable BENCH_<experiment>.json files
//!   --full          paper-scale: 1M threads, 50 runs, 2G heap, 2^20 scaling
//!   --smoke         CI smoke subset (serve): shorter horizon, fewer cells
//!
//! Perf flags (perf/perf-gate/perf-report only):
//!   --samples N     repeated suite samples per run, medians kept (default 3)
//!   --history DIR   history directory (default results/history)
//!   --window N      rolling-baseline window for perf-gate (default 10)
//!   --sha S         git SHA stamped on the appended run (default $GITHUB_SHA
//!                   or "local")
//!   --stamp S       timestamp label (default unix-<seconds>)
//!   --host S        host label; the gate only compares equal labels
//!                   (default $PERF_HOST or "local")
//!   --seeds SPEC    churn-cell schedule seeds: "0..8" or "0,3,7" (default 0..8)
//! ```

use bench::experiments as exp;
use bench::perf::PerfOptions;
use bench::HarnessConfig;

fn parse_bytes(s: &str) -> Option<u64> {
    let (num, mult) = match s.chars().last()? {
        'G' | 'g' => (&s[..s.len() - 1], 1u64 << 30),
        'M' | 'm' => (&s[..s.len() - 1], 1u64 << 20),
        'K' | 'k' => (&s[..s.len() - 1], 1u64 << 10),
        _ => (s, 1),
    };
    num.parse::<u64>().ok().map(|n| n * mult)
}

/// `--seeds` accepts a half-open range (`0..8`) or a comma list (`0,3,7`).
fn parse_seeds(s: &str) -> Option<Vec<u64>> {
    if let Some((a, b)) = s.split_once("..") {
        let (a, b) = (a.parse::<u64>().ok()?, b.parse::<u64>().ok()?);
        if a >= b {
            return None;
        }
        return Some((a..b).collect());
    }
    s.split(',').map(|p| p.trim().parse::<u64>().ok()).collect()
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() {
        eprintln!("usage: repro <init|single|mixed|scaling|variance|warmup|fragmentation|utilization|graph|expansion|reclaim|ablation|bench-smoke|trace|pool|replay|serve|elastic|topo|perf|perf-gate|perf-report|perf-check|summary|all> [--threads N] [--runs N] [--heap BYTES] [--sms N] [--pool N] [--out DIR] [--json] [--full] [--smoke] [--samples N] [--history DIR] [--window N] [--sha S] [--stamp S] [--host S] [--seeds SPEC]");
        std::process::exit(2);
    }
    let cmd = args[0].clone();
    let mut cfg = HarnessConfig::default();
    let mut perf = PerfOptions::default();
    let mut positional: Vec<String> = Vec::new();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--threads" => {
                cfg.threads = args[i + 1].parse().expect("--threads N");
                i += 2;
            }
            "--runs" => {
                cfg.runs = args[i + 1].parse().expect("--runs N");
                i += 2;
            }
            "--heap" => {
                cfg.heap_bytes = parse_bytes(&args[i + 1]).expect("--heap BYTES");
                i += 2;
            }
            "--sms" => {
                cfg.num_sms = args[i + 1].parse().expect("--sms N");
                i += 2;
            }
            "--pool" => {
                cfg.pool_threads = args[i + 1].parse().expect("--pool N");
                i += 2;
            }
            "--out" => {
                cfg.out_dir = args[i + 1].clone();
                i += 2;
            }
            "--json" => {
                cfg.json = true;
                i += 1;
            }
            "--full" => {
                cfg = cfg.clone().at_full_scale();
                i += 1;
            }
            "--smoke" => {
                cfg.smoke = true;
                i += 1;
            }
            "--samples" => {
                perf.samples = args[i + 1].parse().expect("--samples N");
                i += 2;
            }
            "--history" => {
                perf.history_dir = args[i + 1].clone();
                i += 2;
            }
            "--window" => {
                perf.window = args[i + 1].parse().expect("--window N");
                i += 2;
            }
            "--sha" => {
                perf.sha = args[i + 1].clone();
                i += 2;
            }
            "--stamp" => {
                perf.stamp = args[i + 1].clone();
                i += 2;
            }
            "--host" => {
                perf.host = args[i + 1].clone();
                i += 2;
            }
            "--seeds" => {
                perf.seeds = parse_seeds(&args[i + 1]).expect("--seeds A..B or A,B,C");
                i += 2;
            }
            other if other.starts_with("--") => {
                eprintln!("unknown flag {other}");
                std::process::exit(2);
            }
            other => {
                positional.push(other.to_string());
                i += 1;
            }
        }
    }
    cfg.install_pool();
    println!(
        "# gallatin-repro harness — threads={} runs={} heap={}MiB sms={} pool={}",
        cfg.threads,
        cfg.runs,
        cfg.heap_bytes >> 20,
        cfg.num_sms,
        cfg.pool_threads
    );

    let t0 = std::time::Instant::now();
    match cmd.as_str() {
        "init" => exp::run_init(&cfg),
        "single" => exp::run_single(&cfg),
        "mixed" => exp::run_mixed(&cfg),
        "scaling" => exp::run_scaling(&cfg),
        "variance" => exp::run_variance(&cfg),
        "warmup" => exp::run_warmup(&cfg),
        "fragmentation" => exp::run_fragmentation(&cfg),
        "utilization" => exp::run_utilization(&cfg),
        "graph" => exp::run_graph(&cfg),
        "expansion" => exp::run_graph_expansion(&cfg),
        "reclaim" => exp::run_reclaim(&cfg),
        "ablation" => exp::run_ablation(&cfg),
        "bench-smoke" => {
            if !exp::run_bench_smoke(&cfg) {
                std::process::exit(1);
            }
        }
        "trace" => exp::run_trace(&cfg),
        "pool" => exp::run_pool(&cfg),
        "replay" => exp::run_replay(&cfg),
        "serve" => {
            if !exp::run_serve(&cfg) {
                std::process::exit(1);
            }
        }
        "elastic" => {
            if !exp::run_elastic(&cfg) {
                std::process::exit(1);
            }
        }
        "topo" => {
            if !exp::run_topo(&cfg) {
                std::process::exit(1);
            }
        }
        "summary" => exp::run_summary(&cfg.out_dir),
        "perf" => {
            if !bench::perf::run_perf(&perf) {
                std::process::exit(1);
            }
        }
        "perf-gate" => {
            if !bench::perf::run_perf_gate(&perf) {
                std::process::exit(1);
            }
        }
        "perf-report" => {
            if !bench::perf::run_perf_report(&perf) {
                std::process::exit(1);
            }
        }
        "perf-check" => {
            let paths =
                if positional.is_empty() { vec!["results".to_string()] } else { positional };
            if !bench::perf::run_perf_check(&paths) {
                std::process::exit(1);
            }
        }
        "all" => {
            exp::run_init(&cfg);
            exp::run_single(&cfg);
            exp::run_mixed(&cfg);
            exp::run_scaling(&cfg);
            exp::run_variance(&cfg);
            exp::run_warmup(&cfg);
            exp::run_fragmentation(&cfg);
            exp::run_utilization(&cfg);
            exp::run_graph(&cfg);
            exp::run_graph_expansion(&cfg);
            exp::run_reclaim(&cfg);
            exp::run_ablation(&cfg);
            exp::run_trace(&cfg);
            exp::run_pool(&cfg);
            exp::run_replay(&cfg);
            exp::run_serve(&cfg);
            exp::run_elastic(&cfg);
            exp::run_topo(&cfg);
            exp::run_summary(&cfg.out_dir);
        }
        other => {
            eprintln!("unknown subcommand {other}");
            std::process::exit(2);
        }
    }
    println!("\n# done in {:.1}s — CSVs in {}/", t0.elapsed().as_secs_f64(), cfg.out_dir);
}
