//! E17 — allocation-lifecycle trace capture (`repro trace`).
//!
//! Replays the E16 block-churn workload under the deterministic
//! scheduler with a [`gpu_sim::trace::TraceSink`] installed, then emits:
//!
//! * `<out_dir>/TRACE_block_churn.json` — Chrome `trace_event` JSON
//!   (open in `chrome://tracing` or <https://ui.perfetto.dev>);
//! * the lifecycle-ledger report (leaks, double frees, cross-warp free
//!   latency, occupancy peak) and an event-count table on stdout;
//! * with `--json`, `<out_dir>/BENCH_trace.json` carrying the event
//!   counts in the standard [`BenchRecord`] schema.
//!
//! The schedule seed comes from `GALLATIN_SCHED_SEED` (default 7), which
//! is what makes this the replay half of a failing-seed report: a test
//! failure prints `GALLATIN_SCHED_SEED=<seed>`, and
//! `GALLATIN_SCHED_SEED=<seed> repro trace` captures the exact
//! interleaving that failed as a diffable artifact.

use crate::report::{write_bench_json, BenchRecord, Table};
use crate::HarnessConfig;
use gpu_sim::sched::SCHED_SEED_ENV;
use gpu_sim::trace::{chrome_trace_json, Ledger, TraceSink};
use gpu_sim::DeviceAllocator;
use std::path::Path;
use std::sync::Arc;

use super::ablation;

/// Default schedule seed when `GALLATIN_SCHED_SEED` is unset.
const DEFAULT_SEED: u64 = 7;

/// Run the trace capture; see the module docs.
pub fn run_trace(cfg: &HarnessConfig) {
    let seed = match std::env::var(SCHED_SEED_ENV) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{SCHED_SEED_ENV} must be a u64, got {s:?}")),
        Err(_) => DEFAULT_SEED,
    };
    println!("E17 trace: block-churn workload under {SCHED_SEED_ENV}={seed}");

    let g = ablation::block_churn_gallatin();
    let sink = Arc::new(TraceSink::new());
    sink.set_leak_check(true);
    let mut churn_ms = 0.0f64;
    let records = gpu_sim::trace::with_sink(sink.clone(), || {
        let t0 = std::time::Instant::now();
        ablation::block_churn(&g, seed);
        churn_ms = t0.elapsed().as_secs_f64() * 1e3;
        // Invariants + armed leak check: a failure auto-dumps the trace
        // before this run's own export below.
        g.check_invariants().expect("block churn must leave the allocator healthy");
        sink.snapshot()
    });
    assert_eq!(sink.dropped(), 0, "sink capacity must cover the workload");
    assert_eq!(g.stats().reserved_bytes, 0, "block churn leaked");

    // Chrome trace artifact.
    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!("warning: could not create {}: {e}", cfg.out_dir);
    }
    let trace_path = Path::new(&cfg.out_dir).join("TRACE_block_churn.json");
    match std::fs::write(&trace_path, chrome_trace_json(&records)) {
        Ok(()) => println!("wrote {} ({} events)", trace_path.display(), records.len()),
        Err(e) => eprintln!("warning: could not write {}: {e}", trace_path.display()),
    }

    // Event-count table: one row per event type, in first-seen order.
    let mut counts: Vec<(&'static str, u64)> = Vec::new();
    for r in &records {
        let name = r.event.name();
        match counts.iter_mut().find(|(n, _)| *n == name) {
            Some((_, c)) => *c += 1,
            None => counts.push((name, 1)),
        }
    }
    counts.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(b.0)));
    let mut tab = Table::new(
        format!("E17 — lifecycle trace, block churn (seed {seed})"),
        &["event", "count"],
    );
    for (name, c) in &counts {
        tab.row(vec![name.to_string(), c.to_string()]);
    }
    tab.emit(&cfg.out_dir, "e17_trace");

    // Post-mortem ledger.
    let ledger = Ledger::build(&records);
    print!("{}", ledger.report());
    println!(
        "replay this capture with {SCHED_SEED_ENV}={seed} repro trace; \
         open {} in chrome://tracing or https://ui.perfetto.dev",
        trace_path.display()
    );

    if cfg.json {
        let rec = BenchRecord {
            experiment: "trace".to_string(),
            allocator: "Gallatin".to_string(),
            params: vec![
                ("case".to_string(), "block-churn".to_string()),
                ("seed".to_string(), seed.to_string()),
            ],
            median_ms: churn_ms,
            counts: {
                let mut c: Vec<(String, u64)> = vec![
                    ("events".to_string(), records.len() as u64),
                    ("leaks".to_string(), ledger.live.len() as u64),
                    ("double_frees".to_string(), ledger.double_frees.len() as u64),
                    ("cross_warp_frees".to_string(), ledger.cross_warp_frees),
                    ("peak_live_bytes".to_string(), ledger.peak_live_bytes),
                ];
                c.extend(counts.iter().map(|(n, v)| (n.to_string(), *v)));
                c
            },
        };
        match write_bench_json(&cfg.out_dir, "trace", &[rec]) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("warning: could not write BENCH_trace.json: {e}"),
        }
    }
}
