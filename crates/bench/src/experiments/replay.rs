//! E19 — trace-replay round trip (`repro replay`).
//!
//! Closes the record/replay loop opened by E17: record the E16
//! block-churn workload as a lifecycle trace, reduce it to a
//! [`ReplayScript`], round-trip the script through the
//! `gallatin-replay-v1` text format, then re-issue it through a fresh
//! `Gallatin` **and** a `GallatinPool(2)` via the workload engine
//! ([`crate::workload::run_script`]). Equivalence is asserted on the
//! [`LedgerOutcome`] projection — malloc/free counts, leaks, anomaly
//! counts, allocated bytes — which is exactly the part of a recording
//! that must survive a schedule- and placement-changing replay
//! (latencies, peak occupancy, and event interleavings legitimately
//! differ; lifecycle totals never may).
//!
//! Artifacts:
//!
//! * `<out_dir>/REPLAY_block_churn.replay` — the converted script in the
//!   text format (see `gpu_sim::replay` for the schema), re-parsed and
//!   compared before use so the artifact is proven load-bearing;
//! * a per-target table on stdout; with `--json`,
//!   `<out_dir>/BENCH_replay.json` in the standard [`BenchRecord`]
//!   schema.
//!
//! The recording seed comes from `GALLATIN_SCHED_SEED` (default 7),
//! matching `repro trace`, so a failing seed reported by the test suite
//! replays here unchanged.

use crate::report::{write_bench_json, BenchRecord, Table};
use crate::workload::{run_script, ScriptOutcome};
use crate::HarnessConfig;
use gallatin::{Gallatin, GallatinPool};
use gpu_sim::replay::ReplayScript;
use gpu_sim::sched::SCHED_SEED_ENV;
use gpu_sim::trace::{Ledger, LedgerOutcome, TraceSink};
use gpu_sim::{DeviceAllocator, DeviceConfig};
use std::path::Path;
use std::sync::Arc;

use super::ablation;

/// Default recording seed when `GALLATIN_SCHED_SEED` is unset (same as
/// E17's).
const DEFAULT_SEED: u64 = 7;

/// One replay target's results.
struct TargetRun {
    name: &'static str,
    outcome: LedgerOutcome,
    script_outcome: ScriptOutcome,
    replay_ms: f64,
}

/// Record the E16 block churn under `seed`, returning the trace-derived
/// lifecycle outcome and the converted script.
fn record(seed: u64) -> (LedgerOutcome, ReplayScript) {
    let g = ablation::block_churn_gallatin();
    let sink = Arc::new(TraceSink::new());
    let records = gpu_sim::trace::with_sink(sink.clone(), || {
        ablation::block_churn(&g, seed);
        g.check_invariants().expect("block churn must leave the allocator healthy");
        sink.snapshot()
    });
    assert_eq!(sink.dropped(), 0, "sink capacity must cover the workload");
    assert_eq!(g.stats().reserved_bytes, 0, "block churn leaked");

    let (script, stats) = ReplayScript::from_trace(&records, ablation::SWEEP_SMS);
    // Block churn frees within the allocating warp and pairs every
    // pointer, so the reduction must be lossless — any reassignment or
    // drop means the recorder or converter regressed.
    assert_eq!(stats.reassigned_frees, 0, "block churn has no cross-warp frees");
    assert_eq!(stats.dropped_frees, 0, "every recorded free must replay");
    assert_eq!(script.validate(), Ok(0), "converted script must be well-formed and leak-free");
    (Ledger::build(&records).outcome(), script)
}

/// Replay `script` through `a` under a sink; returns the replayed
/// lifecycle outcome plus the runner's contract outcome.
fn replay_through(
    name: &'static str,
    a: &dyn DeviceAllocator,
    seed: u64,
    script: &ReplayScript,
) -> TargetRun {
    let sink = Arc::new(TraceSink::new());
    let t0 = std::time::Instant::now();
    let (script_outcome, records) = gpu_sim::trace::with_sink(sink.clone(), || {
        let out =
            run_script(a, DeviceConfig::with_sms(ablation::SWEEP_SMS).seeded(seed), script, true);
        (out, sink.snapshot())
    });
    let replay_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(sink.dropped(), 0, "replay sink capacity must cover the workload");
    TargetRun { name, outcome: Ledger::build(&records).outcome(), script_outcome, replay_ms }
}

/// Run the E19 round trip; see the module docs.
pub fn run_replay(cfg: &HarnessConfig) {
    let seed = match std::env::var(SCHED_SEED_ENV) {
        Ok(s) => s
            .trim()
            .parse::<u64>()
            .unwrap_or_else(|_| panic!("{SCHED_SEED_ENV} must be a u64, got {s:?}")),
        Err(_) => DEFAULT_SEED,
    };
    println!(
        "E19 replay: record block churn under {SCHED_SEED_ENV}={seed}, replay via script engine"
    );

    let (original, script) = record(seed);

    // Text-format round trip: the written artifact is re-parsed and must
    // reproduce the script exactly, so the file on disk is proven to
    // carry the whole workload.
    if let Err(e) = std::fs::create_dir_all(&cfg.out_dir) {
        eprintln!("warning: could not create {}: {e}", cfg.out_dir);
    }
    let script_path = Path::new(&cfg.out_dir).join("REPLAY_block_churn.replay");
    let text = script.render();
    match std::fs::write(&script_path, &text) {
        Ok(()) => println!(
            "wrote {} ({} warps, {} ops)",
            script_path.display(),
            script.warps.len(),
            script.total_ops()
        ),
        Err(e) => eprintln!("warning: could not write {}: {e}", script_path.display()),
    }
    let reparsed = ReplayScript::parse(&text).expect("rendered script must parse");
    assert_eq!(reparsed, script, "text round trip must be exact");

    // Replay the re-parsed script through both targets.
    let gallatin = Gallatin::new(ablation::block_churn_config());
    let pool = GallatinPool::new(2, ablation::block_churn_config());
    let runs = [
        replay_through("Gallatin", &gallatin, seed, &reparsed),
        replay_through("GallatinPool(2)", &pool, seed, &reparsed),
    ];

    let mut tab = Table::new(
        format!("E19 — trace-replay round trip, block churn (seed {seed})"),
        &["target", "mallocs", "frees", "leaks", "anomalies", "alloc MiB", "ledger"],
    );
    tab.row(vec![
        "recording".into(),
        original.mallocs.to_string(),
        original.frees.to_string(),
        original.leaks.to_string(),
        (original.double_frees + original.unknown_frees).to_string(),
        format!("{:.1}", original.alloc_bytes as f64 / (1 << 20) as f64),
        "-".into(),
    ]);
    for run in &runs {
        assert_eq!(
            run.outcome, original,
            "{}: replayed lifecycle outcome must equal the recording",
            run.name
        );
        assert_eq!(
            run.script_outcome.violations(),
            (0, 0, 0),
            "{}: replay must satisfy the allocation contract: {:?}",
            run.name,
            run.script_outcome
        );
        assert_eq!(run.script_outcome.denied, 0, "{}: replay must not hit OOM", run.name);
        tab.row(vec![
            run.name.into(),
            run.outcome.mallocs.to_string(),
            run.outcome.frees.to_string(),
            run.outcome.leaks.to_string(),
            (run.outcome.double_frees + run.outcome.unknown_frees).to_string(),
            format!("{:.1}", run.outcome.alloc_bytes as f64 / (1 << 20) as f64),
            "equal".into(),
        ]);
    }
    tab.emit(&cfg.out_dir, "e19_replay");
    println!(
        "replayed {} ops through {} targets; lifecycle outcomes equal the recording \
         (replay any seed with {SCHED_SEED_ENV}=<seed> repro replay)",
        script.total_ops(),
        runs.len()
    );

    if cfg.json {
        let recs: Vec<BenchRecord> = runs
            .iter()
            .map(|run| BenchRecord {
                experiment: "replay".to_string(),
                allocator: run.name.to_string(),
                params: vec![
                    ("case".to_string(), "block-churn".to_string()),
                    ("seed".to_string(), seed.to_string()),
                ],
                median_ms: run.replay_ms,
                counts: vec![
                    ("mallocs".to_string(), run.outcome.mallocs),
                    ("frees".to_string(), run.outcome.frees),
                    ("leaks".to_string(), run.outcome.leaks),
                    ("double_frees".to_string(), run.outcome.double_frees),
                    ("unknown_frees".to_string(), run.outcome.unknown_frees),
                    ("alloc_bytes".to_string(), run.outcome.alloc_bytes),
                    ("served".to_string(), run.script_outcome.served),
                    ("denied".to_string(), run.script_outcome.denied),
                ],
            })
            .collect();
        match write_bench_json(&cfg.out_dir, "replay", &recs) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("warning: could not write BENCH_replay.json: {e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The full E19 equivalence, as a tier-1 test: recording outcome ==
    /// replayed outcome through both a fresh Gallatin and a 2-instance
    /// pool, via the text format.
    #[test]
    fn block_churn_round_trips_through_both_targets() {
        let seed = 7;
        let (original, script) = record(seed);
        assert!(original.mallocs > 0 && original.leaks == 0);
        let reparsed = ReplayScript::parse(&script.render()).unwrap();
        assert_eq!(reparsed, script);

        let gallatin = Gallatin::new(ablation::block_churn_config());
        let pool = GallatinPool::new(2, ablation::block_churn_config());
        for run in [
            replay_through("Gallatin", &gallatin, seed, &reparsed),
            replay_through("GallatinPool(2)", &pool, seed, &reparsed),
        ] {
            assert_eq!(run.outcome, original, "{}", run.name);
            assert_eq!(run.script_outcome.violations(), (0, 0, 0), "{}", run.name);
            assert_eq!(run.script_outcome.denied, 0, "{}", run.name);
        }
    }

    /// A different schedule seed on the replay side must still reproduce
    /// the recorded lifecycle outcome — that is what makes the outcome
    /// the right equivalence class for replays.
    #[test]
    fn replay_outcome_is_schedule_independent() {
        let (original, script) = record(7);
        let g = Gallatin::new(ablation::block_churn_config());
        let a = replay_through("Gallatin", &g, 13, &script);
        assert_eq!(a.outcome, original);
    }
}
