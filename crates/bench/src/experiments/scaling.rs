//! E6/E7 — Figure 5: scaling with thread count.
//!
//! The allocation size is held constant (16 / 64 / 512 / 8192 B, the
//! paper's four panels) while the number of threads doubles from 2^0 up
//! to 2^20 (paper scale; capped lower by default on small hosts). One
//! allocator is resident at a time.

use crate::report::{fmt_ms, Table};
use crate::roster::{for_each_allocator, roster_names};
use crate::workload::{measure, SizeSpec};
use crate::HarnessConfig;

/// The four panel sizes of Figure 5.
pub const SCALING_SIZES: [u64; 4] = [16, 64, 512, 8192];

/// Thread counts: powers of two up to the configured maximum.
pub fn thread_points(cfg: &HarnessConfig) -> Vec<u64> {
    let max_log = if cfg.full { 20 } else { 16 };
    (0..=max_log).map(|l| 1u64 << l).collect()
}

/// Run the scaling experiment: one table (alloc + free) per size.
pub fn run_scaling(cfg: &HarnessConfig) {
    let names = roster_names();
    let points = thread_points(cfg);
    for &size in &SCALING_SIZES {
        let mut grid =
            vec![vec![("n/a".to_string(), "n/a".to_string()); names.len()]; points.len()];
        for_each_allocator(cfg.heap_bytes, cfg.num_sms, |ai, a| {
            for (pi, &threads) in points.iter().enumerate() {
                if !a.supports_size(size) || a.heap_bytes() < threads * size {
                    continue;
                }
                let m = measure(a, cfg.device(), threads, SizeSpec::Fixed(size), cfg.runs, false);
                let suffix = if m.corrupt > 0 {
                    "!"
                } else if m.failed > 0 {
                    "*"
                } else {
                    ""
                };
                grid[pi][ai] = (
                    format!("{}{}", fmt_ms(m.median_alloc_ms()), suffix),
                    format!("{}{}", fmt_ms(m.median_free_ms()), suffix),
                );
            }
        });

        let mut headers = vec!["threads"];
        headers.extend(names.iter().copied());
        let mut alloc_tab = Table::new(
            format!("Fig 5 — scaling alloc @ {size} B, median of {} runs (ms)", cfg.runs),
            &headers,
        );
        let mut free_tab = Table::new(
            format!("Fig 5 — scaling free @ {size} B, median of {} runs (ms)", cfg.runs),
            &headers,
        );
        for (pi, &threads) in points.iter().enumerate() {
            let mut arow = vec![threads.to_string()];
            let mut frow = vec![threads.to_string()];
            for cell in grid[pi].iter().take(names.len()) {
                arow.push(cell.0.clone());
                frow.push(cell.1.clone());
            }
            alloc_tab.row(arow);
            free_tab.row(frow);
        }
        alloc_tab.emit(&cfg.out_dir, &format!("fig5_scaling_alloc_{size}b"));
        free_tab.emit(&cfg.out_dir, &format!("fig5_scaling_free_{size}b"));
    }
    println!("(* = some requests failed; ! = payload corruption detected)");
}
