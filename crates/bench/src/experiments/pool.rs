//! E18 — sharded-pool scaling (`repro pool`).
//!
//! Runs the E16 block-churn workload through a [`GallatinPool`] of 1, 2,
//! 4, and 8 instances — each instance carrying the same per-instance
//! configuration as the single-allocator churn, so the 1-instance column
//! is directly comparable to E16 — and emits `BENCH_pool.json` with
//! **per-instance** atomic-op counts and spill rates. Under the
//! deterministic scheduler the counts are exact functions of the seed,
//! so sharding effects (atomics spread across instance-private metadata,
//! zero cross-instance traffic while every home has capacity) show up as
//! bit-stable numbers rather than wall-clock noise.
//!
//! A second, deterministic **pressure** case drains one instance with
//! segment-sized claims from a single SM and keeps allocating, forcing
//! the overflow walk: its spill count is exact (every claim past the
//! home instance's 16th spills to the sibling) and regression-tested
//! below.

use crate::report::{write_bench_json, BenchRecord, Table};
use crate::HarnessConfig;
use gallatin::{GallatinConfig, GallatinPool};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
use std::time::Instant;

use super::ablation::{
    block_churn_config, churn_once, SWEEP_ROUNDS, SWEEP_SEEDS_SMOKE, SWEEP_SIZE_BLOCK, SWEEP_WARPS,
};

/// Pool widths swept by `repro pool`.
const POOL_WIDTHS: [usize; 4] = [1, 2, 4, 8];

/// Schedule seed for the pressure case (any seed reproduces the same
/// spill count — one warp, one SM, nothing to interleave with).
const PRESSURE_SEED: u64 = 3;

/// Segment-sized claims issued by the pressure case: the home instance
/// holds 16 small_test segments, so the remaining claims all spill.
const PRESSURE_CLAIMS: u64 = 24;

/// Counters accumulated for one pool instance across a seed sweep.
#[derive(Clone, Copy, Default)]
struct InstanceTotals {
    cas_attempts: u64,
    cas_failures: u64,
    atomic_rmw: u64,
    spills: u64,
}

/// Run the block churn over `seeds` deterministic schedules on a fresh
/// `n`-instance pool per seed; return per-instance totals and wall time.
fn churn_pool(n: usize, seeds: u64) -> (Vec<InstanceTotals>, f64) {
    let mut per = vec![InstanceTotals::default(); n];
    let mut ms = 0.0;
    for seed in 0..seeds {
        let pool = GallatinPool::new(n, block_churn_config());
        let t0 = Instant::now();
        churn_once(&pool, seed, SWEEP_SIZE_BLOCK);
        ms += t0.elapsed().as_secs_f64() * 1e3;
        pool.check_invariants().expect("invariants after pool churn");
        assert_eq!(pool.stats().reserved_bytes, 0, "pool churn leaked");
        for (i, t) in per.iter_mut().enumerate() {
            let m = pool.instance(i).metrics().expect("gallatin keeps metrics").snapshot();
            t.cas_attempts += m.cas_attempts;
            t.cas_failures += m.cas_failures;
            t.atomic_rmw += m.atomic_rmw;
            t.spills += pool.spill_count(i);
        }
    }
    (per, ms)
}

/// Allocation requests one churn sweep issues (the spill-rate
/// denominator).
fn churn_requests(seeds: u64) -> u64 {
    seeds * SWEEP_WARPS * 32 * SWEEP_ROUNDS
}

/// The deterministic pressure case: one SM drains its home instance with
/// segment-sized claims, forcing the overflow walk onto the sibling.
/// Returns `(spills charged to the home, claims issued)`.
fn pressure() -> (u64, u64) {
    let pool = GallatinPool::new(2, GallatinConfig::small_test(1 << 20));
    launch_warps(DeviceConfig::with_sms(1).seeded(PRESSURE_SEED), 32, |warp| {
        let lane = warp.lane(0);
        let seg = pool.instance(0).geometry().segment_bytes;
        let held: Vec<DevicePtr> = (0..PRESSURE_CLAIMS).map(|_| pool.malloc(&lane, seg)).collect();
        assert!(held.iter().all(|p| !p.is_null()), "sibling must absorb the pressure");
        for p in held {
            pool.free(&lane, p);
        }
    });
    pool.check_invariants().expect("invariants after pressure case");
    (pool.spill_count(0), PRESSURE_CLAIMS)
}

fn rec(
    experiment: &str,
    case: &str,
    extra: Vec<(String, String)>,
    ms: f64,
    counts: Vec<(String, u64)>,
) -> BenchRecord {
    let mut params = vec![("case".to_string(), case.to_string())];
    params.extend(extra);
    BenchRecord {
        experiment: experiment.to_string(),
        allocator: "GallatinPool".to_string(),
        params,
        median_ms: ms,
        counts,
    }
}

/// Records for one pool width: an aggregate row plus one row per
/// instance (the per-instance counts are the experiment's deliverable).
fn width_records(experiment: &str, n: usize, seeds: u64) -> Vec<BenchRecord> {
    let (per, ms) = churn_pool(n, seeds);
    let sum = |f: fn(&InstanceTotals) -> u64| per.iter().map(f).sum::<u64>();
    let mut out = vec![rec(
        experiment,
        "pool-churn",
        vec![
            ("instances".into(), n.to_string()),
            ("size".into(), SWEEP_SIZE_BLOCK.to_string()),
            ("seeds".into(), seeds.to_string()),
        ],
        ms,
        vec![
            ("cas_attempts".into(), sum(|t| t.cas_attempts)),
            ("cas_failures".into(), sum(|t| t.cas_failures)),
            ("atomic_rmw".into(), sum(|t| t.atomic_rmw)),
            ("spills".into(), sum(|t| t.spills)),
            ("requests".into(), churn_requests(seeds)),
        ],
    )];
    for (i, t) in per.iter().enumerate() {
        out.push(rec(
            experiment,
            "pool-churn",
            vec![
                ("instances".into(), n.to_string()),
                ("instance".into(), i.to_string()),
                ("size".into(), SWEEP_SIZE_BLOCK.to_string()),
                ("seeds".into(), seeds.to_string()),
            ],
            ms,
            vec![
                ("cas_attempts".into(), t.cas_attempts),
                ("cas_failures".into(), t.cas_failures),
                ("atomic_rmw".into(), t.atomic_rmw),
                ("spills".into(), t.spills),
            ],
        ));
    }
    out
}

/// The smoke-gate slice of E18: the 2-instance aggregate at the smoke
/// seed width, appended to `smoke_records()` so a pool-path count
/// regression fails the same gate as the single-instance sweeps.
pub fn pool_smoke_records(experiment: &str) -> Vec<BenchRecord> {
    let (per, ms) = churn_pool(2, SWEEP_SEEDS_SMOKE);
    let sum = |f: fn(&InstanceTotals) -> u64| per.iter().map(f).sum::<u64>();
    vec![rec(
        experiment,
        "pool-churn",
        vec![
            ("instances".into(), "2".into()),
            ("size".into(), SWEEP_SIZE_BLOCK.to_string()),
            ("seeds".into(), SWEEP_SEEDS_SMOKE.to_string()),
        ],
        ms,
        vec![
            ("cas_attempts".into(), sum(|t| t.cas_attempts)),
            ("cas_failures".into(), sum(|t| t.cas_failures)),
            ("atomic_rmw".into(), sum(|t| t.atomic_rmw)),
            ("spills".into(), sum(|t| t.spills)),
        ],
    )]
}

/// Run the E18 sweep and emit table + CSV + `BENCH_pool.json`.
pub fn run_pool(cfg: &HarnessConfig) {
    let seeds = SWEEP_SEEDS_SMOKE;
    let mut recs = Vec::new();
    for n in POOL_WIDTHS {
        recs.extend(width_records("pool", n, seeds));
    }
    let t0 = Instant::now();
    let (spills, claims) = pressure();
    let pressure_ms = t0.elapsed().as_secs_f64() * 1e3;
    recs.push(rec(
        "pool",
        "pressure",
        vec![("instances".into(), "2".into()), ("seed".into(), PRESSURE_SEED.to_string())],
        pressure_ms,
        vec![("spills".into(), spills), ("requests".into(), claims)],
    ));

    let mut tab = Table::new(
        "E18 — sharded pool: block churn across instance counts",
        &[
            "case",
            "instances",
            "instance",
            "cas attempts",
            "cas failures",
            "atomic rmw",
            "spills",
            "spill rate",
        ],
    );
    for r in &recs {
        let get = |k: &str| r.counts.iter().find(|(n, _)| n == k).map(|(_, v)| *v);
        let param = |k: &str| {
            r.params
                .iter()
                .find(|(pk, _)| pk == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "-".to_string())
        };
        let spill_rate = match (get("spills"), get("requests")) {
            (Some(s), Some(req)) if req > 0 => format!("{:.4}", s as f64 / req as f64),
            _ => "-".to_string(),
        };
        let show = |v: Option<u64>| v.map(|v| v.to_string()).unwrap_or_else(|| "-".to_string());
        tab.row(vec![
            r.params[0].1.clone(),
            param("instances"),
            param("instance"),
            show(get("cas_attempts")),
            show(get("cas_failures")),
            show(get("atomic_rmw")),
            show(get("spills")),
            spill_rate,
        ]);
    }
    tab.emit(&cfg.out_dir, "e18_pool");
    match write_bench_json(&cfg.out_dir, "pool", &recs) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write BENCH_pool.json: {e}"),
    }
    println!(
        "pressure case: {spills} of {claims} segment claims spilled to the sibling \
         (home capacity 16 segments)"
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_churn_counts_replay_and_never_spill_with_headroom() {
        let (a, _) = churn_pool(2, 2);
        let (b, _) = churn_pool(2, 2);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.cas_attempts, y.cas_attempts, "pool churn must replay exactly");
            assert_eq!(x.atomic_rmw, y.atomic_rmw);
        }
        assert_eq!(
            a.iter().map(|t| t.spills).sum::<u64>(),
            0,
            "every home instance has capacity for this workload"
        );
        // Both instances see traffic: 8 SMs split evenly over 2 homes.
        assert!(a.iter().all(|t| t.atomic_rmw > 0), "every instance must serve its SMs");
    }

    #[test]
    fn pressure_case_spills_exactly_the_overflow() {
        let (spills, claims) = pressure();
        assert_eq!(spills, claims - 16, "every claim past the home's 16 segments spills");
        assert_eq!(pressure().0, spills, "the pressure spill count is deterministic");
    }
}
