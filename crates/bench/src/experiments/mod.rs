//! One driver per paper experiment (see DESIGN.md §5, E1–E13).

pub mod ablation;
pub mod elastic;
pub mod fragmentation;
pub mod graph_bench;
pub mod init_bench;
pub mod mixed;
pub mod pool;
pub mod reclaim;
pub mod replay;
pub mod scaling;
pub mod serve;
pub mod single;
pub mod summary;
pub mod topo;
pub mod trace;
pub mod utilization;
pub mod variance;

pub use ablation::{run_ablation, run_bench_smoke};
pub use elastic::run_elastic;
pub use fragmentation::run_fragmentation;
pub use graph_bench::{run_graph, run_graph_expansion};
pub use init_bench::run_init;
pub use mixed::run_mixed;
pub use pool::run_pool;
pub use reclaim::run_reclaim;
pub use replay::run_replay;
pub use scaling::run_scaling;
pub use serve::run_serve;
pub use single::{run_single, run_warmup};
pub use summary::run_summary;
pub use topo::run_topo;
pub use trace::run_trace;
pub use utilization::run_utilization;
pub use variance::run_variance;
