//! E4/E5 — Figure 4c/4d: mixed-size allocation and free performance.
//!
//! Every thread draws a power-of-two size uniformly from `[16, upper]`;
//! the x-axis sweeps `upper` from 16 B to 4096 B. Same protocol as the
//! single-size tests (median of N runs, reset between runs), one
//! allocator resident at a time.

use crate::report::{fmt_ms, Table};
use crate::roster::{for_each_allocator, roster_names};
use crate::workload::{measure, SizeSpec};
use crate::HarnessConfig;

/// Upper range bounds from the paper's Figure 4c/4d.
pub const MIXED_UPPERS: [u64; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Run the mixed-size experiment; prints one table per operation.
pub fn run_mixed(cfg: &HarnessConfig) {
    let names = roster_names();
    let mut grid =
        vec![vec![("n/a".to_string(), "n/a".to_string()); names.len()]; MIXED_UPPERS.len()];

    for_each_allocator(cfg.heap_bytes, cfg.num_sms, |ai, a| {
        for (ui, &upper) in MIXED_UPPERS.iter().enumerate() {
            // Budget for the worst case: every thread draws `upper`.
            if !a.supports_size(upper) || a.heap_bytes() < cfg.threads * upper {
                continue;
            }
            let m =
                measure(a, cfg.device(), cfg.threads, SizeSpec::MixedUpTo(upper), cfg.runs, false);
            let suffix = if m.corrupt > 0 {
                "!"
            } else if m.failed > 0 {
                "*"
            } else {
                ""
            };
            grid[ui][ai] = (
                format!("{}{}", fmt_ms(m.median_alloc_ms()), suffix),
                format!("{}{}", fmt_ms(m.median_free_ms()), suffix),
            );
        }
    });

    let mut headers = vec!["upper B"];
    headers.extend(names.iter().copied());
    let mut alloc_tab = Table::new(
        format!(
            "Fig 4c — mixed-size alloc [16,upper], {} threads, median of {} runs (ms)",
            cfg.threads, cfg.runs
        ),
        &headers,
    );
    let mut free_tab = Table::new(
        format!(
            "Fig 4d — mixed-size free [16,upper], {} threads, median of {} runs (ms)",
            cfg.threads, cfg.runs
        ),
        &headers,
    );
    for (ui, &upper) in MIXED_UPPERS.iter().enumerate() {
        let mut arow = vec![upper.to_string()];
        let mut frow = vec![upper.to_string()];
        for cell in grid[ui].iter().take(names.len()) {
            arow.push(cell.0.clone());
            frow.push(cell.1.clone());
        }
        alloc_tab.row(arow);
        free_tab.row(frow);
    }
    alloc_tab.emit(&cfg.out_dir, "fig4c_mixed_alloc");
    free_tab.emit(&cfg.out_dir, "fig4d_mixed_free");
    println!("(* = some requests failed; ! = payload corruption detected)");
}
