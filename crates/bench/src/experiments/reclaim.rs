//! E15 — reclaim-protocol telemetry: segment churn under varying heap
//! pressure, surfacing the reclamation counters the hardened protocol
//! exports (reclaim attempts/aborts, straggler bounces, drain spins).
//!
//! The paper's safety argument (§5, Algorithm 2) is about windows that
//! close: a reclaim that aborts at the quiesce-check, a popped block
//! bounced home by the `ldcv` staleness re-check, a format drain waiting
//! out a straggler. None of those events are visible in throughput
//! numbers — a protocol that silently corrupts is often *faster* — so
//! this experiment reports how often each guarded transition actually
//! fired under block-pipeline churn, with the heap squeezed to different
//! segment counts. Expect aborts and bounces to *rise* as the segment
//! count shrinks: fewer segments means every warp's free is more likely
//! to race another warp's pop on the same ring.

use crate::report::{fmt_pct, Table};
use crate::HarnessConfig;
use gpu_sim::{launch_warps, DeviceAllocator};
use std::sync::atomic::{AtomicU64, Ordering};

/// Heap sizes under test, in segments (16 MiB each under the default
/// configuration). Smaller = more churn per segment.
const SEGMENT_COUNTS: [u64; 3] = [4, 8, 16];

/// Warps driving the churn (scalar block-path requests).
const CHURN_THREADS: u64 = 128 * 32;

/// Malloc/free round trips per warp. High on purpose: the guarded
/// windows (pop racing a reclaim publish) are nanoseconds wide in pool
/// mode, so observing them at all takes volume.
const ROUNDS: u64 = 256;

/// Run the reclaim-telemetry experiment.
pub fn run_reclaim(cfg: &HarnessConfig) {
    let mut tab = Table::new(
        "E15 — reclaim-protocol telemetry under block-pipeline churn",
        &[
            "segments",
            "mallocs",
            "failed",
            "reclaim attempts",
            "aborts",
            "abort %",
            "straggler bounces",
            "drain spins",
        ],
    );
    for &nsegs in &SEGMENT_COUNTS {
        let g = crate::roster::gallatin(nsegs * (16 << 20), cfg.num_sms);
        let seg_bytes = g.geometry().segment_bytes;
        let failed = AtomicU64::new(0);
        launch_warps(cfg.device(), CHURN_THREADS, |warp| {
            let l = warp.lane(0);
            for round in 0..ROUNDS {
                // Alternate between two block classes so segments are
                // reclaimed *and* reformatted, not just recycled in
                // place.
                let size = (seg_bytes / 16) << ((warp.warp_id + round) & 1);
                let p = g.malloc(&l, size);
                if p.is_null() {
                    failed.fetch_add(1, Ordering::Relaxed);
                } else {
                    g.free(&l, p);
                }
            }
        });
        // Telemetry is only meaningful over a heap the churn left
        // consistent.
        g.check_invariants().expect("invariants violated during reclaim churn");
        assert_eq!(g.stats().reserved_bytes, 0, "leak during reclaim churn");
        let m = g.metrics().expect("gallatin keeps metrics").snapshot();
        let abort_pct = if m.reclaim_attempts == 0 {
            "n/a".to_string()
        } else {
            fmt_pct(m.reclaim_aborts as f64 / m.reclaim_attempts as f64)
        };
        tab.row(vec![
            nsegs.to_string(),
            m.mallocs.to_string(),
            failed.load(Ordering::Relaxed).to_string(),
            m.reclaim_attempts.to_string(),
            m.reclaim_aborts.to_string(),
            abort_pct,
            m.straggler_bounces.to_string(),
            m.drain_spins.to_string(),
        ]);
    }
    tab.emit(&cfg.out_dir, "e15_reclaim_telemetry");
}
