//! E10 — §6.10 / Fig 6a-b: fragmentation.
//!
//! The survey's fragmentation metric: perform a static set of allocations
//! and report the span between the highest and lowest address handed out,
//! normalized by the ideal (tightly packed) footprint. 1.0 means perfectly
//! compact; larger values mean the allocator scattered the allocations
//! across its heap.

use crate::report::Table;
use crate::roster::{for_each_allocator, roster_names};
use crate::workload::{run_alloc_free, SizeSpec};
use crate::HarnessConfig;

/// Sizes measured (single-size panel; the mixed panel uses the range
/// upper bound).
pub const FRAG_SIZES: [u64; 5] = [16, 64, 256, 1024, 4096];

/// Run the fragmentation experiment.
pub fn run_fragmentation(cfg: &HarnessConfig) {
    let names = roster_names();
    // grid[mixed][size_idx][alloc_idx]
    let mut grid = vec![vec![vec!["n/a".to_string(); names.len()]; FRAG_SIZES.len()]; 2];

    for_each_allocator(cfg.heap_bytes, cfg.num_sms, |ai, a| {
        for (mi, mixed) in [false, true].into_iter().enumerate() {
            for (si, &size) in FRAG_SIZES.iter().enumerate() {
                let spec = if mixed { SizeSpec::MixedUpTo(size) } else { SizeSpec::Fixed(size) };
                if !a.supports_size(size) || a.heap_bytes() < cfg.threads * size {
                    continue;
                }
                a.reset();
                let r = run_alloc_free(a, cfg.device(), cfg.threads, spec, true);
                if r.failed > 0 || r.max_addr <= r.min_addr {
                    grid[mi][si][ai] = "fail".into();
                    continue;
                }
                // Ideal footprint: sum of the requested sizes.
                let ideal: u64 = (0..cfg.threads).map(|t| spec.size_for(t)).sum();
                let span = r.max_addr - r.min_addr;
                grid[mi][si][ai] = format!("{:.2}", span as f64 / ideal as f64);
            }
        }
    });

    let mut headers = vec!["size B"];
    headers.extend(names.iter().copied());
    for (mi, (title, file)) in [
        ("Fig 6a — fragmentation, single-size (span / ideal)", "fig6a_frag_single"),
        ("Fig 6b — fragmentation, mixed-size (span / ideal)", "fig6b_frag_mixed"),
    ]
    .into_iter()
    .enumerate()
    {
        let mut tab = Table::new(format!("{title}, {} allocations", cfg.threads), &headers);
        for (si, &size) in FRAG_SIZES.iter().enumerate() {
            let mut row = vec![size.to_string()];
            for cell in grid[mi][si].iter().take(names.len()) {
                row.push(cell.clone());
            }
            tab.row(row);
        }
        tab.emit(&cfg.out_dir, file);
    }
}
