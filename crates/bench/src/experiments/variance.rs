//! E8 — §6.8: variance in allocation and free latency.
//!
//! The paper reports the variance of per-run latency across the 50 runs
//! of the single-size test; Gallatin's headline is having the lowest
//! variance at nearly every size (4–87× below the next best).

use crate::report::Table;
use crate::roster::{for_each_allocator, roster_names};
use crate::workload::{measure, SizeSpec};
use crate::HarnessConfig;

/// Sizes at which variance is reported.
pub const VARIANCE_SIZES: [u64; 4] = [16, 64, 512, 4096];

/// Run the variance experiment.
pub fn run_variance(cfg: &HarnessConfig) {
    let names = roster_names();
    // grid[size_idx][alloc_idx] = (alloc variance, free variance)
    let mut grid =
        vec![vec![("n/a".to_string(), "n/a".to_string()); names.len()]; VARIANCE_SIZES.len()];
    for_each_allocator(cfg.heap_bytes, cfg.num_sms, |ai, a| {
        for (si, &size) in VARIANCE_SIZES.iter().enumerate() {
            if !a.supports_size(size) || a.heap_bytes() < cfg.threads * size {
                continue;
            }
            let m = measure(a, cfg.device(), cfg.threads, SizeSpec::Fixed(size), cfg.runs, false);
            grid[si][ai] =
                (format!("{:.5}", m.alloc_variance()), format!("{:.5}", m.free_variance()));
        }
    });

    let mut headers = vec!["size B", "op"];
    headers.extend(names.iter().copied());
    let mut tab = Table::new(
        format!("§6.8 — latency variance across {} runs, {} threads (ms²)", cfg.runs, cfg.threads),
        &headers,
    );
    for (si, &size) in VARIANCE_SIZES.iter().enumerate() {
        let mut arow = vec![size.to_string(), "alloc".to_string()];
        let mut frow = vec![size.to_string(), "free".to_string()];
        for cell in grid[si].iter().take(names.len()) {
            arow.push(cell.0.clone());
            frow.push(cell.1.clone());
        }
        tab.row(arow);
        tab.row(frow);
    }
    tab.emit(&cfg.out_dir, "variance");
}
