//! E12/E13 — §6.12: dynamic graph tests and expansion tests.
//!
//! The graph workload exercises each allocator through five phases —
//! initialization, single edge updates, bulk edge updates, edge deletes,
//! bulk edge deletes — plus the expansion schedule where Zipf-skewed hub
//! vertices keep doubling their edge lists until they outgrow
//! chunk-limited allocators' native size (the workload that motivates a
//! general-purpose allocator in §1).

use crate::report::{fmt_ms, Table};
use crate::HarnessConfig;
use gpu_sim::{launch, DeviceAllocator};
use graph::{expansion_rounds, uniform_edges, zipf_edges, DynamicGraph, EdgeBatch};
use std::sync::Arc;
use std::time::Instant;

/// Apply a batch of edge insertions, one logical thread per edge.
fn apply_inserts(g: &DynamicGraph<&dyn DeviceAllocator>, cfg: &HarnessConfig, batch: &EdgeBatch) {
    launch(cfg.device(), batch.len() as u64, |l| {
        let (src, dst) = batch[l.global_tid() as usize];
        g.insert_edge(l, src, dst);
    });
}

/// Apply a batch of edge deletions.
fn apply_deletes(g: &DynamicGraph<&dyn DeviceAllocator>, cfg: &HarnessConfig, batch: &EdgeBatch) {
    launch(cfg.device(), batch.len() as u64, |l| {
        let (src, dst) = batch[l.global_tid() as usize];
        g.delete_edge(l, src, dst);
    });
}

/// Phase timings for one allocator, in ms. `None` marks a phase the
/// allocator failed (allocation failures during updates).
#[derive(Debug, Default)]
pub struct GraphTimings {
    pub init: Option<f64>,
    pub insert: Option<f64>,
    pub bulk_insert: Option<f64>,
    pub delete: Option<f64>,
    pub bulk_delete: Option<f64>,
}

/// Run the five-phase graph benchmark on one allocator.
pub fn graph_phases(
    alloc: &Arc<dyn DeviceAllocator>,
    cfg: &HarnessConfig,
    num_vertices: u32,
    base_edges: usize,
) -> GraphTimings {
    alloc.reset();
    let a: &dyn DeviceAllocator = alloc.as_ref();
    let g = DynamicGraph::new(num_vertices as usize, a);
    let mut t = GraphTimings::default();

    let phase = |g: &DynamicGraph<&dyn DeviceAllocator>,
                 body: &dyn Fn(&DynamicGraph<&dyn DeviceAllocator>)|
     -> Option<f64> {
        let before = g.failed_updates();
        let t0 = Instant::now();
        body(g);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        (g.failed_updates() == before).then_some(ms)
    };

    // Initialization: build the base graph from a uniform batch.
    let init_batch = uniform_edges(num_vertices, base_edges, 0xC0FFEE);
    t.init = phase(&g, &|g| apply_inserts(g, cfg, &init_batch));

    // Edge updates: skewed single-edge stream (one thread per edge).
    let upd = zipf_edges(num_vertices, base_edges / 2, 0.8, 0xBEEF);
    t.insert = phase(&g, &|g| apply_inserts(g, cfg, &upd));

    // Bulk updates: one large batch.
    let bulk = zipf_edges(num_vertices, base_edges, 0.8, 0xF00D);
    t.bulk_insert = phase(&g, &|g| apply_inserts(g, cfg, &bulk));

    // Deletes: remove the update stream.
    t.delete = phase(&g, &|g| apply_deletes(g, cfg, &upd));

    // Bulk deletes: remove the bulk batch.
    t.bulk_delete = phase(&g, &|g| apply_deletes(g, cfg, &bulk));

    // Teardown (untimed).
    launch(cfg.device(), 1, |l| g.destroy(l));
    t
}

/// E12: the five-phase table across the roster.
pub fn run_graph(cfg: &HarnessConfig) {
    let num_vertices = if cfg.full { 1 << 17 } else { 1 << 13 };
    let base_edges = (cfg.threads as usize).max(1 << 14);
    let mut tab = Table::new(
        format!(
            "§6.12 — dynamic graph, {num_vertices} vertices, {base_edges} base edges (ms; fail = allocation failures)"
        ),
        &["allocator", "init", "insert", "bulk insert", "delete", "bulk delete"],
    );
    for name in crate::roster::roster_names() {
        let a = crate::roster::build_by_name(name, cfg.heap_bytes, cfg.num_sms)
            .expect("known roster name");
        if !a.is_managing() {
            continue; // RegEff-AW cannot run a real data structure
        }
        let t = graph_phases(&a, cfg, num_vertices, base_edges);
        let cell = |x: Option<f64>| x.map(fmt_ms).unwrap_or_else(|| "fail".into());
        tab.row(vec![
            a.name().to_string(),
            cell(t.init),
            cell(t.insert),
            cell(t.bulk_insert),
            cell(t.delete),
            cell(t.bulk_delete),
        ]);
    }
    tab.emit(&cfg.out_dir, "graph_phases");
}

/// E13: the expansion test — repeated skewed growth rounds. Reports time
/// per round and whether the allocator survived all rounds (hub edge
/// lists exceed 8192 B quickly, stranding chunk-limited designs on their
/// capped fallback).
pub fn run_graph_expansion(cfg: &HarnessConfig) {
    let num_vertices = 1 << 10;
    let rounds = 8;
    let edges_per_round = if cfg.full { 1 << 18 } else { 1 << 16 };
    let batches = expansion_rounds(num_vertices, rounds, edges_per_round, 1.0, 0xE1);
    let roster = crate::roster::expansion_roster(cfg.heap_bytes, cfg.num_sms);

    let mut headers = vec!["allocator".to_string()];
    headers.extend((0..rounds).map(|r| format!("round {r} ms")));
    headers.push("survived".to_string());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut tab = Table::new(
        format!(
            "§6.12 — graph expansion, {num_vertices} vertices × {rounds} rounds × {edges_per_round} edges (Zipf α=1.0)"
        ),
        &hdr_refs,
    );

    for a in roster {
        if !a.is_managing() {
            continue;
        }
        a.reset();
        let dyn_a: &dyn DeviceAllocator = a.as_ref();
        let g = DynamicGraph::new(num_vertices as usize, dyn_a);
        let mut row = vec![a.name().to_string()];
        let mut survived = true;
        for batch in &batches {
            let before = g.failed_updates();
            let t0 = Instant::now();
            apply_inserts(&g, cfg, batch);
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            if g.failed_updates() > before {
                row.push(format!("{}*", fmt_ms(ms)));
                survived = false;
            } else {
                row.push(fmt_ms(ms));
            }
        }
        row.push(if survived { "yes".into() } else { "no".into() });
        tab.row(row);
        launch(cfg.device(), 1, |l| g.destroy(l));
    }
    tab.emit(&cfg.out_dir, "graph_expansion");
    println!("(* = round had allocation failures: hub lists outgrew the allocator)");
}
