//! E2/E3 — Figure 4a/4b: single-size allocation and free performance.
//! E9 — §6.9: the warmed-up comparison.
//!
//! 1 M (configurable) threads each allocate one `size`-byte object; sizes
//! step in powers of two from 16 B to 4096 B; the median of 50 runs is
//! reported, with the allocator reset between runs.
//!
//! Allocators are constructed one at a time (`for_each_allocator`) so
//! only one heap is resident at once.

use crate::report::{counts_delta, fmt_ms, write_bench_json, BenchRecord, Table};
use crate::roster::{for_each_allocator, roster_names};
use crate::workload::{measure, SizeSpec};
use crate::HarnessConfig;

/// Sizes from the paper's Figure 4.
pub const SINGLE_SIZES: [u64; 9] = [16, 32, 64, 128, 256, 512, 1024, 2048, 4096];

/// Run the single-size experiment; prints one table per operation.
pub fn run_single(cfg: &HarnessConfig) {
    let names = roster_names();
    // grid[size_idx][alloc_idx] = (alloc cell, free cell)
    let mut grid =
        vec![vec![("n/a".to_string(), "n/a".to_string()); names.len()]; SINGLE_SIZES.len()];
    let mut records: Vec<BenchRecord> = Vec::new();

    for_each_allocator(cfg.heap_bytes, cfg.num_sms, |ai, a| {
        for (si, &size) in SINGLE_SIZES.iter().enumerate() {
            if !a.supports_size(size) || a.heap_bytes() < cfg.threads * size {
                continue;
            }
            let before = a.metrics().map(|m| m.snapshot());
            let m = measure(a, cfg.device(), cfg.threads, SizeSpec::Fixed(size), cfg.runs, false);
            if cfg.json {
                records.push(BenchRecord {
                    experiment: "single".to_string(),
                    allocator: a.name().to_string(),
                    params: vec![
                        ("size".to_string(), size.to_string()),
                        ("threads".to_string(), cfg.threads.to_string()),
                        ("runs".to_string(), cfg.runs.to_string()),
                    ],
                    median_ms: m.median_alloc_ms(),
                    counts: match (&before, a.metrics().map(|m| m.snapshot())) {
                        (Some(b), Some(after)) => counts_delta(b, &after),
                        _ => Vec::new(),
                    },
                });
            }
            let suffix = if m.corrupt > 0 {
                "!"
            } else if m.failed > 0 {
                "*"
            } else {
                ""
            };
            grid[si][ai] = (
                format!("{}{}", fmt_ms(m.median_alloc_ms()), suffix),
                format!("{}{}", fmt_ms(m.median_free_ms()), suffix),
            );
        }
    });

    if cfg.json {
        match write_bench_json(&cfg.out_dir, "single", &records) {
            Ok(p) => println!("wrote {}", p.display()),
            Err(e) => eprintln!("warning: could not write BENCH_single.json: {e}"),
        }
    }

    let mut headers = vec!["size B"];
    headers.extend(names.iter().copied());
    let mut alloc_tab = Table::new(
        format!(
            "Fig 4a — single-size alloc, {} threads, median of {} runs (ms)",
            cfg.threads, cfg.runs
        ),
        &headers,
    );
    let mut free_tab = Table::new(
        format!(
            "Fig 4b — single-size free, {} threads, median of {} runs (ms)",
            cfg.threads, cfg.runs
        ),
        &headers,
    );
    for (si, &size) in SINGLE_SIZES.iter().enumerate() {
        let mut arow = vec![size.to_string()];
        let mut frow = vec![size.to_string()];
        for cell in grid[si].iter().take(names.len()) {
            arow.push(cell.0.clone());
            frow.push(cell.1.clone());
        }
        alloc_tab.row(arow);
        free_tab.row(frow);
    }
    alloc_tab.emit(&cfg.out_dir, "fig4a_single_alloc");
    free_tab.emit(&cfg.out_dir, "fig4b_single_free");
    println!("(* = some requests failed; ! = payload corruption detected)");
}

/// E9 — warmed-up comparison: median latency cold vs warmed, 16 B and
/// 2048 B allocations (the sizes §6.9 discusses).
pub fn run_warmup(cfg: &HarnessConfig) {
    let mut tab = Table::new(
        format!("§6.9 — warmed-up allocators, {} threads (alloc ms)", cfg.threads),
        &["allocator", "16B cold", "16B warm", "2048B cold", "2048B warm"],
    );
    for_each_allocator(cfg.heap_bytes, cfg.num_sms, |_, a| {
        let mut row = vec![a.name().to_string()];
        for size in [16u64, 2048] {
            if !a.supports_size(size) || a.heap_bytes() < cfg.threads * size {
                row.push("n/a".into());
                row.push("n/a".into());
                continue;
            }
            let cold =
                measure(a, cfg.device(), cfg.threads, SizeSpec::Fixed(size), cfg.runs, false);
            let warm = measure(a, cfg.device(), cfg.threads, SizeSpec::Fixed(size), cfg.runs, true);
            row.push(fmt_ms(cold.median_alloc_ms()));
            row.push(if warm.failed > 0 {
                // P-series style: cannot serve repeated rounds without
                // releasing memory → failures show as such.
                format!("{}*", fmt_ms(warm.median_alloc_ms()))
            } else {
                fmt_ms(warm.median_alloc_ms())
            });
        }
        tab.row(row);
    });
    tab.emit(&cfg.out_dir, "warmup");
    println!("(* = failures during warmed rounds)");
}
