//! E11 — Fig 6c: memory utilization ("out of memory" test).
//!
//! Allocators get a fixed heap (2 GB in the paper) and allocate in
//! batches of 100 K **until failure or time-out** (the paper's wording —
//! some designs degrade quadratically as the heap fills); the metric is
//! the number of successful allocations as a fraction of the theoretical
//! maximum (`heap / size`). The paper's accounting footnote is
//! reproduced: the Ouroboros variants carry a CUDA-heap reserve on top
//! of the heap they report, so a second column charges that reserve
//! against them.

use crate::report::{fmt_pct, Table};
use crate::workload::SizeSpec;
use crate::HarnessConfig;
use gpu_sim::{launch_warps, DevicePtr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Sizes from Figure 6c (4 B to 8192 B).
pub const UTIL_SIZES: [u64; 6] = [4, 64, 256, 1024, 4096, 8192];

/// Batch size: allocations per round (paper: 100 K).
const BATCH: u64 = 100_000;

/// Per-(allocator, size) wall-clock budget before declaring a time-out.
const TIME_BUDGET: Duration = Duration::from_secs(15);

/// Allocate batches of `size` until failure or time-out; returns the
/// success count and whether the budget expired first.
fn fill_until_oom(a: &dyn gpu_sim::DeviceAllocator, cfg: &HarnessConfig, size: u64) -> (u64, bool) {
    a.reset();
    let succeeded = AtomicU64::new(0);
    let cap = a.heap_bytes() / size + BATCH; // safety stop
    let mut total = 0u64;
    let t0 = Instant::now();
    let mut timed_out = false;
    loop {
        let failed = AtomicU64::new(0);
        launch_warps(cfg.device(), BATCH, |warp| {
            let sizes = vec![Some(size); warp.active as usize];
            let mut out = vec![DevicePtr::NULL; warp.active as usize];
            a.warp_malloc(warp, &sizes, &mut out);
            for p in &out {
                if p.is_null() {
                    failed.fetch_add(1, Ordering::Relaxed);
                } else {
                    succeeded.fetch_add(1, Ordering::Relaxed);
                }
            }
        });
        total += BATCH;
        if failed.load(Ordering::Relaxed) > 0 || total > cap {
            break;
        }
        if t0.elapsed() > TIME_BUDGET {
            timed_out = true;
            break;
        }
    }
    (succeeded.load(Ordering::Relaxed), timed_out)
}

/// Run the utilization experiment.
///
/// Unlike the timing experiments, this one touches nearly every page of
/// each allocator's arena, so allocators are constructed **one at a
/// time** (and dropped before the next) to bound resident memory to a
/// single heap.
pub fn run_utilization(cfg: &HarnessConfig) {
    let names: Vec<String> =
        crate::roster::roster_names().into_iter().map(str::to_string).collect();
    let mut headers = vec!["size B".to_string()];
    headers.extend(names.iter().cloned());
    let hdr_refs: Vec<&str> = headers.iter().map(|s| s.as_str()).collect();
    let mut tab = Table::new(
        format!(
            "Fig 6c — utilization: allocations until OOM or time-out / theoretical max ({} MiB heap)",
            cfg.heap_bytes >> 20
        ),
        &hdr_refs,
    );
    // Second table: utilization charged with any CUDA-heap reserve the
    // allocator keeps besides its main pool (the paper's §6.11 footnote:
    // counting the 500 MB reserve puts Ouroboros below Gallatin).
    let mut adj_tab =
        Table::new("Fig 6c (adjusted) — utilization counting the CUDA-heap reserve", &hdr_refs);

    // grid[size_idx][alloc_idx] = (cell, adjusted cell)
    let mut grid =
        vec![vec![("n/a".to_string(), "n/a".to_string()); names.len()]; UTIL_SIZES.len()];
    for (ai, name) in names.iter().enumerate() {
        let a = crate::roster::build_by_name(name, cfg.heap_bytes, cfg.num_sms)
            .expect("roster name must be constructible");
        for (si, &size) in UTIL_SIZES.iter().enumerate() {
            if !a.supports_size(size) {
                continue;
            }
            let (got, timed_out) = fill_until_oom(a.as_ref(), cfg, size);
            let theoretical = a.heap_bytes() / SizeSpec::Fixed(size).size_for(0).max(1);
            let util = got as f64 / theoretical as f64;
            let cell = if timed_out { format!("{} t/o", fmt_pct(util)) } else { fmt_pct(util) };
            // The reserve-adjusted figure: Ouroboros keeps a quarter of
            // its arena (cap 500 MB) as CUDA fallback; for others the two
            // figures coincide because the whole arena is the allocator.
            let extra =
                if name.starts_with("Ouroboros") { (a.heap_bytes() / 4).min(500 << 20) } else { 0 };
            let adj_util = got as f64 / ((a.heap_bytes() + extra) / size) as f64;
            grid[si][ai] = (cell, fmt_pct(adj_util));
            a.reset();
        }
    }
    for (si, &size) in UTIL_SIZES.iter().enumerate() {
        let mut row = vec![size.to_string()];
        let mut adj_row = vec![size.to_string()];
        for cell in grid[si].iter().take(names.len()) {
            row.push(cell.0.clone());
            adj_row.push(cell.1.clone());
        }
        tab.row(row);
        adj_tab.row(adj_row);
    }
    tab.emit(&cfg.out_dir, "fig6c_utilization");
    adj_tab.emit(&cfg.out_dir, "fig6c_utilization_adjusted");
}
