//! E1 — §6.4: allocator initialization overhead.
//!
//! The paper reports one-time initialization cost (most allocators
//! ~27 ms, Gallatin 31 ms, Ouroboros-C-S fastest at ~12 ms on the A40).
//! Here we time construction + first-use readiness of each allocator at
//! the benchmark heap size, plus the cost of a `reset` (which the main
//! protocol performs between runs).

use crate::report::{fmt_ms, Table};
use crate::HarnessConfig;
use std::time::Instant;

/// Run the initialization-overhead experiment.
pub fn run_init(cfg: &HarnessConfig) {
    let mut tab = Table::new(
        format!("§6.4 — initialization overhead at {} MiB heap", cfg.heap_bytes >> 20),
        &["allocator", "construct ms", "reset ms"],
    );
    let names: Vec<String> =
        crate::roster::roster_names().into_iter().map(str::to_string).collect();
    for name in names {
        // Construction: arena mapping + metadata layout.
        let t = Instant::now();
        let a = crate::roster::build_by_name(&name, cfg.heap_bytes, cfg.num_sms)
            .expect("roster name must be constructible");
        let construct_ms = t.elapsed().as_secs_f64() * 1e3;
        // Reset: the re-initialization the main protocol performs between
        // runs.
        let t = Instant::now();
        a.reset();
        let reset_ms = t.elapsed().as_secs_f64() * 1e3;
        tab.row(vec![name, fmt_ms(construct_ms), fmt_ms(reset_ms)]);
    }
    tab.emit(&cfg.out_dir, "init_overhead");
}
