//! Results summary (paper §6.3): Gallatin's speedup over the next-best
//! allocator, computed from the CSVs the other experiments wrote.
//!
//! The paper's headline numbers are of this form — "up to 374× faster
//! than the next-best allocator on single-sized allocations"; this
//! subcommand derives the analogous ratios from our measured tables.
//! RegEff-AW is excluded from "next best", as in §6.2 (it does not
//! manage memory).

use crate::report::Table;
use std::path::Path;

/// Parse a CSV cell into milliseconds, rejecting markers ("n/a", "fail",
/// suffixes like `*` or `!`, time-outs).
fn parse_cell(cell: &str) -> Option<f64> {
    let c = cell.trim();
    if c.is_empty() || c == "n/a" || c == "fail" || c.contains("t/o") {
        return None;
    }
    let c = c.trim_end_matches(['*', '!']);
    c.parse::<f64>().ok()
}

/// One row's comparison: Gallatin vs the best competitor.
struct RowRatio {
    label: String,
    gallatin: f64,
    best_other: f64,
    best_name: String,
}

/// Read a results CSV and compute per-row Gallatin-vs-next-best ratios.
fn analyze_csv(path: &Path) -> Option<Vec<RowRatio>> {
    let content = std::fs::read_to_string(path).ok()?;
    let mut lines = content.lines();
    let header: Vec<&str> = lines.next()?.split(',').collect();
    let gallatin_col = header.iter().position(|h| *h == "Gallatin")?;
    let mut out = Vec::new();
    for line in lines {
        let cells: Vec<&str> = line.split(',').collect();
        if cells.len() != header.len() {
            continue;
        }
        let Some(g) = parse_cell(cells[gallatin_col]) else { continue };
        let mut best: Option<(f64, &str)> = None;
        for (i, cell) in cells.iter().enumerate() {
            if i == 0 || i == gallatin_col || header[i] == "RegEff-AW" || header[i] == "op" {
                continue;
            }
            if let Some(v) = parse_cell(cell) {
                if best.is_none_or(|(b, _)| v < b) {
                    best = Some((v, header[i]));
                }
            }
        }
        let Some((b, name)) = best else { continue };
        out.push(RowRatio {
            label: cells[0].to_string(),
            gallatin: g,
            best_other: b,
            best_name: name.to_string(),
        });
    }
    Some(out)
}

/// Run the summary over every timing CSV present in `out_dir`.
pub fn run_summary(out_dir: &str) {
    let tables = [
        ("fig4a_single_alloc", "single-size alloc (Fig 4a)"),
        ("fig4b_single_free", "single-size free (Fig 4b)"),
        ("fig4c_mixed_alloc", "mixed-size alloc (Fig 4c)"),
        ("fig4d_mixed_free", "mixed-size free (Fig 4d)"),
        ("fig5_scaling_alloc_16b", "scaling alloc 16 B (Fig 5)"),
        ("fig5_scaling_alloc_64b", "scaling alloc 64 B (Fig 5)"),
        ("fig5_scaling_alloc_512b", "scaling alloc 512 B (Fig 5)"),
        ("fig5_scaling_alloc_8192b", "scaling alloc 8192 B (Fig 5)"),
        ("fig5_scaling_free_16b", "scaling free 16 B (Fig 5)"),
        ("fig5_scaling_free_8192b", "scaling free 8192 B (Fig 5)"),
    ];
    let mut tab = Table::new(
        "§6.3-style summary — Gallatin vs next-best managing allocator (speedup = best_other / gallatin)",
        &["experiment", "min speedup", "max speedup", "rows won", "rows", "max vs"],
    );
    for (file, label) in tables {
        let path = Path::new(out_dir).join(format!("{file}.csv"));
        let Some(rows) = analyze_csv(&path) else { continue };
        if rows.is_empty() {
            continue;
        }
        let ratios: Vec<f64> = rows.iter().map(|r| r.best_other / r.gallatin).collect();
        let min = ratios.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = ratios.iter().cloned().fold(0.0_f64, f64::max);
        let won = ratios.iter().filter(|&&r| r >= 1.0).count();
        let max_row = rows
            .iter()
            .zip(&ratios)
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .map(|(r, _)| format!("{} @ {}", r.best_name, r.label))
            .unwrap_or_default();
        tab.row(vec![
            label.to_string(),
            format!("{min:.2}x"),
            format!("{max:.2}x"),
            won.to_string(),
            rows.len().to_string(),
            max_row,
        ]);
    }
    tab.emit(out_dir, "summary_speedups");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cell_parsing_handles_markers() {
        assert_eq!(parse_cell("1.25"), Some(1.25));
        assert_eq!(parse_cell("1.25*"), Some(1.25));
        assert_eq!(parse_cell("0.50!"), Some(0.5));
        assert_eq!(parse_cell("n/a"), None);
        assert_eq!(parse_cell("fail"), None);
        assert_eq!(parse_cell("89.1% t/o"), None);
        assert_eq!(parse_cell(""), None);
    }

    #[test]
    fn analyze_computes_next_best() {
        let dir = std::env::temp_dir().join("gallatin-summary-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("t.csv");
        std::fs::write(
            &path,
            "size B,Gallatin,CUDA,RegEff-AW,ScatterAlloc\n16,1.0,10.0,0.1,4.0\n32,2.0,8.0,0.1,n/a\n",
        )
        .unwrap();
        let rows = analyze_csv(&path).unwrap();
        assert_eq!(rows.len(), 2);
        // AW excluded: best other at 16 B is ScatterAlloc (4.0).
        assert_eq!(rows[0].best_other, 4.0);
        assert_eq!(rows[0].best_name, "ScatterAlloc");
        assert_eq!(rows[1].best_other, 8.0);
    }
}
