//! E22 — elastic pool: donation under skew, compaction, shrink
//! (`repro elastic`).
//!
//! Three deterministic arms over the elastic `GallatinPool` machinery:
//!
//! 1. **Donation under a skewed-SM hotspot.** The E19 `SkewedHotspot`
//!    script saturates one home instance while the cold homes idle; a
//!    host rebalance pass then donates one quiescent-free segment from
//!    every cold home to the hot one (timed — the donation-latency
//!    series), and the same script replays against the grown pool so
//!    the spill counters show the absorbed capacity. The whole arm runs
//!    under a [`TraceSink`] and the lifecycle [`Ledger`] must come up
//!    with zero anomalies — donations re-home address ranges mid-story,
//!    so this is the test that per-`(instance, ptr)` pairing survives
//!    re-homing.
//! 2. **Compaction A/B.** The E10 fragmentation-attack shape (fill,
//!    then free all but every 16th block) strands sparse segments that
//!    two-phase reclaim cannot touch — one straggler pins 64 KiB. Arm A
//!    counts reclaimable whole segments as-is; arm B runs
//!    [`gallatin::Gallatin::compact`] first. The verdict requires arm B
//!    to reclaim **strictly more** segments, with every migrated
//!    payload verified byte-for-byte via stamps.
//! 3. **Donation after fragmentation.** The same attack on a 2-instance
//!    pool, then `donate(frag_home, sibling, ..)` with and without a
//!    prior compaction pass: the with-compaction row must donate
//!    strictly more segments. This is the end-to-end story — compaction
//!    exists so that donation and [`gallatin::GallatinPool::shrink_to`]
//!    have whole segments to move.
//!
//! Every count is an exact function of the seed (deterministic
//! scheduler, host-side maintenance), so the numbers land in
//! `BENCH_elastic.json` as bit-stable gates, and the perf lane reuses
//! the maintenance cycle as a timed cell ([`perf_record`]).

use crate::report::{write_bench_json, BenchRecord, Table};
use crate::workload::{run_script, SkewedHotspot, WorkloadSource};
use crate::HarnessConfig;
use gallatin::{Gallatin, GallatinConfig, GallatinPool};
use gpu_sim::trace::{Ledger, TraceEvent, TraceSink};
use gpu_sim::{DeviceAllocator, DeviceConfig, DevicePtr, WarpCtx};
use std::sync::Arc;
use std::time::Instant;

/// SMs in the hotspot arm — one per pool instance, so `home()` maps the
/// hot SM straight onto its own instance.
const NUM_SMS: u32 = 4;

/// Schedule seed for the hotspot arm. Seed 11 is the adversarial
/// suite's pinned hot-home-spills seed (`adversarial_pool.rs`); any
/// seed works for the donation verdict, this one also demonstrates
/// spill relief. Override with `GALLATIN_SCHED_SEED`.
const DONATION_SEED: u64 = 11;

/// Per-instance heap of the hotspot arm: small enough that the hot
/// home overflows (2 segments of block-tier headroom per instance).
const TIGHT_HEAP: u64 = 128 << 10;

/// Heap for the fragmentation arms: 16 segments of 64 KiB, 64 one-KiB
/// blocks per segment.
const FRAG_HEAP: u64 = 1 << 20;

/// Blocks allocated by the attack — fills 8 of the 16 segments.
const FRAG_BLOCKS: usize = 512;

/// The attack keeps every 16th block: 32 stragglers, 4 per segment,
/// 1/16 occupancy — every touched segment is sparse but pinned.
const FRAG_KEEP: usize = 16;

/// Victim threshold handed to `compact`: migrate out of segments at or
/// below quarter occupancy (the stragglers sit at 1/16).
const COMPACT_OCCUPANCY: f64 = 0.25;

/// Outcome of the hotspot donation arm.
struct DonationArm {
    hot: usize,
    donated: u64,
    donate_events: u64,
    spills_before: u64,
    spills_after: u64,
    served: u64,
    ledger_anomalies: u64,
    donate_ms: f64,
}

/// Run the skewed-hotspot script, rebalance cold → hot, replay.
fn donation_arm(seed: u64) -> DonationArm {
    let h = SkewedHotspot::standard(NUM_SMS);
    // `home()` is `sm_id % instances`: with one SM per instance the hot
    // SM's home instance has the hot SM's index.
    let hot = h.hot_sm(seed) as usize;
    let script = h.script(seed);
    let pool = GallatinPool::new(NUM_SMS as usize, GallatinConfig::small_test(TIGHT_HEAP));
    let sink = Arc::new(TraceSink::new());
    let (arm, records) = gpu_sim::trace::with_sink(sink.clone(), || {
        let out = run_script(&pool, DeviceConfig::with_sms(NUM_SMS).seeded(seed), &script, true);
        assert_eq!(out.violations(), (0, 0, 0), "hotspot run must be clean: {out:?}");
        let spills_before = pool.spill_count(hot);

        // Rebalance: each cold home hands one quiescent-free segment to
        // the hot one. The script is leak-free, so after the run every
        // cold segment is drained — but a drained segment can still be
        // pinned by a cached wavefront block, so the maintenance pass
        // trims before it donates (both are host-side quiescent points).
        let t0 = Instant::now();
        let mut donated = 0;
        for i in (0..NUM_SMS as usize).filter(|&i| i != hot) {
            pool.instance(i).trim();
            donated += pool.donate(i, hot, 1).expect("drained cold homes donate cleanly");
        }
        let donate_ms = t0.elapsed().as_secs_f64() * 1e3;

        // Replay the identical script against the grown hot home.
        let out2 = run_script(&pool, DeviceConfig::with_sms(NUM_SMS).seeded(seed), &script, true);
        assert_eq!(out2.violations(), (0, 0, 0), "replay must be clean: {out2:?}");
        let arm = DonationArm {
            hot,
            donated,
            donate_events: 0,
            spills_before,
            spills_after: pool.spill_count(hot) - spills_before,
            served: out.served + out2.served,
            ledger_anomalies: 0,
            donate_ms,
        };
        (arm, sink.snapshot())
    });
    assert_eq!(sink.dropped(), 0, "trace sink must keep the whole story");
    pool.check_invariants().expect("pool healthy after donation arm");
    assert_eq!(pool.pool_stats().donated_segments, arm.donated);

    let ledger = Ledger::build(&records);
    let o = ledger.outcome();
    let donate_events =
        records.iter().filter(|r| matches!(r.event, TraceEvent::SegmentDonate { .. })).count()
            as u64;
    DonationArm {
        donate_events,
        ledger_anomalies: o.leaks + o.double_frees + o.unknown_frees + o.size_mismatches,
        ..arm
    }
}

/// Phases 1–2 of the fragmentation attack, host-driven and exact: fill
/// 8 segments with 1 KiB blocks through the ordinary malloc path (SM 0,
/// so on a pool the frag home is instance 0), then free all but every
/// 16th. Stamps each survivor `0xE22_0000 + its live index` and returns
/// the live `(ptr, size)` set, ordered by live index.
fn fragment_attack<A: DeviceAllocator>(a: &A) -> Vec<(DevicePtr, u64)> {
    let w = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    let l = w.lane(0);
    let held: Vec<DevicePtr> = (0..FRAG_BLOCKS).map(|_| a.malloc(&l, 1024)).collect();
    assert!(held.iter().all(|p| !p.is_null()), "the attack fits in half the heap");
    let mut live = Vec::new();
    for (i, &p) in held.iter().enumerate() {
        if i % FRAG_KEEP == 0 {
            a.memory().write_stamp(p, 0xE22_0000 + live.len() as u64);
            live.push((p, 1024u64));
        } else {
            a.free(&l, p);
        }
    }
    live
}

/// Apply compaction's relocations to the live set and verify every
/// migrated payload byte-for-byte via its stamp.
fn apply_relocations(
    mem: &gpu_sim::DeviceMemory,
    live: &mut [(DevicePtr, u64)],
    relos: &[gallatin::Relocation],
) {
    for r in relos {
        let slot = live.iter_mut().find(|(p, _)| *p == r.old).expect("relocation of a live ptr");
        assert_eq!(r.size, slot.1, "relocation preserves the requested size");
        slot.0 = r.new;
    }
    for (i, &(p, _)) in live.iter().enumerate() {
        assert_eq!(mem.read_stamp(p), 0xE22_0000 + i as u64, "payload preserved");
    }
}

/// Outcome of one compaction A/B arm.
struct FragArm {
    reclaimable: u64,
    relocations: u64,
    live: u64,
    ms: f64,
}

/// The attack on a standalone allocator; with `compacted` the stragglers
/// are migrated before counting reclaimable whole segments.
fn frag_arm(compacted: bool) -> FragArm {
    let g = Gallatin::new(GallatinConfig::small_test(FRAG_HEAP));
    let mut live = fragment_attack(&g);
    let t0 = Instant::now();
    let relos = if compacted { g.compact(&live, COMPACT_OCCUPANCY) } else { Vec::new() };
    g.trim();
    let ms = t0.elapsed().as_secs_f64() * 1e3;
    apply_relocations(g.memory(), &mut live, &relos);
    let arm = FragArm {
        reclaimable: g.free_segments(),
        relocations: relos.len() as u64,
        live: live.len() as u64,
        ms,
    };
    // Teardown must drain completely either way.
    let w = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    for &(p, _) in &live {
        g.free(&w.lane(0), p);
    }
    assert_eq!(g.stats().reserved_bytes, 0, "attack teardown leaked");
    g.check_invariants().expect("clean after frag arm");
    arm
}

/// The attack on a 2-instance pool: fragment instance 0, optionally
/// compact, then donate every whole free segment to the sibling.
/// Returns `(donated, relocations, donate_ms)`.
fn donate_after_frag(compacted: bool) -> (u64, u64, f64) {
    let pool = GallatinPool::new(2, GallatinConfig::small_test(FRAG_HEAP));
    let mut live = fragment_attack(&pool);
    let relos = if compacted { pool.compact(&live, COMPACT_OCCUPANCY) } else { Vec::new() };
    apply_relocations(pool.memory(), &mut live, &relos);
    let t0 = Instant::now();
    let donated = pool.donate(0, 1, 16).expect("whole free segments donate");
    let donate_ms = t0.elapsed().as_secs_f64() * 1e3;
    // The stragglers still free correctly across the re-homed map.
    let w = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    for &(p, _) in &live {
        pool.free(&w.lane(0), p);
    }
    assert_eq!(pool.stats().reserved_bytes, 0, "pool attack teardown leaked");
    pool.check_invariants().expect("clean after donate-after-frag");
    (donated, relos.len() as u64, donate_ms)
}

/// The perf lane's elastic cell: one full maintenance cycle — fragment,
/// compact, donate, shrink the recipient back to the pool free list,
/// re-adopt at the origin — with every count an exact function of the
/// (fixed) layout. The suite asserts the counts replay bit-for-bit
/// across samples; only the ms may move.
pub fn perf_record() -> BenchRecord {
    let t0 = Instant::now();
    let pool = GallatinPool::new(2, GallatinConfig::small_test(FRAG_HEAP));
    let mut live = fragment_attack(&pool);
    let relos = pool.compact(&live, COMPACT_OCCUPANCY);
    apply_relocations(pool.memory(), &mut live, &relos);
    let donated = pool.donate(0, 1, 16).expect("compacted segments donate");
    let returned = pool.shrink_instance(1, donated);
    let adopted = pool.grow(0, returned);
    let w = WarpCtx { warp_id: 0, sm_id: 0, base_tid: 0, active: 1 };
    for &(p, _) in &live {
        pool.free(&w.lane(0), p);
    }
    assert_eq!(pool.stats().reserved_bytes, 0, "maintenance cycle leaked");
    pool.check_invariants().expect("clean after maintenance cycle");
    BenchRecord {
        experiment: "perf".to_string(),
        allocator: "GallatinPool".to_string(),
        params: vec![("case".to_string(), "elastic-maintenance".to_string())],
        median_ms: t0.elapsed().as_secs_f64() * 1e3,
        counts: vec![
            ("relocations".into(), relos.len() as u64),
            ("donated".into(), donated),
            ("returned".into(), returned),
            ("adopted".into(), adopted),
        ],
    }
}

fn rec(
    case: &str,
    extra: Vec<(String, String)>,
    ms: f64,
    counts: Vec<(String, u64)>,
) -> BenchRecord {
    let mut params = vec![("case".to_string(), case.to_string())];
    params.extend(extra);
    BenchRecord {
        experiment: "elastic".to_string(),
        allocator: "GallatinPool".to_string(),
        params,
        median_ms: ms,
        counts,
    }
}

/// Run E22 and emit table + `BENCH_elastic.json`. Returns `false` (and
/// the harness exits 1) if any verdict fails: the hot home must absorb
/// at least one donated segment with a clean ledger, and both
/// compaction rows must strictly beat their no-compaction controls.
pub fn run_elastic(cfg: &HarnessConfig) -> bool {
    let seed = std::env::var("GALLATIN_SCHED_SEED")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(DONATION_SEED);

    let d = donation_arm(seed);
    let (frag_off, frag_on) = (frag_arm(false), frag_arm(true));
    let (don_off, don_on) = (donate_after_frag(false), donate_after_frag(true));

    let recs = vec![
        rec(
            "donation",
            vec![("seed".into(), seed.to_string()), ("hot".into(), d.hot.to_string())],
            d.donate_ms,
            vec![
                ("donated".into(), d.donated),
                ("donate_events".into(), d.donate_events),
                ("spills_before".into(), d.spills_before),
                ("spills_after".into(), d.spills_after),
                ("served".into(), d.served),
                ("ledger_anomalies".into(), d.ledger_anomalies),
            ],
        ),
        rec(
            "frag-reclaim",
            vec![("compaction".into(), "off".into())],
            frag_off.ms,
            vec![
                ("reclaimable_segments".into(), frag_off.reclaimable),
                ("relocations".into(), frag_off.relocations),
                ("live".into(), frag_off.live),
            ],
        ),
        rec(
            "frag-reclaim",
            vec![("compaction".into(), "on".into())],
            frag_on.ms,
            vec![
                ("reclaimable_segments".into(), frag_on.reclaimable),
                ("relocations".into(), frag_on.relocations),
                ("live".into(), frag_on.live),
            ],
        ),
        rec(
            "donate-after-frag",
            vec![("compaction".into(), "off".into())],
            don_off.2,
            vec![("donated".into(), don_off.0), ("relocations".into(), don_off.1)],
        ),
        rec(
            "donate-after-frag",
            vec![("compaction".into(), "on".into())],
            don_on.2,
            vec![("donated".into(), don_on.0), ("relocations".into(), don_on.1)],
        ),
    ];

    let mut tab = Table::new(
        "E22 — elastic pool: donation, compaction, shrink",
        &[
            "case",
            "compaction",
            "donated",
            "reclaimable",
            "relocations",
            "spills before/after",
            "ms",
        ],
    );
    for r in &recs {
        let get = |k: &str| {
            r.counts
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        let param = |k: &str| {
            r.params
                .iter()
                .find(|(pk, _)| pk == k)
                .map(|(_, v)| v.clone())
                .unwrap_or_else(|| "-".to_string())
        };
        let spills = if r.params[0].1 == "donation" {
            format!("{}/{}", get("spills_before"), get("spills_after"))
        } else {
            "-".to_string()
        };
        tab.row(vec![
            r.params[0].1.clone(),
            param("compaction"),
            get("donated"),
            get("reclaimable_segments"),
            get("relocations"),
            spills,
            format!("{:.3}", r.median_ms),
        ]);
    }
    tab.emit(&cfg.out_dir, "e22_elastic");
    match write_bench_json(&cfg.out_dir, "elastic", &recs) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write BENCH_elastic.json: {e}"),
    }

    let mut ok = true;
    let mut verdict = |name: &str, pass: bool| {
        println!("  [{}] {name}", if pass { "PASS" } else { "FAIL" });
        ok &= pass;
    };
    verdict(
        &format!("hot home {} absorbed {} donated segment(s) under the hotspot", d.hot, d.donated),
        d.donated >= 1,
    );
    verdict(
        &format!(
            "lifecycle ledger clean across donation + replay ({} anomalies)",
            d.ledger_anomalies
        ),
        d.ledger_anomalies == 0,
    );
    verdict(
        &format!(
            "compaction reclaims strictly more segments ({} > {})",
            frag_on.reclaimable, frag_off.reclaimable
        ),
        frag_on.reclaimable > frag_off.reclaimable,
    );
    verdict(
        &format!("compaction donates strictly more segments ({} > {})", don_on.0, don_off.0),
        don_on.0 > don_off.0,
    );
    ok
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn donation_arm_absorbs_cold_segments_with_clean_ledger() {
        let d = donation_arm(DONATION_SEED);
        assert_eq!(d.donated, NUM_SMS as u64 - 1, "every cold home donates one segment");
        assert_eq!(d.donate_events, d.donated, "each donation is traced");
        assert_eq!(d.ledger_anomalies, 0, "re-homed addresses keep a clean lifecycle ledger");
        assert!(d.spills_before > 0, "seed {DONATION_SEED} must pressure the hot home");
        assert!(
            d.spills_after <= d.spills_before,
            "a grown hot home cannot spill more ({} vs {})",
            d.spills_after,
            d.spills_before
        );
    }

    #[test]
    fn compaction_strictly_beats_trim_only() {
        let (off, on) = (frag_arm(false), frag_arm(true));
        assert_eq!(off.relocations, 0);
        assert!(on.relocations > 0, "the attack leaves stragglers to migrate");
        assert!(
            on.reclaimable > off.reclaimable,
            "compaction must unlock segments trim cannot ({} vs {})",
            on.reclaimable,
            off.reclaimable
        );
        // The attack's exact geometry: 8 untouched segments reclaimable
        // without compaction; all 32 stragglers fit in one segment after.
        assert_eq!(off.reclaimable, 8);
        assert_eq!(on.reclaimable, 15);
    }

    #[test]
    fn donation_after_compaction_moves_strictly_more() {
        let (off, on) = (donate_after_frag(false), donate_after_frag(true));
        assert!(
            on.0 > off.0,
            "compaction must free more donatable segments ({} vs {})",
            on.0,
            off.0
        );
        assert_eq!(off.0, 8, "without compaction only the untouched segments donate");
        assert_eq!(on.0, 15, "with compaction everything but the straggler segment donates");
    }

    #[test]
    fn perf_cell_counts_replay_exactly() {
        let (a, b) = (perf_record(), perf_record());
        assert_eq!(a.counts, b.counts, "elastic maintenance cell must be count-deterministic");
        let get = |r: &BenchRecord, k: &str| {
            r.counts.iter().find(|(n, _)| n == k).map(|(_, v)| *v).unwrap()
        };
        assert!(get(&a, "relocations") > 0);
        assert!(get(&a, "donated") > 0);
        assert_eq!(get(&a, "returned"), get(&a, "adopted"), "the shuttle round-trips");
    }
}
