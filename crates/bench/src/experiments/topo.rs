//! E23 — multi-device topology scaling (`repro topo`).
//!
//! Four deterministic arms over the hierarchical [`DevicePool`], swept
//! across 1/2/4/8 devices:
//!
//! 1. **Locality skew.** Every warp allocates on its affinity device,
//!    then a controlled fraction of warps (0, 1, or 8 per 16 warp
//!    pairs) return a *neighbor* warp's batch — frees issued one SM
//!    over, which on a multi-device topology is one device over. The
//!    interconnect counters make the skew exactly visible: the
//!    peer-access share is a closed-form function of the rotation
//!    fraction, and the acceptance gate pins the affine and mild-skew
//!    cells under 5% peer share while every home has headroom.
//! 2. **Spill cascade.** One SM claims every segment of the whole
//!    topology wholesale: the home device's in-device walk absorbs the
//!    first `width × 16` claims, then each successive device denial
//!    crosses the interconnect. Cross-spill counts and the step cost of
//!    the cascade (peer accesses × the interconnect tariff) are exact
//!    functions of the geometry.
//! 3. **Single-device parity.** `DevicePool(1, 2)` runs the E18 block
//!    churn and must reproduce `GallatinPool(2)`'s per-instance
//!    atomic-op counts **bit-identically** — the refactor's standing
//!    regression gate: the topology layer adds host-side accounting
//!    only, never a scheduler preemption point. The rows are emitted
//!    under both allocator names so `BENCH_topo.json` diffs directly
//!    against `BENCH_pool.json`.
//! 4. **Serving tail.** A 2-device pool serves one open-loop E20 cell;
//!    p99 and the quota/ledger audit ride into the JSON.
//!
//! `GALLATIN_TOPO_SEEDS` bounds the seed sweep (default 8; CI quick
//! uses 4). Everything replays bit-identically per seed.

use crate::report::{write_bench_json, BenchRecord, Table};
use crate::serve::{run_serve_engine, ArrivalConfig, ArrivalShape, ServeConfig, TenantSpec};
use crate::HarnessConfig;
use gallatin::{DevicePool, GallatinConfig, GallatinPool, TopoStats};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use super::ablation::{block_churn_config, churn_once, SWEEP_SEEDS_SMOKE, SWEEP_SIZE_BLOCK};

/// Device counts swept by `repro topo`.
const TOPO_DEVICES: [u32; 4] = [1, 2, 4, 8];

/// Instances per device throughout the experiment.
const WIDTH: usize = 2;

/// Per-instance heap (16 small_test segments, matching E18's pressure
/// geometry).
const HEAP: u64 = 1 << 20;

/// Warps per skew run; warp `w` lands on SM `w % (2 × devices)`, so 32
/// warps cover every SM at every swept device count.
const SKEW_WARPS: u64 = 32;

/// Rotated warp *pairs* per 16: warp `w` returns warp `w ^ 1`'s batch
/// when `(w / 2) % 16 < skew`. Adjacent warps sit one SM — hence one
/// device — apart, so each rotation is a cross-device free. 0 = fully
/// affine, 1 = mild skew (1/16 of warps ⇒ 1/32 of accesses peer), 8 =
/// heavy skew (1/2 of warps ⇒ 1/4 of accesses peer).
const SKEWS: [u64; 3] = [0, 1, 8];

/// Peer-share ceiling the affine and mild-skew cells must stay under
/// (acceptance: "peer-access share stays under 5% at headroom").
const PEER_SHARE_GATE: f64 = 0.05;

/// Schedule seed of the cascade and serve arms (any seed reproduces
/// the same counts — one warp, nothing to interleave with).
const CASCADE_SEED: u64 = 3;

/// Env var bounding the skew-arm seed sweep (mirrors
/// `GALLATIN_ELASTIC_SEEDS`); default 8, CI quick uses 4.
const TOPO_SEEDS_ENV: &str = "GALLATIN_TOPO_SEEDS";

fn topo_seeds() -> u64 {
    match std::env::var(TOPO_SEEDS_ENV) {
        Ok(s) => {
            s.parse::<u64>().unwrap_or_else(|_| panic!("{TOPO_SEEDS_ENV} must be a u64, got {s:?}"))
        }
        Err(_) => 8,
    }
}

/// One seeded locality-skew run: affine warp-collective mallocs, then a
/// rotated free pass where `skew`-per-16 warp pairs return their
/// neighbor's batch. Returns the topology snapshot after the frees
/// (counters still armed) — the pool drains and audits clean.
fn skew_run(devices: u32, skew: u64, seed: u64) -> TopoStats {
    let pool = Arc::new(DevicePool::new(devices, WIDTH, GallatinConfig::small_test(HEAP)));
    let num_sms = devices * WIDTH as u32;
    let slots: Vec<Mutex<Vec<DevicePtr>>> =
        (0..SKEW_WARPS).map(|_| Mutex::new(Vec::new())).collect();
    launch_warps(DeviceConfig::with_sms(num_sms).seeded(seed), SKEW_WARPS * 32, |warp| {
        let k = warp.active as usize;
        let sizes: Vec<Option<u64>> =
            (0..k).map(|l| Some(16u64 << ((warp.base_tid as usize + l) % 4))).collect();
        let mut out = vec![DevicePtr::NULL; k];
        pool.warp_malloc(warp, &sizes, &mut out);
        assert!(out.iter().all(|p| !p.is_null()), "every home device has headroom");
        *slots[warp.warp_id as usize].lock().unwrap() = out;
    });
    assert_eq!(pool.total_cross_spills(), 0, "affine placement never crosses at headroom");
    let rotated = AtomicU64::new(0);
    launch_warps(DeviceConfig::with_sms(num_sms).seeded(seed ^ 0x5eed), SKEW_WARPS * 32, |warp| {
        let victim = if (warp.warp_id / 2) % 16 < skew {
            rotated.fetch_add(1, Ordering::Relaxed);
            warp.warp_id ^ 1
        } else {
            warp.warp_id
        };
        let ptrs = slots[victim as usize].lock().unwrap().clone();
        pool.warp_free(warp, &ptrs);
    });
    assert_eq!(rotated.load(Ordering::Relaxed), SKEW_WARPS * skew.min(16) / 16);
    assert_eq!(pool.stats().reserved_bytes, 0, "every rotated free routed home");
    pool.check_invariants().unwrap_or_else(|e| panic!("seed {seed}: {e}"));
    pool.topo_stats()
}

/// The spill cascade: one SM claims every segment of the whole topology
/// with segment-sized allocations, then frees them all. Returns the
/// snapshot, the claim count, and the cascade's interconnect cost in
/// schedule steps (peer accesses × peer tariff).
fn cascade(devices: u32) -> (TopoStats, u64, u64) {
    let pool = DevicePool::new(devices, WIDTH, GallatinConfig::small_test(HEAP));
    let claims = devices as u64 * WIDTH as u64 * 16;
    launch_warps(DeviceConfig::with_sms(1).seeded(CASCADE_SEED), 32, |warp| {
        let lane = warp.lane(0);
        let seg = pool.pool(0).instance(0).geometry().segment_bytes;
        let held: Vec<DevicePtr> = (0..claims).map(|_| pool.malloc(&lane, seg)).collect();
        assert!(held.iter().all(|p| !p.is_null()), "the cascade must reach every device");
        for p in held {
            pool.free(&lane, p);
        }
    });
    pool.check_invariants().expect("clean after the cascade round-trip");
    let stats = pool.topo_stats();
    let cost = stats.peer_accesses * pool.topology().cost().peer_steps;
    (stats, claims, cost)
}

/// Per-instance churn counters for the parity gate, in instance order.
type ParityCounts = Vec<(u64, u64, u64, u64)>; // (cas_attempts, cas_failures, atomic_rmw, spills)

/// Run the E18 block churn over `seeds` on `a`, reading instance `i`'s
/// counters through `read`.
fn churn_counts<A: DeviceAllocator>(
    a_of: impl Fn() -> A,
    read: impl Fn(&A, usize) -> (u64, u64, u64, u64),
    seeds: u64,
) -> (ParityCounts, f64) {
    let mut per = vec![(0u64, 0u64, 0u64, 0u64); WIDTH];
    let mut ms = 0.0;
    for seed in 0..seeds {
        let a = a_of();
        let t0 = Instant::now();
        churn_once(&a, seed, SWEEP_SIZE_BLOCK);
        ms += t0.elapsed().as_secs_f64() * 1e3;
        a.check_invariants().expect("invariants after churn");
        assert_eq!(a.stats().reserved_bytes, 0, "churn leaked");
        for (i, t) in per.iter_mut().enumerate() {
            let (ca, cf, rmw, sp) = read(&a, i);
            t.0 += ca;
            t.1 += cf;
            t.2 += rmw;
            t.3 += sp;
        }
    }
    (per, ms)
}

/// The parity gate: `DevicePool(1, 2)` must reproduce `GallatinPool(2)`
/// bit-for-bit on the E18 churn. Returns `(pool rows, device rows, ok)`.
fn parity(seeds: u64) -> (ParityCounts, f64, ParityCounts, f64, bool) {
    let inst = |p: &GallatinPool, i: usize| {
        let m = p.instance(i).metrics().expect("gallatin keeps metrics").snapshot();
        (m.cas_attempts, m.cas_failures, m.atomic_rmw, p.spill_count(i))
    };
    let (flat, flat_ms) =
        churn_counts(|| GallatinPool::new(WIDTH, block_churn_config()), |p, i| inst(p, i), seeds);
    let (one, one_ms) = churn_counts(
        || DevicePool::new(1, WIDTH, block_churn_config()),
        |t, i| inst(t.pool(0), i),
        seeds,
    );
    let ok = flat == one;
    (flat, flat_ms, one, one_ms, ok)
}

/// One open-loop serving cell on a 2-device pool; returns `(p99 steps,
/// clean)`.
fn serve_cell(seed: u64) -> (u64, bool) {
    let pool = DevicePool::new(2, 1, GallatinConfig::small_test(1 << 22));
    let cfg = ServeConfig {
        arrivals: ArrivalConfig {
            shape: ArrivalShape::Poisson,
            seed: seed ^ 0x5EED_A221,
            rate_per_kstep: 90,
            horizon_steps: 6_000,
        },
        tenants: vec![TenantSpec {
            name: "svc".into(),
            weight: 1,
            quota_bytes: 1 << 21,
            size_min: 16,
            size_max: 4096,
            mean_lifetime_steps: 96,
        }],
        sched_seed: seed,
        batch_width: 64,
        queue_capacity: 256,
        launch_overhead_steps: 8,
        max_request_bytes: pool.stride(),
        enforce_quotas: true,
        num_sms: 16,
        ledger_check: true,
    };
    let out = run_serve_engine(&cfg, &pool);
    pool.check_invariants().expect("clean after the serve cell");
    (out.latency.p99, out.clean())
}

fn rec(
    allocator: &str,
    case: &str,
    extra: Vec<(String, String)>,
    ms: f64,
    counts: Vec<(String, u64)>,
) -> BenchRecord {
    let mut params = vec![("case".to_string(), case.to_string())];
    params.extend(extra);
    BenchRecord {
        experiment: "topo".to_string(),
        allocator: allocator.to_string(),
        params,
        median_ms: ms,
        counts,
    }
}

fn skew_record(devices: u32, skew: u64, s: &TopoStats, seeds: u64, ms: f64) -> BenchRecord {
    rec(
        "DevicePool",
        "locality-skew",
        vec![
            ("devices".into(), devices.to_string()),
            ("width".into(), WIDTH.to_string()),
            ("skew_per_16".into(), skew.to_string()),
            ("seeds".into(), seeds.to_string()),
        ],
        ms,
        vec![
            ("local_accesses".into(), s.local_accesses),
            ("peer_accesses".into(), s.peer_accesses),
            ("peer_share_bp".into(), (s.peer_share() * 10_000.0).round() as u64),
            ("in_device_spills".into(), s.in_device_spills),
            ("cross_spills".into(), s.cross_spills),
        ],
    )
}

/// The parity rows: identical count sets under both allocator names so
/// `BENCH_topo.json` diffs against `BENCH_pool.json` directly.
fn parity_records(per: &ParityCounts, name: &str, seeds: u64, ms: f64) -> Vec<BenchRecord> {
    per.iter()
        .enumerate()
        .map(|(i, t)| {
            rec(
                name,
                "parity-churn",
                vec![
                    ("instances".into(), WIDTH.to_string()),
                    ("instance".into(), i.to_string()),
                    ("size".into(), SWEEP_SIZE_BLOCK.to_string()),
                    ("seeds".into(), seeds.to_string()),
                ],
                ms,
                vec![
                    ("cas_attempts".into(), t.0),
                    ("cas_failures".into(), t.1),
                    ("atomic_rmw".into(), t.2),
                    ("spills".into(), t.3),
                ],
            )
        })
        .collect()
}

/// E23 entry point (`repro topo`). Returns `false` — exit 1 — when a
/// gate trips: affine/mild-skew peer share ≥ 5%, single-device parity
/// broken, or a dirty serve cell.
pub fn run_topo(cfg: &HarnessConfig) -> bool {
    let seeds = topo_seeds();
    println!("E23 topo: multi-device scaling, {TOPO_SEEDS_ENV}={seeds}");
    let mut clean = true;
    let mut records = Vec::new();
    let mut table = Table::new(
        "E23 — multi-device topology: locality skew, spill cascade, parity",
        &[
            "case",
            "devices",
            "skew/16",
            "local",
            "peer",
            "peer share",
            "in-dev spills",
            "cross spills",
            "cascade steps",
        ],
    );

    // Arm 1: locality skew × device count, seed-swept; counters must
    // replay bit-identically across seeds of the same cell.
    for &devices in &TOPO_DEVICES {
        for &skew in &SKEWS {
            let t0 = Instant::now();
            let mut first: Option<TopoStats> = None;
            for seed in 0..seeds {
                let s = skew_run(devices, skew, seed);
                if let Some(f) = &first {
                    assert_eq!(
                        (f.local_accesses, f.peer_accesses, f.cross_spills),
                        (s.local_accesses, s.peer_accesses, s.cross_spills),
                        "devices={devices} skew={skew}: traffic counters must be seed-independent"
                    );
                } else {
                    first = Some(s);
                }
            }
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let s = first.expect("at least one seed");
            let share = s.peer_share();
            if devices > 1 && skew <= 1 && share >= PEER_SHARE_GATE {
                eprintln!(
                    "topo gate FAILED: devices={devices} skew={skew}: peer share {:.2}% ≥ 5%",
                    share * 100.0
                );
                clean = false;
            }
            table.row(vec![
                "locality-skew".into(),
                devices.to_string(),
                skew.to_string(),
                s.local_accesses.to_string(),
                s.peer_accesses.to_string(),
                format!("{:.2}%", share * 100.0),
                s.in_device_spills.to_string(),
                s.cross_spills.to_string(),
                "-".into(),
            ]);
            records.push(skew_record(devices, skew, &s, seeds, ms));
        }
    }

    // Arm 2: the spill cascade at every device count.
    for &devices in &TOPO_DEVICES {
        let t0 = Instant::now();
        let (s, claims, cost) = cascade(devices);
        let ms = t0.elapsed().as_secs_f64() * 1e3;
        let expected_cross = claims - (WIDTH as u64 * 16);
        if s.cross_spills != expected_cross {
            eprintln!(
                "topo gate FAILED: cascade devices={devices}: {} cross spills, expected \
                 {expected_cross}",
                s.cross_spills
            );
            clean = false;
        }
        table.row(vec![
            "cascade".into(),
            devices.to_string(),
            "-".into(),
            s.local_accesses.to_string(),
            s.peer_accesses.to_string(),
            format!("{:.2}%", s.peer_share() * 100.0),
            s.in_device_spills.to_string(),
            s.cross_spills.to_string(),
            cost.to_string(),
        ]);
        records.push(rec(
            "DevicePool",
            "cascade",
            vec![
                ("devices".into(), devices.to_string()),
                ("width".into(), WIDTH.to_string()),
                ("seed".into(), CASCADE_SEED.to_string()),
            ],
            ms,
            vec![
                ("claims".into(), claims),
                ("cross_spills".into(), s.cross_spills),
                ("in_device_spills".into(), s.in_device_spills),
                ("peer_accesses".into(), s.peer_accesses),
                ("cascade_cost_steps".into(), cost),
            ],
        ));
    }

    // Arm 3: single-device parity against the sharded pool.
    let (flat, flat_ms, one, one_ms, parity_ok) = parity(seeds.min(SWEEP_SEEDS_SMOKE));
    if !parity_ok {
        eprintln!("topo gate FAILED: DevicePool(1,{WIDTH}) diverged from GallatinPool({WIDTH})");
        clean = false;
    }
    let pseeds = seeds.min(SWEEP_SEEDS_SMOKE);
    records.extend(parity_records(&flat, "GallatinPool", pseeds, flat_ms));
    records.extend(parity_records(&one, "DevicePool", pseeds, one_ms));
    println!(
        "parity: DevicePool(1,{WIDTH}) {} GallatinPool({WIDTH}) on {pseeds}-seed churn counters",
        if parity_ok { "matches" } else { "DIVERGES FROM" }
    );

    // Arm 4: the serving tail on a 2-device pool.
    let t0 = Instant::now();
    let (p99, serve_clean) = serve_cell(7);
    if !serve_clean {
        eprintln!("topo gate FAILED: serve cell reported quota/ledger anomalies");
        clean = false;
    }
    records.push(rec(
        "DevicePool",
        "serve",
        vec![("devices".into(), "2".into()), ("width".into(), "1".into())],
        t0.elapsed().as_secs_f64() * 1e3,
        vec![("p99_steps".into(), p99)],
    ));
    println!("serve cell: 2-device pool p99 {p99} steps");

    table.emit(&cfg.out_dir, "e23_topo");
    match write_bench_json(&cfg.out_dir, "topo", &records) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_topo.json: {e}");
            clean = false;
        }
    }
    if !clean {
        eprintln!("topo gate FAILED (see above)");
    }
    clean
}

/// The perf-lane cell (`repro perf`, E21 "inter-device-spill"): the
/// 2-device cascade, whose counts are exact functions of the geometry;
/// only the ms may move.
pub fn perf_record() -> BenchRecord {
    let t0 = Instant::now();
    let (s, claims, cost) = cascade(2);
    assert_eq!(s.cross_spills, claims - WIDTH as u64 * 16, "cascade overflow is exact");
    BenchRecord {
        experiment: "perf".to_string(),
        allocator: "DevicePool".to_string(),
        params: vec![("case".to_string(), "inter-device-spill".to_string())],
        median_ms: t0.elapsed().as_secs_f64() * 1e3,
        counts: vec![
            ("claims".into(), claims),
            ("cross_spills".into(), s.cross_spills),
            ("peer_accesses".into(), s.peer_accesses),
            ("cascade_cost_steps".into(), cost),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn skew_share_is_closed_form() {
        // Mallocs are all local; `skew`-per-16 warp pairs free one SM
        // (= one device) over, so peer share = skew / 32 exactly.
        for (skew, expected) in [(0u64, 0.0), (1, 1.0 / 32.0), (8, 0.25)] {
            let s = skew_run(4, skew, 11);
            assert_eq!(s.cross_spills, 0, "skew frees route, they never spill");
            assert!(
                (s.peer_share() - expected).abs() < 1e-9,
                "skew {skew}: share {} != {expected}",
                s.peer_share()
            );
        }
        // One device: rotation crosses instances, never devices.
        assert_eq!(skew_run(1, 8, 11).peer_accesses, 0);
    }

    #[test]
    fn cascade_overflow_and_cost_are_exact() {
        let (s, claims, cost) = cascade(2);
        assert_eq!(claims, 64);
        assert_eq!(s.cross_spills, 32, "everything past the home device crosses");
        // 32 peer mallocs + 32 peer frees, at the default 40-step tariff.
        assert_eq!(s.peer_accesses, 64);
        assert_eq!(cost, 64 * 40);
        let (s1, _, cost1) = cascade(1);
        assert_eq!((s1.cross_spills, cost1), (0, 0), "one device has no interconnect to pay");
    }

    #[test]
    fn single_device_parity_holds_on_the_churn() {
        let (flat, _, one, _, ok) = parity(2);
        assert!(ok, "DevicePool(1,2) churn diverged: {flat:?} vs {one:?}");
        assert!(flat.iter().all(|t| t.0 > 0), "the churn must actually exercise CAS paths");
    }
}
