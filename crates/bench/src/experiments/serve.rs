//! E20 — serving-mode sweeps: open-loop arrivals, batched launches,
//! tail latency and goodput (`repro serve`).
//!
//! Three questions the closed-loop experiments (E1–E17) cannot answer:
//!
//! 1. **Load → tail latency.** Sweeping offered load across the same
//!    arrival shapes shows p50 staying flat while p99/p999 blow up as
//!    the queue saturates, and goodput collapsing past the knee — the
//!    classic open-loop signature.
//! 2. **Batch width → p999.** Wider batches amortize launch overhead
//!    (more goodput per launch) but delay early requests and lengthen
//!    each launch, trading p999 for throughput.
//! 3. **Fairness.** An aggressive tenant floods the system; with quota
//!    admission its overcommit is rejected at the door and the
//!    well-behaved victim's p99 stays bounded, without admission the
//!    victim queues behind the flood.
//!
//! Everything runs on the deterministic scheduler: latencies are in
//! schedule steps and replay byte-identically from
//! `GALLATIN_SCHED_SEED` (see the `serve_determinism` test). Wall time
//! appears only as the informational `median_ms` of the engine run.
//!
//! `--smoke` shrinks the sweep to one gating subset per backend and
//! returns `false` (exit 1 in `repro`) on any quota violation or
//! ledger anomaly.

use crate::report::{write_bench_json, BenchRecord, Table};
use crate::serve::{
    run_serve_engine, run_serve_engine_sampled, ArrivalConfig, ArrivalShape, Rejection,
    ServeConfig, ServeOutcome, TenantSpec,
};
use crate::HarnessConfig;
use gallatin::{DevicePool, Gallatin, GallatinConfig, GallatinPool};
use gpu_sim::sched::SCHED_SEED_ENV;
use gpu_sim::DeviceAllocator;
use std::sync::Arc;
use std::time::Instant;

/// Schedule seed used when `GALLATIN_SCHED_SEED` is unset (matches the
/// other deterministic experiments).
const DEFAULT_SEED: u64 = 7;

/// Arrival-seed offset: keeps the arrival stream independent of the
/// schedule stream even though both replay from one env knob.
const ARRIVAL_SEED_XOR: u64 = 0x5EED_A221;

/// Offered loads swept (requests per 1000 steps). The top load sits
/// past the saturation knee at the default batch width.
const LOADS: [u64; 3] = [30, 90, 270];

/// Batch widths swept at the middle load.
const BATCH_WIDTHS: [usize; 3] = [16, 64, 256];

/// Per-instance heap for the serving backends; small_test geometry
/// keeps runs fast while still exercising all three tiers.
const SERVE_HEAP: u64 = 1 << 22;

/// The two serving backends: flagship Gallatin and a 2-instance pool
/// (ISSUE: "Gallatin and GallatinPool(2+)").
fn backends() -> Vec<(String, Arc<dyn DeviceAllocator>, u64)> {
    let pool = GallatinPool::new(2, GallatinConfig::small_test(SERVE_HEAP));
    let pool_stride = pool.stride();
    vec![
        (
            "Gallatin".to_string(),
            Arc::new(Gallatin::new(GallatinConfig::small_test(SERVE_HEAP))) as Arc<_>,
            u64::MAX,
        ),
        ("GallatinPool(2)".to_string(), Arc::new(pool) as Arc<_>, pool_stride),
    ]
}

/// Every *remaining* roster family plus the hierarchical topology pool,
/// each of which rides through one serving matrix cell (scenario
/// "roster"). The two flagship backends already run the full load
/// sweep, so they are filtered out here.
fn roster_backends() -> Vec<(String, Arc<dyn DeviceAllocator>, u64)> {
    let mut v: Vec<(String, Arc<dyn DeviceAllocator>, u64)> =
        crate::roster::quick_roster(2 * SERVE_HEAP, 16)
            .into_iter()
            .filter(|a| a.name() != "Gallatin")
            .map(|a| (a.name().to_string(), a, u64::MAX))
            .collect();
    let dp = DevicePool::new(2, 1, GallatinConfig::small_test(SERVE_HEAP));
    let stride = dp.stride();
    v.push(("DevicePool(2x1)".to_string(), Arc::new(dp) as Arc<_>, stride));
    v
}

/// The standard two-tenant mix: a heavy service and a light one.
fn standard_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "svc-a".into(),
            weight: 3,
            quota_bytes: 1 << 21,
            size_min: 16,
            size_max: 4096,
            mean_lifetime_steps: 96,
        },
        TenantSpec {
            name: "svc-b".into(),
            weight: 1,
            quota_bytes: 1 << 20,
            size_min: 64,
            size_max: 1024,
            mean_lifetime_steps: 24,
        },
    ]
}

/// The fairness mix: `victim` issues modest requests; `aggressor`
/// floods with large long-lived ones. Its quota is what the throttled
/// arm enforces.
fn fairness_tenants() -> Vec<TenantSpec> {
    vec![
        TenantSpec {
            name: "victim".into(),
            weight: 1,
            quota_bytes: 1 << 20,
            size_min: 64,
            size_max: 512,
            mean_lifetime_steps: 32,
        },
        TenantSpec {
            name: "aggressor".into(),
            weight: 6,
            quota_bytes: 64 << 10,
            size_min: 2048,
            size_max: 4096,
            mean_lifetime_steps: 2048,
        },
    ]
}

/// Base config for one sweep cell.
fn cell_config(
    shape: ArrivalShape,
    rate: u64,
    batch_width: usize,
    horizon: u64,
    seed: u64,
    max_request: u64,
    tenants: Vec<TenantSpec>,
    num_sms: u32,
) -> ServeConfig {
    ServeConfig {
        arrivals: ArrivalConfig {
            shape,
            seed: seed ^ ARRIVAL_SEED_XOR,
            rate_per_kstep: rate,
            horizon_steps: horizon,
        },
        tenants,
        sched_seed: seed,
        batch_width,
        queue_capacity: 4 * batch_width.max(64),
        launch_overhead_steps: 8,
        max_request_bytes: max_request,
        enforce_quotas: true,
        num_sms,
        ledger_check: true,
    }
}

/// Run one cell `runs` times on a fresh backend each time (the engine
/// drains, but a fresh allocator removes cross-cell state); returns the
/// (identical) outcome plus the median wall time.
fn measure(cfg: &ServeConfig, alloc: &dyn DeviceAllocator, runs: usize) -> (ServeOutcome, f64) {
    let mut times = Vec::with_capacity(runs);
    let mut out = None;
    for _ in 0..runs.max(1) {
        let t0 = Instant::now();
        let o = run_serve_engine(cfg, alloc);
        times.push(t0.elapsed().as_secs_f64() * 1e3);
        if let Some(prev) = &out {
            debug_assert_eq!(prev, &o, "serving runs must be deterministic");
        }
        out = Some(o);
    }
    (out.unwrap(), crate::workload::measure::median(&times))
}

/// Reduce one outcome to the BENCH counts map. The full latency
/// histogram rides along (`hist_bNN`) so the determinism test can pin
/// the distribution, not just its percentiles.
fn counts_of(out: &ServeOutcome) -> Vec<(String, u64)> {
    let mut counts = vec![
        ("offered".into(), out.offered),
        ("admitted".into(), out.admitted),
        ("served".into(), out.served),
        ("served_bytes".into(), out.served_bytes),
        ("batches".into(), out.batches),
        ("sched_steps".into(), out.sched_steps),
        ("end_step".into(), out.end_step),
        ("p50_steps".into(), out.latency.p50),
        ("p99_steps".into(), out.latency.p99),
        ("p999_steps".into(), out.latency.p999),
        ("max_steps".into(), out.latency.max),
        ("goodput_bytes_per_kstep".into(), out.goodput_bytes_per_kstep()),
        ("quota_violations".into(), out.quota_violations),
        ("ledger_leaks".into(), out.ledger_leaks),
        ("ledger_double_frees".into(), out.ledger_double_frees),
        ("ledger_unknown_frees".into(), out.ledger_unknown_frees),
        ("ledger_size_mismatches".into(), out.ledger_size_mismatches),
    ];
    for (t, why) in out.tenants.iter().flat_map(|t| Rejection::ALL.iter().map(move |&w| (t, w))) {
        counts.push((format!("{}_{}", t.name, why.label()), t.rejected[why as usize]));
    }
    for t in &out.tenants {
        counts.push((format!("{}_peak_live_bytes", t.name), t.peak_live_bytes));
        counts.push((format!("{}_p99_steps", t.name), t.latency.p99));
    }
    for (b, &n) in out.latency.hist.iter().enumerate() {
        if n > 0 {
            counts.push((format!("hist_b{b:02}"), n));
        }
    }
    counts
}

/// Build the BENCH record for one cell.
fn record_of(
    allocator: &str,
    cfg: &ServeConfig,
    out: &ServeOutcome,
    median_ms: f64,
    scenario: &str,
) -> BenchRecord {
    BenchRecord {
        experiment: "serve".into(),
        allocator: allocator.into(),
        params: vec![
            ("scenario".into(), scenario.into()),
            ("shape".into(), cfg.arrivals.shape.label().into()),
            ("rate_per_kstep".into(), cfg.arrivals.rate_per_kstep.to_string()),
            ("batch_width".into(), cfg.batch_width.to_string()),
            ("horizon_steps".into(), cfg.arrivals.horizon_steps.to_string()),
            ("admission".into(), if cfg.enforce_quotas { "on" } else { "off" }.to_string()),
            ("seed".into(), cfg.sched_seed.to_string()),
        ],
        median_ms,
        counts: counts_of(out),
    }
}

/// Step cadence of the fragmentation timeline (one sample per 500
/// simulated steps — fine enough to see the saw-tooth of batched
/// serve/drain, coarse enough to keep the CSV small).
const FRAG_SAMPLE_STEPS: u64 = 500;

/// Fragmentation-over-time sampling: drive the two pool backends
/// through the middle-load Poisson cell with the engine's cadence hook
/// and write one row per `(allocator, step)` to
/// `<out_dir>/e20_frag_timeline.csv` — reserved bytes, headroom, parked
/// segments, spill/denial counters, and (for the topology pool) the
/// interconnect traffic split, all on the deterministic step clock so
/// the whole timeline replays byte-identically. Returns the clean flag
/// of both runs.
fn frag_timeline(cfg: &HarnessConfig, seed: u64, horizon: u64) -> bool {
    let mut rows = vec!["allocator,step,reserved_bytes,headroom_bytes,pool_free_segments,spills,\
         oversize_denials,cross_spills,peer_accesses"
        .to_string()];
    let mut clean = true;

    let pool = GallatinPool::new(2, GallatinConfig::small_test(SERVE_HEAP));
    let c = cell_config(
        ArrivalShape::Poisson,
        LOADS[1],
        64,
        horizon,
        seed,
        pool.stride(),
        standard_tenants(),
        16,
    );
    let out = run_serve_engine_sampled(&c, &pool, FRAG_SAMPLE_STEPS, &mut |step| {
        let s = pool.pool_stats();
        rows.push(format!(
            "GallatinPool(2),{step},{},{},{},{},{},0,0",
            s.reserved_bytes,
            s.headroom_bytes(),
            s.pool_free_segments,
            s.spills,
            s.oversize_denials
        ));
    });
    clean &= out.clean();

    let dp = DevicePool::new(2, 1, GallatinConfig::small_test(SERVE_HEAP));
    let c = cell_config(
        ArrivalShape::Poisson,
        LOADS[1],
        64,
        horizon,
        seed,
        dp.stride(),
        standard_tenants(),
        16,
    );
    let out = run_serve_engine_sampled(&c, &dp, FRAG_SAMPLE_STEPS, &mut |step| {
        let s = dp.topo_stats();
        let (free_segs, denials) = s
            .devices
            .iter()
            .fold((0u64, 0u64), |(f, d), p| (f + p.pool_free_segments, d + p.oversize_denials));
        rows.push(format!(
            "DevicePool(2x1),{step},{},{},{free_segs},{},{denials},{},{}",
            s.reserved_bytes,
            s.heap_bytes - s.reserved_bytes.min(s.heap_bytes),
            s.in_device_spills,
            s.cross_spills,
            s.peer_accesses
        ));
    });
    clean &= out.clean();

    let path = std::path::Path::new(&cfg.out_dir).join("e20_frag_timeline.csv");
    match std::fs::create_dir_all(&cfg.out_dir)
        .and_then(|()| std::fs::write(&path, rows.join("\n") + "\n"))
    {
        Ok(()) => println!("wrote {} ({} samples)", path.display(), rows.len() - 1),
        Err(e) => {
            eprintln!("error: could not write e20_frag_timeline.csv: {e}");
            clean = false;
        }
    }
    clean
}

/// E20 entry point (`repro serve`). Returns `false` — exit 1 — when
/// the smoke gate trips: any quota violation or ledger anomaly.
pub fn run_serve(cfg: &HarnessConfig) -> bool {
    let seed = match std::env::var(SCHED_SEED_ENV) {
        Ok(s) => {
            s.parse::<u64>().unwrap_or_else(|_| panic!("{SCHED_SEED_ENV} must be a u64, got {s:?}"))
        }
        Err(_) => DEFAULT_SEED,
    };
    let smoke = cfg.smoke;
    let horizon: u64 = if smoke { 6_000 } else { 20_000 };
    let timing_runs = if smoke { 1 } else { cfg.runs.min(3) };
    let loads: &[u64] = if smoke { &LOADS[..2] } else { &LOADS };
    let shapes: &[ArrivalShape] = if smoke {
        &[ArrivalShape::Poisson]
    } else {
        &[ArrivalShape::Poisson, ArrivalShape::Bursty]
    };
    println!(
        "E20 serve: open-loop serving sweep, {SCHED_SEED_ENV}={seed}{}",
        if smoke { " (smoke subset)" } else { "" }
    );

    let mut records = Vec::new();
    let mut clean = true;
    let mut table = Table::new(
        format!("E20 — serving sweep, horizon {horizon} steps, latencies in sched steps"),
        &[
            "allocator",
            "scenario",
            "shape",
            "rate",
            "batch",
            "served/offered",
            "p50",
            "p99",
            "p999",
            "goodput B/kstep",
        ],
    );

    let run_cell = |name: &str,
                    alloc: &dyn DeviceAllocator,
                    scenario: &str,
                    cfg_cell: &ServeConfig,
                    records: &mut Vec<BenchRecord>,
                    table: &mut Table| {
        let (out, ms) = measure(cfg_cell, alloc, timing_runs);
        table.row(vec![
            name.into(),
            scenario.into(),
            cfg_cell.arrivals.shape.label().into(),
            cfg_cell.arrivals.rate_per_kstep.to_string(),
            cfg_cell.batch_width.to_string(),
            format!("{}/{}", out.served, out.offered),
            out.latency.p50.to_string(),
            out.latency.p99.to_string(),
            out.latency.p999.to_string(),
            out.goodput_bytes_per_kstep().to_string(),
        ]);
        records.push(record_of(name, cfg_cell, &out, ms, scenario));
        out
    };

    // Load × shape sweep, both backends.
    for (name, alloc, max_req) in backends() {
        for &shape in shapes {
            for &rate in loads {
                let c = cell_config(
                    shape,
                    rate,
                    64,
                    horizon,
                    seed,
                    max_req,
                    standard_tenants(),
                    cfg.num_sms.min(16),
                );
                let out = run_cell(&name, alloc.as_ref(), "load", &c, &mut records, &mut table);
                clean &= out.clean();
            }
        }
    }

    // Roster widening: every remaining allocator family plus the
    // multi-device pool through one Poisson matrix cell. The quota and
    // queue machinery is backend-agnostic, so the same clean() gate
    // applies; families without lifecycle tracing simply contribute an
    // empty ledger.
    for (name, alloc, max_req) in roster_backends() {
        let c = cell_config(
            ArrivalShape::Poisson,
            LOADS[1],
            64,
            horizon,
            seed,
            max_req,
            standard_tenants(),
            cfg.num_sms.min(16),
        );
        let out = run_cell(&name, alloc.as_ref(), "roster", &c, &mut records, &mut table);
        clean &= out.clean();
    }

    // Batch-width sweep past the saturation knee (bursty top load),
    // flagship backend only — width only matters once a backlog forms.
    if !smoke {
        let (name, alloc, max_req) = backends().swap_remove(0);
        for &bw in &BATCH_WIDTHS {
            let c = cell_config(
                ArrivalShape::Bursty,
                LOADS[2],
                bw,
                horizon,
                seed,
                max_req,
                standard_tenants(),
                cfg.num_sms.min(16),
            );
            let out = run_cell(&name, alloc.as_ref(), "batch-width", &c, &mut records, &mut table);
            clean &= out.clean();
        }
    }

    // Fairness: aggressive tenant vs victim, admission on vs off.
    let mut victim_p99 = [0u64; 2]; // [throttled, unthrottled]
    for (i, enforce) in [true, false].into_iter().enumerate() {
        let (name, alloc, max_req) = backends().swap_remove(0);
        let mut c = cell_config(
            ArrivalShape::Bursty,
            if smoke { 90 } else { 180 },
            64,
            horizon,
            seed,
            max_req,
            fairness_tenants(),
            cfg.num_sms.min(16),
        );
        c.enforce_quotas = enforce;
        let out = run_cell(&name, alloc.as_ref(), "fairness", &c, &mut records, &mut table);
        let victim = out.tenants.iter().find(|t| t.name == "victim").expect("victim tenant");
        victim_p99[i] = victim.latency.p99;
        if enforce {
            clean &= out.clean();
        } else {
            // The unthrottled arm overcommits by design — quota
            // violations are its *result*, so only the allocator
            // lifecycle audit gates here.
            clean &= out.ledger_leaks == 0
                && out.ledger_double_frees == 0
                && out.ledger_unknown_frees == 0
                && out.ledger_size_mismatches == 0
                && out.trace_dropped == 0;
        }
    }

    clean &= frag_timeline(cfg, seed, horizon);

    println!(
        "fairness: victim p99 {} steps with admission control, {} without{}",
        victim_p99[0],
        victim_p99[1],
        if victim_p99[0] < victim_p99[1] { " — admission bounds the victim's tail" } else { "" }
    );
    table.emit(&cfg.out_dir, "e20_serve");
    match write_bench_json(&cfg.out_dir, "serve", &records) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => {
            eprintln!("error: could not write BENCH_serve.json: {e}");
            clean = false;
        }
    }
    if !clean {
        eprintln!("serve gate FAILED: quota violation or ledger anomaly (see table above)");
    }
    clean
}

/// The serving cells of the perf suite (`repro perf`): the E20 smoke
/// subset — both backends × Poisson × the two gated loads — run
/// quietly (no table, no JSON file; the perf lane owns the output).
/// Geometry is pinned (16 SMs, horizon 6000, `DEFAULT_SEED`) so the
/// record keys are stable across hosts and CI runs. Returns the
/// records plus the usual clean flag (quota/ledger audit).
pub fn perf_records() -> (Vec<BenchRecord>, bool) {
    let seed = DEFAULT_SEED;
    let horizon = 6_000;
    let mut records = Vec::new();
    let mut clean = true;
    for (name, alloc, max_req) in backends() {
        for &rate in &LOADS[..2] {
            let c = cell_config(
                ArrivalShape::Poisson,
                rate,
                64,
                horizon,
                seed,
                max_req,
                standard_tenants(),
                16,
            );
            let (out, ms) = measure(&c, alloc.as_ref(), 1);
            clean &= out.clean();
            records.push(record_of(&name, &c, &out, ms, "load"));
        }
    }
    (records, clean)
}
