//! E16 — deterministic atomic-count ablation for the contention diet
//! (randomized probe starts + batched slice claims), and the
//! `bench-smoke` CI gate built on it.
//!
//! Wall-clock on shared CI runners is noise, but under the
//! deterministic scheduler ([`gpu_sim::ExecMode::Deterministic`]) the
//! interleaving — and therefore every atomic-op counter — is an exact
//! function of the seed. This experiment measures two things the paper's
//! §4.3 contention argument predicts:
//!
//! 1. **Coalesced-group cost** — a 32-lane same-class malloc group costs
//!    O(1) shared-metadata atomics, not O(lanes): a handful on a cold
//!    heap (segment claim, block-tree insert, ring pop, slice claim) and
//!    exactly **one** batched slice-claim CAS once a block is cached.
//! 2. **Probe-start sweep** — a fixed multi-seed churn workload run with
//!    `randomize_probe_starts` on vs off, at two sizes. 16 B exercises
//!    the slice hot path (buffered blocks absorb almost all traffic, so
//!    counts must not get *worse*); 1 KiB drives the block pipeline —
//!    every malloc pops a block and segments cycle constantly — which is
//!    exactly where §4.3 predicts hashed probe starts pay off: SMs stop
//!    hammering bit 0 of the same trees and the CAS-attempt total drops
//!    severalfold.
//!
//! All workload constants are fixed (never scaled by [`HarnessConfig`])
//! so the emitted counts are bit-identical across hosts; that is what
//! lets `bench-smoke` diff them against a checked-in baseline with a
//! tight tolerance.

use crate::report::{read_bench_json, write_bench_json, BenchRecord, Table};
use crate::HarnessConfig;
use gallatin::{Gallatin, GallatinConfig};
use gpu_sim::{launch_warps, DeviceAllocator, DeviceConfig, DevicePtr};
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Schedule seed for the single-warp group-cost part (any seed gives the
/// same counts — one warp has nothing to interleave with).
const GROUP_SEED: u64 = 7;

/// Seeds swept in the contention part: full run covers `0..64`, the CI
/// smoke subset `0..8` (a strict prefix, so smoke counts are a
/// deterministic fraction of the full run's).
const SWEEP_SEEDS_FULL: u64 = 64;
pub(crate) const SWEEP_SEEDS_SMOKE: u64 = 8;

/// Churn shape: warps × rounds of coalesced same-class groups. 32 warps
/// across 8 SMs over a 16-segment heap is enough for probes to collide
/// when everyone starts at bit 0.
pub(crate) const SWEEP_WARPS: u64 = 32;
pub(crate) const SWEEP_ROUNDS: u64 = 4;
pub(crate) const SWEEP_SMS: u32 = 8;
pub(crate) const SWEEP_HEAP: u64 = 1 << 20; // 16 × 64 KiB segments (small_test geometry)

/// Sweep sizes: the slice hot path and the block-pipeline churn case.
const SWEEP_SIZE_SLICE: u64 = 16;
pub(crate) const SWEEP_SIZE_BLOCK: u64 = 1024;

/// Heap for the block-churn sweep: the 1 KiB case pins one whole block
/// per in-flight request (32 warps × 32 lanes = 1 MiB peak), so it gets
/// twice the headroom of the slice case.
pub(crate) const SWEEP_HEAP_BLOCK: u64 = 2 << 20; // 32 × 64 KiB segments

/// Allowed relative growth of any gated counter before `bench-smoke`
/// fails the build (the counts are deterministic, so this headroom only
/// absorbs deliberate small reworks, not noise).
const SMOKE_TOLERANCE: f64 = 0.10;

fn tiny_gallatin(randomize: bool) -> Gallatin {
    tiny_gallatin_sized(randomize, SWEEP_HEAP)
}

fn tiny_gallatin_sized(randomize: bool, heap: u64) -> Gallatin {
    Gallatin::new(GallatinConfig {
        randomize_probe_starts: randomize,
        ..GallatinConfig::small_test(heap)
    })
}

/// The block-churn allocator configuration (per instance, when the E18
/// pool experiment shards it).
pub(crate) fn block_churn_config() -> GallatinConfig {
    GallatinConfig { randomize_probe_starts: true, ..GallatinConfig::small_test(SWEEP_HEAP_BLOCK) }
}

/// An allocator sized for the block-churn workload (shared with E17's
/// trace capture, which replays exactly this setup).
pub(crate) fn block_churn_gallatin() -> Gallatin {
    Gallatin::new(block_churn_config())
}

/// One deterministic churn launch: `SWEEP_WARPS` warps ×
/// `SWEEP_ROUNDS` rounds of coalesced same-size malloc/free at `size`,
/// under schedule `seed`. The sweep's unit of work, also replayed by
/// E17's trace capture and sharded by E18's pool scaling, so traced and
/// pooled counts line up with gated ones.
pub(crate) fn churn_once<A: DeviceAllocator + ?Sized>(g: &A, seed: u64, size: u64) {
    let device = DeviceConfig::with_sms(SWEEP_SMS).seeded(seed);
    launch_warps(device, SWEEP_WARPS * 32, |warp| {
        let sizes = vec![Some(size); warp.active as usize];
        let mut out = vec![DevicePtr::NULL; warp.active as usize];
        for _ in 0..SWEEP_ROUNDS {
            g.warp_malloc(warp, &sizes, &mut out);
            assert!(
                out.iter().all(|p| !p.is_null()),
                "sweep heap must never run out (capacity ≫ working set)"
            );
            g.warp_free(warp, &out);
        }
    });
}

/// The block-churn workload (1 KiB requests) for E17's trace capture.
pub(crate) fn block_churn(g: &Gallatin, seed: u64) {
    churn_once(g, seed, SWEEP_SIZE_BLOCK);
}

/// Part 1: shared-metadata atomics for one coalesced 32-lane group, on a
/// cold heap and again once the SM's block buffer is warm. Returns
/// `(fresh, steady)` where each is `atomic_rmw + cas_attempts` deltas.
fn group_cost() -> (u64, u64) {
    let g = tiny_gallatin(true);
    let device = DeviceConfig::with_sms(SWEEP_SMS).seeded(GROUP_SEED);
    let fresh = AtomicU64::new(0);
    let steady = AtomicU64::new(0);
    launch_warps(device, 32, |warp| {
        let sizes = vec![Some(16u64); 32];
        let mut out = vec![DevicePtr::NULL; 32];
        let spent = |m: &gpu_sim::Metrics| {
            let s = m.snapshot();
            s.atomic_rmw + s.cas_attempts
        };
        let m = g.metrics().expect("gallatin keeps metrics");
        let before = spent(m);
        g.warp_malloc(warp, &sizes, &mut out);
        fresh.store(spent(m) - before, Ordering::Relaxed);
        assert!(out.iter().all(|p| !p.is_null()), "cold group must be served");
        // The block now sits in the SM's buffer with spare capacity
        // (32 of 64 slices taken); a second, 16-lane group (the other
        // lanes sit out with `None`) must collapse to the single
        // batched claim.
        let mut sizes2 = vec![Some(16u64); 16];
        sizes2.resize(32, None);
        let mut out2 = vec![DevicePtr::NULL; 32];
        let before = spent(m);
        g.warp_malloc(warp, &sizes2, &mut out2);
        steady.store(spent(m) - before, Ordering::Relaxed);
        assert!(out2[..16].iter().all(|p| !p.is_null()), "warm group must be served");
        g.warp_free(warp, &out);
        g.warp_free(warp, &out2);
    });
    g.check_invariants().expect("invariants after group-cost probe");
    (fresh.load(Ordering::Relaxed), steady.load(Ordering::Relaxed))
}

/// Totals from one churn sweep.
struct SweepTotals {
    cas_attempts: u64,
    cas_failures: u64,
    atomic_rmw: u64,
    ms: f64,
}

/// Part 2: the fixed churn workload over `seeds` deterministic
/// schedules, with probe-start randomization on or off.
fn sweep(randomize: bool, seeds: u64, size: u64) -> SweepTotals {
    let mut tot = SweepTotals { cas_attempts: 0, cas_failures: 0, atomic_rmw: 0, ms: 0.0 };
    let heap = if size > 256 { SWEEP_HEAP_BLOCK } else { SWEEP_HEAP };
    for seed in 0..seeds {
        let g = tiny_gallatin_sized(randomize, heap);
        let t0 = Instant::now();
        churn_once(&g, seed, size);
        tot.ms += t0.elapsed().as_secs_f64() * 1e3;
        g.check_invariants().expect("invariants after churn sweep");
        assert_eq!(g.stats().reserved_bytes, 0, "sweep leaked");
        let m = g.metrics().expect("gallatin keeps metrics").snapshot();
        tot.cas_attempts += m.cas_attempts;
        tot.cas_failures += m.cas_failures;
        tot.atomic_rmw += m.atomic_rmw;
    }
    tot
}

/// Build the full record set at the given sweep width.
fn records(experiment: &str, seeds: u64) -> Vec<BenchRecord> {
    let t0 = Instant::now();
    let (fresh, steady) = group_cost();
    let group_cost_ms = t0.elapsed().as_secs_f64() * 1e3;
    assert_eq!(steady, 1, "steady-state coalesced group must cost exactly one atomic");
    let rec = |case: &str, extra: Vec<(String, String)>, ms: f64, counts: Vec<(String, u64)>| {
        let mut params = vec![("case".to_string(), case.to_string())];
        params.extend(extra);
        BenchRecord {
            experiment: experiment.to_string(),
            allocator: "Gallatin".to_string(),
            params,
            median_ms: ms,
            counts,
        }
    };
    let mut out = vec![rec(
        "group-cost",
        vec![("lanes".into(), "32".into())],
        group_cost_ms,
        vec![("fresh_group_atomics".into(), fresh), ("steady_group_atomics".into(), steady)],
    )];
    for size in [SWEEP_SIZE_SLICE, SWEEP_SIZE_BLOCK] {
        for (label, randomize) in [("on", true), ("off", false)] {
            let t = sweep(randomize, seeds, size);
            out.push(rec(
                "sweep",
                vec![
                    ("size".into(), size.to_string()),
                    ("randomize_probe_starts".into(), label.into()),
                    ("seeds".into(), seeds.to_string()),
                ],
                t.ms,
                vec![
                    ("cas_attempts".into(), t.cas_attempts),
                    ("cas_failures".into(), t.cas_failures),
                    ("atomic_rmw".into(), t.atomic_rmw),
                ],
            ));
        }
    }
    out
}

fn emit(cfg: &HarnessConfig, experiment: &str, recs: &[BenchRecord]) {
    let mut tab = Table::new(
        format!("E16 — deterministic atomic-count ablation ({experiment})"),
        &["case", "params", "cas attempts", "cas failures", "atomic rmw", "note"],
    );
    for r in recs {
        let get = |k: &str| {
            r.counts
                .iter()
                .find(|(n, _)| n == k)
                .map(|(_, v)| v.to_string())
                .unwrap_or_else(|| "-".to_string())
        };
        let params: Vec<String> =
            r.params.iter().skip(1).map(|(k, v)| format!("{k}={v}")).collect();
        let note = if r.params[0].1 == "group-cost" {
            format!("fresh={} steady={}", get("fresh_group_atomics"), get("steady_group_atomics"))
        } else {
            String::new()
        };
        tab.row(vec![
            r.params[0].1.clone(),
            params.join(" "),
            get("cas_attempts"),
            get("cas_failures"),
            get("atomic_rmw"),
            note,
        ]);
    }
    tab.emit(&cfg.out_dir, &format!("e16_{}", experiment.replace('-', "_")));
    match write_bench_json(&cfg.out_dir, experiment, recs) {
        Ok(p) => println!("wrote {}", p.display()),
        Err(e) => eprintln!("warning: could not write BENCH_{experiment}.json: {e}"),
    }
}

/// One churn sweep with the wide-vEB-scan flag pinned: the E21 A/B cell.
/// Counts must match the narrow run bit-for-bit (the wide path only adds
/// plain loads), so the pair doubles as a correctness check.
fn wide_sweep(wide: bool, seeds: u64, size: u64) -> SweepTotals {
    let mut tot = SweepTotals { cas_attempts: 0, cas_failures: 0, atomic_rmw: 0, ms: 0.0 };
    let heap = if size > 256 { SWEEP_HEAP_BLOCK } else { SWEEP_HEAP };
    for seed in 0..seeds {
        let g = Gallatin::new(GallatinConfig {
            randomize_probe_starts: true,
            wide_veb_scans: wide,
            ..GallatinConfig::small_test(heap)
        });
        let t0 = Instant::now();
        churn_once(&g, seed, size);
        tot.ms += t0.elapsed().as_secs_f64() * 1e3;
        g.check_invariants().expect("invariants after wide-scan sweep");
        let m = g.metrics().expect("gallatin keeps metrics").snapshot();
        tot.cas_attempts += m.cas_attempts;
        tot.cas_failures += m.cas_failures;
        tot.atomic_rmw += m.atomic_rmw;
    }
    tot
}

/// Run the full ablation (64-seed sweep) and emit table + CSV + JSON.
pub fn run_ablation(cfg: &HarnessConfig) {
    let mut recs = records("ablation", SWEEP_SEEDS_FULL);
    // E21 A/B: wide vs narrow vEB leaf scans at both sweep sizes. The
    // flag is a pure wall-clock knob, so the count columns must agree.
    for size in [SWEEP_SIZE_SLICE, SWEEP_SIZE_BLOCK] {
        let on = wide_sweep(true, SWEEP_SEEDS_FULL, size);
        let off = wide_sweep(false, SWEEP_SEEDS_FULL, size);
        assert_eq!(
            (on.cas_attempts, on.cas_failures, on.atomic_rmw),
            (off.cas_attempts, off.cas_failures, off.atomic_rmw),
            "wide vEB scans changed atomic-op counts at size {size}"
        );
        println!(
            "wide vEB scans ({size} B churn, {SWEEP_SEEDS_FULL} seeds): {:.1} ms on vs {:.1} ms off (counts identical)",
            on.ms, off.ms
        );
        for (label, t) in [("on", on), ("off", off)] {
            recs.push(BenchRecord {
                experiment: "ablation".to_string(),
                allocator: "Gallatin".to_string(),
                params: vec![
                    ("case".into(), "veb-scan".into()),
                    ("size".into(), size.to_string()),
                    ("wide_veb_scans".into(), label.into()),
                    ("seeds".into(), SWEEP_SEEDS_FULL.to_string()),
                ],
                median_ms: t.ms,
                counts: vec![
                    ("cas_attempts".into(), t.cas_attempts),
                    ("cas_failures".into(), t.cas_failures),
                    ("atomic_rmw".into(), t.atomic_rmw),
                ],
            });
        }
    }
    emit(cfg, "ablation", &recs);
    let find = |rand: &str, k: &str| {
        recs.iter()
            .find(|r| {
                r.params.iter().any(|(pk, pv)| pk == "size" && pv == "1024")
                    && r.params.iter().any(|(pk, pv)| pk == "randomize_probe_starts" && pv == rand)
            })
            .and_then(|r| r.counts.iter().find(|(n, _)| n == k))
            .map(|(_, v)| *v)
            .unwrap_or(0)
    };
    println!(
        "randomized probe starts (1 KiB block churn): cas attempts {} → {}, rmw {} → {} (off → on)",
        find("off", "cas_attempts"),
        find("on", "cas_attempts"),
        find("off", "atomic_rmw"),
        find("on", "atomic_rmw"),
    );
}

/// Build the smoke-subset record set (the 8-seed prefix of the full
/// sweep, plus the 2-instance pool churn from E18). Shared by
/// `repro bench-smoke` and the tier-1 `smoke_gate` integration test, so
/// a count regression fails `cargo test` locally, not only the CI gate.
pub fn smoke_records() -> Vec<BenchRecord> {
    let mut recs = records("bench_smoke", SWEEP_SEEDS_SMOKE);
    recs.extend(super::pool::pool_smoke_records("bench_smoke"));
    recs
}

/// Diff `current` smoke counts against `baseline`, applying the gate
/// rules (any counter more than 10% over baseline fails; missing
/// baseline records or counters fail). Returns `(failures, notes)`:
/// empty `failures` means the gate passes, `notes` list improvements
/// worth folding into a refreshed baseline.
pub fn smoke_gate(current: &[BenchRecord], baseline: &[BenchRecord]) -> (Vec<String>, Vec<String>) {
    let mut failures = Vec::new();
    let mut notes = Vec::new();
    for cur in current {
        let Some(base) = baseline.iter().find(|b| b.key() == cur.key()) else {
            failures.push(format!(
                "baseline has no record {} — refresh results/BENCH_bench_smoke.json",
                cur.key()
            ));
            continue;
        };
        for (name, cur_v) in &cur.counts {
            let Some((_, base_v)) = base.counts.iter().find(|(n, _)| n == name) else {
                failures.push(format!("baseline {} lacks counter {name} — refresh it", cur.key()));
                continue;
            };
            let limit = (*base_v as f64 * (1.0 + SMOKE_TOLERANCE)).ceil() as u64;
            if *cur_v > limit {
                failures.push(format!(
                    "REGRESSION {} {name}: {cur_v} > {base_v} (+{:.0}% allowed)",
                    cur.key(),
                    SMOKE_TOLERANCE * 100.0
                ));
            } else if *cur_v < *base_v {
                notes.push(format!(
                    "improvement {} {name}: {cur_v} < {base_v} — consider refreshing the baseline",
                    cur.key()
                ));
            }
        }
    }
    (failures, notes)
}

/// Run the CI smoke subset and gate it against the checked-in baseline.
///
/// Reads `results/BENCH_bench_smoke.json` (committed to the repo) before
/// writing the current counts to `<out_dir>/BENCH_bench_smoke.json`, then
/// fails — returns `false` — if any gated counter grew more than
/// the smoke tolerance (10%) over baseline. Refreshing the baseline is just
/// running `repro bench-smoke` with the default `--out results` and
/// committing the rewritten file (see EXPERIMENTS.md).
pub fn run_bench_smoke(cfg: &HarnessConfig) -> bool {
    let baseline_path = Path::new("results").join("BENCH_bench_smoke.json");
    let baseline = read_bench_json(&baseline_path);
    let recs = smoke_records();
    emit(cfg, "bench_smoke", &recs);
    let baseline = match baseline {
        Ok(b) => b,
        Err(e) => {
            eprintln!(
                "bench-smoke: no usable baseline ({e}); run `repro bench-smoke` with \
                 --out results and commit results/BENCH_bench_smoke.json"
            );
            return false;
        }
    };
    let (failures, notes) = smoke_gate(&recs, &baseline);
    for n in &notes {
        println!("bench-smoke: {n}");
    }
    for f in &failures {
        eprintln!("bench-smoke: {f}");
    }
    if failures.is_empty() {
        println!(
            "bench-smoke: all atomic-op counts within {:.0}% of baseline",
            SMOKE_TOLERANCE * 100.0
        );
        true
    } else {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_cost_is_o1_and_deterministic() {
        let (fresh, steady) = group_cost();
        assert!(fresh <= 6, "cold 32-lane group cost {fresh} atomics");
        assert_eq!(steady, 1, "warm group must be the single batched claim");
        assert_eq!((fresh, steady), group_cost(), "counts must replay exactly");
    }

    #[test]
    fn randomization_does_not_increase_slice_cas_traffic() {
        let on = sweep(true, 4, SWEEP_SIZE_SLICE);
        let off = sweep(false, 4, SWEEP_SIZE_SLICE);
        assert!(
            on.cas_attempts <= off.cas_attempts,
            "randomized probes must not add CAS traffic: on={} off={}",
            on.cas_attempts,
            off.cas_attempts
        );
        // Deterministic: a second run of the same sweep is bit-identical.
        let on2 = sweep(true, 4, SWEEP_SIZE_SLICE);
        assert_eq!(on.cas_attempts, on2.cas_attempts);
        assert_eq!(on.cas_failures, on2.cas_failures);
        assert_eq!(on.atomic_rmw, on2.atomic_rmw);
    }

    #[test]
    fn randomization_cuts_block_churn_cas_traffic() {
        // Block-pipeline churn: every malloc pops a block, so the tree
        // probes dominate — the case §4.3's randomization targets. The
        // drop is severalfold; assert a conservative strict reduction.
        let on = sweep(true, 4, SWEEP_SIZE_BLOCK);
        let off = sweep(false, 4, SWEEP_SIZE_BLOCK);
        assert!(
            on.cas_attempts < off.cas_attempts,
            "hashed probe starts must reduce block-churn CAS attempts: on={} off={}",
            on.cas_attempts,
            off.cas_attempts
        );
    }
}
