//! Table and CSV output for the harness.

use std::fs;
use std::io::Write;
use std::path::Path;

/// A simple aligned-column table printed to stdout and mirrored to CSV.
pub struct Table {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: Vec<String>) {
        debug_assert_eq!(cells.len(), self.headers.len());
        self.rows.push(cells);
    }

    /// Render the aligned table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("\n== {} ==\n", self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and write `<out_dir>/<file>.csv`.
    pub fn emit(&self, out_dir: &str, file: &str) {
        print!("{}", self.render());
        if let Err(e) = self.write_csv(out_dir, file) {
            eprintln!("warning: could not write CSV {file}: {e}");
        }
    }

    fn write_csv(&self, out_dir: &str, file: &str) -> std::io::Result<()> {
        fs::create_dir_all(out_dir)?;
        let path = Path::new(out_dir).join(format!("{file}.csv"));
        let mut f = fs::File::create(path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(())
    }
}

/// Format milliseconds with sensible precision.
pub fn fmt_ms(ms: f64) -> String {
    if ms.is_nan() {
        "n/a".to_string()
    } else if ms >= 100.0 {
        format!("{ms:.0}")
    } else if ms >= 1.0 {
        format!("{ms:.2}")
    } else {
        format!("{ms:.4}")
    }
}

/// Format a ratio/percentage.
pub fn fmt_pct(x: f64) -> String {
    if x.is_nan() {
        "n/a".to_string()
    } else {
        format!("{:.1}%", 100.0 * x)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.row(vec!["a".into(), "1".into()]);
        t.row(vec!["longer".into(), "2.5".into()]);
        let s = t.render();
        assert!(s.contains("== demo =="));
        assert!(s.contains("longer"));
        // Columns aligned: both rows end at the same width.
        let lines: Vec<&str> = s.lines().filter(|l| l.contains('1') || l.contains("2.5")).collect();
        assert_eq!(lines.len(), 2);
    }

    #[test]
    fn csv_written() {
        let dir = std::env::temp_dir().join("gallatin-bench-test");
        let dir = dir.to_str().unwrap();
        let mut t = Table::new("demo", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        t.write_csv(dir, "unit").unwrap();
        let content = std::fs::read_to_string(format!("{dir}/unit.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn formatting_helpers() {
        assert_eq!(fmt_ms(123.4), "123");
        assert_eq!(fmt_ms(1.234), "1.23");
        assert_eq!(fmt_ms(0.1234), "0.1234");
        assert_eq!(fmt_ms(f64::NAN), "n/a");
        assert_eq!(fmt_pct(0.891), "89.1%");
    }
}
